package aodv

import (
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

type world struct {
	sched   *sim.Scheduler
	medium  *radio.Medium
	stacks  []*node.Stack
	routers []*Router
	rxs     []int // GossipRep deliveries per node
}

// buildWorld wires stacks+AODV at the given positions (60 m range) and
// registers a payload handler (GossipRep stands in for any transparently
// routed unicast traffic).
func buildWorld(t *testing.T, positions []geom.Point, models ...mobility.Model) *world {
	t.Helper()
	w := &world{sched: sim.NewScheduler()}
	w.medium = radio.NewMedium(w.sched, radio.Params{Range: 60})
	rng := sim.NewRNG(7)
	w.rxs = make([]int, len(positions))
	for i := range positions {
		i := i
		var m mobility.Model = mobility.Static{P: positions[i]}
		if models != nil && models[i] != nil {
			m = models[i]
		}
		id := pkt.NodeID(i + 1)
		st, err := node.New(w.sched, rng.Derive(id.String()), w.medium, id, m, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r := New(st, rng.Derive("aodv/"+id.String()), DefaultConfig())
		st.Handle(pkt.KindGossipRep, func(p *pkt.Packet, from pkt.NodeID) { w.rxs[i]++ })
		r.Start()
		w.stacks = append(w.stacks, st)
		w.routers = append(w.routers, r)
	}
	return w
}

func payload(src, dst pkt.NodeID) *pkt.Packet {
	return pkt.NewPacket(src, dst, &pkt.GossipRep{Group: 1, Responder: src})
}

// linePositions returns n points 50 m apart (range 60 m: only adjacent
// nodes connect).
func linePositions(n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: float64(i) * 50}
	}
	return out
}

func TestRouteDiscoveryAndDelivery(t *testing.T) {
	w := buildWorld(t, linePositions(4))
	w.sched.After(time.Second, func() { w.stacks[0].SendUnicast(payload(1, 4)) })
	w.sched.Run(5 * time.Second)

	if w.rxs[3] != 1 {
		t.Fatalf("destination deliveries = %d, want 1", w.rxs[3])
	}
	if w.routers[0].Stats().RREQsOriginated == 0 {
		t.Fatal("no RREQ was originated")
	}
	// Forward route must now exist at the source.
	if _, ok := w.routers[0].NextHop(4); !ok {
		t.Fatal("source has no route to destination after discovery")
	}
	if hops, ok := w.routers[0].RouteHops(4); !ok || hops != 3 {
		t.Fatalf("route hops = %d (ok=%v), want 3", hops, ok)
	}
}

func TestMultiplePacketsQueuedDuringDiscovery(t *testing.T) {
	w := buildWorld(t, linePositions(3))
	w.sched.After(time.Second, func() {
		for i := 0; i < 5; i++ {
			w.stacks[0].SendUnicast(payload(1, 3))
		}
	})
	w.sched.Run(5 * time.Second)
	if w.rxs[2] != 5 {
		t.Fatalf("deliveries = %d, want 5", w.rxs[2])
	}
}

func TestDiscoveryFailsForUnreachable(t *testing.T) {
	w := buildWorld(t, []geom.Point{{X: 0}, {X: 500}})
	w.sched.After(time.Second, func() { w.stacks[0].SendUnicast(payload(1, 2)) })
	w.sched.Run(20 * time.Second)

	st := w.routers[0].Stats()
	if st.DiscoveryFails != 1 {
		t.Fatalf("DiscoveryFails = %d, want 1", st.DiscoveryFails)
	}
	// First try + RREQRetries retries.
	if want := uint64(1 + DefaultConfig().RREQRetries); st.RREQsOriginated != want {
		t.Fatalf("RREQsOriginated = %d, want %d", st.RREQsOriginated, want)
	}
	if st.PacketsDropped == 0 {
		t.Fatal("queued packet was not counted as dropped")
	}
}

func TestHelloNeighborDiscovery(t *testing.T) {
	w := buildWorld(t, linePositions(2))
	w.sched.Run(3 * time.Second)
	if !w.routers[0].HaveNeighbor(2) || !w.routers[1].HaveNeighbor(1) {
		t.Fatal("hello beacons did not establish neighbourhood")
	}
	// Hello also installs the 1-hop route.
	if nh, ok := w.routers[0].NextHop(2); !ok || nh != 2 {
		t.Fatalf("1-hop route = (%v, %v), want (2, true)", nh, ok)
	}
}

// teleporter jumps from a to b at time jumpAt.
type teleporter struct {
	a, b   geom.Point
	jumpAt sim.Time
}

func (tp teleporter) Position(t sim.Time) geom.Point {
	if t >= tp.jumpAt {
		return tp.b
	}
	return tp.a
}

func TestHelloLossBreaksLink(t *testing.T) {
	pos := linePositions(2)
	models := []mobility.Model{
		nil,
		teleporter{a: pos[1], b: geom.Point{X: 5000}, jumpAt: 5 * time.Second},
	}
	w := buildWorld(t, pos, models...)

	var broken []pkt.NodeID
	w.routers[0].OnLinkBreak(func(n pkt.NodeID) { broken = append(broken, n) })

	w.sched.Run(4 * time.Second)
	if !w.routers[0].HaveNeighbor(2) {
		t.Fatal("precondition: neighbour not established")
	}
	w.sched.Run(12 * time.Second)
	if w.routers[0].HaveNeighbor(2) {
		t.Fatal("vanished neighbour still tracked after allowed hello loss")
	}
	found := false
	for _, n := range broken {
		if n == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("link-break subscribers not notified: %v", broken)
	}
}

func TestMACFailureInvalidatesRouteAndSalvages(t *testing.T) {
	// Line 1-2-3; node 2 teleports away after routes are set up. The next
	// packet from 1 fails at the MAC, the route must be invalidated, a
	// rediscovery happens, and with no alternative path the packet drops.
	pos := linePositions(3)
	models := []mobility.Model{
		nil,
		teleporter{a: pos[1], b: geom.Point{X: 5000}, jumpAt: 6 * time.Second},
		nil,
	}
	w := buildWorld(t, pos, models...)
	w.sched.After(time.Second, func() { w.stacks[0].SendUnicast(payload(1, 3)) })
	w.sched.Run(5 * time.Second)
	if w.rxs[2] != 1 {
		t.Fatal("precondition: initial delivery failed")
	}
	// Send the second packet after node 2 teleports away at t=6s.
	w.sched.After(2*time.Second, func() { w.stacks[0].SendUnicast(payload(1, 3)) })
	w.sched.Run(40 * time.Second)

	if w.rxs[2] != 1 {
		t.Fatalf("deliveries = %d, want still 1 (no path after teleport)", w.rxs[2])
	}
	st := w.routers[0].Stats()
	if st.LinkBreaks == 0 {
		t.Fatal("MAC failure did not register a link break")
	}
	if st.PacketsSalvaged == 0 {
		t.Fatal("failed packet was not salvaged into rediscovery")
	}
	if _, ok := w.routers[0].NextHop(3); ok {
		t.Fatal("stale route still valid after link break")
	}
}

func TestIntermediateNodeReplies(t *testing.T) {
	w := buildWorld(t, linePositions(4))
	// Establish 1->4; then ask from node 2, which should get an answer
	// without a new full flood reaching node 4's neighbourhood... We
	// simply verify node 2 answers from its fresh route: node 1
	// rediscovers immediately after the first exchange.
	w.sched.After(time.Second, func() { w.stacks[0].SendUnicast(payload(1, 4)) })
	w.sched.Run(4 * time.Second)

	before := w.routers[3].Stats().RREPsOriginated
	// Expire nothing: route at node 2 toward 4 is fresh. New request
	// from node 1 for 4 after deleting its own route: force by another
	// packet after invalidating locally.
	w.sched.After(0, func() {
		// Simulate local route loss at node 1 only.
		delete(w.routers[0].routes, 4)
		w.stacks[0].SendUnicast(payload(1, 4))
	})
	w.sched.Run(8 * time.Second) // Run horizons are absolute simulation times

	if w.rxs[3] != 2 {
		t.Fatalf("deliveries = %d, want 2", w.rxs[3])
	}
	if w.routers[1].Stats().RREPsOriginated == 0 {
		t.Fatal("intermediate node with fresh route did not reply")
	}
	if got := w.routers[3].Stats().RREPsOriginated; got != before {
		t.Fatalf("destination replied again (%d -> %d); intermediate reply expected", before, got)
	}
}

func TestRERRPropagation(t *testing.T) {
	// Chain 1-2-3-4. After route setup, node 4 vanishes. Node 3 detects
	// (hello loss), broadcasts RERR; nodes 2 and 1 must invalidate.
	pos := linePositions(4)
	models := []mobility.Model{
		nil, nil, nil,
		teleporter{a: pos[3], b: geom.Point{X: 9000}, jumpAt: 6 * time.Second},
	}
	w := buildWorld(t, pos, models...)
	w.sched.After(time.Second, func() { w.stacks[0].SendUnicast(payload(1, 4)) })
	w.sched.Run(5 * time.Second)
	if w.rxs[3] != 1 {
		t.Fatal("precondition: delivery failed")
	}
	if _, ok := w.routers[1].NextHop(4); !ok {
		t.Fatal("precondition: node 2 lacks route to 4")
	}
	w.sched.Run(15 * time.Second) // hello loss at node 3 + RERR propagation

	if _, ok := w.routers[2].NextHop(4); ok {
		t.Fatal("node 3 still has valid route to vanished node 4")
	}
	if _, ok := w.routers[1].NextHop(4); ok {
		t.Fatal("node 2 did not invalidate on RERR")
	}
	if _, ok := w.routers[0].NextHop(4); ok {
		t.Fatal("node 1 did not invalidate on RERR")
	}
}

func TestNewerSeq(t *testing.T) {
	tests := []struct {
		a, b uint32
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{1, 1, false},
		{0, 0xFFFFFFFF, true}, // wraparound
		{0xFFFFFFFF, 0, false},
	}
	for _, tt := range tests {
		if got := newerSeq(tt.a, tt.b); got != tt.want {
			t.Errorf("newerSeq(%d, %d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSeenCacheSweep(t *testing.T) {
	w := buildWorld(t, linePositions(2))
	w.sched.After(time.Second, func() { w.stacks[0].SendUnicast(payload(1, 9)) })
	w.sched.Run(30 * time.Second)
	// After SeenLifetime + sweeps, the cache must be clean.
	if n := len(w.routers[1].seen); n != 0 {
		t.Fatalf("seen cache has %d stale entries", n)
	}
}

func TestQueueBounded(t *testing.T) {
	w := buildWorld(t, []geom.Point{{X: 0}, {X: 500}})
	w.sched.After(time.Second, func() {
		for i := 0; i < DefaultConfig().MaxQueuedPerDest+5; i++ {
			w.stacks[0].SendUnicast(payload(1, 2))
		}
	})
	w.sched.Run(2 * time.Second)
	d := w.routers[0].pending[2]
	if d == nil {
		t.Fatal("no pending discovery")
	}
	if len(d.queued) != DefaultConfig().MaxQueuedPerDest {
		t.Fatalf("queued = %d, want cap %d", len(d.queued), DefaultConfig().MaxQueuedPerDest)
	}
}
