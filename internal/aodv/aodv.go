// Package aodv implements the Ad-hoc On-demand Distance Vector unicast
// routing protocol (IETF draft v5 era, the paper's reference [11]) on top
// of the node stack. MAODV (package maodv) extends it through the
// MulticastHooks interface: join RREQs and multicast RREPs reuse AODV's
// flood/relay mechanics, exactly as the MAODV draft specifies.
//
// Implemented behaviours:
//
//   - route table with destination sequence numbers, hop counts and
//     lifetimes; freshness rules on every install;
//   - expanding RREQ retry with per-destination packet queues;
//   - intermediate-node RREP for fresh routes;
//   - RERR propagation on broken links;
//   - hello beacons (600 ms interval, allowed loss 4 in the paper's
//     configuration) driving neighbour tracking, plus immediate breakage
//     signals from MAC retry exhaustion.
package aodv

import (
	"slices"
	"time"

	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// Config holds the AODV parameters. The paper pins HelloInterval and
// AllowedHelloLoss; the rest follow the draft's defaults scaled to the
// small terrain.
type Config struct {
	// HelloInterval is the beacon period (600 ms in the paper).
	HelloInterval time.Duration
	// AllowedHelloLoss consecutive missed hellos break a link (4 in the
	// paper).
	AllowedHelloLoss int
	// ActiveRouteTimeout is the route lifetime, refreshed on use.
	ActiveRouteTimeout time.Duration
	// RREQRetries is the number of retries after the first RREQ.
	RREQRetries int
	// RREQTimeout is the first reply-wait; it doubles per retry.
	RREQTimeout time.Duration
	// MaxQueuedPerDest bounds the packets held while discovering a route.
	MaxQueuedPerDest int
	// SeenLifetime is how long RREQ (orig, id) pairs stay in the dedup
	// cache.
	SeenLifetime time.Duration
	// HelloJitter randomises beacon phase to avoid network-wide
	// synchronisation.
	HelloJitter time.Duration
	// BroadcastJitter delays flood rebroadcasts by a uniform random
	// amount. Without it, sibling relays that cannot hear each other
	// (hidden terminals) rebroadcast a flood at the same instant and
	// collide at every common neighbour — the classic broadcast-storm
	// pathology every deployed AODV implementation jitters against.
	BroadcastJitter time.Duration
}

// DefaultConfig returns the paper's AODV configuration.
func DefaultConfig() Config {
	return Config{
		HelloInterval:      600 * time.Millisecond,
		AllowedHelloLoss:   4,
		ActiveRouteTimeout: 6 * time.Second,
		RREQRetries:        2,
		RREQTimeout:        500 * time.Millisecond,
		MaxQueuedPerDest:   10,
		SeenLifetime:       5 * time.Second,
		HelloJitter:        100 * time.Millisecond,
		BroadcastJitter:    10 * time.Millisecond,
	}
}

// MulticastHooks is implemented by the MAODV layer.
type MulticastHooks interface {
	// HandleJoinRREQ examines a join/repair RREQ. If the node can answer
	// (it is a suitable tree node), the hook sends the multicast RREP
	// itself and returns true; returning false lets the flood continue.
	HandleJoinRREQ(r *pkt.RREQ, from pkt.NodeID) bool
	// ObserveMulticastRREP runs at every node a multicast RREP visits
	// (including the join originator), letting MAODV record activation
	// paths. atOrigin reports whether this node is the RREP's requester.
	ObserveMulticastRREP(r *pkt.RREP, from pkt.NodeID, atOrigin bool)
}

// route is one routing table entry.
type route struct {
	dst      pkt.NodeID
	seq      uint32
	seqValid bool
	hops     uint8
	nextHop  pkt.NodeID
	expires  sim.Time
	valid    bool
}

// discovery tracks an outstanding route request.
type discovery struct {
	dst     pkt.NodeID
	retries int
	timer   sim.Timer
	queued  []*pkt.Packet
}

// neighbor tracks hello liveness.
type neighbor struct {
	lastHeard sim.Time
}

// Stats counts AODV protocol activity.
type Stats struct {
	RREQsOriginated uint64
	RREQsForwarded  uint64
	RREPsOriginated uint64
	RREPsForwarded  uint64
	RERRsSent       uint64
	HellosSent      uint64
	DiscoveryFails  uint64
	LinkBreaks      uint64
	PacketsSalvaged uint64
	PacketsDropped  uint64
}

// Router is one node's AODV entity.
type Router struct {
	cfg   Config
	stack *node.Stack
	sched runtime.Clock
	rng   *sim.RNG

	seq    uint32
	rreqID uint32

	routes    map[pkt.NodeID]*route
	pending   map[pkt.NodeID]*discovery
	seen      map[seenKey]sim.Time
	neighbors map[pkt.NodeID]*neighbor

	mc        MulticastHooks
	breakSubs []func(n pkt.NodeID)

	helloSeq uint32
	stats    Stats
}

type seenKey struct {
	orig pkt.NodeID
	id   uint32
}

var _ node.UnicastRouter = (*Router)(nil)

// New builds an AODV router bound to st and registers its handlers. Call
// Start to begin hello beaconing.
func New(st *node.Stack, rng *sim.RNG, cfg Config) *Router {
	r := &Router{
		cfg:       cfg,
		stack:     st,
		sched:     st.Clock(),
		rng:       rng,
		routes:    make(map[pkt.NodeID]*route),
		pending:   make(map[pkt.NodeID]*discovery),
		seen:      make(map[seenKey]sim.Time),
		neighbors: make(map[pkt.NodeID]*neighbor),
	}
	st.SetRouter(r)
	st.Handle(pkt.KindHello, r.onHello)
	st.Handle(pkt.KindRREQ, r.onRREQ)
	st.Handle(pkt.KindRREP, r.onRREP)
	st.Handle(pkt.KindRERR, r.onRERR)
	st.OnHeard(r.onHeard)
	st.OnLinkFailure(r.onMACFailure)
	return r
}

// Start launches periodic hello beaconing and cache sweeping.
func (r *Router) Start() {
	r.sched.After(r.rng.Duration(r.cfg.HelloJitter), r.helloTick)
	r.sched.After(r.cfg.HelloInterval, r.sweepTick)
}

// SetMulticastHooks installs the MAODV extension.
func (r *Router) SetMulticastHooks(mc MulticastHooks) { r.mc = mc }

// OnLinkBreak subscribes to broken-neighbour events (hello loss or MAC
// failure). MAODV uses this to trigger tree repair.
func (r *Router) OnLinkBreak(fn func(n pkt.NodeID)) {
	r.breakSubs = append(r.breakSubs, fn)
}

// Stats returns a copy of the protocol counters.
func (r *Router) Stats() Stats { return r.stats }

// ID returns the owning node's address.
func (r *Router) ID() pkt.NodeID { return r.stack.ID() }

// --- node.UnicastRouter ---

// NextHop implements node.UnicastRouter, refreshing the lifetime of used
// routes.
func (r *Router) NextHop(dst pkt.NodeID) (pkt.NodeID, bool) {
	rt, ok := r.routes[dst]
	if !ok || !rt.valid || rt.expires <= r.sched.Now() {
		return 0, false
	}
	rt.expires = r.sched.Now() + r.cfg.ActiveRouteTimeout
	return rt.nextHop, true
}

// QueueForRoute implements node.UnicastRouter: it parks the packet and
// drives a route discovery for its destination.
func (r *Router) QueueForRoute(p *pkt.Packet) {
	d, running := r.pending[p.Dst]
	if !running {
		d = &discovery{dst: p.Dst}
		r.pending[p.Dst] = d
		r.sendRREQ(d)
	}
	if len(d.queued) >= r.cfg.MaxQueuedPerDest {
		r.stats.PacketsDropped++
		return
	}
	d.queued = append(d.queued, p)
}

// --- identifiers shared with MAODV ---

// AllocRREQID returns a fresh route-request ID.
func (r *Router) AllocRREQID() uint32 {
	r.rreqID++
	return r.rreqID
}

// NextSeq increments and returns the node's own sequence number.
func (r *Router) NextSeq() uint32 {
	r.seq++
	return r.seq
}

// NoteOwnRREQ records a locally originated RREQ (orig, id) so the node
// ignores echoes of its own flood.
func (r *Router) NoteOwnRREQ(id uint32) {
	r.seen[seenKey{orig: r.stack.ID(), id: id}] = r.sched.Now() + r.cfg.SeenLifetime
}

// HaveNeighbor reports whether n is currently tracked as a live
// neighbour.
func (r *Router) HaveNeighbor(n pkt.NodeID) bool {
	_, ok := r.neighbors[n]
	return ok
}

// Neighbors returns the live neighbour set in ascending ID order.
func (r *Router) Neighbors() []pkt.NodeID {
	out := make([]pkt.NodeID, 0, len(r.neighbors))
	for n := range r.neighbors {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// sortedRouteDsts returns route-table destinations in ascending order,
// keeping behaviour independent of map iteration order.
func (r *Router) sortedRouteDsts() []pkt.NodeID {
	out := make([]pkt.NodeID, 0, len(r.routes))
	for dst := range r.routes {
		out = append(out, dst)
	}
	slices.Sort(out)
	return out
}

// RouteHops returns the hop count of a valid route to dst, if known.
func (r *Router) RouteHops(dst pkt.NodeID) (uint8, bool) {
	rt, ok := r.routes[dst]
	if !ok || !rt.valid || rt.expires <= r.sched.Now() {
		return 0, false
	}
	return rt.hops, true
}

// RelayRREP addresses rrep to the next hop on the reverse path toward its
// requester and transmits it. It reports false when no reverse route
// exists. MAODV uses it to emit join replies; AODV uses it internally.
func (r *Router) RelayRREP(rrep *pkt.RREP) bool {
	if rrep.Orig == r.stack.ID() {
		return false
	}
	next, ok := r.NextHop(rrep.Orig)
	if !ok {
		return false
	}
	p := pkt.NewPacket(r.stack.ID(), next, rrep)
	r.stack.SendDirect(next, p)
	return true
}

// --- route table maintenance ---

// installRoute applies AODV's freshness rules: accept when the entry is
// missing/invalid, the sequence number is newer, or equal with a shorter
// hop count.
func (r *Router) installRoute(dst pkt.NodeID, seq uint32, seqValid bool, hops uint8, nextHop pkt.NodeID) {
	if dst == r.stack.ID() {
		return
	}
	now := r.sched.Now()
	rt, exists := r.routes[dst]
	if !exists {
		rt = &route{dst: dst}
		r.routes[dst] = rt
	}
	stale := !rt.valid || rt.expires <= now
	fresher := seqValid && (!rt.seqValid || newerSeq(seq, rt.seq) ||
		(seq == rt.seq && hops < rt.hops))
	if !stale && !fresher {
		return
	}
	rt.seq = seq
	rt.seqValid = seqValid || rt.seqValid
	rt.hops = hops
	rt.nextHop = nextHop
	rt.expires = now + r.cfg.ActiveRouteTimeout
	rt.valid = true
	r.completeDiscovery(dst)
}

// newerSeq compares 32-bit sequence numbers with wraparound.
func newerSeq(a, b uint32) bool { return int32(a-b) > 0 }

func (r *Router) completeDiscovery(dst pkt.NodeID) {
	d, ok := r.pending[dst]
	if !ok {
		return
	}
	delete(r.pending, dst)
	d.timer.Cancel()
	for _, p := range d.queued {
		r.stack.Forward(p, false)
	}
}

// --- discovery ---

func (r *Router) sendRREQ(d *discovery) {
	id := r.AllocRREQID()
	r.NoteOwnRREQ(id)
	req := &pkt.RREQ{
		ID:      id,
		Dst:     uint32(d.dst),
		Orig:    r.stack.ID(),
		OrigSeq: r.NextSeq(),

		LeaderHops: pkt.LeaderHopsUnset,
	}
	if rt, ok := r.routes[d.dst]; ok && rt.seqValid {
		req.DstSeq = rt.seq
	} else {
		req.Flags |= pkt.RREQUnknownSeq
	}
	r.stats.RREQsOriginated++
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, req))

	wait := r.cfg.RREQTimeout << uint(d.retries)
	d.timer = r.sched.After(wait, func() { r.onDiscoveryTimeout(d) })
}

func (r *Router) onDiscoveryTimeout(d *discovery) {
	if _, still := r.pending[d.dst]; !still {
		return
	}
	if d.retries >= r.cfg.RREQRetries {
		delete(r.pending, d.dst)
		r.stats.DiscoveryFails++
		r.stats.PacketsDropped += uint64(len(d.queued))
		return
	}
	d.retries++
	r.sendRREQ(d)
}

// --- packet handlers ---

func (r *Router) onHello(p *pkt.Packet, from pkt.NodeID) {
	// Liveness is tracked by onHeard for every frame; the hello only
	// installs/refreshes the 1-hop route.
	r.installRoute(from, 0, false, 1, from)
}

func (r *Router) onHeard(n pkt.NodeID) {
	nb, ok := r.neighbors[n]
	if !ok {
		nb = &neighbor{}
		r.neighbors[n] = nb
	}
	nb.lastHeard = r.sched.Now()
}

func (r *Router) onRREQ(p *pkt.Packet, from pkt.NodeID) {
	req, ok := p.Body.(*pkt.RREQ)
	if !ok {
		return
	}
	me := r.stack.ID()
	if req.Orig == me {
		return // echo of our own flood
	}
	key := seenKey{orig: req.Orig, id: req.ID}
	now := r.sched.Now()
	if exp, dup := r.seen[key]; dup && exp > now {
		return
	}
	r.seen[key] = now + r.cfg.SeenLifetime

	hops := req.HopCount + 1
	// Reverse route toward the originator.
	r.installRoute(req.Orig, req.OrigSeq, true, hops, from)
	// And a 1-hop route to the relay.
	r.installRoute(from, 0, false, 1, from)

	if req.Join() {
		if r.mc != nil && r.mc.HandleJoinRREQ(req, from) {
			return // answered by the multicast layer
		}
		r.rebroadcastRREQ(p, req)
		return
	}

	dst := pkt.NodeID(req.Dst)
	if dst == me {
		// We are the destination: reply with our own sequence number.
		if req.Flags&pkt.RREQUnknownSeq == 0 && newerSeq(req.DstSeq, r.seq) {
			r.seq = req.DstSeq
		}
		r.NextSeq()
		r.sendRREP(&pkt.RREP{
			Dst:        req.Dst,
			DstSeq:     r.seq,
			Orig:       req.Orig,
			HopCount:   0,
			LifetimeMS: uint32(r.cfg.ActiveRouteTimeout / time.Millisecond),
			RREQID:     req.ID,
		})
		return
	}
	// Intermediate reply when we hold a fresh-enough route.
	if rt, have := r.routes[dst]; have && rt.valid && rt.expires > now && rt.seqValid &&
		(req.Flags&pkt.RREQUnknownSeq != 0 || !newerSeq(req.DstSeq, rt.seq)) {
		r.sendRREP(&pkt.RREP{
			Dst:        req.Dst,
			DstSeq:     rt.seq,
			Orig:       req.Orig,
			HopCount:   rt.hops,
			LifetimeMS: uint32((rt.expires - now) / time.Millisecond),
			RREQID:     req.ID,
		})
		return
	}
	r.rebroadcastRREQ(p, req)
}

func (r *Router) rebroadcastRREQ(p *pkt.Packet, req *pkt.RREQ) {
	if p.TTL <= 1 {
		return
	}
	cp := p.Clone()
	cp.TTL--
	body, ok := cp.Body.(*pkt.RREQ)
	if !ok {
		return
	}
	body.HopCount = req.HopCount + 1
	r.stats.RREQsForwarded++
	r.sched.After(r.rng.Duration(r.cfg.BroadcastJitter), func() {
		r.stack.SendBroadcast(cp)
	})
}

// sendRREP emits a reply we originate (as destination or intermediate).
func (r *Router) sendRREP(rrep *pkt.RREP) {
	r.stats.RREPsOriginated++
	if !r.RelayRREP(rrep) {
		// No reverse route: the requester is unreachable; drop.
		r.stats.PacketsDropped++
	}
}

func (r *Router) onRREP(p *pkt.Packet, from pkt.NodeID) {
	rep, ok := p.Body.(*pkt.RREP)
	if !ok {
		return
	}
	me := r.stack.ID()
	r.installRoute(from, 0, false, 1, from)

	atOrigin := rep.Orig == me
	if rep.Multicast() {
		if r.mc != nil {
			r.mc.ObserveMulticastRREP(rep, from, atOrigin)
		}
	} else {
		// Forward route toward the replied destination.
		r.installRoute(pkt.NodeID(rep.Dst), rep.DstSeq, true, rep.HopCount+1, from)
	}
	if atOrigin {
		return
	}
	// Relay along the reverse path toward the requester.
	cp := rep.CloneBody()
	fwd, ok := cp.(*pkt.RREP)
	if !ok {
		return
	}
	fwd.HopCount = rep.HopCount + 1
	r.stats.RREPsForwarded++
	if !r.RelayRREP(fwd) {
		r.stats.PacketsDropped++
	}
}

func (r *Router) onRERR(p *pkt.Packet, from pkt.NodeID) {
	rerr, ok := p.Body.(*pkt.RERR)
	if !ok {
		return
	}
	var propagate []pkt.Unreachable
	for _, u := range rerr.Dests {
		rt, have := r.routes[u.Addr]
		if !have || !rt.valid || rt.nextHop != from {
			continue
		}
		rt.valid = false
		rt.seq = u.Seq
		propagate = append(propagate, u)
	}
	if len(propagate) > 0 && p.TTL > 1 {
		r.stats.RERRsSent++
		out := pkt.NewPacket(r.stack.ID(), pkt.Broadcast, &pkt.RERR{Dests: propagate})
		out.TTL = p.TTL - 1
		r.stack.SendBroadcast(out)
	}
}

// --- link breakage ---

func (r *Router) onMACFailure(n pkt.NodeID, p *pkt.Packet) {
	// Salvage packets addressed beyond the broken hop: requeue for a
	// fresh discovery once the stale route is removed.
	salvage := p != nil && p.Dst != n && p.Dst != pkt.Broadcast &&
		p.Dst != r.stack.ID() && !p.Kind.IsControl()
	r.breakLink(n)
	if salvage {
		r.stats.PacketsSalvaged++
		r.stack.Forward(p, false)
	}
}

// breakLink removes neighbour state, invalidates dependent routes,
// propagates RERR and notifies subscribers.
func (r *Router) breakLink(n pkt.NodeID) {
	if _, tracked := r.neighbors[n]; tracked {
		delete(r.neighbors, n)
	}
	r.stats.LinkBreaks++

	var lost []pkt.Unreachable
	for _, dst := range r.sortedRouteDsts() {
		rt := r.routes[dst]
		if rt.valid && rt.nextHop == n {
			rt.valid = false
			rt.seq++
			lost = append(lost, pkt.Unreachable{Addr: dst, Seq: rt.seq})
		}
	}
	if len(lost) > 0 {
		r.stats.RERRsSent++
		r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, &pkt.RERR{Dests: lost}))
	}
	for _, fn := range r.breakSubs {
		fn(n)
	}
}

// --- periodic timers ---

func (r *Router) helloTick() {
	r.helloSeq++
	r.stats.HellosSent++
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, &pkt.Hello{Seq: r.helloSeq}))
	jitter := r.rng.DurationRange(-r.cfg.HelloJitter/2, r.cfg.HelloJitter/2)
	r.sched.After(r.cfg.HelloInterval+jitter, r.helloTick)
}

func (r *Router) sweepTick() {
	now := r.sched.Now()
	deadline := time.Duration(r.cfg.AllowedHelloLoss) * r.cfg.HelloInterval
	var dead []pkt.NodeID
	for n, nb := range r.neighbors {
		if now-nb.lastHeard > deadline {
			dead = append(dead, n)
		}
	}
	slices.Sort(dead)
	for _, n := range dead {
		r.breakLink(n)
	}
	for k, exp := range r.seen {
		if exp <= now {
			delete(r.seen, k)
		}
	}
	r.sched.After(r.cfg.HelloInterval, r.sweepTick)
}
