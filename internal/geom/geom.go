// Package geom provides the 2-D geometry primitives used by the mobility
// and radio models: points, distances and rectangular simulation areas.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in metres.
type Point struct {
	X, Y float64
}

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance, avoiding the sqrt for range checks.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle anchored at the origin, spanning
// [0, W] x [0, H] metres. It models the simulation terrain (the paper uses
// a fixed 200 m x 200 m area).
type Rect struct {
	W, H float64
}

// Contains reports whether p lies inside the rectangle (inclusive edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= 0 && p.X <= r.W && p.Y >= 0 && p.Y <= r.H
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), r.W),
		Y: math.Min(math.Max(p.Y, 0), r.H),
	}
}

// Diagonal returns the length of the rectangle's diagonal, an upper bound
// on any distance between two contained points.
func (r Rect) Diagonal() float64 { return math.Hypot(r.W, r.H) }

// Area returns the rectangle's area in square metres.
func (r Rect) Area() float64 { return r.W * r.H }
