package geom

import (
	"fmt"
	"math"
)

// Grid is a uniform spatial hash over integer-keyed points. It buckets
// points into square cells of a fixed size so that range queries visit
// only the cells overlapping the query disc instead of every stored
// point. With cell size equal to the query radius a query touches at
// most a 3×3 block of cells, making neighbour enumeration O(occupancy
// of those cells) — O(local degree) for the radio layer — rather than
// O(total points).
//
// The grid is unbounded: cell coordinates are derived by flooring the
// point coordinates, so negative and arbitrarily large positions work.
// All operations are deterministic: the same sequence of
// Insert/Move/Remove calls yields the same internal layout, and
// ForEachInRange visits cells in a fixed row-major order. Callers that
// need a canonical ordering (the radio layer sorts candidates by node
// index) must impose it themselves; within one cell, points are visited
// in an order that depends on the mutation history.
//
// Grid is not safe for concurrent use; the simulation kernel is
// single-threaded.
type Grid struct {
	cell  float64
	cells map[cellKey][]int
	items map[int]gridItem
}

type cellKey struct {
	cx, cy int32
}

type gridItem struct {
	p    Point
	cell cellKey
}

// NewGrid creates a grid with the given cell size in metres. The radio
// layer uses its transmission range, so a range query inflated by the
// mobility slack spans at most a 3×3 (occasionally 4×4) cell block.
// Non-positive cell sizes panic: they indicate a mis-wired caller.
func NewGrid(cellSize float64) *Grid {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		panic(fmt.Sprintf("geom: invalid grid cell size %v", cellSize))
	}
	return &Grid{
		cell:  cellSize,
		cells: make(map[cellKey][]int),
		items: make(map[int]gridItem),
	}
}

// CellSize returns the configured cell edge length in metres.
func (g *Grid) CellSize() float64 { return g.cell }

// Len returns the number of stored points.
func (g *Grid) Len() int { return len(g.items) }

func (g *Grid) keyFor(p Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// Insert stores point p under id. Inserting an id that is already
// present panics: the radio layer assigns ids once at attach time, so a
// duplicate indicates a bookkeeping bug, never a runtime condition.
func (g *Grid) Insert(id int, p Point) {
	if _, dup := g.items[id]; dup {
		panic(fmt.Sprintf("geom: duplicate grid insert for id %d", id))
	}
	k := g.keyFor(p)
	g.items[id] = gridItem{p: p, cell: k}
	g.cells[k] = append(g.cells[k], id)
}

// Move updates the stored point for id, re-bucketing only when the
// point crossed a cell boundary. Moving an unknown id panics.
func (g *Grid) Move(id int, p Point) {
	it, ok := g.items[id]
	if !ok {
		panic(fmt.Sprintf("geom: move of unknown grid id %d", id))
	}
	k := g.keyFor(p)
	if k == it.cell {
		it.p = p
		g.items[id] = it
		return
	}
	g.removeFromCell(id, it.cell)
	g.items[id] = gridItem{p: p, cell: k}
	g.cells[k] = append(g.cells[k], id)
}

// Remove deletes id from the grid. Removing an unknown id panics.
func (g *Grid) Remove(id int) {
	it, ok := g.items[id]
	if !ok {
		panic(fmt.Sprintf("geom: remove of unknown grid id %d", id))
	}
	g.removeFromCell(id, it.cell)
	delete(g.items, id)
}

func (g *Grid) removeFromCell(id int, k cellKey) {
	ids := g.cells[k]
	for i, other := range ids {
		if other == id {
			last := len(ids) - 1
			ids[i] = ids[last]
			g.cells[k] = ids[:last]
			if last == 0 {
				delete(g.cells, k)
			}
			return
		}
	}
	panic(fmt.Sprintf("geom: grid id %d missing from its cell", id))
}

// At returns the stored point for id.
func (g *Grid) At(id int) (Point, bool) {
	it, ok := g.items[id]
	return it.p, ok
}

// ForEachInRange calls fn for every stored point within distance r of p
// (inclusive, matching the radio's unit-disc predicate). Cells are
// visited in row-major order; within a cell the visit order follows the
// mutation history. Both orders are deterministic but unspecified —
// callers needing a canonical order must sort.
func (g *Grid) ForEachInRange(p Point, r float64, fn func(id int, q Point)) {
	if r < 0 {
		return
	}
	lo := g.keyFor(Point{X: p.X - r, Y: p.Y - r})
	hi := g.keyFor(Point{X: p.X + r, Y: p.Y + r})
	r2 := r * r
	for cy := lo.cy; cy <= hi.cy; cy++ {
		for cx := lo.cx; cx <= hi.cx; cx++ {
			for _, id := range g.cells[cellKey{cx: cx, cy: cy}] {
				it := g.items[id]
				if it.p.Dist2(p) <= r2 {
					fn(id, it.p)
				}
			}
		}
	}
}

// AppendCandidatesInRange appends to buf the id of every point stored
// in a cell overlapping the axis-aligned square of half-width r around
// p — a superset of the disc of radius r — and returns the extended
// slice. It skips the exact distance check: the radio layer uses it
// when the stored points are slightly stale and the precise predicate
// must run against fresh positions. Passing a reused buffer keeps the
// hot path allocation-free.
func (g *Grid) AppendCandidatesInRange(p Point, r float64, buf []int) []int {
	if r < 0 {
		return buf
	}
	lo := g.keyFor(Point{X: p.X - r, Y: p.Y - r})
	hi := g.keyFor(Point{X: p.X + r, Y: p.Y + r})
	for cy := lo.cy; cy <= hi.cy; cy++ {
		for cx := lo.cx; cx <= hi.cx; cx++ {
			buf = append(buf, g.cells[cellKey{cx: cx, cy: cy}]...)
		}
	}
	return buf
}
