package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveStore is the reference implementation: a flat map with O(n) range
// queries, against which Grid is differentially tested.
type naiveStore map[int]Point

func (n naiveStore) inRange(p Point, r float64) []int {
	var out []int
	for id, q := range n {
		if q.Dist2(p) <= r*r {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func gridInRange(g *Grid, p Point, r float64) []int {
	var out []int
	g.ForEachInRange(p, r, func(id int, _ Point) { out = append(out, id) })
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridBasicOps(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, Point{5, 5})
	g.Insert(2, Point{25, 5})
	g.Insert(3, Point{5, 25})
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if got := gridInRange(g, Point{5, 5}, 1); !equalIDs(got, []int{1}) {
		t.Fatalf("range around (5,5): %v, want [1]", got)
	}
	if got := gridInRange(g, Point{15, 15}, 15); !equalIDs(got, []int{1, 2, 3}) {
		t.Fatalf("wide range: %v, want [1 2 3]", got)
	}
	// Cross a cell boundary.
	g.Move(1, Point{95, 95})
	if got := gridInRange(g, Point{5, 5}, 1); len(got) != 0 {
		t.Fatalf("moved point still found at old position: %v", got)
	}
	if got := gridInRange(g, Point{95, 95}, 1); !equalIDs(got, []int{1}) {
		t.Fatalf("moved point not found at new position: %v", got)
	}
	// Move within the same cell.
	g.Move(2, Point{26, 6})
	if p, ok := g.At(2); !ok || p != (Point{26, 6}) {
		t.Fatalf("At(2) = %v,%v after same-cell move", p, ok)
	}
	g.Remove(2)
	if g.Len() != 2 {
		t.Fatalf("Len after remove = %d, want 2", g.Len())
	}
	if _, ok := g.At(2); ok {
		t.Fatal("removed id still present")
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	// The radio predicate is dist² <= r²; a point exactly at distance r
	// must be reported, including across cell boundaries.
	g := NewGrid(75)
	g.Insert(0, Point{0, 0})
	g.Insert(1, Point{75, 0})
	if got := gridInRange(g, Point{0, 0}, 75); !equalIDs(got, []int{0, 1}) {
		t.Fatalf("boundary point missing: %v, want [0 1]", got)
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewGrid(10)
	g.Insert(0, Point{-5, -5})
	g.Insert(1, Point{-95, 4})
	if got := gridInRange(g, Point{-4, -4}, 3); !equalIDs(got, []int{0}) {
		t.Fatalf("negative-coordinate lookup: %v, want [0]", got)
	}
	if got := gridInRange(g, Point{0, 0}, 200); !equalIDs(got, []int{0, 1}) {
		t.Fatalf("wide negative lookup: %v, want [0 1]", got)
	}
}

// TestGridMatchesNaiveUnderRandomOps is the differential property test:
// an arbitrary interleaving of inserts, moves and removals must leave the
// grid answering range queries identically to a flat scan, for query
// radii around, below and above the cell size.
func TestGridMatchesNaiveUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const cell = 75.0
	g := NewGrid(cell)
	ref := naiveStore{}
	nextID := 0

	randPoint := func() Point {
		// Include positions outside [0, 1000] to exercise negative cells.
		return Point{X: rng.Float64()*1200 - 100, Y: rng.Float64()*1200 - 100}
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(ref) == 0: // insert
			g.Insert(nextID, randPoint())
			p, _ := g.At(nextID)
			ref[nextID] = p
			nextID++
		case op < 8: // move a random existing id
			id := randExisting(rng, ref)
			p := randPoint()
			if rng.Intn(2) == 0 {
				// Nudge within (probably) the same cell.
				old := ref[id]
				p = Point{X: old.X + rng.Float64()*2 - 1, Y: old.Y + rng.Float64()*2 - 1}
			}
			g.Move(id, p)
			ref[id] = p
		default: // remove
			id := randExisting(rng, ref)
			g.Remove(id)
			delete(ref, id)
		}

		if step%50 != 0 {
			continue
		}
		if g.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, g.Len(), len(ref))
		}
		q := randPoint()
		for _, r := range []float64{0, cell / 3, cell, 2.5 * cell} {
			got := gridInRange(g, q, r)
			want := ref.inRange(q, r)
			if !equalIDs(got, want) {
				t.Fatalf("step %d: query %v r=%v: grid %v, naive %v", step, q, r, got, want)
			}
			// The candidate superset must contain every exact match.
			cand := map[int]bool{}
			for _, id := range g.AppendCandidatesInRange(q, r, nil) {
				cand[id] = true
			}
			for _, id := range want {
				if !cand[id] {
					t.Fatalf("step %d: candidate set missing in-range id %d", step, id)
				}
			}
		}
	}
}

func randExisting(rng *rand.Rand, ref naiveStore) int {
	ids := make([]int, 0, len(ref))
	for id := range ref {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

func TestGridMisusePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewGrid(0)", func() { NewGrid(0) })
	expectPanic("NewGrid(-1)", func() { NewGrid(-1) })
	g := NewGrid(10)
	g.Insert(1, Point{})
	expectPanic("duplicate Insert", func() { g.Insert(1, Point{1, 1}) })
	expectPanic("Move unknown", func() { g.Move(9, Point{}) })
	expectPanic("Remove unknown", func() { g.Remove(9) })
}
