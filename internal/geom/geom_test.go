package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want) {
				t.Errorf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{200, 200}
	tests := []struct {
		p        Point
		contains bool
		clamped  Point
	}{
		{Point{100, 100}, true, Point{100, 100}},
		{Point{0, 0}, true, Point{0, 0}},
		{Point{200, 200}, true, Point{200, 200}},
		{Point{-5, 100}, false, Point{0, 100}},
		{Point{100, 250}, false, Point{100, 200}},
		{Point{300, -10}, false, Point{200, 0}},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.contains {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.contains)
		}
		if got := r.Clamp(tt.p); got != tt.clamped {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.clamped)
		}
	}
}

func TestClampIdempotentProperty(t *testing.T) {
	r := Rect{200, 150}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		c := r.Clamp(Point{x, y})
		return r.Contains(c) && r.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectDerived(t *testing.T) {
	r := Rect{30, 40}
	if got := r.Diagonal(); !almostEqual(got, 50) {
		t.Errorf("Diagonal = %v, want 50", got)
	}
	if got := r.Area(); !almostEqual(got, 1200) {
		t.Errorf("Area = %v, want 1200", got)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.5, 2}).String(); got != "(1.50, 2.00)" {
		t.Errorf("String = %q", got)
	}
}
