// Package odmrp implements a compact On-Demand Multicast Routing
// Protocol (ODMRP, the paper's reference [10]) — the mesh-based
// multicast protocol the paper names first when claiming Anonymous
// Gossip generalises beyond MAODV (§5.5, §7).
//
// ODMRP in brief: every active source periodically floods a Join Query;
// group members answer with Join Replies that travel hop-by-hop back
// along the query's reverse path, setting a soft-state *forwarding
// group* flag at each relay. Data is broadcast and re-broadcast by
// forwarding-group nodes, giving a mesh with redundant paths instead of
// a tree. Reliability still suffers from collisions and stale meshes —
// which is exactly where AG helps.
//
// The gossip engine runs over this substrate through the same two-method
// Tree interface as over MAODV: mesh neighbours (upstream toward each
// source plus reply-downstream nodes) act as walk next hops. ODMRP has
// no nearest-member machinery, so next hops advertise unknown distances
// and the walk degrades to uniform choice — the paper's locality
// optimisation (§4.2) is tree-specific.
package odmrp

import (
	"errors"
	"slices"
	"time"

	"anongossip/internal/gossip"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// Config parameterises ODMRP.
type Config struct {
	// RefreshInterval is the Join Query flood period of an active
	// source (3 s in the ODMRP literature).
	RefreshInterval time.Duration
	// MeshLifetime is how long forwarding-group membership and mesh
	// links survive without refresh (typically 2–3 refresh periods).
	MeshLifetime time.Duration
	// FloodJitter delays query refloods (hidden-terminal mitigation).
	FloodJitter time.Duration
	// ForwardJitter delays mesh data rebroadcasts.
	ForwardJitter time.Duration
	// CacheSize bounds the duplicate caches.
	CacheSize int
	// PayloadLen is the synthetic application payload size.
	PayloadLen uint16
}

// DefaultConfig returns literature-standard ODMRP parameters.
func DefaultConfig() Config {
	return Config{
		RefreshInterval: 3 * time.Second,
		MeshLifetime:    9 * time.Second,
		FloodJitter:     10 * time.Millisecond,
		ForwardJitter:   3 * time.Millisecond,
		CacheSize:       1024,
		PayloadLen:      64,
	}
}

// DeliverFunc consumes data delivered to a member application.
type DeliverFunc func(group pkt.GroupID, d *pkt.Data, from pkt.NodeID)

// Stats counts ODMRP activity at one node.
type Stats struct {
	QueriesSent      uint64
	QueriesForwarded uint64
	RepliesSent      uint64
	RepliesForwarded uint64
	DataSent         uint64
	DataDelivered    uint64
	DataForwarded    uint64
	DataDuplicates   uint64
}

// meshLink is a soft-state mesh neighbour.
type meshLink struct {
	expires sim.Time
}

// sourceRoute is the reverse path toward one source.
type sourceRoute struct {
	upstream pkt.NodeID
	seq      uint32
	hops     uint8
	expires  sim.Time
}

// groupState is the per-group ODMRP state.
type groupState struct {
	member bool
	// forwarding is the forwarding-group flag with its lifetime.
	forwardingUntil sim.Time
	// routes tracks the freshest reverse path per source.
	routes map[pkt.NodeID]*sourceRoute
	// links are mesh neighbours usable by the gossip walk.
	links map[pkt.NodeID]*meshLink

	dataSeen  map[pkt.SeqKey]struct{}
	dataOrder []pkt.SeqKey
	dataNext  int

	refreshTimer sim.Timer
	querySeq     uint32
	nextDataSeq  uint32
}

// Router is one node's ODMRP entity.
type Router struct {
	cfg   Config
	stack *node.Stack
	sched runtime.Clock
	rng   *sim.RNG

	groups map[pkt.GroupID]*groupState
	subs   []DeliverFunc
	stats  Stats
}

// New builds an ODMRP router bound to the node stack.
func New(st *node.Stack, rng *sim.RNG, cfg Config) *Router {
	r := &Router{
		cfg:    cfg,
		stack:  st,
		sched:  st.Clock(),
		rng:    rng,
		groups: make(map[pkt.GroupID]*groupState),
	}
	st.Handle(pkt.KindJoinQuery, r.onJoinQuery)
	st.Handle(pkt.KindJoinReply, r.onJoinReply)
	st.Handle(pkt.KindData, r.onData)
	return r
}

// OnDeliver subscribes to member deliveries.
func (r *Router) OnDeliver(fn DeliverFunc) { r.subs = append(r.subs, fn) }

// Stats returns a copy of the counters.
func (r *Router) Stats() Stats { return r.stats }

func (r *Router) groupState(g pkt.GroupID) *groupState {
	gs, ok := r.groups[g]
	if !ok {
		gs = &groupState{
			routes:   make(map[pkt.NodeID]*sourceRoute),
			links:    make(map[pkt.NodeID]*meshLink),
			dataSeen: make(map[pkt.SeqKey]struct{}),
		}
		r.groups[g] = gs
	}
	return gs
}

// Join registers group membership; members answer queries and deliver.
func (r *Router) Join(g pkt.GroupID) { r.groupState(g).member = true }

// Leave revokes membership; soft state decays on its own.
func (r *Router) Leave(g pkt.GroupID) {
	if gs, ok := r.groups[g]; ok {
		gs.member = false
	}
}

// IsMember reports membership (part of the gossip Tree interface).
func (r *Router) IsMember(g pkt.GroupID) bool {
	gs, ok := r.groups[g]
	return ok && gs.member
}

// NextHops exposes live mesh links to the gossip walk (part of the
// gossip Tree interface). Distances are unknown: ODMRP keeps no
// nearest-member state.
func (r *Router) NextHops(g pkt.GroupID) []gossip.NextHop {
	gs, ok := r.groups[g]
	if !ok {
		return nil
	}
	now := r.sched.Now()
	ids := make([]pkt.NodeID, 0, len(gs.links))
	for id, l := range gs.links {
		if l.expires > now {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	out := make([]gossip.NextHop, len(ids))
	for i, id := range ids {
		out[i] = gossip.NextHop{ID: id, Nearest: pkt.NearestUnknown}
	}
	return out
}

var _ gossip.Tree = (*Router)(nil)

// ErrNotMember reports SendData from a non-member.
var ErrNotMember = errors.New("odmrp: node is not a member of the group")

// SendData multicasts one payload. The first send activates the
// source's periodic Join Query refresh.
func (r *Router) SendData(g pkt.GroupID) (pkt.SeqKey, error) {
	gs := r.groupState(g)
	if !gs.member {
		return pkt.SeqKey{}, ErrNotMember
	}
	if gs.refreshTimer.IsZero() {
		r.refresh(g, gs) // on-demand: first data activates the mesh
	}
	gs.nextDataSeq++
	d := &pkt.Data{Group: g, Origin: r.stack.ID(), Seq: gs.nextDataSeq, PayloadLen: r.cfg.PayloadLen}
	r.noteData(gs, d.Key())
	r.stats.DataSent++
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, d))
	return d.Key(), nil
}

// refresh floods a Join Query and reschedules itself.
func (r *Router) refresh(g pkt.GroupID, gs *groupState) {
	gs.querySeq++
	r.stats.QueriesSent++
	q := &pkt.JoinQuery{Group: g, Source: r.stack.ID(), Seq: gs.querySeq, HopCount: 0}
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, q))
	gs.refreshTimer = r.sched.After(r.cfg.RefreshInterval, func() { r.refresh(g, gs) })
}

func (r *Router) onJoinQuery(p *pkt.Packet, from pkt.NodeID) {
	q, ok := p.Body.(*pkt.JoinQuery)
	if !ok {
		return
	}
	if q.Source == r.stack.ID() {
		return // own flood echo
	}
	gs := r.groupState(q.Group)
	rt, have := gs.routes[q.Source]
	now := r.sched.Now()
	if have && rt.expires > now && !newerSeq(q.Seq, rt.seq) {
		return // stale or duplicate query
	}
	if !have {
		rt = &sourceRoute{}
		gs.routes[q.Source] = rt
	}
	rt.upstream = from
	rt.seq = q.Seq
	rt.hops = q.HopCount + 1
	rt.expires = now + r.cfg.MeshLifetime

	// Members answer: the reply walks back toward the source, enlisting
	// the forwarding group.
	if gs.member {
		r.stats.RepliesSent++
		rep := &pkt.JoinReply{Group: q.Group, Source: q.Source, Member: r.stack.ID(), Seq: q.Seq}
		r.stack.SendDirect(from, pkt.NewPacket(r.stack.ID(), from, rep))
		r.touchLink(gs, from)
	}

	// Reflood.
	if p.TTL > 1 {
		cp := p.Clone()
		cp.TTL--
		body, okBody := cp.Body.(*pkt.JoinQuery)
		if !okBody {
			return
		}
		body.HopCount = q.HopCount + 1
		r.stats.QueriesForwarded++
		r.sched.After(r.rng.Duration(r.cfg.FloodJitter), func() {
			r.stack.SendBroadcast(cp)
		})
	}
}

func (r *Router) onJoinReply(p *pkt.Packet, from pkt.NodeID) {
	rep, ok := p.Body.(*pkt.JoinReply)
	if !ok {
		return
	}
	gs := r.groupState(rep.Group)
	now := r.sched.Now()
	r.touchLink(gs, from)

	if rep.Source == r.stack.ID() {
		return // reached the source: mesh branch complete
	}
	rt, have := gs.routes[rep.Source]
	if !have || rt.expires <= now {
		return // no fresh reverse path; the branch dies here
	}
	// Join the forwarding group and pass the reply upstream.
	gs.forwardingUntil = now + r.cfg.MeshLifetime
	r.touchLink(gs, rt.upstream)
	r.stats.RepliesForwarded++
	cp, okBody := rep.CloneBody().(*pkt.JoinReply)
	if !okBody {
		return
	}
	r.stack.SendDirect(rt.upstream, pkt.NewPacket(r.stack.ID(), rt.upstream, cp))
}

func (r *Router) onData(p *pkt.Packet, from pkt.NodeID) {
	d, ok := p.Body.(*pkt.Data)
	if !ok {
		return
	}
	gs, have := r.groups[d.Group]
	if !have {
		return
	}
	if _, dup := gs.dataSeen[d.Key()]; dup {
		r.stats.DataDuplicates++
		return
	}
	r.noteData(gs, d.Key())
	r.touchLink(gs, from)

	if gs.member {
		r.stats.DataDelivered++
		for _, fn := range r.subs {
			fn(d.Group, d, from)
		}
	}
	// Forwarding-group nodes (and members, which always forward in
	// ODMRP) rebroadcast within the mesh.
	now := r.sched.Now()
	if !gs.member && gs.forwardingUntil <= now {
		return
	}
	if p.TTL <= 1 {
		return
	}
	cp := p.Clone()
	cp.TTL--
	r.stats.DataForwarded++
	r.sched.After(r.rng.Duration(r.cfg.ForwardJitter), func() {
		r.stack.SendBroadcast(cp)
	})
}

func (r *Router) touchLink(gs *groupState, id pkt.NodeID) {
	l, ok := gs.links[id]
	if !ok {
		l = &meshLink{}
		gs.links[id] = l
	}
	l.expires = r.sched.Now() + r.cfg.MeshLifetime
}

func (r *Router) noteData(gs *groupState, k pkt.SeqKey) {
	if _, dup := gs.dataSeen[k]; dup {
		return
	}
	if len(gs.dataOrder) < r.cfg.CacheSize {
		gs.dataOrder = append(gs.dataOrder, k)
	} else {
		delete(gs.dataSeen, gs.dataOrder[gs.dataNext])
		gs.dataOrder[gs.dataNext] = k
		gs.dataNext = (gs.dataNext + 1) % r.cfg.CacheSize
	}
	gs.dataSeen[k] = struct{}{}
}

func newerSeq(a, b uint32) bool { return int32(a-b) > 0 }
