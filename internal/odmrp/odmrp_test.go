package odmrp

import (
	"testing"
	"time"

	"anongossip/internal/aodv"
	"anongossip/internal/geom"
	"anongossip/internal/gossip"
	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

const group pkt.GroupID = 0xE0000001

type oworld struct {
	sched     *sim.Scheduler
	routers   []*Router
	delivered []int
}

type nullRouter struct{}

func (nullRouter) NextHop(pkt.NodeID) (pkt.NodeID, bool) { return 0, false }
func (nullRouter) QueueForRoute(*pkt.Packet)             {}

func buildO(t *testing.T, positions []geom.Point, members []int) *oworld {
	t.Helper()
	w := &oworld{sched: sim.NewScheduler(), delivered: make([]int, len(positions))}
	medium := radio.NewMedium(w.sched, radio.Params{Range: 60})
	rng := sim.NewRNG(77)
	isMember := map[int]bool{}
	for _, m := range members {
		isMember[m] = true
	}
	for i, p := range positions {
		i := i
		id := pkt.NodeID(i + 1)
		st, err := node.New(w.sched, rng.Derive(id.String()), medium, id,
			mobility.Static{P: p}, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		st.SetRouter(nullRouter{})
		r := New(st, rng.Derive("o/"+id.String()), DefaultConfig())
		if isMember[i] {
			r.Join(group)
		}
		r.OnDeliver(func(pkt.GroupID, *pkt.Data, pkt.NodeID) { w.delivered[i]++ })
		w.routers = append(w.routers, r)
	}
	return w
}

func line(n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: float64(i) * 50}
	}
	return out
}

func TestMeshFormsAndDelivers(t *testing.T) {
	w := buildO(t, line(4), []int{0, 3})
	// The first send activates the mesh; give a refresh cycle, then the
	// stream flows.
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	for i := 0; i < 10; i++ {
		w.sched.After(5*time.Second+sim.Time(i)*200*time.Millisecond, func() {
			_, _ = w.routers[0].SendData(group)
		})
	}
	w.sched.Run(10 * time.Second)

	// The first packet may precede the mesh; the 10 later ones must all
	// arrive.
	if w.delivered[3] < 10 {
		t.Fatalf("member 4 delivered %d, want >= 10", w.delivered[3])
	}
	// Interior nodes joined the forwarding group and forwarded.
	if w.routers[1].Stats().DataForwarded == 0 || w.routers[2].Stats().DataForwarded == 0 {
		t.Fatal("interior nodes did not join the forwarding group")
	}
	// Non-members never deliver.
	if w.delivered[1] != 0 || w.delivered[2] != 0 {
		t.Fatal("forwarding-group relays delivered data")
	}
}

func TestQueriesAndRepliesFlow(t *testing.T) {
	w := buildO(t, line(3), []int{0, 2})
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	w.sched.Run(8 * time.Second)

	if w.routers[0].Stats().QueriesSent == 0 {
		t.Fatal("source sent no join queries")
	}
	if w.routers[1].Stats().QueriesForwarded == 0 {
		t.Fatal("relay did not reflood the query")
	}
	if w.routers[2].Stats().RepliesSent == 0 {
		t.Fatal("member answered no query")
	}
	if w.routers[1].Stats().RepliesForwarded == 0 {
		t.Fatal("relay did not pass the join reply upstream")
	}
}

func TestMeshSoftStateExpires(t *testing.T) {
	w := buildO(t, line(3), []int{0, 2})
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	w.sched.Run(8 * time.Second)
	if len(w.routers[1].NextHops(group)) == 0 {
		t.Fatal("precondition: relay has no mesh links")
	}
	// Stop the source's refresh; links must decay past MeshLifetime.
	gs := w.routers[0].groups[group]
	gs.refreshTimer.Cancel()
	w.sched.Run(8*time.Second + 2*DefaultConfig().MeshLifetime)
	if got := w.routers[1].NextHops(group); len(got) != 0 {
		t.Fatalf("mesh links survived expiry: %v", got)
	}
}

func TestSendDataRequiresMembership(t *testing.T) {
	w := buildO(t, line(1), nil)
	if _, err := w.routers[0].SendData(group); err == nil {
		t.Fatal("non-member SendData succeeded")
	}
}

func TestGossipOverODMRP(t *testing.T) {
	// The paper's §5.5 claim: AG layers over ODMRP unchanged. Build the
	// full combination and recover losses through the mesh.
	sched := sim.NewScheduler()
	medium := radio.NewMedium(sched, radio.Params{Range: 60})
	rng := sim.NewRNG(99)

	var routers []*Router
	var engines []*gossip.Engine
	positions := line(4)
	members := map[int]bool{0: true, 3: true}
	for i, p := range positions {
		id := pkt.NodeID(i + 1)
		st, err := node.New(sched, rng.Derive(id.String()), medium, id,
			mobility.Static{P: p}, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Gossip replies are unicast: AODV supplies the routes, exactly
		// as in the MAODV deployment.
		uni := aodv.New(st, rng.Derive("a/"+id.String()), aodv.DefaultConfig())
		uni.Start()
		r := New(st, rng.Derive("o/"+id.String()), DefaultConfig())
		gcfg := gossip.DefaultConfig()
		gcfg.PAnon = 1
		eng := gossip.New(st, r, rng.Derive("g/"+id.String()), gcfg)
		eng.SetHopEstimator(uni.RouteHops)
		r.OnDeliver(eng.OnTreeData)
		if members[i] {
			r.Join(group)
			eng.Attach(group)
		}
		routers = append(routers, r)
		engines = append(engines, eng)
	}

	// Activate the mesh, then inject asymmetric knowledge directly into
	// the engines: member 4 holds packets member 1 lost.
	sched.After(time.Second, func() { _, _ = routers[0].SendData(group) })
	sched.After(6*time.Second, func() {
		for s := uint32(1); s <= 12; s++ {
			d := pkt.Data{Group: group, Origin: 9, Seq: s, PayloadLen: 64}
			engines[3].OnTreeData(group, &d, 0)
			if s%3 != 0 {
				engines[0].OnTreeData(group, &d, 0)
			}
		}
	})
	sched.Run(40 * time.Second)

	st := engines[0].Stats()
	if st.ReplyMsgsNew != 4 {
		t.Fatalf("AG over ODMRP recovered %d packets, want 4 (stats %+v)", st.ReplyMsgsNew, st)
	}
}

func TestNextHopsSorted(t *testing.T) {
	w := buildO(t, line(3), []int{0, 2})
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	w.sched.Run(8 * time.Second)
	hops := w.routers[1].NextHops(group)
	for i := 1; i < len(hops); i++ {
		if hops[i].ID < hops[i-1].ID {
			t.Fatalf("next hops unsorted: %v", hops)
		}
	}
	for _, h := range hops {
		if h.Nearest != pkt.NearestUnknown {
			t.Fatalf("ODMRP advertised a nearest-member distance: %v", h)
		}
	}
}
