package odmrp

import (
	"fmt"

	"anongossip/internal/gossip"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/stack"
)

// The "odmrp" routing axis: mesh-based multicast, the paper's first
// generalisation target (§5.5, §7).
func init() { stack.RegisterRouting(stackBuilder{}) }

type stackBuilder struct{}

func (stackBuilder) Name() string { return "odmrp" }

func (stackBuilder) Build(env stack.Env) stack.RoutingNode {
	cfg := stack.Param(env.Params, "odmrp", DefaultConfig)
	or := New(env.Stack, env.RNG.Derive(fmt.Sprintf("odmrp/%d", env.Index)), cfg)
	// ODMRP needs no unicast routing of its own; a recovery layer that
	// does (gossip replies are unicast) installs AODV over this.
	env.Stack.SetRouter(node.NullRouter{})
	return &stackNode{r: or, payload: cfg.PayloadLen}
}

// stackNode adapts a Router to stack.RoutingNode.
type stackNode struct {
	r       *Router
	payload uint16
}

func (n *stackNode) Join(g pkt.GroupID)                         { n.r.Join(g) }
func (n *stackNode) SendData(g pkt.GroupID) (pkt.SeqKey, error) { return n.r.SendData(g) }
func (n *stackNode) Delivered() uint64                          { return n.r.Stats().DataDelivered }
func (n *stackNode) PayloadLen() uint16                         { return n.payload }
func (n *stackNode) Start()                                     {}

func (n *stackNode) OnDeliver(fn func(g pkt.GroupID, d *pkt.Data)) {
	n.r.OnDeliver(func(g pkt.GroupID, d *pkt.Data, _ pkt.NodeID) { fn(g, d) })
}

// GossipTree exposes the mesh as an AG walk substrate; the Router
// already satisfies gossip.Tree directly.
func (n *stackNode) GossipTree() gossip.Tree { return n.r }
