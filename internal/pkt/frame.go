package pkt

import (
	"errors"
	"fmt"
)

// A Frame is the link-layer unit the live transports (runtime/netrt)
// exchange: the transmitting node, the link-level destination
// (Broadcast for one-hop broadcasts), and the network-layer packet. It
// carries exactly what the simulated MAC hands the network layer on
// reception, so both runtimes deliver identical (packet, from,
// broadcast) triples.
//
// Wire layout (big endian, like every pkt codec):
//
//	magic(2) | version(1) | from(4) | linkDst(4) | packet...
//
// The magic and version bytes make stray or stale datagrams on a live
// socket fail fast with a typed error instead of being misparsed.
type Frame struct {
	// From is the link-level transmitter (the previous hop).
	From NodeID
	// LinkDst is the link-level destination; Broadcast addresses every
	// neighbour on the transport.
	LinkDst NodeID
	// Packet is the network-layer payload.
	Packet *Packet
}

// frameMagic marks agnode link frames on the wire ("AG" in ASCII).
const frameMagic uint16 = 0x4147

// FrameVersion is the current frame wire format version.
const FrameVersion uint8 = 1

// frameHeaderSize is the marshaled length of the frame header:
// magic(2) + version(1) + from(4) + linkDst(4).
const frameHeaderSize = 11

// Frame codec errors.
var (
	// ErrBadMagic reports a datagram that is not an agnode frame.
	ErrBadMagic = errors.New("pkt: bad frame magic")
	// ErrBadVersion reports a frame from an incompatible peer version.
	ErrBadVersion = errors.New("pkt: unsupported frame version")
)

// WireSize returns the exact marshaled frame length in bytes.
func (f *Frame) WireSize() int { return frameHeaderSize + f.Packet.WireSize() }

// EncodeFrame marshals the frame.
func EncodeFrame(f *Frame) []byte {
	b := make([]byte, 0, f.WireSize())
	b = appendU16(b, frameMagic)
	b = append(b, FrameVersion)
	b = appendU32(b, uint32(f.From))
	b = appendU32(b, uint32(f.LinkDst))
	b = append(b, byte(f.Packet.Kind))
	b = appendU32(b, uint32(f.Packet.Src))
	b = appendU32(b, uint32(f.Packet.Dst))
	b = append(b, f.Packet.TTL)
	b = appendU16(b, uint16(f.Packet.Body.WireSize()))
	return f.Packet.Body.AppendTo(b)
}

// DecodeFrame unmarshals a frame produced by EncodeFrame. Malformed
// input — short buffers, wrong magic or version, truncated or trailing
// packet bytes, unknown body kinds — yields an error, never a panic:
// on a live socket every datagram is attacker- (or at least
// misconfiguration-) controlled.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < frameHeaderSize {
		return nil, fmt.Errorf("frame header: %w", ErrTruncated)
	}
	if u16(b) != frameMagic {
		return nil, ErrBadMagic
	}
	if b[2] != FrameVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, b[2], FrameVersion)
	}
	p, err := Decode(b[frameHeaderSize:])
	if err != nil {
		return nil, err
	}
	return &Frame{
		From:    NodeID(u32(b[3:])),
		LinkDst: NodeID(u32(b[7:])),
		Packet:  p,
	}, nil
}
