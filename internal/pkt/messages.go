package pkt

import "fmt"

// --- HELLO (AODV neighbour beacon) ---

// Hello is the periodic one-hop beacon AODV uses for link sensing. The
// paper configures a 600 ms hello interval with an allowed loss of 4.
type Hello struct {
	// Seq is the sender's hello sequence number.
	Seq uint32
}

var _ Body = (*Hello)(nil)

// Kind implements Body.
func (*Hello) Kind() Kind { return KindHello }

// WireSize implements Body.
func (*Hello) WireSize() int { return 4 }

// AppendTo implements Body.
func (h *Hello) AppendTo(b []byte) []byte { return appendU32(b, h.Seq) }

// CloneBody implements Body.
func (h *Hello) CloneBody() Body { cp := *h; return &cp }

func decodeHello(b []byte) (Body, error) {
	if len(b) != 4 {
		return nil, fmt.Errorf("hello: %w", ErrTruncated)
	}
	return &Hello{Seq: u32(b)}, nil
}

// --- RREQ ---

// RREQ flag bits.
const (
	// RREQJoin marks a multicast group join request (paper §3).
	RREQJoin uint8 = 1 << iota
	// RREQRepair marks a multicast tree repair request; only tree nodes
	// closer to the group leader than LeaderHops may answer.
	RREQRepair
	// RREQUnknownSeq marks a request with no known destination sequence
	// number.
	RREQUnknownSeq
)

// LeaderHopsUnset is the sentinel for RREQ.LeaderHops when the repair
// extension is absent.
const LeaderHopsUnset uint8 = 0xFF

// RREQ is the AODV/MAODV route request, flooded to discover a route to a
// node or (with RREQJoin) to a multicast tree.
type RREQ struct {
	Flags    uint8
	HopCount uint8
	// ID disambiguates floods from the same originator.
	ID uint32
	// Dst is the target node address, or the group address for joins.
	Dst uint32
	// DstSeq is the last known destination (or group) sequence number.
	DstSeq uint32
	// Orig is the requesting node; OrigSeq its own sequence number.
	Orig    NodeID
	OrigSeq uint32
	// LeaderHops carries the repair extension: the requester's previous
	// hop count to the group leader (LeaderHopsUnset when absent).
	LeaderHops uint8
}

var _ Body = (*RREQ)(nil)

// Kind implements Body.
func (*RREQ) Kind() Kind { return KindRREQ }

// WireSize implements Body.
func (*RREQ) WireSize() int { return 23 }

// AppendTo implements Body.
func (r *RREQ) AppendTo(b []byte) []byte {
	b = append(b, r.Flags, r.HopCount)
	b = appendU32(b, r.ID)
	b = appendU32(b, r.Dst)
	b = appendU32(b, r.DstSeq)
	b = appendU32(b, uint32(r.Orig))
	b = appendU32(b, r.OrigSeq)
	return append(b, r.LeaderHops)
}

// CloneBody implements Body.
func (r *RREQ) CloneBody() Body { cp := *r; return &cp }

// Join reports whether the join flag is set.
func (r *RREQ) Join() bool { return r.Flags&RREQJoin != 0 }

// Repair reports whether the repair flag is set.
func (r *RREQ) Repair() bool { return r.Flags&RREQRepair != 0 }

func decodeRREQ(b []byte) (Body, error) {
	if len(b) != 23 {
		return nil, fmt.Errorf("rreq: %w", ErrTruncated)
	}
	return &RREQ{
		Flags:      b[0],
		HopCount:   b[1],
		ID:         u32(b[2:]),
		Dst:        u32(b[6:]),
		DstSeq:     u32(b[10:]),
		Orig:       NodeID(u32(b[14:])),
		OrigSeq:    u32(b[18:]),
		LeaderHops: b[22],
	}, nil
}

// --- RREP ---

// RREP flag bits.
const (
	// RREPMulticast marks a reply to a multicast join or repair RREQ.
	RREPMulticast uint8 = 1 << iota
	// RREPMember marks that the replying tree node is itself a group
	// member. The joiner uses this to seed its gossip member cache "at no
	// extra cost" (paper §4.3).
	RREPMember
)

// RREP is the route reply, unicast back along the reverse path installed
// by the RREQ flood.
type RREP struct {
	Flags    uint8
	HopCount uint8
	// Dst echoes the requested node or group address.
	Dst uint32
	// DstSeq is the replier's sequence number for Dst (group sequence
	// number for multicast replies).
	DstSeq uint32
	// Orig is the original requester the reply travels to.
	Orig NodeID
	// LifetimeMS is the advertised route lifetime in milliseconds.
	LifetimeMS uint32
	// Leader is the multicast group leader (multicast replies only).
	Leader NodeID
	// Replier is the tree node that generated a multicast reply. Joiners
	// use it (with the RREPMember flag) to seed the gossip member cache.
	Replier NodeID
	// LeaderHops is the replying tree node's own hop count to the group
	// leader (multicast replies only); the joiner adds the path length to
	// obtain its tree depth.
	LeaderHops uint8
	// RREQID echoes the request ID so the requester can match replies,
	// and so MACT activation can find the recorded reverse branch.
	RREQID uint32
}

var _ Body = (*RREP)(nil)

// Kind implements Body.
func (*RREP) Kind() Kind { return KindRREP }

// WireSize implements Body.
func (*RREP) WireSize() int { return 31 }

// AppendTo implements Body.
func (r *RREP) AppendTo(b []byte) []byte {
	b = append(b, r.Flags, r.HopCount)
	b = appendU32(b, r.Dst)
	b = appendU32(b, r.DstSeq)
	b = appendU32(b, uint32(r.Orig))
	b = appendU32(b, r.LifetimeMS)
	b = appendU32(b, uint32(r.Leader))
	b = appendU32(b, uint32(r.Replier))
	b = append(b, r.LeaderHops)
	return appendU32(b, r.RREQID)
}

// CloneBody implements Body.
func (r *RREP) CloneBody() Body { cp := *r; return &cp }

// Multicast reports whether this is a multicast (join/repair) reply.
func (r *RREP) Multicast() bool { return r.Flags&RREPMulticast != 0 }

// Member reports whether the replying node is a group member.
func (r *RREP) Member() bool { return r.Flags&RREPMember != 0 }

func decodeRREP(b []byte) (Body, error) {
	if len(b) != 31 {
		return nil, fmt.Errorf("rrep: %w", ErrTruncated)
	}
	return &RREP{
		Flags:      b[0],
		HopCount:   b[1],
		Dst:        u32(b[2:]),
		DstSeq:     u32(b[6:]),
		Orig:       NodeID(u32(b[10:])),
		LifetimeMS: u32(b[14:]),
		Leader:     NodeID(u32(b[18:])),
		Replier:    NodeID(u32(b[22:])),
		LeaderHops: b[26],
		RREQID:     u32(b[27:]),
	}, nil
}

// --- RERR ---

// Unreachable names one destination lost when a link broke.
type Unreachable struct {
	Addr NodeID
	Seq  uint32
}

// RERR reports broken routes to upstream users of those routes.
type RERR struct {
	Dests []Unreachable
}

var _ Body = (*RERR)(nil)

// Kind implements Body.
func (*RERR) Kind() Kind { return KindRERR }

// WireSize implements Body.
func (r *RERR) WireSize() int { return 1 + 8*len(r.Dests) }

// AppendTo implements Body.
func (r *RERR) AppendTo(b []byte) []byte {
	b = append(b, uint8(len(r.Dests)))
	for _, d := range r.Dests {
		b = appendU32(b, uint32(d.Addr))
		b = appendU32(b, d.Seq)
	}
	return b
}

// CloneBody implements Body.
func (r *RERR) CloneBody() Body {
	cp := &RERR{Dests: make([]Unreachable, len(r.Dests))}
	copy(cp.Dests, r.Dests)
	return cp
}

func decodeRERR(b []byte) (Body, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("rerr: %w", ErrTruncated)
	}
	n := int(b[0])
	if len(b) != 1+8*n {
		return nil, fmt.Errorf("rerr: %w", ErrTruncated)
	}
	r := &RERR{Dests: make([]Unreachable, 0, n)}
	for i := 0; i < n; i++ {
		off := 1 + 8*i
		r.Dests = append(r.Dests, Unreachable{
			Addr: NodeID(u32(b[off:])),
			Seq:  u32(b[off+4:]),
		})
	}
	return r, nil
}

// --- MACT (multicast activation, paper §3) ---

// MACT flag bits.
const (
	// MACTJoin activates the selected branch after a join RREP.
	MACTJoin uint8 = 1 << iota
	// MACTPrune removes the sender from the receiver's next hops.
	MACTPrune
	// MACTGroupLeader delegates leader selection downstream after a
	// failed tree repair (partition handling).
	MACTGroupLeader
	// MACTMemberOrigin marks that the activation originated at a group
	// member, making HopsFromOrigin usable as a nearest-member distance.
	MACTMemberOrigin
)

// MACT is the multicast activation message: it travels hop-by-hop to
// enable (join) or disable (prune) tree branches.
type MACT struct {
	Group GroupID
	// Src is the node that originated the activation (the joiner for
	// join MACTs).
	Src   NodeID
	Flags uint8
	// HopsFromOrigin counts hops traveled from the originator. For join
	// MACTs from a member it seeds the receiver's nearest-member field
	// (paper §4.2: "the nearest router adds this new nexthop ... with
	// value of nearest member field set to one").
	HopsFromOrigin uint8
	// RREQID identifies which recorded join/repair reply path to follow.
	RREQID uint32
}

var _ Body = (*MACT)(nil)

// Kind implements Body.
func (*MACT) Kind() Kind { return KindMACT }

// WireSize implements Body.
func (*MACT) WireSize() int { return 14 }

// AppendTo implements Body.
func (m *MACT) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(m.Group))
	b = appendU32(b, uint32(m.Src))
	b = append(b, m.Flags, m.HopsFromOrigin)
	return appendU32(b, m.RREQID)
}

// CloneBody implements Body.
func (m *MACT) CloneBody() Body { cp := *m; return &cp }

// Join reports whether the join flag is set.
func (m *MACT) Join() bool { return m.Flags&MACTJoin != 0 }

// Prune reports whether the prune flag is set.
func (m *MACT) Prune() bool { return m.Flags&MACTPrune != 0 }

// GroupLeader reports whether the leader-delegation flag is set.
func (m *MACT) GroupLeader() bool { return m.Flags&MACTGroupLeader != 0 }

// MemberOrigin reports whether the activation originated at a member.
func (m *MACT) MemberOrigin() bool { return m.Flags&MACTMemberOrigin != 0 }

func decodeMACT(b []byte) (Body, error) {
	if len(b) != 14 {
		return nil, fmt.Errorf("mact: %w", ErrTruncated)
	}
	return &MACT{
		Group:          GroupID(u32(b)),
		Src:            NodeID(u32(b[4:])),
		Flags:          b[8],
		HopsFromOrigin: b[9],
		RREQID:         u32(b[10:]),
	}, nil
}

// --- GRPH (group hello) ---

// GRPH is the group hello the leader floods every GroupHelloInterval
// (5 s in the paper) to refresh group sequence number, leader identity
// and distances.
type GRPH struct {
	Group    GroupID
	Leader   NodeID
	GroupSeq uint32
	HopCount uint8
}

var _ Body = (*GRPH)(nil)

// Kind implements Body.
func (*GRPH) Kind() Kind { return KindGRPH }

// WireSize implements Body.
func (*GRPH) WireSize() int { return 13 }

// AppendTo implements Body.
func (g *GRPH) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(g.Group))
	b = appendU32(b, uint32(g.Leader))
	b = appendU32(b, g.GroupSeq)
	return append(b, g.HopCount)
}

// CloneBody implements Body.
func (g *GRPH) CloneBody() Body { cp := *g; return &cp }

func decodeGRPH(b []byte) (Body, error) {
	if len(b) != 13 {
		return nil, fmt.Errorf("grph: %w", ErrTruncated)
	}
	return &GRPH{
		Group:    GroupID(u32(b)),
		Leader:   NodeID(u32(b[4:])),
		GroupSeq: u32(b[8:]),
		HopCount: b[12],
	}, nil
}

// --- NEAREST (nearest-member modify message, paper §4.2) ---

// NearestUnknown is the distance reported when no member is reachable
// through a branch.
const NearestUnknown uint8 = 0xFF

// Nearest is the AG locality optimisation's "modify message": it tells a
// tree neighbour the hop distance to the nearest group member reachable
// through the sender.
type Nearest struct {
	Group GroupID
	// Dist is the hop count to the nearest member via the sender
	// (NearestUnknown if none).
	Dist uint8
}

var _ Body = (*Nearest)(nil)

// Kind implements Body.
func (*Nearest) Kind() Kind { return KindNearest }

// WireSize implements Body.
func (*Nearest) WireSize() int { return 5 }

// AppendTo implements Body.
func (n *Nearest) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(n.Group))
	return append(b, n.Dist)
}

// CloneBody implements Body.
func (n *Nearest) CloneBody() Body { cp := *n; return &cp }

func decodeNearest(b []byte) (Body, error) {
	if len(b) != 5 {
		return nil, fmt.Errorf("nearest: %w", ErrTruncated)
	}
	return &Nearest{Group: GroupID(u32(b)), Dist: b[4]}, nil
}

// --- DATA (multicast application data) ---

// Data is a multicast data packet. The application payload is synthetic:
// only its length is carried in struct form, but the codec materialises
// PayloadLen zero bytes so wire accounting is exact.
type Data struct {
	Group GroupID
	// Origin is the application-level sender; Seq its per-origin
	// sequence number. Together they form the identity AG tracks in its
	// lost/history tables (paper §4.4).
	Origin     NodeID
	Seq        uint32
	PayloadLen uint16
}

var _ Body = (*Data)(nil)

// Kind implements Body.
func (*Data) Kind() Kind { return KindData }

// dataFixedSize is the marshaled length of the Data fields before the
// payload bytes.
const dataFixedSize = 14

// WireSize implements Body.
func (d *Data) WireSize() int { return dataFixedSize + int(d.PayloadLen) }

// AppendTo implements Body.
func (d *Data) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(d.Group))
	b = appendU32(b, uint32(d.Origin))
	b = appendU32(b, d.Seq)
	b = appendU16(b, d.PayloadLen)
	return append(b, make([]byte, d.PayloadLen)...)
}

// CloneBody implements Body.
func (d *Data) CloneBody() Body { cp := *d; return &cp }

// Key returns the (origin, seq) identity of the packet.
func (d *Data) Key() SeqKey { return SeqKey{Origin: d.Origin, Seq: d.Seq} }

func decodeData(b []byte) (Body, error) {
	if len(b) < dataFixedSize {
		return nil, fmt.Errorf("data: %w", ErrTruncated)
	}
	d := &Data{
		Group:      GroupID(u32(b)),
		Origin:     NodeID(u32(b[4:])),
		Seq:        u32(b[8:]),
		PayloadLen: u16(b[12:]),
	}
	if len(b) != dataFixedSize+int(d.PayloadLen) {
		return nil, fmt.Errorf("data payload: %w", ErrTruncated)
	}
	return d, nil
}

// --- GOSSIP-REQ (paper §4.1, §4.4) ---

// SeqKey identifies one multicast data packet: the sequence number is a
// 2-tuple of sender address and per-sender counter (paper §4.4).
type SeqKey struct {
	Origin NodeID
	Seq    uint32
}

// String formats the key.
func (k SeqKey) String() string { return fmt.Sprintf("%s#%d", k.Origin, k.Seq) }

// Expect carries the next sequence number the initiator expects from one
// origin, letting the responder supply packets the initiator does not yet
// know it missed.
type Expect struct {
	Origin NodeID
	// NextSeq is the lowest sequence number not yet received (and not in
	// the lost buffer) from Origin.
	NextSeq uint32
}

// GossipReq flag bits.
const (
	// GossipCached marks a cached-gossip request sent directly to a known
	// member (paper §4.3) rather than an anonymous walk.
	GossipCached uint8 = 1 << iota
	// GossipNoReply marks a push-mode gossip that expects no reply (the
	// push alternative the paper's §4.4 rejects in favour of pull; kept
	// for the ablation benchmarks).
	GossipNoReply
)

// GossipReq is the gossip message of paper §4.1: Group Address, Source
// Address, Lost Buffer, Number Lost (implicit in the slice length) and
// Expected Sequence Numbers.
type GossipReq struct {
	Group GroupID
	// Initiator is the member that started the gossip round; replies are
	// unicast to it.
	Initiator NodeID
	Flags     uint8
	// HopsTraveled counts walk hops, bounding the anonymous walk and
	// estimating member distance for the member cache.
	HopsTraveled uint8
	// Lost lists up to LostBufferCap sequence numbers the initiator
	// believes it has lost.
	Lost []SeqKey
	// Expected lists the next expected sequence number per origin.
	Expected []Expect
	// Pushed carries data packets in push-mode gossip (ablation only;
	// the paper's protocol pulls).
	Pushed []Data
}

var _ Body = (*GossipReq)(nil)

// Kind implements Body.
func (*GossipReq) Kind() Kind { return KindGossipReq }

// WireSize implements Body.
func (g *GossipReq) WireSize() int {
	n := 4 + 4 + 1 + 1 + 1 + 8*len(g.Lost) + 1 + 8*len(g.Expected) + 1
	for i := range g.Pushed {
		n += g.Pushed[i].WireSize()
	}
	return n
}

// AppendTo implements Body.
func (g *GossipReq) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(g.Group))
	b = appendU32(b, uint32(g.Initiator))
	b = append(b, g.Flags, g.HopsTraveled, uint8(len(g.Lost)))
	for _, k := range g.Lost {
		b = appendU32(b, uint32(k.Origin))
		b = appendU32(b, k.Seq)
	}
	b = append(b, uint8(len(g.Expected)))
	for _, e := range g.Expected {
		b = appendU32(b, uint32(e.Origin))
		b = appendU32(b, e.NextSeq)
	}
	b = append(b, uint8(len(g.Pushed)))
	for i := range g.Pushed {
		b = g.Pushed[i].AppendTo(b)
	}
	return b
}

// CloneBody implements Body.
func (g *GossipReq) CloneBody() Body {
	cp := *g
	cp.Lost = make([]SeqKey, len(g.Lost))
	copy(cp.Lost, g.Lost)
	cp.Expected = make([]Expect, len(g.Expected))
	copy(cp.Expected, g.Expected)
	cp.Pushed = make([]Data, len(g.Pushed))
	copy(cp.Pushed, g.Pushed)
	return &cp
}

// Cached reports whether this is a cached-gossip request.
func (g *GossipReq) Cached() bool { return g.Flags&GossipCached != 0 }

// NoReply reports whether this is a push-mode request.
func (g *GossipReq) NoReply() bool { return g.Flags&GossipNoReply != 0 }

func decodeGossipReq(b []byte) (Body, error) {
	if len(b) < 11 {
		return nil, fmt.Errorf("gossip-req: %w", ErrTruncated)
	}
	g := &GossipReq{
		Group:        GroupID(u32(b)),
		Initiator:    NodeID(u32(b[4:])),
		Flags:        b[8],
		HopsTraveled: b[9],
	}
	nLost := int(b[10])
	off := 11
	if len(b) < off+8*nLost+1 {
		return nil, fmt.Errorf("gossip-req lost: %w", ErrTruncated)
	}
	g.Lost = make([]SeqKey, 0, nLost)
	for i := 0; i < nLost; i++ {
		g.Lost = append(g.Lost, SeqKey{
			Origin: NodeID(u32(b[off:])),
			Seq:    u32(b[off+4:]),
		})
		off += 8
	}
	nExp := int(b[off])
	off++
	if len(b) < off+8*nExp+1 {
		return nil, fmt.Errorf("gossip-req expected: %w", ErrTruncated)
	}
	g.Expected = make([]Expect, 0, nExp)
	for i := 0; i < nExp; i++ {
		g.Expected = append(g.Expected, Expect{
			Origin:  NodeID(u32(b[off:])),
			NextSeq: u32(b[off+4:]),
		})
		off += 8
	}
	nPush := int(b[off])
	off++
	g.Pushed = make([]Data, 0, nPush)
	for i := 0; i < nPush; i++ {
		if len(b) < off+dataFixedSize {
			return nil, fmt.Errorf("gossip-req pushed: %w", ErrTruncated)
		}
		payloadLen := int(u16(b[off+12:]))
		end := off + dataFixedSize + payloadLen
		if len(b) < end {
			return nil, fmt.Errorf("gossip-req pushed payload: %w", ErrTruncated)
		}
		body, err := decodeData(b[off:end])
		if err != nil {
			return nil, err
		}
		d, okData := body.(*Data)
		if !okData {
			return nil, fmt.Errorf("gossip-req: unexpected body type %T", body)
		}
		g.Pushed = append(g.Pushed, *d)
		off = end
	}
	if off != len(b) {
		return nil, fmt.Errorf("gossip-req: %w", ErrTrailingBytes)
	}
	return g, nil
}

// --- GOSSIP-REP ---

// GossipRep is the gossip reply: the accepting member unicasts copies of
// the requested data packets back to the initiator (paper §4.4).
type GossipRep struct {
	Group GroupID
	// Responder is the member that accepted the gossip.
	Responder NodeID
	// WalkHops is the hop count the request walk had traveled when
	// accepted; the initiator uses it as the member-cache distance
	// estimate.
	WalkHops uint8
	// Msgs carries the recovered data packets.
	Msgs []Data
}

var _ Body = (*GossipRep)(nil)

// Kind implements Body.
func (*GossipRep) Kind() Kind { return KindGossipRep }

// WireSize implements Body.
func (g *GossipRep) WireSize() int {
	n := 4 + 4 + 1 + 1
	for i := range g.Msgs {
		n += g.Msgs[i].WireSize()
	}
	return n
}

// AppendTo implements Body.
func (g *GossipRep) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(g.Group))
	b = appendU32(b, uint32(g.Responder))
	b = append(b, g.WalkHops, uint8(len(g.Msgs)))
	for i := range g.Msgs {
		b = g.Msgs[i].AppendTo(b)
	}
	return b
}

// CloneBody implements Body.
func (g *GossipRep) CloneBody() Body {
	cp := *g
	cp.Msgs = make([]Data, len(g.Msgs))
	copy(cp.Msgs, g.Msgs)
	return &cp
}

func decodeGossipRep(b []byte) (Body, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("gossip-rep: %w", ErrTruncated)
	}
	g := &GossipRep{
		Group:     GroupID(u32(b)),
		Responder: NodeID(u32(b[4:])),
		WalkHops:  b[8],
	}
	n := int(b[9])
	off := 10
	g.Msgs = make([]Data, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < off+dataFixedSize {
			return nil, fmt.Errorf("gossip-rep msg: %w", ErrTruncated)
		}
		payloadLen := int(u16(b[off+12:]))
		end := off + dataFixedSize + payloadLen
		if len(b) < end {
			return nil, fmt.Errorf("gossip-rep payload: %w", ErrTruncated)
		}
		body, err := decodeData(b[off:end])
		if err != nil {
			return nil, err
		}
		d, ok := body.(*Data)
		if !ok {
			return nil, fmt.Errorf("gossip-rep: unexpected body type %T", body)
		}
		g.Msgs = append(g.Msgs, *d)
		off = end
	}
	if off != len(b) {
		return nil, fmt.Errorf("gossip-rep: %w", ErrTrailingBytes)
	}
	return g, nil
}
