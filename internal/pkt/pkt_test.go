package pkt

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleBodies returns one representative of every body type, with
// non-trivial field values.
func sampleBodies() []Body {
	return []Body{
		&Hello{Seq: 77},
		&RREQ{Flags: RREQJoin | RREQRepair, HopCount: 3, ID: 9, Dst: 0xE0000001,
			DstSeq: 12, Orig: 4, OrigSeq: 8, LeaderHops: 5},
		&RREP{Flags: RREPMulticast | RREPMember, HopCount: 2, Dst: 0xE0000001, DstSeq: 13,
			Orig: 4, LifetimeMS: 3000, Leader: 9, Replier: 11, LeaderHops: 2, RREQID: 9},
		&RERR{Dests: []Unreachable{{Addr: 3, Seq: 5}, {Addr: 8, Seq: 0}}},
		&MACT{Group: 0xE0000001, Src: 6, Flags: MACTJoin, HopsFromOrigin: 4, RREQID: 2},
		&GRPH{Group: 0xE0000001, Leader: 1, GroupSeq: 42, HopCount: 7},
		&Nearest{Group: 0xE0000001, Dist: 3},
		&Data{Group: 0xE0000001, Origin: 2, Seq: 1001, PayloadLen: 64},
		&GossipReq{Group: 0xE0000001, Initiator: 5, Flags: GossipCached | GossipNoReply, HopsTraveled: 2,
			Lost:     []SeqKey{{Origin: 2, Seq: 17}, {Origin: 2, Seq: 19}},
			Expected: []Expect{{Origin: 2, NextSeq: 25}},
			Pushed:   []Data{{Group: 0xE0000001, Origin: 2, Seq: 30, PayloadLen: 64}}},
		&GossipRep{Group: 0xE0000001, Responder: 7, WalkHops: 3,
			Msgs: []Data{
				{Group: 0xE0000001, Origin: 2, Seq: 17, PayloadLen: 64},
				{Group: 0xE0000001, Origin: 2, Seq: 19, PayloadLen: 64},
			}},
		&JoinQuery{Group: 0xE0000001, Source: 3, Seq: 12, HopCount: 2},
		&JoinReply{Group: 0xE0000001, Source: 3, Member: 8, Seq: 12},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, body := range sampleBodies() {
		body := body
		t.Run(body.Kind().String(), func(t *testing.T) {
			p := NewPacket(3, 9, body)
			p.TTL = 17
			raw := Encode(p)
			if len(raw) != p.WireSize() {
				t.Fatalf("encoded length %d != WireSize %d", len(raw), p.WireSize())
			}
			got, err := Decode(raw)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, p) {
				t.Fatalf("round trip mismatch:\n got %+v (body %+v)\nwant %+v (body %+v)",
					got, got.Body, p, p.Body)
			}
		})
	}
}

func TestWireSizeMatchesAppendTo(t *testing.T) {
	for _, body := range sampleBodies() {
		if got := len(body.AppendTo(nil)); got != body.WireSize() {
			t.Errorf("%s: AppendTo produced %d bytes, WireSize says %d",
				body.Kind(), got, body.WireSize())
		}
	}
}

func TestCloneBodyIsDeep(t *testing.T) {
	rerr := &RERR{Dests: []Unreachable{{Addr: 1, Seq: 2}}}
	clone, ok := rerr.CloneBody().(*RERR)
	if !ok {
		t.Fatal("CloneBody returned wrong type")
	}
	clone.Dests[0].Addr = 99
	if rerr.Dests[0].Addr != 1 {
		t.Fatal("RERR clone shares Dests backing array")
	}

	req := &GossipReq{Lost: []SeqKey{{Origin: 1, Seq: 1}}, Expected: []Expect{{Origin: 1, NextSeq: 5}}}
	reqClone, ok := req.CloneBody().(*GossipReq)
	if !ok {
		t.Fatal("CloneBody returned wrong type")
	}
	reqClone.Lost[0].Seq = 42
	reqClone.Expected[0].NextSeq = 42
	if req.Lost[0].Seq != 1 || req.Expected[0].NextSeq != 5 {
		t.Fatal("GossipReq clone shares slices")
	}

	rep := &GossipRep{Msgs: []Data{{Seq: 1}}}
	repClone, ok := rep.CloneBody().(*GossipRep)
	if !ok {
		t.Fatal("CloneBody returned wrong type")
	}
	repClone.Msgs[0].Seq = 9
	if rep.Msgs[0].Seq != 1 {
		t.Fatal("GossipRep clone shares Msgs")
	}
}

func TestPacketCloneIndependence(t *testing.T) {
	p := NewPacket(1, 2, &RREQ{HopCount: 1, ID: 5})
	c := p.Clone()
	c.TTL--
	if body, ok := c.Body.(*RREQ); ok {
		body.HopCount++
	} else {
		t.Fatal("clone body type mismatch")
	}
	orig, ok := p.Body.(*RREQ)
	if !ok {
		t.Fatal("original body type mismatch")
	}
	if p.TTL != DefaultTTL || orig.HopCount != 1 {
		t.Fatal("mutating clone affected original")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := Encode(NewPacket(1, 2, &Hello{Seq: 1}))

	tests := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:8], ErrTruncated},
		{"truncated body", valid[:len(valid)-2], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, valid...), 0xAA), ErrTrailingBytes},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.raw); !errors.Is(err, tt.want) {
				t.Fatalf("Decode err = %v, want %v", err, tt.want)
			}
		})
	}

	t.Run("unknown kind", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[0] = 0xEE
		if _, err := Decode(bad); !errors.Is(err, ErrUnknownKind) {
			t.Fatalf("Decode err = %v, want ErrUnknownKind", err)
		}
	})
}

func TestDecodeBodyLengthMismatch(t *testing.T) {
	// A GRPH body must be exactly 13 bytes; hand it 4.
	p := NewPacket(1, 2, &Hello{Seq: 1})
	raw := Encode(p)
	raw[0] = byte(KindGRPH)
	if _, err := Decode(raw); err == nil {
		t.Fatal("decoding a hello body as GRPH succeeded")
	}
}

func TestKindStrings(t *testing.T) {
	for _, b := range sampleBodies() {
		if s := b.Kind().String(); s == "" || s[0] == 'K' {
			t.Errorf("kind %d missing a name: %q", b.Kind(), s)
		}
	}
	if got := Kind(200).String(); got != "KIND(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestIsControl(t *testing.T) {
	control := map[Kind]bool{
		KindHello: true, KindRREQ: true, KindRREP: true, KindRERR: true,
		KindMACT: true, KindGRPH: true, KindNearest: true,
		KindData: false, KindGossipReq: true, KindGossipRep: false,
	}
	for k, want := range control {
		if got := k.IsControl(); got != want {
			t.Errorf("%s.IsControl() = %v, want %v", k, got, want)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if got := Broadcast.String(); got != "*" {
		t.Errorf("Broadcast.String() = %q", got)
	}
	if got := NodeID(7).String(); got != "n7" {
		t.Errorf("NodeID(7).String() = %q", got)
	}
	if got := GroupID(3).String(); got != "g3" {
		t.Errorf("GroupID(3).String() = %q", got)
	}
	if got := (SeqKey{Origin: 2, Seq: 9}).String(); got != "n2#9" {
		t.Errorf("SeqKey.String() = %q", got)
	}
}

// randomGossipReq builds a GossipReq with random bounded contents.
func randomGossipReq(r *rand.Rand) *GossipReq {
	g := &GossipReq{
		Group:        GroupID(r.Uint32()),
		Initiator:    NodeID(r.Uint32() >> 1), // keep below Broadcast
		Flags:        uint8(r.Intn(2)),
		HopsTraveled: uint8(r.Intn(32)),
	}
	for i, n := 0, r.Intn(10); i < n; i++ {
		g.Lost = append(g.Lost, SeqKey{Origin: NodeID(r.Uint32() >> 1), Seq: r.Uint32()})
	}
	for i, n := 0, r.Intn(5); i < n; i++ {
		g.Expected = append(g.Expected, Expect{Origin: NodeID(r.Uint32() >> 1), NextSeq: r.Uint32()})
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		g.Pushed = append(g.Pushed, Data{
			Group:      GroupID(r.Uint32()),
			Origin:     NodeID(r.Uint32() >> 1),
			Seq:        r.Uint32(),
			PayloadLen: uint16(r.Intn(128)),
		})
	}
	return g
}

// Property: encode/decode is the identity on random gossip requests (the
// most structurally complex body).
func TestGossipReqRoundTripProperty(t *testing.T) {
	f := func(seed int64, src, dst uint32, ttl uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := &Packet{Kind: KindGossipReq, Src: NodeID(src), Dst: NodeID(dst), TTL: ttl,
			Body: randomGossipReq(r)}
		raw := Encode(p)
		if len(raw) != p.WireSize() {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		// Normalise nil vs empty slices before comparing.
		gb, ok := got.Body.(*GossipReq)
		if !ok {
			return false
		}
		pb, ok := p.Body.(*GossipReq)
		if !ok {
			return false
		}
		if len(gb.Lost) == 0 && len(pb.Lost) == 0 {
			gb.Lost, pb.Lost = nil, nil
		}
		if len(gb.Expected) == 0 && len(pb.Expected) == 0 {
			gb.Expected, pb.Expected = nil, nil
		}
		if len(gb.Pushed) == 0 && len(pb.Pushed) == 0 {
			gb.Pushed, pb.Pushed = nil, nil
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeFuzzNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", raw, r)
			}
		}()
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary bytes with a valid header structure never
// panics either (exercises body decoders more deeply than pure noise).
func TestDecodeStructuredFuzzNoPanic(t *testing.T) {
	f := func(kind uint8, body []byte) bool {
		if len(body) > 0xFFFF {
			body = body[:0xFFFF]
		}
		raw := []byte{kind, 0, 0, 0, 1, 0, 0, 0, 2, 32}
		raw = append(raw, byte(len(body)>>8), byte(len(body)))
		raw = append(raw, body...)
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on kind=%d len=%d: %v", kind, len(body), r)
			}
		}()
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
