package pkt

import "fmt"

// ODMRP messages (paper §5.5 / §7 future work: "Implementing anonymous
// gossip with other multicast protocols, such as ODMRP and AMRIS, could
// also be done in a similar manner"). ODMRP is mesh-based: sources
// periodically flood Join Queries; members answer with Join Replies that
// walk back toward the source, enlisting relays into the forwarding
// group. Data floods within the forwarding group.

// Additional packet kinds for the ODMRP substrate. Values continue the
// wire-stable sequence in pkt.go.
const (
	KindJoinQuery Kind = iota + 32
	KindJoinReply Kind = iota + 32
)

// JoinQuery is the source's periodic flood refreshing mesh routes.
type JoinQuery struct {
	Group GroupID
	// Source is the flooding data source; Seq its refresh counter.
	Source NodeID
	Seq    uint32
	// HopCount counts hops from the source.
	HopCount uint8
}

var _ Body = (*JoinQuery)(nil)

// Kind implements Body.
func (*JoinQuery) Kind() Kind { return KindJoinQuery }

// WireSize implements Body.
func (*JoinQuery) WireSize() int { return 13 }

// AppendTo implements Body.
func (q *JoinQuery) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(q.Group))
	b = appendU32(b, uint32(q.Source))
	b = appendU32(b, q.Seq)
	return append(b, q.HopCount)
}

// CloneBody implements Body.
func (q *JoinQuery) CloneBody() Body { cp := *q; return &cp }

func decodeJoinQuery(b []byte) (Body, error) {
	if len(b) != 13 {
		return nil, fmt.Errorf("join-query: %w", ErrTruncated)
	}
	return &JoinQuery{
		Group:    GroupID(u32(b)),
		Source:   NodeID(u32(b[4:])),
		Seq:      u32(b[8:]),
		HopCount: b[12],
	}, nil
}

// JoinReply travels hop-by-hop from a member back toward the source,
// setting the forwarding-group flag at each relay.
type JoinReply struct {
	Group GroupID
	// Source identifies whose query this answers; Member is the
	// responding group member.
	Source NodeID
	Member NodeID
	// Seq echoes the query refresh counter.
	Seq uint32
}

var _ Body = (*JoinReply)(nil)

// Kind implements Body.
func (*JoinReply) Kind() Kind { return KindJoinReply }

// WireSize implements Body.
func (*JoinReply) WireSize() int { return 16 }

// AppendTo implements Body.
func (r *JoinReply) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(r.Group))
	b = appendU32(b, uint32(r.Source))
	b = appendU32(b, uint32(r.Member))
	return appendU32(b, r.Seq)
}

// CloneBody implements Body.
func (r *JoinReply) CloneBody() Body { cp := *r; return &cp }

func decodeJoinReply(b []byte) (Body, error) {
	if len(b) != 16 {
		return nil, fmt.Errorf("join-reply: %w", ErrTruncated)
	}
	return &JoinReply{
		Group:  GroupID(u32(b)),
		Source: NodeID(u32(b[4:])),
		Member: NodeID(u32(b[8:])),
		Seq:    u32(b[12:]),
	}, nil
}
