package pkt

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripAllKinds round-trips a frame carrying every body
// type through the wire codec.
func TestFrameRoundTripAllKinds(t *testing.T) {
	for _, body := range sampleBodies() {
		body := body
		t.Run(body.Kind().String(), func(t *testing.T) {
			p := NewPacket(3, 9, body)
			p.TTL = 17
			f := &Frame{From: 5, LinkDst: Broadcast, Packet: p}
			raw := EncodeFrame(f)
			if len(raw) != f.WireSize() {
				t.Fatalf("encoded length %d != WireSize %d", len(raw), f.WireSize())
			}
			got, err := DecodeFrame(raw)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if !reflect.DeepEqual(got, f) {
				t.Fatalf("round trip mismatch:\n got %+v (packet %+v)\nwant %+v (packet %+v)",
					got, got.Packet, f, f.Packet)
			}
		})
	}
}

// TestFrameRoundTripProperty drives random frame headers over random
// bodies through the codec with testing/quick.
func TestFrameRoundTripProperty(t *testing.T) {
	bodies := sampleBodies()
	rng := rand.New(rand.NewSource(5))
	prop := func(from, linkDst uint32, src, dst uint32, ttl uint8, bodyIdx uint16) bool {
		p := NewPacket(NodeID(src), NodeID(dst), bodies[int(bodyIdx)%len(bodies)])
		p.TTL = ttl
		f := &Frame{From: NodeID(from), LinkDst: NodeID(linkDst), Packet: p}
		got, err := DecodeFrame(EncodeFrame(f))
		return err == nil && reflect.DeepEqual(got, f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := EncodeFrame(&Frame{From: 1, LinkDst: Broadcast,
		Packet: NewPacket(1, 2, &Hello{Seq: 4})})

	t.Run("truncated header", func(t *testing.T) {
		for n := 0; n < frameHeaderSize; n++ {
			if _, err := DecodeFrame(good[:n]); !errors.Is(err, ErrTruncated) {
				t.Errorf("len %d: err = %v, want ErrTruncated", n, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = FrameVersion + 1
		if _, err := DecodeFrame(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("truncated packet", func(t *testing.T) {
		if _, err := DecodeFrame(good[:len(good)-1]); err == nil {
			t.Error("truncated packet accepted")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := DecodeFrame(append(append([]byte(nil), good...), 0)); err == nil {
			t.Error("trailing bytes accepted")
		}
	})
}

// TestDecodeFrameFuzzNoPanic throws random and mutated-valid bytes at
// the frame decoder: every datagram from a live socket is untrusted,
// so the decoder must fail with errors, never panics.
func TestDecodeFrameFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		_, _ = DecodeFrame(buf)
	}
	// Mutated valid frames exercise the deeper body decoders.
	for _, body := range sampleBodies() {
		raw := EncodeFrame(&Frame{From: 1, LinkDst: 2, Packet: NewPacket(1, 2, body)})
		for i := 0; i < 500; i++ {
			mut := append([]byte(nil), raw...)
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			if rng.Intn(4) == 0 {
				mut = mut[:rng.Intn(len(mut)+1)]
			}
			_, _ = DecodeFrame(mut)
		}
	}
}
