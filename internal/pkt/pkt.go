// Package pkt defines the network-layer message vocabulary of the
// reproduction: node/group addressing, packet headers, and one body type
// per protocol message (AODV control, MAODV control, multicast data, and
// the two Anonymous Gossip messages from paper §4.1/§4.4).
//
// Every body has a binary wire codec (encoding/binary, big endian). The
// simulator passes decoded structs between nodes for speed, but all MAC
// airtime calculations use the true marshaled size, and codec round-trip
// tests keep WireSize honest.
package pkt

import (
	"errors"
	"fmt"
)

// NodeID identifies a node (an IPv4-like 32-bit address).
type NodeID uint32

// Broadcast is the all-nodes link-local destination.
const Broadcast NodeID = 0xFFFFFFFF

// String formats a node ID; the broadcast address prints as "*".
func (n NodeID) String() string {
	if n == Broadcast {
		return "*"
	}
	return fmt.Sprintf("n%d", uint32(n))
}

// GroupID identifies a multicast group (an administratively scoped
// multicast address in the paper's terms).
type GroupID uint32

// String formats a group ID.
func (g GroupID) String() string { return fmt.Sprintf("g%d", uint32(g)) }

// Kind discriminates packet bodies.
type Kind uint8

// Packet kinds. Values are wire-stable.
const (
	KindHello Kind = iota + 1
	KindRREQ
	KindRREP
	KindRERR
	KindMACT
	KindGRPH
	KindNearest
	KindData
	KindGossipReq
	KindGossipRep
)

var kindNames = map[Kind]string{
	KindHello:     "HELLO",
	KindRREQ:      "RREQ",
	KindRREP:      "RREP",
	KindRERR:      "RERR",
	KindMACT:      "MACT",
	KindGRPH:      "GRPH",
	KindNearest:   "NEAREST",
	KindData:      "DATA",
	KindGossipReq: "GOSSIP-REQ",
	KindGossipRep: "GOSSIP-REP",
	KindJoinQuery: "JOIN-QUERY",
	KindJoinReply: "JOIN-REPLY",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// IsControl reports whether packets of this kind count as control (rather
// than data or gossip-carried data) overhead in the statistics.
func (k Kind) IsControl() bool {
	switch k {
	case KindData, KindGossipRep:
		return false
	default:
		return true
	}
}

// Body is a typed packet payload.
type Body interface {
	// Kind returns the discriminator the body encodes under.
	Kind() Kind
	// WireSize returns the exact marshaled length in bytes.
	WireSize() int
	// AppendTo appends the marshaled body to b and returns the extended
	// slice.
	AppendTo(b []byte) []byte
	// CloneBody returns a deep copy, for safe per-hop mutation of
	// forwarded packets.
	CloneBody() Body
}

// headerSize is the marshaled length of the fixed packet header:
// kind(1) + src(4) + dst(4) + ttl(1) + bodyLen(2).
const headerSize = 12

// DefaultTTL bounds network-layer forwarding.
const DefaultTTL = 32

// Packet is a network-layer packet: a fixed header plus one typed body.
type Packet struct {
	Kind Kind
	// Src is the network-layer originator (not the previous hop).
	Src NodeID
	// Dst is the final destination; Broadcast for floods and
	// one-hop broadcasts. Multicast data carries its group in the body.
	Dst  NodeID
	TTL  uint8
	Body Body
}

// NewPacket assembles a packet around body, filling Kind from the body.
func NewPacket(src, dst NodeID, body Body) *Packet {
	return &Packet{Kind: body.Kind(), Src: src, Dst: dst, TTL: DefaultTTL, Body: body}
}

// WireSize returns the exact marshaled packet length in bytes. The MAC
// layer uses it to compute transmission airtime.
func (p *Packet) WireSize() int { return headerSize + p.Body.WireSize() }

// Clone returns a deep copy safe for independent per-hop mutation.
func (p *Packet) Clone() *Packet {
	cp := *p
	cp.Body = p.Body.CloneBody()
	return &cp
}

// String summarises the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s ttl=%d", p.Kind, p.Src, p.Dst, p.TTL)
}

// Codec errors.
var (
	// ErrTruncated reports a buffer shorter than its encoded lengths claim.
	ErrTruncated = errors.New("pkt: truncated packet")
	// ErrUnknownKind reports an unrecognised body discriminator.
	ErrUnknownKind = errors.New("pkt: unknown packet kind")
	// ErrTrailingBytes reports extra bytes after a well-formed packet.
	ErrTrailingBytes = errors.New("pkt: trailing bytes")
)

// Encode marshals the packet.
func Encode(p *Packet) []byte {
	b := make([]byte, 0, p.WireSize())
	b = append(b, byte(p.Kind))
	b = appendU32(b, uint32(p.Src))
	b = appendU32(b, uint32(p.Dst))
	b = append(b, p.TTL)
	b = appendU16(b, uint16(p.Body.WireSize()))
	return p.Body.AppendTo(b)
}

// Decode unmarshals a packet produced by Encode.
func Decode(b []byte) (*Packet, error) {
	if len(b) < headerSize {
		return nil, ErrTruncated
	}
	p := &Packet{
		Kind: Kind(b[0]),
		Src:  NodeID(u32(b[1:])),
		Dst:  NodeID(u32(b[5:])),
		TTL:  b[9],
	}
	bodyLen := int(u16(b[10:]))
	rest := b[headerSize:]
	if len(rest) < bodyLen {
		return nil, ErrTruncated
	}
	if len(rest) > bodyLen {
		return nil, ErrTrailingBytes
	}
	body, err := decodeBody(p.Kind, rest)
	if err != nil {
		return nil, err
	}
	p.Body = body
	return p, nil
}

func decodeBody(k Kind, b []byte) (Body, error) {
	switch k {
	case KindHello:
		return decodeHello(b)
	case KindRREQ:
		return decodeRREQ(b)
	case KindRREP:
		return decodeRREP(b)
	case KindRERR:
		return decodeRERR(b)
	case KindMACT:
		return decodeMACT(b)
	case KindGRPH:
		return decodeGRPH(b)
	case KindNearest:
		return decodeNearest(b)
	case KindData:
		return decodeData(b)
	case KindGossipReq:
		return decodeGossipReq(b)
	case KindGossipRep:
		return decodeGossipRep(b)
	case KindJoinQuery:
		return decodeJoinQuery(b)
	case KindJoinReply:
		return decodeJoinReply(b)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
}

// --- little encode helpers (big endian) ---

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func u16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

func u32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
