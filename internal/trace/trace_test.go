package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"anongossip/internal/pkt"
)

func ev(node pkt.NodeID, kind pkt.Kind, at time.Duration) Event {
	return Event{At: at, Node: node, Op: OpSend, Kind: kind, Src: node, Dst: 2, Peer: 2, Size: 40}
}

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(ev(pkt.NodeID(i), pkt.KindHello, time.Duration(i)*time.Second))
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Fatalf("total=%d len=%d, want 5, 3", r.Total(), r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if want := pkt.NodeID(i + 3); e.Node != want {
			t.Fatalf("event %d node = %v, want %v (order %v)", i, e.Node, want, events)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(10)
	r.Record(ev(1, pkt.KindHello, time.Second))
	r.Record(ev(2, pkt.KindData, 2*time.Second))
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	events := r.Events()
	if len(events) != 2 || events[0].Node != 1 || events[1].Node != 2 {
		t.Fatalf("events = %v", events)
	}
}

func TestRingZeroCapacityClamped(t *testing.T) {
	r := NewRing(0)
	r.Record(ev(1, pkt.KindHello, 0))
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (clamped capacity)", r.Len())
	}
}

func TestFilters(t *testing.T) {
	r := NewRing(10)
	r.SetFilter(And(KindFilter(pkt.KindData), NodeFilter(1)))
	r.Record(ev(1, pkt.KindData, 0))  // kept
	r.Record(ev(1, pkt.KindHello, 0)) // wrong kind
	r.Record(ev(2, pkt.KindData, 0))  // wrong node
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if got := r.Events()[0]; got.Kind != pkt.KindData || got.Node != 1 {
		t.Fatalf("kept wrong event: %v", got)
	}
}

func TestDumpAndSummary(t *testing.T) {
	r := NewRing(10)
	r.Record(ev(1, pkt.KindData, 1500*time.Millisecond))
	r.Record(ev(1, pkt.KindGossipReq, 2*time.Second))

	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "DATA") || !strings.Contains(out, "GOSSIP-REQ") {
		t.Fatalf("dump missing kinds:\n%s", out)
	}
	if !strings.Contains(out, "1.500000s") {
		t.Fatalf("dump missing timestamp:\n%s", out)
	}

	sum := r.Summary()
	if !strings.Contains(sum, "DATA=1") || !strings.Contains(sum, "GOSSIP-REQ=1") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestOpStrings(t *testing.T) {
	if OpSend.String() != "SEND" || OpForward.String() != "FWD" || OpDeliver.String() != "RECV" {
		t.Fatal("op names changed")
	}
	if Op(99).String() != "OP(99)" {
		t.Fatal("unknown op formatting")
	}
}

// Property: the ring never exceeds capacity and Events() returns
// chronologically ordered entries when recorded in order.
func TestRingBoundedProperty(t *testing.T) {
	f := func(n uint8, capacity uint8) bool {
		capn := int(capacity%32) + 1
		r := NewRing(capn)
		for i := 0; i < int(n); i++ {
			r.Record(ev(1, pkt.KindData, time.Duration(i)*time.Millisecond))
		}
		events := r.Events()
		if len(events) > capn {
			return false
		}
		for i := 1; i < len(events); i++ {
			if events[i].At < events[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
