// Package trace provides a lightweight packet-event recorder for
// debugging and demonstration. It observes the network layer of selected
// nodes (sends, deliveries, forwards) into a bounded ring buffer that can
// be dumped as text — the moral equivalent of GloMoSim's packet trace
// files.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// Op is the traced operation.
type Op uint8

// Operations.
const (
	// OpSend is a locally originated transmission.
	OpSend Op = iota + 1
	// OpForward is a transit retransmission.
	OpForward
	// OpDeliver is a delivery to a protocol handler.
	OpDeliver
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpForward:
		return "FWD"
	case OpDeliver:
		return "RECV"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Event is one recorded packet operation.
type Event struct {
	At   sim.Time
	Node pkt.NodeID
	Op   Op
	Kind pkt.Kind
	Src  pkt.NodeID
	Dst  pkt.NodeID
	// Peer is the link-layer counterpart: the next hop for sends, the
	// previous hop for deliveries.
	Peer pkt.NodeID
	Size int
	// Seq is the serial rank of the simulation event that produced this
	// record (Scheduler.ExecRank). Under the sharded kernel each lane
	// records into its own ring and MergeRings restores the exact serial
	// order by (At, Seq); records written inside a parallel window may
	// briefly hold a provisional value until the ring's Resolve runs at
	// the window barrier.
	Seq uint64
}

// String formats the event as one trace line.
func (e Event) String() string {
	return fmt.Sprintf("%12.6fs %6s %-5s %-10s %s->%s via %s (%dB)",
		e.At.Seconds(), e.Node, e.Op, e.Kind, e.Src, e.Dst, e.Peer, e.Size)
}

// Ring is a bounded in-memory trace. The zero value is unusable; create
// with NewRing.
//
// A ring is single-owner: under the sharded scheduler each lane gets
// its own ring (plus one for solo execution), with ownership handed
// between worker and coordinator at the window barrier — the same
// happens-before discipline as the lane schedulers themselves.
type Ring struct {
	events []Event
	next   int
	full   bool
	total  uint64
	filter func(Event) bool
	// pending indexes slots holding provisional Seq values recorded
	// during the current parallel window; Resolve patches them.
	pending []int
}

// NewRing creates a trace holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{events: make([]Event, capacity)}
}

// SetFilter installs a predicate; events failing it are not recorded.
// A nil filter records everything.
func (r *Ring) SetFilter(f func(Event) bool) { r.filter = f }

// Record appends an event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	if r.filter != nil && !r.filter(e) {
		return
	}
	if sim.RankIsProvisional(e.Seq) {
		r.pending = append(r.pending, r.next)
	}
	r.total++
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
	if r.next == 0 {
		r.full = true
	}
}

// Resolve patches the provisional Seq values recorded since the last
// Resolve, using the rank resolver the scheduler's window barrier
// provides (Sharded.OnBarrier). Entries evicted by ring wrap-around in
// the meantime are skipped via the provisional-bit guard: an index may
// appear twice in pending, and only its latest occupant still carries
// the bit.
func (r *Ring) Resolve(resolve func(uint64) uint64) {
	for _, i := range r.pending {
		if sim.RankIsProvisional(r.events[i].Seq) {
			r.events[i].Seq = resolve(r.events[i].Seq)
		}
	}
	r.pending = r.pending[:0]
}

// Total returns the number of events recorded (including evicted ones).
func (r *Ring) Total() uint64 { return r.total }

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	if r.full {
		return len(r.events)
	}
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the retained events as text lines.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := io.WriteString(w, e.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// MergeRings combines per-lane rings into the trace an equivalent
// serial run's single ring would hold: all retained events, in serial
// execution order, truncated to the last capacity entries.
//
// Ordering: records sort by (At, Seq) — the serial total order of the
// simulation events that produced them. Records that tie on both (one
// fired event tracing several packet operations, e.g. a radio finish
// delivering to many nodes) always live in the *same* source ring —
// window execution traces only into the firing lane's ring, solo
// execution only into the solo ring — so the stable sort preserves
// their within-ring recording order, which is the serial order.
//
// Completeness: each lane ring's capacity equals the merged capacity,
// so every lane retains at least its own contribution to the global
// last-capacity window; nothing the serial ring would hold has been
// evicted.
func MergeRings(capacity int, rings ...*Ring) *Ring {
	merged := NewRing(capacity)
	var all []Event
	for _, r := range rings {
		if r == nil {
			continue
		}
		all = append(all, r.Events()...)
		merged.total += r.total
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Seq < all[j].Seq
	})
	if len(all) > capacity {
		all = all[len(all)-capacity:]
	}
	for _, e := range all {
		merged.events[merged.next] = e
		merged.next = (merged.next + 1) % len(merged.events)
		if merged.next == 0 {
			merged.full = true
		}
	}
	return merged
}

// KindFilter returns a filter accepting only the listed kinds.
func KindFilter(kinds ...pkt.Kind) func(Event) bool {
	set := make(map[pkt.Kind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return func(e Event) bool { return set[e.Kind] }
}

// NodeFilter returns a filter accepting only events at the listed nodes.
func NodeFilter(nodes ...pkt.NodeID) func(Event) bool {
	set := make(map[pkt.NodeID]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	return func(e Event) bool { return set[e.Node] }
}

// And combines filters conjunctively.
func And(fs ...func(Event) bool) func(Event) bool {
	return func(e Event) bool {
		for _, f := range fs {
			if !f(e) {
				return false
			}
		}
		return true
	}
}

// Summary renders per-kind counts of the retained events.
func (r *Ring) Summary() string {
	counts := map[pkt.Kind]int{}
	for _, e := range r.Events() {
		counts[e.Kind]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d events retained (%d total):", r.Len(), r.total)
	for k := pkt.KindHello; k <= pkt.KindGossipRep; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(&b, " %s=%d", k, counts[k])
		}
	}
	return b.String()
}
