package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// calDrain pops everything and checks the (at, seq) total order.
func calDrain(t *testing.T, q *calQueue) []event {
	t.Helper()
	var out []event
	for q.len() > 0 {
		e := q.pop()
		if n := len(out); n > 0 && e.less(out[n-1]) {
			t.Fatalf("pop order violated: %+v after %+v", e, out[n-1])
		}
		out = append(out, e)
	}
	return out
}

// TestCalQueueGrowAndShrink pushes enough events to force several wheel
// doublings, drains most of them across the shrink threshold, and
// checks total order and exact population throughout.
func TestCalQueueGrowAndShrink(t *testing.T) {
	q := newCalQueue()
	rng := rand.New(rand.NewSource(3))
	const n = 5000
	want := make([]event, 0, n)
	for i := 0; i < n; i++ {
		e := event{at: Time(rng.Intn(1 << 30)), seq: uint64(i), slot: int32(i)}
		q.push(e)
		want = append(want, e)
	}
	if q.nbkt <= calMinBuckets {
		t.Fatalf("wheel never grew: %d buckets for %d events", q.nbkt, n)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
	for i := 0; i < n-5; i++ {
		if got := q.pop(); got != want[i] {
			t.Fatalf("pop %d: got %+v, want %+v", i, got, want[i])
		}
	}
	if q.nbkt != calMinBuckets {
		t.Fatalf("wheel never shrank back: %d buckets for %d events", q.nbkt, q.len())
	}
	for i := n - 5; i < n; i++ {
		if got := q.pop(); got != want[i] {
			t.Fatalf("pop %d: got %+v, want %+v", i, got, want[i])
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after full drain: %d left", q.len())
	}
}

// TestCalQueueOverflowReAnchor interleaves a dense near cluster with
// far mobility-scale timers, so draining must cross several days and
// the empty-calendar jump must re-anchor at the overflow minimum
// rather than walking hours of empty windows.
func TestCalQueueOverflowReAnchor(t *testing.T) {
	q := newCalQueue()
	seq := uint64(0)
	push := func(at Time) {
		q.push(event{at: at, seq: seq, slot: int32(seq)})
		seq++
	}
	for i := 0; i < 100; i++ {
		push(Time(i%7) * 10 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		push(Time(i+1) * time.Hour)
	}
	if q.overflow.len() == 0 {
		t.Fatal("hour-scale timers never reached the overflow heap")
	}
	got := calDrain(t, q)
	if len(got) != 200 {
		t.Fatalf("drained %d events, want 200", len(got))
	}
	if got[len(got)-1].at != 100*time.Hour {
		t.Fatalf("last pop at %v, want 100h", got[len(got)-1].at)
	}
}

// TestCalQueueSaturation pins the terminal-window behaviour: events at
// or near the maximum representable time must be stored and drained in
// order, not spin the day-advance loop or alias earlier windows.
func TestCalQueueSaturation(t *testing.T) {
	q := newCalQueue()
	ats := []Time{0, maxTime, maxTime - 1, 1, maxTime, maxTime - (1 << 40)}
	for i, at := range ats {
		q.push(event{at: at, seq: uint64(i), slot: int32(i)})
	}
	got := calDrain(t, q)
	if len(got) != len(ats) {
		t.Fatalf("drained %d events, want %d", len(got), len(ats))
	}
	wantSeq := []uint64{0, 3, 5, 2, 1, 4}
	for i, e := range got {
		if e.seq != wantSeq[i] {
			t.Fatalf("pop %d: got seq %d, want %d", i, e.seq, wantSeq[i])
		}
	}
	// The queue must keep working after visiting the terminal window.
	q.push(event{at: 5, seq: 100, slot: 100})
	if e := q.pop(); e.seq != 100 {
		t.Fatalf("post-terminal pop: got %+v", e)
	}
}

// TestCalQueueCompact spreads events across front, buckets and
// overflow, compacts half away, and checks the survivors' population
// and order.
func TestCalQueueCompact(t *testing.T) {
	q := newCalQueue()
	for i := 0; i < 600; i++ {
		var at Time
		switch i % 3 {
		case 0:
			at = Time(i) * time.Microsecond
		case 1:
			at = Time(i) * time.Millisecond
		default:
			at = Time(i) * time.Minute
		}
		q.push(event{at: at, seq: uint64(i), slot: int32(i)})
	}
	q.peek() // force a bucket into front
	q.compact(func(slot int32) bool { return slot%2 == 0 })
	if q.len() != 300 {
		t.Fatalf("compact left %d events, want 300", q.len())
	}
	got := calDrain(t, q)
	for _, e := range got {
		if e.slot%2 != 0 {
			t.Fatalf("compact kept slot %d", e.slot)
		}
	}
	if len(got) != 300 {
		t.Fatalf("drained %d events, want 300", len(got))
	}
}

// TestCalQueueBimodalMillionProperty is the at-scale property test for
// the wheel: a clustered bimodal workload — MAC-scale sub-microsecond
// bursts plus hour-scale stragglers — pushed past one million pending
// events, then drained and re-grown so occupancy crosses the 2× grow
// and quarter-bucket shrink thresholds several times, with day
// rollovers forced through the overflow heap throughout. Properties
// checked: every pop respects the (at, seq) total order, the
// push/pop multisets match exactly (order-insensitive checksum), the
// wheel both grew and shrank, the overflow heap and multiple day
// re-anchors were actually exercised, and the population count is
// exact at every phase boundary.
func TestCalQueueBimodalMillionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event property test")
	}
	q := newCalQueue()
	rng := rand.New(rand.NewSource(9))

	var (
		seq             uint64
		pushed, popped  int
		sumPush, sumPop uint64
		now             Time // scheduler discipline: never push before the last pop
		last            event
		grows, shrinks  int
		dayMoves        int
		overflowSeen    bool
		prevNbkt        = q.nbkt
		prevDay         = q.dayStart
	)
	mix := func(e event) uint64 {
		h := uint64(e.at)*0x9e3779b97f4a7c15 ^ (e.seq * 0xbf58476d1ce4e5b9)
		return h ^ (h >> 29)
	}
	note := func() {
		if q.nbkt > prevNbkt {
			grows++
		} else if q.nbkt < prevNbkt {
			shrinks++
		}
		prevNbkt = q.nbkt
		if q.dayStart != prevDay {
			dayMoves++
			prevDay = q.dayStart
		}
		if q.overflow.len() > 0 {
			overflowSeen = true
		}
	}
	push := func(at Time) {
		e := event{at: at, seq: seq, slot: int32(seq & 0x3fffffff)}
		seq++
		q.push(e)
		pushed++
		sumPush += mix(e)
		note()
	}
	pop := func() {
		e := q.pop()
		if popped > 0 && e.less(last) {
			t.Fatalf("pop order violated: %+v after %+v", e, last)
		}
		last = e
		if e.at > now {
			now = e.at
		}
		popped++
		sumPop += mix(e)
		note()
	}
	// Bimodal pushes anchored at the current drain point: dense
	// sub-microsecond cluster (weight 9) and sparse hour-scale tail
	// (weight 1), the latter guaranteed to land beyond the day.
	bimodal := func(n int) {
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				push(now + Time(1+rng.Intn(3600))*time.Second)
			} else {
				push(now + Time(rng.Intn(2000)))
			}
		}
	}

	const peak = 1_100_000
	bimodal(peak)
	if q.len() != peak {
		t.Fatalf("population %d after push phase, want %d", q.len(), peak)
	}
	if grows == 0 {
		t.Fatalf("wheel never grew on the way to %d pending", peak)
	}
	if !overflowSeen {
		t.Fatal("hour-scale tail never reached the overflow heap")
	}

	// Drain to a sliver so occupancy falls through the quarter-bucket
	// shrink threshold repeatedly, then rebuild the population twice
	// more so the 2× grow threshold is crossed from a calibrated (not
	// initial) wheel state.
	for cycle := 0; cycle < 2; cycle++ {
		for q.len() > peak/20 {
			pop()
		}
		if shrinks == 0 {
			t.Fatalf("cycle %d: wheel never shrank draining to %d pending", cycle, q.len())
		}
		bimodal(peak / 2)
	}
	for q.len() > 0 {
		pop()
	}

	if pushed != popped {
		t.Fatalf("popped %d of %d pushed events", popped, pushed)
	}
	if sumPush != sumPop {
		t.Fatalf("push/pop multisets diverged: checksum %x vs %x", sumPush, sumPop)
	}
	if grows < 2 || shrinks < 2 {
		t.Fatalf("occupancy thresholds undercrossed: %d grows, %d shrinks, want ≥2 each", grows, shrinks)
	}
	if dayMoves < 10 {
		t.Fatalf("only %d day re-anchors; the hour-scale tail should force many", dayMoves)
	}
	if q.nbkt != calMinBuckets {
		t.Fatalf("empty queue kept %d buckets, want the floor %d", q.nbkt, calMinBuckets)
	}
}

// TestCalQueueCalibratedShiftClamps pins the width-recalibration
// bounds: zero gaps (same-instant bursts) never drive the width below
// the floor, and huge gaps never push it past the ceiling.
func TestCalQueueCalibratedShiftClamps(t *testing.T) {
	q := newCalQueue()
	if got := q.calibratedShift(); got != calInitShift {
		t.Fatalf("no samples: shift %d, want the current %d kept", got, calInitShift)
	}
	// Same-instant bursts record no samples at all.
	for i := 0; i < 100; i++ {
		q.push(event{at: 42, seq: uint64(i), slot: int32(i)})
	}
	for q.len() > 0 {
		q.pop()
	}
	if q.gapN != 1 { // only the 0→42 step registers
		t.Fatalf("same-instant burst recorded %d gap samples, want 1", q.gapN)
	}
	// Tiny gaps clamp at the floor…
	q.gapN, q.gapIdx = 0, 0
	for i := 0; i < calGapSamples; i++ {
		q.gaps[i] = 1
	}
	q.gapN = calGapSamples
	if got := q.calibratedShift(); got != calMinShift {
		t.Fatalf("1ns gaps: shift %d, want floor %d", got, calMinShift)
	}
	// …and day-scale gaps clamp at the ceiling.
	for i := 0; i < calGapSamples; i++ {
		q.gaps[i] = 24 * time.Hour
	}
	if got := q.calibratedShift(); got != calMaxShift {
		t.Fatalf("24h gaps: shift %d, want ceiling %d", got, calMaxShift)
	}
}
