package sim

import (
	"fmt"
	"testing"
	"time"
)

// The differential harness below drives a serial Scheduler and a
// Sharded coordinator with the same synthetic workload and demands the
// complete observable behaviour match: per-lane fire sequences, the
// global (solo) fire sequence, each local event's view of how many
// global events preceded it, processed counts and clocks.
//
// The workload honours the same contract the MAC/protocol layers do —
// the contract the sharded kernel's correctness rests on:
//
//   - a local event touches only its own lane's state, schedules only
//     on its own lane (After, any delay, including zero) or via
//     AfterEmit with delay >= the lookahead bound, and cancels only
//     its own lane's timers;
//   - emitting and global-lane events execute solo and may schedule
//     onto or cancel timers on any lane.
//
// Everything an event does is derived deterministically from its id
// (splitmix64), and child ids are tree-coded (id*5+k+base) so both
// kernels generate the identical workload without sharing a counter.

const (
	harnessLookahead = 4 * time.Millisecond
	harnessHorizon   = 3 * time.Second
	// harnessMaxID truncates the spawn tree: events with larger ids are
	// leaves. Initial ids sit below harnessIDBase, so child ids never
	// collide with roots or with other parents' children.
	harnessMaxID  = 200_000
	harnessIDBase = 1 << 12
)

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func childID(id uint64, k int) uint64 { return id*5 + uint64(k) + harnessIDBase }

type fireRec struct {
	id    uint64
	at    Time
	epoch uint64 // global events fired before this one
}

// shardSide is one kernel under test plus the workload state it
// mutates. lanes[i] is the scheduler a lane-i event schedules on; on
// the serial side every entry is the same scheduler, so the identical
// workload code drives both kernels.
type shardSide struct {
	lanes  []*Scheduler
	global *Scheduler

	epoch   uint64
	gFired  []fireRec
	lFired  [][]fireRec
	lTimers [][]Timer
}

func newSerialSide(nLanes int, queue QueueKind) *shardSide {
	s := NewSchedulerQueue(queue)
	w := &shardSide{global: s, lFired: make([][]fireRec, nLanes), lTimers: make([][]Timer, nLanes)}
	for i := 0; i < nLanes; i++ {
		w.lanes = append(w.lanes, s)
	}
	return w
}

func newShardedSide(c *Sharded) *shardSide {
	n := c.NumShards()
	w := &shardSide{global: c.Global(), lFired: make([][]fireRec, n), lTimers: make([][]Timer, n)}
	for i := 0; i < n; i++ {
		w.lanes = append(w.lanes, c.Shard(i))
	}
	return w
}

func (w *shardSide) spawnLocal(lane int, id uint64, d Time) {
	tm := w.lanes[lane].After(d, func() { w.runLocal(lane, id) })
	w.lTimers[lane] = append(w.lTimers[lane], tm)
}

func (w *shardSide) spawnEmit(lane int, id uint64, d Time) {
	tm := w.lanes[lane].AfterEmit(d, func() { w.runGlobal(id) })
	w.lTimers[lane] = append(w.lTimers[lane], tm)
}

func (w *shardSide) spawnGlobal(id uint64, d Time) {
	w.global.After(d, func() { w.runGlobal(id) })
}

// runLocal is a lane-local event: own-lane state only.
func (w *shardSide) runLocal(lane int, id uint64) {
	w.lFired[lane] = append(w.lFired[lane], fireRec{id, w.lanes[lane].Now(), w.epoch})
	r := splitmix(id)
	if id < harnessMaxID {
		n := int(r % 3)
		r /= 3
		for k := 0; k < n; k++ {
			d := Time(r%32) * time.Millisecond
			r /= 32
			w.spawnLocal(lane, childID(id, k), d)
		}
		if r%4 == 0 {
			r /= 4
			d := harnessLookahead + Time(r%32)*time.Millisecond
			r /= 32
			w.spawnEmit(lane, childID(id, 3), d)
		}
	}
	if r%3 == 0 && len(w.lTimers[lane]) > 0 {
		w.lTimers[lane][int(r>>8)%len(w.lTimers[lane])].Cancel()
	}
}

// runGlobal is a solo event (global lane or emitted): it may reach
// into any lane, like a radio delivery or a scenario-driven send.
func (w *shardSide) runGlobal(id uint64) {
	w.gFired = append(w.gFired, fireRec{id, w.global.Now(), w.epoch})
	w.epoch++
	r := splitmix(id ^ 0xabcdef)
	if id < harnessMaxID {
		n := int(r % 3)
		r /= 3
		for k := 0; k < n; k++ {
			lane := int(r % uint64(len(w.lanes)))
			r /= 7
			d := Time(r%32) * time.Millisecond
			r /= 32
			w.spawnLocal(lane, childID(id, k), d)
		}
	}
	if r%3 == 0 {
		lane := int(r>>4) % len(w.lanes)
		if len(w.lTimers[lane]) > 0 {
			w.lTimers[lane][int(r>>16)%len(w.lTimers[lane])].Cancel()
		}
	}
	// Postpone/Unpostpone mirror the MAC fold: a solo event (a carrier
	// onset, in protocol terms) pushes a pending lane timer forward
	// without firing it, or revokes an earlier push. Both kernels must
	// agree on the elided-hop count and on where the timer finally
	// fires.
	if r%5 == 1 {
		lane := int(r>>6) % len(w.lanes)
		if n := len(w.lTimers[lane]); n > 0 {
			tm := w.lTimers[lane][int(r>>20)%n]
			if (r>>40)%4 == 0 {
				tm.Unpostpone()
			} else {
				tm.Postpone(w.global.Now() + Time((r>>12)%64)*time.Millisecond)
			}
		}
	}
}

// seedWorkload plants the identical initial event population on a side.
func (w *shardSide) seedWorkload(seed uint64) {
	r := splitmix(seed)
	n0 := 8 + int(r%24)
	for i := 0; i < n0; i++ {
		rr := splitmix(seed ^ uint64(i+1))
		d := Time(rr%200) * time.Millisecond
		id := uint64(i)
		if int(rr>>8)%(len(w.lanes)+1) == len(w.lanes) {
			w.spawnGlobal(id, d)
		} else {
			w.spawnLocal(int(rr>>8)%len(w.lanes), id, d)
		}
	}
}

func compareSides(t testing.TB, label string, serial, sharded *shardSide, sn uint64, cn uint64) {
	t.Helper()
	if sn != cn {
		t.Fatalf("%s: processed diverged: serial %d, sharded %d", label, sn, cn)
	}
	if len(serial.gFired) != len(sharded.gFired) {
		t.Fatalf("%s: global fires diverged: serial %d, sharded %d",
			label, len(serial.gFired), len(sharded.gFired))
	}
	for i := range serial.gFired {
		if serial.gFired[i] != sharded.gFired[i] {
			t.Fatalf("%s: global fire %d diverged: serial %+v, sharded %+v",
				label, i, serial.gFired[i], sharded.gFired[i])
		}
	}
	for lane := range serial.lFired {
		a, b := serial.lFired[lane], sharded.lFired[lane]
		if len(a) != len(b) {
			t.Fatalf("%s: lane %d fires diverged: serial %d, sharded %d", label, lane, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: lane %d fire %d diverged: serial %+v, sharded %+v",
					label, lane, i, a[i], b[i])
			}
		}
	}
}

// runShardDifferential drives both kernels with the workload derived
// from seed and compares every observable.
func runShardDifferential(t testing.TB, seed uint64, nLanes, workers int, queue QueueKind, lookahead Time) {
	t.Helper()
	label := fmt.Sprintf("seed=%d lanes=%d workers=%d la=%v", seed, nLanes, workers, lookahead)

	serial := newSerialSide(nLanes, queue)
	serial.seedWorkload(seed)
	sn := serial.global.Run(harnessHorizon)

	coord := NewSharded(ShardedConfig{Queue: queue, Shards: nLanes, Workers: workers, Lookahead: lookahead})
	sharded := newShardedSide(coord)
	sharded.seedWorkload(seed)
	cn := coord.Run(harnessHorizon)

	compareSides(t, label, serial, sharded, sn, cn)
	if se, ce := serial.global.Elided(), coord.Elided(); se != ce {
		t.Fatalf("%s: elided hops diverged: serial %d, sharded %d", label, se, ce)
	}
	if serial.global.Now() != coord.Now() {
		t.Fatalf("%s: clocks diverged: serial %v, sharded %v", label, serial.global.Now(), coord.Now())
	}
	if coord.Pending() < 0 {
		t.Fatalf("%s: negative pending count %d", label, coord.Pending())
	}
}

// TestShardedDifferentialSynthetic sweeps seeds across lane/worker
// layouts — the property half of the fuzz/differential story for the
// sharded kernel.
func TestShardedDifferentialSynthetic(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for _, layout := range []struct{ lanes, workers int }{
		{1, 1}, {3, 1}, {3, 4}, {8, 2}, {8, 8},
	} {
		for seed := 0; seed < seeds; seed++ {
			runShardDifferential(t, uint64(seed), layout.lanes, layout.workers, QueueQuad, harnessLookahead)
		}
	}
}

// TestShardedDifferentialZeroLookahead pins the degenerate case: with
// no usable lookahead the coordinator must fall back to pure sweeps
// and still execute the exact serial schedule.
func TestShardedDifferentialZeroLookahead(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		runShardDifferential(t, uint64(seed), 4, 4, QueueQuad, 0)
	}
}

// TestShardedDifferentialRefQueue crosses the scheduler axis with the
// queue axis at the kernel level.
func TestShardedDifferentialRefQueue(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		runShardDifferential(t, uint64(seed), 4, 2, QueueRef, harnessLookahead)
	}
}

// FuzzShardedDifferential lets the fuzzer hunt for quantised-time
// event traces that make the sharded coordinator and the serial kernel
// disagree. `go test` runs the seed corpus; `go test -fuzz
// FuzzShardedDifferential ./internal/sim` explores.
func FuzzShardedDifferential(f *testing.F) {
	f.Add(uint64(0), uint8(1), uint8(1))
	f.Add(uint64(1), uint8(3), uint8(4))
	f.Add(uint64(7), uint8(8), uint8(2))
	f.Add(uint64(1234567), uint8(5), uint8(8))
	// Seeds whose solo events postpone pending timers (the fold path):
	// dense global populations make the r%5 branch fire repeatedly.
	f.Add(uint64(42), uint8(4), uint8(4))
	f.Add(uint64(9001), uint8(2), uint8(7))
	f.Add(uint64(777), uint8(6), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, lanes, workers uint8) {
		nLanes := int(lanes%8) + 1
		nWorkers := int(workers%8) + 1
		runShardDifferential(t, seed, nLanes, nWorkers, QueueQuad, harnessLookahead)
	})
}

// TestShardedSameInstantMerge pins the sweep's rank merge: locals and
// globals landing on one instant must interleave exactly as the serial
// kernel's insertion sequence dictates.
func TestShardedSameInstantMerge(t *testing.T) {
	run := func(mk func() (*Scheduler, *Scheduler, func(Time) uint64)) []int {
		lane, global, drive := mk()
		var order []int
		at := 10 * time.Millisecond
		lane.At(at, func() { order = append(order, 0) })
		global.At(at, func() { order = append(order, 1) })
		lane.At(at, func() {
			order = append(order, 2)
			lane.At(at, func() { order = append(order, 4) })
		})
		global.At(at, func() { order = append(order, 3) })
		drive(time.Second)
		return order
	}
	serial := run(func() (*Scheduler, *Scheduler, func(Time) uint64) {
		s := NewScheduler()
		return s, s, s.Run
	})
	sharded := run(func() (*Scheduler, *Scheduler, func(Time) uint64) {
		c := NewSharded(ShardedConfig{Shards: 2, Workers: 2, Lookahead: time.Millisecond})
		return c.Shard(0), c.Global(), c.Run
	})
	if fmt.Sprint(serial) != fmt.Sprint(sharded) {
		t.Fatalf("same-instant order diverged: serial %v, sharded %v", serial, sharded)
	}
	if len(serial) != 5 {
		t.Fatalf("serial fired %d of 5 events: %v", len(serial), serial)
	}
}

// TestShardedAfterEmitGuard: an emitting event scheduled inside a
// parallel window with a delay below the lookahead bound would be a
// causality violation — the kernel must refuse loudly rather than
// diverge silently.
func TestShardedAfterEmitGuard(t *testing.T) {
	c := NewSharded(ShardedConfig{Shards: 2, Workers: 1, Lookahead: 4 * time.Millisecond})
	// Both lanes active below wEnd and no global event: a window forms.
	c.Shard(0).After(time.Millisecond, func() {
		c.Shard(0).AfterEmit(time.Millisecond, func() {})
	})
	c.Shard(1).After(time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AfterEmit below the lookahead bound inside a window did not panic")
		}
	}()
	c.Run(time.Second)
}

// TestShardedLaneRunPanics: driving a lane directly would bypass the
// coordinator's ordering machinery; the kernel must refuse.
func TestShardedLaneRunPanics(t *testing.T) {
	c := NewSharded(ShardedConfig{Shards: 2, Workers: 1, Lookahead: time.Millisecond})
	defer func() {
		if recover() == nil {
			t.Fatal("Run on a sharded lane did not panic")
		}
	}()
	c.Shard(0).Run(time.Second)
}

// TestShardedStop: Stop must halt the run at an event boundary, like
// the serial scheduler's Stop.
func TestShardedStop(t *testing.T) {
	c := NewSharded(ShardedConfig{Shards: 2, Workers: 1, Lookahead: time.Millisecond})
	fired := 0
	c.Global().After(time.Millisecond, func() { fired++; c.Stop() })
	c.Global().After(2*time.Millisecond, func() { fired++ })
	c.Run(time.Second)
	if fired != 1 {
		t.Fatalf("fired %d events after Stop, want 1", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d after Stop, want the 1 unexecuted event", c.Pending())
	}
	// The run can resume.
	c.Run(time.Second)
	if fired != 2 {
		t.Fatalf("resume executed %d total, want 2", fired)
	}
}

// TestShardedAccessors pins the coordinator's config clamping and
// introspection surface.
func TestShardedAccessors(t *testing.T) {
	c := NewSharded(ShardedConfig{Shards: 0, Workers: 0, Lookahead: -time.Second})
	if c.NumShards() != 1 || c.Workers() != 1 || c.Lookahead() != 0 {
		t.Fatalf("clamping failed: shards=%d workers=%d la=%v", c.NumShards(), c.Workers(), c.Lookahead())
	}
	c = NewSharded(ShardedConfig{Shards: 4, Workers: 2, Lookahead: time.Millisecond})
	if c.NumShards() != 4 || c.Workers() != 2 || c.Lookahead() != time.Millisecond {
		t.Fatalf("config not honoured: shards=%d workers=%d la=%v", c.NumShards(), c.Workers(), c.Lookahead())
	}
	if c.Now() != 0 || c.Processed() != 0 || c.Pending() != 0 {
		t.Fatalf("fresh coordinator not at rest: now=%v processed=%d pending=%d", c.Now(), c.Processed(), c.Pending())
	}
	c.Run(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("idle run left clock at %v, want the horizon", c.Now())
	}
}

// TestSchedulerKindString pins the CLI spellings.
func TestSchedulerKindString(t *testing.T) {
	if SchedulerSerial.String() != "serial" || SchedulerSharded.String() != "sharded" {
		t.Fatalf("kind names diverged: %v, %v", SchedulerSerial, SchedulerSharded)
	}
	if got := SchedulerKind(9).String(); got != "SchedulerKind(9)" {
		t.Fatalf("unknown kind stringer: %q", got)
	}
	if SchedulerNames() != "serial, sharded" {
		t.Fatalf("SchedulerNames: %q", SchedulerNames())
	}
}
