package sim

import (
	"container/heap"
	"fmt"
)

// QueueKind selects the Scheduler's event-queue implementation. Every
// kind realises the same total order — (time, insertion sequence) —
// so two runs that differ only in QueueKind execute bit-identical
// event schedules; only wall time changes. This mirrors the radio
// layer's grid/brute pattern: fast implementations, plus a simple
// reference retained for differential testing.
type QueueKind int

const (
	// QueueQuad (the default) is an implicit 4-ary min-heap over
	// inline {at, seq, slot} values: no per-event heap object, no
	// interface dispatch on comparisons, and a tree half as deep as a
	// binary heap, so a sift touches fewer cache lines.
	QueueQuad QueueKind = iota
	// QueueRef is the original container/heap binary heap — `any`
	// boxing on push/pop, interface-dispatched comparisons — retained
	// as the reference implementation for differential testing and as
	// the baseline the scheduler microbenchmarks compare against.
	QueueRef
	// QueueCal is a self-resizing calendar/bucket queue (see calqueue.go):
	// O(1) enqueue/dequeue when timestamps cluster at SIFS/DIFS/slot
	// granularity, which is exactly the MAC-dominated distribution of
	// 10k+-node runs where the heap's O(log n) sift re-emerges in
	// profiles.
	QueueCal
)

// String names the queue kind as the -queue flags spell it.
func (k QueueKind) String() string {
	switch k {
	case QueueQuad:
		return "quad"
	case QueueRef:
		return "ref"
	case QueueCal:
		return "cal"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// QueueNames lists the registered queue kinds as ParseQueueKind spells
// them, for flag help text and validation errors (the same convention
// as SchedulerNames).
func QueueNames() string {
	return QueueQuad.String() + ", " + QueueCal.String() + ", " + QueueRef.String()
}

// ParseQueueKind resolves a -queue flag value to a QueueKind. The
// error enumerates the registered kinds, so a typo on the command line
// is self-correcting rather than a trip to the source.
func ParseQueueKind(name string) (QueueKind, error) {
	switch name {
	case "quad":
		return QueueQuad, nil
	case "ref":
		return QueueRef, nil
	case "cal":
		return QueueCal, nil
	default:
		return 0, fmt.Errorf("unknown queue kind %q (registered kinds: %s)", name, QueueNames())
	}
}

// event is one queue entry: the ordering key (at, seq) plus the pool
// slot holding the callback. Entries are 24 bytes, stored inline in
// the queue's backing array, and contain no pointers, so sifting moves
// flat values and the GC never scans the queue.
type event struct {
	at   Time
	seq  uint64
	slot int32
}

// less is the one total order every queue implementation must realise.
// seq values are unique, so the order is strict and pop order is fully
// determined regardless of the heap's internal layout.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is the min-queue contract the Scheduler runs against.
type eventQueue interface {
	push(event)
	// peek returns the minimum entry; undefined when len() == 0.
	peek() event
	// pop removes and returns the minimum entry.
	pop() event
	len() int
	// compact removes every entry whose keep(slot) reports false. The
	// surviving entries retain their (at, seq) keys, so pop order is
	// unaffected.
	compact(keep func(slot int32) bool)
}

// newEventQueue constructs the implementation for a kind.
func newEventQueue(kind QueueKind) eventQueue {
	switch kind {
	case QueueQuad:
		return &quadQueue{}
	case QueueRef:
		return &refQueue{}
	case QueueCal:
		return newCalQueue()
	default:
		panic(fmt.Sprintf("sim: unknown QueueKind %d", int(kind)))
	}
}

// quadQueue is an implicit 4-ary min-heap in one flat slice. The wider
// node brings two wins over the binary heap it replaces: the tree is
// half as deep (log4 vs log2), and the four children of node i sit in
// adjacent slots 4i+1..4i+4 — usually one cache line — so the extra
// comparisons per level are nearly free while each level saved avoids
// a likely cache miss. Push and pop do no allocation beyond amortised
// slice growth.
type quadQueue struct {
	a []event
}

func (q *quadQueue) len() int    { return len(q.a) }
func (q *quadQueue) peek() event { return q.a[0] }

func (q *quadQueue) push(e event) {
	q.a = append(q.a, e)
	q.siftUp(len(q.a) - 1)
}

func (q *quadQueue) pop() event {
	a := q.a
	min := a[0]
	last := len(a) - 1
	a[0] = a[last]
	q.a = a[:last]
	if last > 1 {
		q.siftDown(0)
	}
	return min
}

// siftUp moves the entry at i toward the root until its parent is
// smaller, shifting ancestors down in a hole-filling loop (one store
// per level instead of a full swap).
func (q *quadQueue) siftUp(i int) {
	a := q.a
	e := a[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = e
}

// siftDown restores heap order below i: at each level the smallest of
// up to four adjacent children is promoted into the hole.
func (q *quadQueue) siftDown(i int) {
	a := q.a
	n := len(a)
	e := a[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if a[j].less(a[m]) {
				m = j
			}
		}
		if !a[m].less(e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

func (q *quadQueue) compact(keep func(int32) bool) {
	live := q.a[:0]
	for _, e := range q.a {
		if keep(e.slot) {
			live = append(live, e)
		}
	}
	q.a = live
	// Floyd heap construction: sift down every internal node, deepest
	// first. Internal nodes are 0 .. (n-2)/4.
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		q.siftDown(i)
	}
}

// refHeap implements heap.Interface the way the original scheduler
// did: `any`-boxed push/pop (one allocation per push) and interface-
// dispatched comparisons. It exists to keep the old cost profile
// measurable and to witness, in the differential tests, that the quad
// heap changes nothing but speed.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) {
	e, ok := x.(event)
	if !ok {
		panic(fmt.Sprintf("sim: refHeap.Push got %T, want event", x))
	}
	*h = append(*h, e)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// refQueue adapts refHeap to the eventQueue contract.
type refQueue struct {
	h refHeap
}

func (q *refQueue) len() int     { return len(q.h) }
func (q *refQueue) peek() event  { return q.h[0] }
func (q *refQueue) push(e event) { heap.Push(&q.h, e) }
func (q *refQueue) pop() event   { return heap.Pop(&q.h).(event) }

func (q *refQueue) compact(keep func(int32) bool) {
	live := q.h[:0]
	for _, e := range q.h {
		if keep(e.slot) {
			live = append(live, e)
		}
	}
	q.h = live
	heap.Init(&q.h)
}
