package sim

import (
	"math"
	"math/bits"
)

// calQueue is a self-resizing calendar/bucket queue (Brown 1988): a
// rotating wheel of fixed-width time slots ("buckets") for the current
// "day", an overflow heap for events beyond it, and a small "front"
// heap holding the bucket currently being serviced. Simulation
// timestamps are heavily clustered — SIFS/DIFS/slot-time MAC steps now,
// sparse mobility/route timers later — so with a bucket width near the
// sampled inter-event gap almost every push lands in its final bucket
// in O(1), and a pop is O(log f) in the few events sharing the current
// window instead of O(log n) in the whole population.
//
// Layout and invariants:
//
//   - front:     heapified events with at < winEnd (the service window).
//     The global minimum is always here when the queue is non-empty.
//   - buckets:   unsorted per-window slices for the rest of the current
//     day, window w of event e = (e.at >> shift) & (nbkt-1). Bucket
//     width is 1<<shift ns and nbkt is a power of two, so the day spans
//     exactly nbkt windows and no two in-day windows alias.
//   - overflow:  heapified events with at >= dayEnd ("next day or
//     later"); drained forward one day at a time.
//
// Servicing advances the window over the wheel, bulk-heapifying one
// bucket at a time into front. When the calendar part is empty the
// queue re-anchors the day directly at the overflow minimum, so sparse
// stretches cost O(log overflow) rather than a walk over empty buckets.
//
// Resizing: the wheel doubles when occupancy exceeds calGrowFactor
// events per bucket and halves (rebuilt to fit) when it falls below a
// quarter bucket, recalibrating the bucket width from a ring of sampled
// non-zero pop gaps (zero gaps — same-instant bursts — are ignored, or
// a burst of ties would drive the width to the floor). All bounds are
// powers of two so window indexing is a shift and a mask.
type calQueue struct {
	front    quadQueue
	buckets  [][]event
	overflow quadQueue

	n    int // total entries across all three stores
	bktN int // entries in buckets only

	nbkt  int  // len(buckets); power of two
	shift uint // bucket width = 1 << shift nanoseconds

	winStart Time // inclusive start of the service window
	winEnd   Time // exclusive end of the service window (maxTime = terminal)
	dayStart Time // inclusive start of the current day
	dayEnd   Time // exclusive end of the current day
	cur      int  // wheel index of the service window

	lastPop Time // previous pop's timestamp, for gap sampling
	gaps    [calGapSamples]Time
	gapIdx  int
	gapN    int

	scratch []event // reused gather buffer for rebuilds
}

const (
	maxTime = Time(math.MaxInt64)

	calMinBuckets = 1 << 4  // 16
	calMaxBuckets = 1 << 20 // ~1M buckets; beyond this, occupancy just grows
	calMinShift   = 9       // 512 ns — below any protocol timing constant
	calMaxShift   = 36      // ~69 s — above the longest mobility/route timer gap
	calInitShift  = 15      // ~33 µs — MAC slot-time scale, the seed workload
	calGapSamples = 32
	calGrowFactor = 2 // grow when n > calGrowFactor * nbkt
)

func newCalQueue() *calQueue {
	q := &calQueue{
		buckets: make([][]event, calMinBuckets),
		nbkt:    calMinBuckets,
		shift:   calInitShift,
	}
	q.anchorAt(0)
	return q
}

func (q *calQueue) len() int { return q.n }

func satAddTime(a, b Time) Time {
	if s := a + b; s >= a {
		return s
	}
	return maxTime
}

// anchorAt positions the day and service window so the first window
// contains t. It touches geometry only; the caller is responsible for
// (re)placing any events. When the window end saturates the queue
// enters terminal mode: one unbounded window, every event in front.
func (q *calQueue) anchorAt(t Time) {
	q.winStart = (t >> q.shift) << q.shift
	q.winEnd = satAddTime(q.winStart, Time(1)<<q.shift)
	q.dayStart = q.winStart
	q.dayEnd = satAddTime(q.winStart, Time(q.nbkt)<<q.shift)
	if q.winEnd == maxTime {
		q.dayEnd = maxTime
	}
	q.cur = int(t>>q.shift) & (q.nbkt - 1)
}

// anchor starts a fresh day at t and pulls every overflow event due
// within it into the calendar. Called with the calendar part empty.
func (q *calQueue) anchor(t Time) {
	q.anchorAt(t)
	for q.overflow.len() > 0 {
		if e := q.overflow.peek(); e.at < q.dayEnd || q.winEnd == maxTime {
			q.place(q.overflow.pop())
		} else {
			break
		}
	}
}

// place routes one event to the store its timestamp belongs in. In
// terminal mode (winEnd == maxTime) everything goes to front — the
// queue degenerates to a plain heap rather than looping on a day that
// can no longer advance.
func (q *calQueue) place(e event) {
	switch {
	case e.at < q.winEnd || q.winEnd == maxTime:
		q.front.push(e)
	case e.at < q.dayEnd:
		i := int(e.at>>q.shift) & (q.nbkt - 1)
		q.buckets[i] = append(q.buckets[i], e)
		q.bktN++
	default:
		q.overflow.push(e)
	}
}

func (q *calQueue) push(e event) {
	q.place(e)
	q.n++
	if q.n > calGrowFactor*q.nbkt && q.nbkt < calMaxBuckets {
		q.rebuild(q.nbkt << 1)
	}
}

// service restores the invariant that front holds the global minimum,
// advancing the window across the wheel and re-anchoring past empty
// stretches. No-op when front is already non-empty or the queue is
// empty.
func (q *calQueue) service() {
	for q.front.len() == 0 {
		if q.bktN == 0 {
			if q.overflow.len() == 0 {
				return // queue empty
			}
			// Calendar empty: jump the day straight to the overflow
			// minimum instead of walking empty windows toward it. The
			// minimum lands in the first window, so front fills here.
			q.anchor(q.overflow.peek().at)
			continue
		}
		// Some bucket in the current day is non-empty; walk to it one
		// window at a time (empty checks are O(1) per window).
		q.cur = (q.cur + 1) & (q.nbkt - 1)
		q.winStart = q.winEnd
		q.winEnd = satAddTime(q.winStart, Time(1)<<q.shift)
		if q.winStart >= q.dayEnd {
			// Defensive: with bktN > 0 the walk finds a bucket before
			// the day ends, but re-anchoring keeps even an impossible
			// state from spinning.
			q.anchor(q.dayEnd)
			continue
		}
		if b := q.buckets[q.cur]; len(b) > 0 {
			q.bktN -= len(b)
			q.loadFront(b)
			q.buckets[q.cur] = b[:0]
		}
	}
}

// loadFront bulk-loads one bucket into the (empty) front heap with
// Floyd construction — O(k) instead of k heap pushes.
func (q *calQueue) loadFront(b []event) {
	q.front.a = append(q.front.a, b...)
	for i := (len(q.front.a) - 2) >> 2; i >= 0; i-- {
		q.front.siftDown(i)
	}
}

func (q *calQueue) peek() event {
	q.service()
	return q.front.peek()
}

func (q *calQueue) pop() event {
	q.service()
	e := q.front.pop()
	q.n--
	if e.at > q.lastPop {
		q.gaps[q.gapIdx] = e.at - q.lastPop
		q.gapIdx = (q.gapIdx + 1) % calGapSamples
		if q.gapN < calGapSamples {
			q.gapN++
		}
	}
	q.lastPop = e.at
	if q.nbkt > calMinBuckets && q.n < q.nbkt>>2 {
		q.rebuild(calFitBuckets(q.n))
	}
	return e
}

// calFitBuckets picks the wheel size for a population of n events:
// the smallest power of two ≥ n, clamped to the configured bounds.
func calFitBuckets(n int) int {
	if n <= calMinBuckets {
		return calMinBuckets
	}
	b := 1 << bits.Len(uint(n-1))
	if b > calMaxBuckets {
		return calMaxBuckets
	}
	return b
}

// calibratedShift derives the bucket width from the sampled pop gaps:
// three times the mean non-zero gap, rounded up to a power of two, so
// a bucket holds a few events on average. With no samples yet the
// current width is kept.
func (q *calQueue) calibratedShift() uint {
	var sum Time
	cnt := 0
	for i := 0; i < q.gapN; i++ {
		if g := q.gaps[i]; g > 0 {
			sum += g
			cnt++
		}
	}
	if cnt == 0 {
		return q.shift
	}
	target := uint64(3 * (sum / Time(cnt)))
	shift := uint(bits.Len64(target))
	if shift < calMinShift {
		return calMinShift
	}
	if shift > calMaxShift {
		return calMaxShift
	}
	return shift
}

// rebuild regenerates the calendar with a new wheel size and a freshly
// calibrated bucket width, re-anchored at the current minimum. Cost is
// O(n); growth doubles and shrink quarters, so it amortises to O(1)
// per operation.
func (q *calQueue) rebuild(nbkt int) {
	all := q.scratch[:0]
	all = append(all, q.front.a...)
	for i := range q.buckets {
		all = append(all, q.buckets[i]...)
		q.buckets[i] = q.buckets[i][:0]
	}
	all = append(all, q.overflow.a...)
	q.front.a = q.front.a[:0]
	q.overflow.a = q.overflow.a[:0]
	q.bktN = 0
	if nbkt != q.nbkt {
		q.buckets = make([][]event, nbkt)
		q.nbkt = nbkt
	}
	q.shift = q.calibratedShift()

	min := maxTime
	for _, e := range all {
		if e.at < min {
			min = e.at
		}
	}
	if len(all) == 0 {
		min = q.winStart
	}
	q.anchorAt(min)
	for _, e := range all {
		q.place(e)
	}
	q.scratch = all[:0]
}

func (q *calQueue) compact(keep func(int32) bool) {
	q.front.compact(keep)
	q.overflow.compact(keep)
	q.bktN = 0
	for i, b := range q.buckets {
		live := b[:0]
		for _, e := range b {
			if keep(e.slot) {
				live = append(live, e)
			}
		}
		q.buckets[i] = live
		q.bktN += len(live)
	}
	q.n = q.front.len() + q.bktN + q.overflow.len()
}
