// Sharded parallel scheduler (DESIGN.md §7).
//
// The coordinator partitions a simulation's event population into
// per-region lanes (one pooled Scheduler per shard) plus one global
// lane, and alternates between two execution modes:
//
//   - solo: single-threaded execution in exact serial order, used for
//     every event that can touch cross-node state — radio finish
//     events, scenario-level joins and sends (scheduled on the global
//     lane), and the MAC's transmit-arming callbacks (declared via
//     AfterEmit). All of these ride the coordinator's global queue.
//
//   - window: when the next lookahead window [T, T+δ) contains no
//     global event, each shard executes its local events inside the
//     window concurrently. Local events (plain After/At on a shard
//     lane) may only touch their own node's state, read the frozen
//     carrier-sense state, and schedule further events — the contract
//     the MAC/protocol layers already satisfy.
//
// δ is the medium's minimum transmit arming delay (mac.Config
// .MinTxDelay): every transmission is started from a timer armed at
// least δ ahead, so no event inside the window can change the channel,
// and carrier-sense reads commute with everything else in the window.
//
// Determinism: every event carries the rank it would have received
// from the serial scheduler's allocation counter. Solo execution
// allocates ranks directly. Window execution allocates per-shard band
// keys (windowBase + per-shard counter — ordered correctly within a
// shard, never compared across shards) and logs an execution record
// per event; the window barrier then replays the logs in (time, rank)
// order — a deterministic simulation of the serial allocation order —
// and assigns exact ranks to everything the window scheduled. The
// coordinator merges lanes by these exact ranks, so the event order,
// and therefore every result bit, is identical to the serial kernel
// regardless of shard count or worker count.
package sim

import (
	"fmt"
	"math"
	"sync"
)

// SchedulerKind selects the simulation kernel's execution engine. Both
// kinds execute bit-identical schedules; only wall time changes. This
// extends the repo's fast-vs-reference pattern (grid/brute index,
// quad/ref queue, batch/ref reception) with a serial/sharded axis.
type SchedulerKind int

const (
	// SchedulerSerial (the default) is the single-threaded kernel.
	SchedulerSerial SchedulerKind = iota
	// SchedulerSharded is the parallel kernel: spatial shards execute
	// conservative lookahead windows concurrently, with a barrier
	// replay keeping the event order bit-identical to serial.
	SchedulerSharded
)

// String names the kind as the agbench -scheduler flag spells it.
func (k SchedulerKind) String() string {
	switch k {
	case SchedulerSerial:
		return "serial"
	case SchedulerSharded:
		return "sharded"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// SchedulerNames lists the registered scheduler kinds as
// ParseSchedulerKind spells them, for CLI help and validation errors
// (the same convention as QueueNames).
func SchedulerNames() string {
	return SchedulerSerial.String() + ", " + SchedulerSharded.String()
}

// ParseSchedulerKind resolves a -scheduler flag value to a
// SchedulerKind. The error enumerates the registered kinds, so a typo
// on the command line is self-correcting rather than a trip to the
// source (the same convention as ParseQueueKind).
func ParseSchedulerKind(name string) (SchedulerKind, error) {
	switch name {
	case "serial":
		return SchedulerSerial, nil
	case "sharded":
		return SchedulerSharded, nil
	default:
		return 0, fmt.Errorf("unknown scheduler kind %q (registered kinds: %s)", name, SchedulerNames())
	}
}

const (
	laneGlobal = -1
	laneNone   = -2

	// rankPending marks a slot scheduled inside a parallel window whose
	// exact serial rank the barrier has not assigned yet.
	rankPending = ^uint64(0)
	// execTag marks a slot that executed inside the current window; the
	// low bits index the shard's execution record for the barrier
	// replay. Real ranks are event counts and never reach bit 63.
	execTag = uint64(1) << 63
)

// gEvent is one cross-lane queue entry: the ordering key (at, rank)
// plus the owning lane and pool slot of the callback. The same shape
// doubles as a barrier-replay work item (lane = shard, slot = record
// index).
type gEvent struct {
	at   Time
	rank uint64
	lane int32
	slot int32
}

func (e gEvent) less(o gEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.rank < o.rank
}

// gHeap is an implicit 4-ary min-heap over gEvent, the same layout as
// the kernel's quadQueue.
type gHeap struct {
	a []gEvent
}

func (h *gHeap) len() int     { return len(h.a) }
func (h *gHeap) peek() gEvent { return h.a[0] }

func (h *gHeap) push(e gEvent) {
	h.a = append(h.a, e)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = e
}

func (h *gHeap) pop() gEvent {
	a := h.a
	min := a[0]
	last := len(a) - 1
	a[0] = a[last]
	h.a = a[:last]
	if last > 1 {
		h.siftDown(0)
	}
	return min
}

func (h *gHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	e := a[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if a[j].less(a[m]) {
				m = j
			}
		}
		if !a[m].less(e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

// childRef records one event scheduled inside a parallel window, in
// the shard's allocation order; the barrier resolves it to an exact
// serial rank.
type childRef struct {
	at   Time
	slot int32
	gen  uint64
	emit bool
}

// execRec is the log entry for one event executed inside a parallel
// window: its time and serial rank (rankPending until the barrier
// reaches it) plus the slice of children it scheduled.
type execRec struct {
	at         Time
	rank       uint64
	firstChild int32
	nChild     int32
}

// shardCtx is a lane's link to its coordinator plus the lane's
// window-local bookkeeping. During a window the executing worker owns
// it exclusively; outside windows the coordinator does.
type shardCtx struct {
	coord *Sharded
	idx   int32

	bandCtr  uint64
	children []childRef
	recs     []execRec
	// freed defers slot recycling to the barrier: the replay references
	// this window's slots by generation, so none may be reused before
	// it runs.
	freed []int32
}

// at is the sharded At/AfterEmit path for both lane flavours.
func (ctx *shardCtx) at(s *Scheduler, t Time, fn func(), emit bool) Timer {
	c := ctx.coord
	if !c.inWindow {
		// Solo context: single-threaded, so ranks come straight off the
		// shared counter, exactly as the serial kernel's seq would.
		idx := s.alloc(fn, t)
		sl := &s.pool[idx]
		rank := c.rankCtr
		c.rankCtr++
		sl.rank = rank
		if emit || ctx.idx == laneGlobal {
			sl.global = true
			c.gq.push(gEvent{at: t, rank: rank, lane: ctx.idx, slot: idx})
		} else {
			s.q.push(event{at: t, seq: rank, slot: idx})
		}
		return Timer{s: s, slot: idx, gen: sl.gen}
	}
	// Window context: only shard lanes execute here, and each worker
	// owns its shard exclusively.
	if ctx.idx == laneGlobal {
		panic("sim: scheduling on the global lane during a parallel window")
	}
	idx := s.alloc(fn, t)
	sl := &s.pool[idx]
	sl.rank = rankPending
	band := c.windowBase + ctx.bandCtr
	ctx.bandCtr++
	if emit {
		if t < c.wEnd {
			panic("sim: AfterEmit delay shorter than the scheduler's lookahead bound")
		}
		sl.global = true
		// Staged: the barrier pushes it into the global queue once its
		// exact rank is known.
	} else {
		s.q.push(event{at: t, seq: band, slot: idx})
	}
	ctx.children = append(ctx.children, childRef{at: t, slot: idx, gen: sl.gen, emit: emit})
	return Timer{s: s, slot: idx, gen: sl.gen}
}

// ShardedConfig configures a sharded coordinator.
type ShardedConfig struct {
	// Queue is the event-queue implementation used by every lane.
	Queue QueueKind
	// Shards is the number of spatial lanes (minimum 1). Results are
	// bit-identical for any shard count; shards only set the grain of
	// available parallelism.
	Shards int
	// Workers bounds the goroutines executing windows (minimum 1).
	// Results are bit-identical for any worker count.
	Workers int
	// Lookahead is the conservative window bound δ: the guaranteed
	// minimum delay between any event and the earliest cross-node
	// effect (transmission start) it can cause. Zero degenerates to
	// solo execution everywhere — correct, but serial.
	Lookahead Time
}

// Sharded coordinates per-region scheduler lanes into one run that is
// bit-identical to the serial kernel. Construct with NewSharded, hand
// each node a lane from Shard, schedule cross-node events on Global,
// and drive the run with Run.
type Sharded struct {
	shards []*Scheduler
	global *Scheduler
	gq     gHeap
	replay gHeap

	rankCtr    uint64
	windowBase uint64
	delta      Time
	workers    int

	// curRank is the serial rank of the solo event currently executing
	// (sweep, soloRun and global pops). Lane ExecRank reads it outside
	// windows, so observers in solo callbacks that touch several nodes
	// — a radio finish delivering across lanes — all see the same rank.
	curRank uint64
	// onBarrier, set via OnBarrier, runs once per active lane at the
	// end of each window barrier, after exact ranks are assigned and
	// before the window logs are recycled.
	onBarrier func(lane int, resolve func(uint64) uint64)

	inWindow bool
	wEnd     Time
	stopped  bool

	active []*Scheduler
	jobs   chan *Scheduler
	wg     sync.WaitGroup
}

// NewSharded returns a coordinator with the given lane layout, at time
// zero.
func NewSharded(cfg ShardedConfig) *Sharded {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	delta := cfg.Lookahead
	if delta < 0 {
		delta = 0
	}
	c := &Sharded{delta: delta, workers: workers}
	c.global = &Scheduler{q: newEventQueue(cfg.Queue)}
	c.global.shard = &shardCtx{coord: c, idx: laneGlobal}
	for i := 0; i < shards; i++ {
		s := &Scheduler{q: newEventQueue(cfg.Queue)}
		s.shard = &shardCtx{coord: c, idx: int32(i)}
		c.shards = append(c.shards, s)
	}
	return c
}

// Global returns the global lane: schedule events that touch
// cross-node state here. It is also the clock scenario-level callbacks
// should read.
func (c *Sharded) Global() *Scheduler { return c.global }

// Shard returns lane i; hand it to the node entities assigned to
// shard i as their scheduler.
func (c *Sharded) Shard(i int) *Scheduler { return c.shards[i] }

// NumShards returns the lane count.
func (c *Sharded) NumShards() int { return len(c.shards) }

// Workers returns the configured worker bound.
func (c *Sharded) Workers() int { return c.workers }

// Lookahead returns the window bound δ.
func (c *Sharded) Lookahead() Time { return c.delta }

// Now returns the global lane's clock (the maximum solo instant
// reached; after Run it equals the horizon).
func (c *Sharded) Now() Time { return c.global.now }

// Processed returns the number of events executed across all lanes.
func (c *Sharded) Processed() uint64 {
	n := c.global.processed
	for _, s := range c.shards {
		n += s.processed
	}
	return n
}

// Elided returns the number of postponed-timer hops re-enqueued
// without firing across all lanes (the sharded counterpart of
// Scheduler.Elided; see Timer.Postpone).
func (c *Sharded) Elided() uint64 {
	n := c.global.elided
	for _, s := range c.shards {
		n += s.elided
	}
	return n
}

// Pending returns the number of live events scheduled across all
// lanes, including staged and global-queue entries.
func (c *Sharded) Pending() int {
	n := c.gq.len()
	for _, s := range c.shards {
		n += s.q.len() - s.cancelled
	}
	return n
}

// Stop makes Run return once the event (or window) currently executing
// completes.
func (c *Sharded) Stop() { c.stopped = true }

// InWindow reports whether a parallel window is executing. Observers
// that must route records to a single-owner sink (the per-lane trace
// rings) use it to pick between the solo sink and the lane's own:
// workers read it only while it is stably true (set before the window's
// jobs are handed out, cleared after the barrier's WaitGroup), the same
// publication discipline shardCtx.at relies on.
func (c *Sharded) InWindow() bool { return c.inWindow }

// OnBarrier installs a hook invoked once per active lane at the end of
// every window barrier, after the replay has assigned exact serial
// ranks. resolve maps a provisional ExecRank value (top bit set; see
// RankIsProvisional) observed on that lane during the window to the
// exact rank the serial kernel would have issued. The hook runs on the
// coordinator goroutine with the lanes quiescent.
func (c *Sharded) OnBarrier(fn func(lane int, resolve func(uint64) uint64)) {
	c.onBarrier = fn
}

// RankIsProvisional reports whether an ExecRank value is a provisional
// window tag rather than an exact serial rank (see Scheduler.ExecRank).
// Exact ranks are event counts and never reach the tag bit.
func RankIsProvisional(rank uint64) bool { return rank&execTag != 0 }

func (c *Sharded) laneSched(lane int32) *Scheduler {
	if lane == laneGlobal {
		return c.global
	}
	return c.shards[lane]
}

// setNowAll advances every lane clock to t (never backwards). Solo
// events may schedule on any lane, so every clock must agree on the
// solo instant.
func (c *Sharded) setNowAll(t Time) {
	if c.global.now < t {
		c.global.now = t
	}
	for _, s := range c.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// minHead returns the earliest pending event time across all lanes.
func (c *Sharded) minHead() (Time, bool) {
	t := Time(math.MaxInt64)
	found := false
	if c.gq.len() > 0 {
		t = c.gq.peek().at
		found = true
	}
	for _, s := range c.shards {
		if s.q.len() > 0 {
			found = true
			if h := s.q.peek().at; h < t {
				t = h
			}
		}
	}
	return t, found
}

// Run executes events in order until every lane is drained past
// `until`. It is the sharded counterpart of Scheduler.Run and reports
// the number of events executed by this call.
func (c *Sharded) Run(until Time) uint64 {
	start := c.Processed()
	c.stopped = false
	if c.workers > 1 && len(c.shards) > 1 && c.jobs == nil {
		n := c.workers
		if n > len(c.shards) {
			n = len(c.shards)
		}
		jobs := make(chan *Scheduler, len(c.shards))
		c.jobs = jobs
		for i := 0; i < n; i++ {
			go c.worker(jobs)
		}
		defer func() {
			close(jobs)
			c.jobs = nil
		}()
	}
	for !c.stopped {
		t, ok := c.minHead()
		if !ok || t > until {
			break
		}
		gAt := Time(math.MaxInt64)
		if c.gq.len() > 0 {
			gAt = c.gq.peek().at
		}
		if gAt <= t || c.delta <= 0 {
			// The next instant contains a solo event (or there is no
			// usable lookahead): run the instant in exact serial order.
			c.sweep(t)
			continue
		}
		wEnd := t + c.delta
		if wEnd < t { // overflow
			wEnd = Time(math.MaxInt64)
		}
		if wEnd > gAt {
			wEnd = gAt
		}
		// Run only events at <= until: cap the exclusive bound just past
		// the horizon.
		if until < Time(math.MaxInt64) && wEnd > until+1 {
			wEnd = until + 1
		}
		c.active = c.active[:0]
		for _, s := range c.shards {
			if s.q.len() > 0 && s.q.peek().at < wEnd {
				c.active = append(c.active, s)
			}
		}
		switch len(c.active) {
		case 0:
			c.sweep(t) // unreachable: t is a shard head below wEnd
		case 1:
			c.soloRun(c.active[0], wEnd)
		default:
			c.window(wEnd)
		}
	}
	c.setNowAll(until)
	return c.Processed() - start
}

func (c *Sharded) worker(jobs <-chan *Scheduler) {
	for s := range jobs {
		c.runWindow(s)
		c.wg.Done()
	}
}

// sweep executes every event at instant t, across all lanes, in exact
// rank order — serial execution of one instant.
func (c *Sharded) sweep(t Time) {
	c.setNowAll(t)
	for !c.stopped {
		lane := int32(laneNone)
		best := uint64(math.MaxUint64)
		for c.gq.len() > 0 {
			g := c.gq.peek()
			if g.at != t {
				break
			}
			s := c.laneSched(g.lane)
			if s.pool[g.slot].state == slotCancelled {
				c.gq.pop()
				s.free = append(s.free, g.slot)
				continue
			}
			lane, best = laneGlobal, g.rank
			break
		}
		for si, s := range c.shards {
			for s.q.len() > 0 {
				e := s.q.peek()
				if e.at != t {
					break
				}
				if s.pool[e.slot].state == slotCancelled {
					s.q.pop()
					s.cancelled--
					s.free = append(s.free, e.slot)
					continue
				}
				if r := s.pool[e.slot].rank; r < best {
					lane, best = int32(si), r
				}
				break
			}
		}
		switch lane {
		case laneNone:
			return
		case laneGlobal:
			g := c.gq.pop()
			s := c.laneSched(g.lane)
			sl := &s.pool[g.slot]
			if sl.next > g.at {
				// Postponed hop: re-enqueue at the lazy target, consuming
				// the rank its re-arm would have taken at this position.
				rank := c.rankCtr
				c.rankCtr++
				sl.at = sl.next
				sl.rank = rank
				c.gq.push(gEvent{at: sl.next, rank: rank, lane: g.lane, slot: g.slot})
				s.elided++
				continue
			}
			fn := sl.fn
			sl.fn = nil
			sl.state = slotFired
			s.free = append(s.free, g.slot)
			c.curRank = g.rank
			fn()
			s.processed++
		default:
			s := c.shards[lane]
			e := s.q.pop()
			if sl := &s.pool[e.slot]; sl.next > e.at {
				rank := c.rankCtr
				c.rankCtr++
				sl.at = sl.next
				sl.rank = rank
				s.q.push(event{at: sl.next, seq: rank, slot: e.slot})
				s.elided++
				continue
			}
			c.curRank = best
			s.fire(e)()
			s.processed++
		}
	}
}

// soloRun executes one shard's events below wEnd single-threaded —
// the degenerate window with nothing to parallelise, kept on the cheap
// solo path (exact ranks inline, no barrier). It yields early if a
// solo event surfaces on the global queue inside the span.
func (c *Sharded) soloRun(s *Scheduler, wEnd Time) {
	for s.q.len() > 0 && !c.stopped {
		e := s.q.peek()
		if e.at >= wEnd {
			return
		}
		// A previously executed event may have scheduled an emitting
		// event inside the span; fall back to the main loop so the
		// instants merge in rank order.
		if c.gq.len() > 0 && c.gq.peek().at <= e.at {
			return
		}
		s.q.pop()
		if s.pool[e.slot].state == slotCancelled {
			s.cancelled--
			s.free = append(s.free, e.slot)
			continue
		}
		s.now = e.at
		if sl := &s.pool[e.slot]; sl.next > e.at {
			rank := c.rankCtr
			c.rankCtr++
			sl.at = sl.next
			sl.rank = rank
			s.q.push(event{at: sl.next, seq: rank, slot: e.slot})
			s.elided++
			continue
		}
		c.curRank = s.pool[e.slot].rank
		s.fire(e)()
		s.processed++
	}
}

// window executes [windowBase, wEnd) across the active shards
// concurrently, then replays the barrier to restore exact serial
// ranks.
func (c *Sharded) window(wEnd Time) {
	c.windowBase = c.rankCtr
	c.wEnd = wEnd
	c.inWindow = true
	if c.jobs != nil {
		c.wg.Add(len(c.active))
		for _, s := range c.active {
			c.jobs <- s
		}
		c.wg.Wait()
	} else {
		for _, s := range c.active {
			c.runWindow(s)
		}
	}
	c.inWindow = false
	c.barrier()
}

// runWindow executes one shard's events below wEnd. The worker owns
// the shard exclusively: its pool, queue, clock and window log. Fired
// and cancelled-popped slots are released at the barrier, not here, so
// the replay can still resolve them by generation.
func (c *Sharded) runWindow(s *Scheduler) {
	ctx := s.shard
	wEnd := c.wEnd
	for s.q.len() > 0 {
		e := s.q.peek()
		if e.at >= wEnd {
			break
		}
		s.q.pop()
		sl := &s.pool[e.slot]
		if sl.state == slotCancelled {
			s.cancelled--
			ctx.freed = append(ctx.freed, e.slot)
			continue
		}
		s.now = e.at
		if sl.next > e.at {
			// Postponed hop inside a window. Postponements are only issued
			// from solo context (carrier onsets and NAV updates ride global
			// events), so the slot carries a real rank from before the
			// window; log a one-child record — the re-enqueued entry — and
			// let the barrier assign the child its exact serial rank, just
			// as it would for a fired hop's re-arm.
			rec := execRec{at: e.at, rank: sl.rank, firstChild: int32(len(ctx.children))}
			band := c.windowBase + ctx.bandCtr
			ctx.bandCtr++
			sl.rank = rankPending
			sl.at = sl.next
			s.q.push(event{at: sl.next, seq: band, slot: e.slot})
			ctx.children = append(ctx.children, childRef{at: sl.next, slot: e.slot, gen: sl.gen, emit: false})
			rec.nChild = 1
			ctx.recs = append(ctx.recs, rec)
			s.elided++
			continue
		}
		fn := sl.fn
		sl.fn = nil
		sl.state = slotFired
		rec := execRec{at: e.at, rank: sl.rank, firstChild: int32(len(ctx.children))}
		sl.rank = execTag | uint64(len(ctx.recs))
		ctx.freed = append(ctx.freed, e.slot)
		if rec.rank != rankPending {
			s.curRank = rec.rank
		} else {
			// Scheduled and executed inside this same window: the exact
			// rank arrives at the barrier. Publish the record index as a
			// provisional ExecRank; the OnBarrier resolver maps it.
			s.curRank = sl.rank
		}
		fn()
		rec.nChild = int32(len(ctx.children)) - rec.firstChild
		ctx.recs = append(ctx.recs, rec)
		s.processed++
	}
	if s.now < wEnd {
		s.now = wEnd
	}
}

// barrier replays the window's execution logs in (time, rank) order —
// reproducing the order in which the serial kernel would have executed
// these events — and assigns each scheduled child the exact rank the
// serial allocation counter would have issued. Staged emitting events
// enter the global queue here, ranked; deferred slots are recycled.
func (c *Sharded) barrier() {
	h := &c.replay
	h.a = h.a[:0]
	for _, s := range c.active {
		ctx := s.shard
		for ri := range ctx.recs {
			if ctx.recs[ri].rank != rankPending {
				h.push(gEvent{at: ctx.recs[ri].at, rank: ctx.recs[ri].rank, lane: ctx.idx, slot: int32(ri)})
			}
		}
	}
	ctr := c.rankCtr
	for h.len() > 0 {
		it := h.pop()
		s := c.shards[it.lane]
		ctx := s.shard
		rec := ctx.recs[it.slot]
		for ci := rec.firstChild; ci < rec.firstChild+rec.nChild; ci++ {
			ch := ctx.children[ci]
			rank := ctr
			ctr++
			sl := &s.pool[ch.slot]
			if sl.gen != ch.gen {
				// The child was cancelled and its slot compacted away;
				// it still consumed a serial rank.
				continue
			}
			switch {
			case sl.rank == rankPending:
				sl.rank = rank
			case sl.rank&execTag != 0:
				// The child itself executed inside the window: rank its
				// record and replay its own children in turn.
				cri := int32(sl.rank &^ execTag)
				ctx.recs[cri].rank = rank
				h.push(gEvent{at: ch.at, rank: rank, lane: it.lane, slot: cri})
			default:
				sl.rank = rank
			}
			if ch.emit {
				c.gq.push(gEvent{at: ch.at, rank: rank, lane: it.lane, slot: ch.slot})
			}
		}
	}
	c.rankCtr = ctr
	for _, s := range c.active {
		ctx := s.shard
		if c.onBarrier != nil && len(ctx.recs) > 0 {
			recs := ctx.recs
			c.onBarrier(int(ctx.idx), func(prov uint64) uint64 {
				return recs[prov&^execTag].rank
			})
		}
		for _, idx := range ctx.freed {
			s.free = append(s.free, idx)
		}
		ctx.freed = ctx.freed[:0]
		ctx.recs = ctx.recs[:0]
		ctx.children = ctx.children[:0]
		ctx.bandCtr = 0
	}
}
