package sim

import (
	"fmt"
	"testing"
	"time"
)

// The scheduler microbenchmarks use a hold model: the queue is
// preloaded with `hold` pending events and every fired event schedules
// its replacement, so the queue stays at a constant depth while b.N
// pop+push cycles stream through it. That is the simulator's
// steady-state shape — hundreds of thousands of MAC/route/gossip
// timers pending while events churn — and it is where heap depth and
// per-event allocation dominate.
//
// CI runs these with -benchtime=1x as a build/assert smoke test;
// meaningful timings need the default benchtime.

var queueBenchSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// benchDelays is a tiny splitmix-style generator so delay generation
// costs a few arithmetic ops and no allocation.
type benchDelays struct{ state uint64 }

func (g *benchDelays) next() Time {
	g.state += 0x9E3779B97F4A7C15
	z := g.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return Time(z % uint64(time.Hour))
}

func benchQueueChurn(b *testing.B, kind QueueKind, hold int) {
	s := NewSchedulerQueue(kind)
	delays := &benchDelays{state: 1}
	var churn func()
	churn = func() { s.After(delays.next(), churn) }
	for i := 0; i < hold; i++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll(uint64(b.N))
	b.StopTimer()
	if got := s.Pending(); got != hold {
		b.Fatalf("hold model broken: %d pending, want %d", got, hold)
	}
}

func benchQueueChurnCancel(b *testing.B, kind QueueKind, hold int) {
	s := NewSchedulerQueue(kind)
	delays := &benchDelays{state: 2}
	var churn func()
	churn = func() {
		s.After(delays.next(), churn)
		// A second timer is scheduled and immediately cancelled — the
		// MAC-retry pattern that dominates cancellations in real runs.
		// This drives the cancelled count through the compaction policy.
		s.After(delays.next(), churn).Cancel()
	}
	for i := 0; i < hold; i++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll(uint64(b.N))
	b.StopTimer()
	if got := s.Pending(); got != hold {
		b.Fatalf("hold model broken: %d pending, want %d", got, hold)
	}
}

// BenchmarkQueueChurn measures the pure push/pop path (fire one event,
// schedule its replacement) at fixed queue depths for both queue
// implementations. The quad queue should be allocation-free per op;
// the ref queue pays two boxing allocations per cycle (heap.Push boxes
// the event into `any`, and heap.Pop's `any` return boxes it again).
func BenchmarkQueueChurn(b *testing.B) {
	for _, kind := range []QueueKind{QueueQuad, QueueRef} {
		for _, hold := range queueBenchSizes {
			b.Run(fmt.Sprintf("%v/%d", kind, hold), func(b *testing.B) {
				benchQueueChurn(b, kind, hold)
			})
		}
	}
}

// BenchmarkQueueChurnCancel adds a cancel per fired event, exercising
// slot recycling and the compaction policy under churn.
func BenchmarkQueueChurnCancel(b *testing.B) {
	for _, kind := range []QueueKind{QueueQuad, QueueRef} {
		for _, hold := range queueBenchSizes {
			b.Run(fmt.Sprintf("%v/%d", kind, hold), func(b *testing.B) {
				benchQueueChurnCancel(b, kind, hold)
			})
		}
	}
}
