package sim

import (
	"fmt"
	"testing"
	"time"
)

// The scheduler microbenchmarks use a hold model: the queue is
// preloaded with `hold` pending events and every fired event schedules
// its replacement, so the queue stays at a constant depth while b.N
// pop+push cycles stream through it. That is the simulator's
// steady-state shape — hundreds of thousands of MAC/route/gossip
// timers pending while events churn — and it is where heap depth and
// per-event allocation dominate.
//
// CI runs these with -benchtime=1x as a build/assert smoke test;
// meaningful timings need the default benchtime.

var queueBenchSizes = []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

var queueBenchKinds = []QueueKind{QueueQuad, QueueCal, QueueRef}

// benchDelays is a tiny splitmix-style generator so delay generation
// costs a few arithmetic ops and no allocation.
type benchDelays struct{ state uint64 }

func (g *benchDelays) bits() uint64 {
	g.state += 0x9E3779B97F4A7C15
	z := g.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (g *benchDelays) next() Time {
	return Time(g.bits() % uint64(time.Hour))
}

// nextClustered reproduces the simulator's signature bimodal timestamp
// distribution: the bulk of delays are MAC contention steps quantised
// to SIFS/DIFS/slot-time granularity (tight same-instant clusters),
// with a sparse tail of seconds-scale mobility/route timers. Uniform
// churn never moves a calendar queue's bucket-width calibration or its
// overflow day; this distribution exercises both.
func (g *benchDelays) nextClustered(cfgSIFS, cfgDIFS, slot Time) Time {
	z := g.bits()
	switch {
	case z%16 == 0: // mobility/route timer: 1–64 s
		return Time(1+(z>>8)%64) * time.Second
	case z%16 < 6: // SIFS turnaround burst
		return cfgSIFS
	default: // DIFS + 0..31 backoff slots
		return cfgDIFS + Time((z>>8)%32)*slot
	}
}

func benchQueueChurn(b *testing.B, kind QueueKind, hold int) {
	s := NewSchedulerQueue(kind)
	delays := &benchDelays{state: 1}
	var churn func()
	churn = func() { s.After(delays.next(), churn) }
	for i := 0; i < hold; i++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll(uint64(b.N))
	b.StopTimer()
	if got := s.Pending(); got != hold {
		b.Fatalf("hold model broken: %d pending, want %d", got, hold)
	}
}

func benchQueueChurnCancel(b *testing.B, kind QueueKind, hold int) {
	s := NewSchedulerQueue(kind)
	delays := &benchDelays{state: 2}
	var churn func()
	churn = func() {
		s.After(delays.next(), churn)
		// A second timer is scheduled and immediately cancelled — the
		// MAC-retry pattern that dominates cancellations in real runs.
		// This drives the cancelled count through the compaction policy.
		s.After(delays.next(), churn).Cancel()
	}
	for i := 0; i < hold; i++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll(uint64(b.N))
	b.StopTimer()
	if got := s.Pending(); got != hold {
		b.Fatalf("hold model broken: %d pending, want %d", got, hold)
	}
}

// benchQueueChurnClustered is the hold-model churn loop under the
// clustered (bimodal MAC-vs-mobility) delay distribution, where the
// calendar queue's width recalibration and overflow day actually
// engage. Delays match the default mac.Config timing constants.
func benchQueueChurnClustered(b *testing.B, kind QueueKind, hold int) {
	const (
		sifs = 10 * time.Microsecond
		difs = 50 * time.Microsecond
		slot = 20 * time.Microsecond
	)
	s := NewSchedulerQueue(kind)
	delays := &benchDelays{state: 3}
	var churn func()
	churn = func() { s.After(delays.nextClustered(sifs, difs, slot), churn) }
	for i := 0; i < hold; i++ {
		churn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll(uint64(b.N))
	b.StopTimer()
	if got := s.Pending(); got != hold {
		b.Fatalf("hold model broken: %d pending, want %d", got, hold)
	}
}

// BenchmarkQueueChurn measures the pure push/pop path (fire one event,
// schedule its replacement) at fixed queue depths for every queue
// implementation. The quad and cal queues should be allocation-free
// per op; the ref queue pays two boxing allocations per cycle
// (heap.Push boxes the event into `any`, and heap.Pop's `any` return
// boxes it again).
func BenchmarkQueueChurn(b *testing.B) {
	for _, kind := range queueBenchKinds {
		for _, hold := range queueBenchSizes {
			b.Run(fmt.Sprintf("%v/%d", kind, hold), func(b *testing.B) {
				benchQueueChurn(b, kind, hold)
			})
		}
	}
}

// BenchmarkQueueChurnCancel adds a cancel per fired event, exercising
// slot recycling and the compaction policy under churn.
func BenchmarkQueueChurnCancel(b *testing.B) {
	for _, kind := range queueBenchKinds {
		for _, hold := range queueBenchSizes {
			b.Run(fmt.Sprintf("%v/%d", kind, hold), func(b *testing.B) {
				benchQueueChurnCancel(b, kind, hold)
			})
		}
	}
}

// BenchmarkQueueChurnClustered is the distribution the calendar queue
// is built for: heavy SIFS/DIFS/slot-granularity clustering with a
// sparse mobility tail. Uniform churn (above) is the calendar queue's
// worst case; this is the simulator's actual steady state.
func BenchmarkQueueChurnClustered(b *testing.B) {
	for _, kind := range queueBenchKinds {
		for _, hold := range queueBenchSizes {
			b.Run(fmt.Sprintf("%v/%d", kind, hold), func(b *testing.B) {
				benchQueueChurnClustered(b, kind, hold)
			})
		}
	}
}
