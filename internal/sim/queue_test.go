package sim

import (
	"math/rand"
	"testing"
	"time"
)

// queueKindsUnderTest is every registered queue implementation; the
// first entry is the reporting baseline the others are compared to.
// The differential harness below drives all of them with an identical
// operation stream — the scheduler analogue of the radio layer's
// grid-vs-brute differential tests.
var queueKindsUnderTest = []QueueKind{QueueQuad, QueueCal, QueueRef}

// queueSet drives one scheduler per queue kind with an identical
// operation stream and checks, after every operation, that they are
// indistinguishable: same fire order, same Pending, same clock, same
// Processed count.
type queueSet struct {
	t      testing.TB
	kinds  []QueueKind
	s      []*Scheduler
	timers [][]Timer
	fired  [][]int
	nextID int
}

func newQueueSet(t testing.TB, kinds ...QueueKind) *queueSet {
	if len(kinds) == 0 {
		kinds = queueKindsUnderTest
	}
	set := &queueSet{
		t:      t,
		kinds:  kinds,
		s:      make([]*Scheduler, len(kinds)),
		timers: make([][]Timer, len(kinds)),
		fired:  make([][]int, len(kinds)),
	}
	for k, kind := range kinds {
		set.s[k] = NewSchedulerQueue(kind)
	}
	return set
}

func (p *queueSet) push(d Time) {
	id := p.nextID
	p.nextID++
	for k := range p.s {
		k := k
		p.timers[k] = append(p.timers[k], p.s[k].After(d, func() {
			p.fired[k] = append(p.fired[k], id)
		}))
	}
	p.check("push")
}

// pushAt schedules at an absolute time, exercising the At path and —
// with saturating deadlines — the calendar queue's overflow day and
// terminal window.
func (p *queueSet) pushAt(at Time) {
	id := p.nextID
	p.nextID++
	for k := range p.s {
		k := k
		p.timers[k] = append(p.timers[k], p.s[k].At(at, func() {
			p.fired[k] = append(p.fired[k], id)
		}))
	}
	p.check("pushAt")
}

func (p *queueSet) cancel(i int) {
	if len(p.timers[0]) == 0 {
		return
	}
	i %= len(p.timers[0])
	for k := range p.s {
		p.timers[k][i].Cancel()
	}
	p.check("cancel")
}

func (p *queueSet) step(max uint64) {
	n0, d0 := p.s[0].RunAll(max)
	for k := 1; k < len(p.s); k++ {
		n, d := p.s[k].RunAll(max)
		if n != n0 || d != d0 {
			p.t.Fatalf("RunAll(%d) diverged: %v (%d,%v) vs %v (%d,%v)",
				max, p.kinds[0], n0, d0, p.kinds[k], n, d)
		}
	}
	p.check("step")
}

func (p *queueSet) runTo(d Time) {
	until := p.s[0].Now() + d
	n0 := p.s[0].Run(until)
	for k := 1; k < len(p.s); k++ {
		if n := p.s[k].Run(until); n != n0 {
			p.t.Fatalf("Run(%v) diverged: %v executed %d, %v %d",
				until, p.kinds[0], n0, p.kinds[k], n)
		}
	}
	p.check("run")
}

func (p *queueSet) check(op string) {
	a := p.s[0]
	for k := 1; k < len(p.s); k++ {
		b := p.s[k]
		name := p.kinds[k]
		if a.Pending() != b.Pending() {
			p.t.Fatalf("after %s: Pending diverged: %v %d, %v %d",
				op, p.kinds[0], a.Pending(), name, b.Pending())
		}
		if a.Now() != b.Now() {
			p.t.Fatalf("after %s: clocks diverged: %v %v, %v %v",
				op, p.kinds[0], a.Now(), name, b.Now())
		}
		if a.Processed() != b.Processed() {
			p.t.Fatalf("after %s: Processed diverged: %v %d, %v %d",
				op, p.kinds[0], a.Processed(), name, b.Processed())
		}
		if len(p.fired[0]) != len(p.fired[k]) {
			p.t.Fatalf("after %s: fired %d events on %v, %d on %v",
				op, len(p.fired[0]), p.kinds[0], len(p.fired[k]), name)
		}
		for i := range p.fired[0] {
			if p.fired[0][i] != p.fired[k][i] {
				p.t.Fatalf("after %s: fire order diverged at %d: %v %v, %v %v",
					op, i, p.kinds[0], p.fired[0], name, p.fired[k])
			}
		}
	}
}

// runQueueScript interprets a byte string as a push/pop/cancel/run
// workload over the differential set, then drains every scheduler and
// re-checks. Shared by the property test and the fuzz target.
func runQueueScript(t testing.TB, script []byte) {
	p := newQueueSet(t)
	i := 0
	next := func() byte {
		if i >= len(script) {
			return 0
		}
		b := script[i]
		i++
		return b
	}
	for i < len(script) {
		switch next() % 7 {
		case 0, 1:
			p.push(Time(next()%64) * time.Millisecond)
		case 2:
			// Same-instant burst: insertion order must break the tie.
			d := Time(next()%16) * time.Millisecond
			p.push(d)
			p.push(d)
			p.push(d)
		case 3:
			p.cancel(int(next()))
		case 4:
			p.step(uint64(next() % 8))
		case 5:
			p.runTo(Time(next()%128) * time.Millisecond)
		case 6:
			// Bimodal far deadline: hours-scale mobility-style timers
			// (forcing overflow days and re-anchoring jumps in the
			// calendar queue) and, for the top byte values, deadlines
			// at or near the saturation boundary.
			b := next()
			switch {
			case b >= 250:
				p.pushAt(maxTime - Time(b%3))
			case b >= 128:
				p.push(Time(b) * time.Minute)
			default:
				p.push(Time(b) * time.Hour)
			}
		}
	}
	p.step(1 << 40) // drain
	if got := p.s[0].Pending(); got != 0 {
		t.Fatalf("drain left %d pending events", got)
	}
}

// TestQueueDifferentialRandomScripts fuzzes the queue implementations
// against each other with seeded random workloads — the property half
// of the fuzz/differential story; FuzzQueueDifferential lets the
// fuzzer search for adversarial scripts.
func TestQueueDifferentialRandomScripts(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < iters; iter++ {
		script := make([]byte, rng.Intn(400))
		rng.Read(script)
		runQueueScript(t, script)
	}
}

// TestQueueDifferentialCompactionHeavy forces the cancellation count
// across the compaction threshold on every implementation and checks
// the survivors still fire identically.
func TestQueueDifferentialCompactionHeavy(t *testing.T) {
	p := newQueueSet(t)
	for i := 0; i < 1000; i++ {
		p.push(Time(i%13) * time.Millisecond)
	}
	for i := 0; i < 1000; i++ {
		if i%5 != 0 {
			p.cancel(i)
		}
	}
	for k, s := range p.s {
		if got := s.q.len(); got >= 1000 {
			t.Fatalf("compaction never ran: %v queue still holds %d entries", p.kinds[k], got)
		}
	}
	p.step(1 << 40)
	if got := len(p.fired[0]); got != 200 {
		t.Fatalf("fired %d events, want the 200 survivors", got)
	}
}

// TestQueueDifferentialClustered replays the simulator's signature
// timestamp distribution — dense same-instant/SIFS/DIFS bursts against
// sparse long timers — at a size that forces the calendar queue
// through several grow cycles, shrink cycles and day rollovers.
func TestQueueDifferentialClustered(t *testing.T) {
	p := newQueueSet(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		switch rng.Intn(10) {
		case 0: // long mobility-style timer
			p.push(Time(1+rng.Intn(120)) * time.Second)
		case 1, 2: // DIFS + a few slots
			p.push(50*time.Microsecond + Time(rng.Intn(32))*20*time.Microsecond)
		default: // SIFS-scale cluster
			p.push(Time(rng.Intn(3)) * 10 * time.Microsecond)
		}
		if i%7 == 0 {
			p.runTo(Time(rng.Intn(200)) * time.Microsecond)
		}
		if i%11 == 0 {
			p.cancel(rng.Intn(1 << 16))
		}
	}
	p.step(1 << 40)
	if got := p.s[0].Pending(); got != 0 {
		t.Fatalf("drain left %d pending events", got)
	}
}

// FuzzQueueDifferential lets the fuzzer hunt for operation sequences
// that make the 4-ary pooled queue, the calendar queue and the
// container/heap reference disagree. `go test` runs the seed corpus;
// `go test -fuzz FuzzQueueDifferential ./internal/sim` explores.
func FuzzQueueDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 4, 2, 3, 1, 5, 50})
	f.Add([]byte{2, 0, 2, 0, 2, 0, 4, 7, 3, 0, 3, 1, 5, 127})
	// Overflow-day stress: far deadlines, saturation, then churn.
	f.Add([]byte{6, 255, 6, 200, 6, 100, 0, 10, 5, 127, 6, 251, 4, 7})
	seed := make([]byte, 256)
	rand.New(rand.NewSource(7)).Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 2048 {
			script = script[:2048]
		}
		runQueueScript(t, script)
	})
}
