package sim

import (
	"math/rand"
	"testing"
	"time"
)

// queuePair drives a QueueQuad scheduler and a QueueRef scheduler with
// an identical operation stream and checks, after every operation, that
// the two are indistinguishable: same fire order, same Pending, same
// clock, same Processed count. This is the scheduler analogue of the
// radio layer's grid-vs-brute differential tests.
type queuePair struct {
	t      testing.TB
	s      [2]*Scheduler
	timers [2][]Timer
	fired  [2][]int
	nextID int
}

func newQueuePair(t testing.TB) *queuePair {
	return &queuePair{t: t, s: [2]*Scheduler{
		NewSchedulerQueue(QueueQuad),
		NewSchedulerQueue(QueueRef),
	}}
}

func (p *queuePair) push(d Time) {
	id := p.nextID
	p.nextID++
	for k := 0; k < 2; k++ {
		k := k
		p.timers[k] = append(p.timers[k], p.s[k].After(d, func() {
			p.fired[k] = append(p.fired[k], id)
		}))
	}
	p.check("push")
}

func (p *queuePair) cancel(i int) {
	if len(p.timers[0]) == 0 {
		return
	}
	i %= len(p.timers[0])
	p.timers[0][i].Cancel()
	p.timers[1][i].Cancel()
	p.check("cancel")
}

func (p *queuePair) step(max uint64) {
	n0, d0 := p.s[0].RunAll(max)
	n1, d1 := p.s[1].RunAll(max)
	if n0 != n1 || d0 != d1 {
		p.t.Fatalf("RunAll(%d) diverged: quad (%d,%v) vs ref (%d,%v)", max, n0, d0, n1, d1)
	}
	p.check("step")
}

func (p *queuePair) runTo(d Time) {
	until := p.s[0].Now() + d
	n0 := p.s[0].Run(until)
	n1 := p.s[1].Run(until)
	if n0 != n1 {
		p.t.Fatalf("Run(%v) diverged: quad executed %d, ref %d", until, n0, n1)
	}
	p.check("run")
}

func (p *queuePair) check(op string) {
	a, b := p.s[0], p.s[1]
	if a.Pending() != b.Pending() {
		p.t.Fatalf("after %s: Pending diverged: quad %d, ref %d", op, a.Pending(), b.Pending())
	}
	if a.Now() != b.Now() {
		p.t.Fatalf("after %s: clocks diverged: quad %v, ref %v", op, a.Now(), b.Now())
	}
	if a.Processed() != b.Processed() {
		p.t.Fatalf("after %s: Processed diverged: quad %d, ref %d", op, a.Processed(), b.Processed())
	}
	if len(p.fired[0]) != len(p.fired[1]) {
		p.t.Fatalf("after %s: fired %d events on quad, %d on ref", op, len(p.fired[0]), len(p.fired[1]))
	}
	for i := range p.fired[0] {
		if p.fired[0][i] != p.fired[1][i] {
			p.t.Fatalf("after %s: fire order diverged at %d: quad %v, ref %v",
				op, i, p.fired[0], p.fired[1])
		}
	}
}

// runQueueScript interprets a byte string as a push/pop/cancel/run
// workload over the differential pair, then drains both schedulers and
// re-checks. Shared by the property test and the fuzz target.
func runQueueScript(t testing.TB, script []byte) {
	p := newQueuePair(t)
	i := 0
	next := func() byte {
		if i >= len(script) {
			return 0
		}
		b := script[i]
		i++
		return b
	}
	for i < len(script) {
		switch next() % 6 {
		case 0, 1:
			p.push(Time(next()%64) * time.Millisecond)
		case 2:
			// Same-instant burst: insertion order must break the tie.
			d := Time(next()%16) * time.Millisecond
			p.push(d)
			p.push(d)
			p.push(d)
		case 3:
			p.cancel(int(next()))
		case 4:
			p.step(uint64(next() % 8))
		case 5:
			p.runTo(Time(next()%128) * time.Millisecond)
		}
	}
	p.step(1 << 40) // drain
	if got := p.s[0].Pending(); got != 0 {
		t.Fatalf("drain left %d pending events", got)
	}
}

// TestQueueDifferentialRandomScripts fuzzes the two queue
// implementations against each other with seeded random workloads —
// the property half of the fuzz/differential story; FuzzQueueDifferential
// lets the fuzzer search for adversarial scripts.
func TestQueueDifferentialRandomScripts(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < iters; iter++ {
		script := make([]byte, rng.Intn(400))
		rng.Read(script)
		runQueueScript(t, script)
	}
}

// TestQueueDifferentialCompactionHeavy forces the cancellation count
// across the compaction threshold on both implementations and checks
// the survivors still fire identically.
func TestQueueDifferentialCompactionHeavy(t *testing.T) {
	p := newQueuePair(t)
	for i := 0; i < 1000; i++ {
		p.push(Time(i%13) * time.Millisecond)
	}
	for i := 0; i < 1000; i++ {
		if i%5 != 0 {
			p.cancel(i)
		}
	}
	if got := p.s[0].q.len(); got >= 1000 {
		t.Fatalf("compaction never ran: quad queue still holds %d entries", got)
	}
	p.step(1 << 40)
	if got := len(p.fired[0]); got != 200 {
		t.Fatalf("fired %d events, want the 200 survivors", got)
	}
}

// FuzzQueueDifferential lets the fuzzer hunt for operation sequences
// that make the 4-ary pooled queue and the container/heap reference
// disagree. `go test` runs the seed corpus; `go test -fuzz
// FuzzQueueDifferential ./internal/sim` explores.
func FuzzQueueDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 4, 2, 3, 1, 5, 50})
	f.Add([]byte{2, 0, 2, 0, 2, 0, 4, 7, 3, 0, 3, 1, 5, 127})
	seed := make([]byte, 256)
	rand.New(rand.NewSource(7)).Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 2048 {
			script = script[:2048]
		}
		runQueueScript(t, script)
	})
}
