package sim

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// RNG is a deterministic random number generator with support for derived
// sub-streams. Deriving a stream by name decouples the random sequences
// consumed by independent components (mobility, MAC backoff, protocol
// choices): adding a random draw in one component does not perturb the
// others, which keeps experiments comparable across code changes.
//
// The backing math/rand source (a ~4.8 KiB lagged-Fibonacci table) is
// allocated on the first draw, not at construction: a scenario derives
// a dozen streams per node but many — Derive-only intermediates,
// protocol jitter on nodes that never forward — are never drawn from,
// and at 100k nodes the unused tables were the largest single heap
// consumer. Laziness is invisible to callers: the first draw seeds the
// source exactly as eager construction did, so sequences are
// bit-identical.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed}
}

// src returns the backing generator, allocating it on first use.
func (g *RNG) src() *rand.Rand {
	if g.r == nil {
		g.r = rand.New(rand.NewSource(g.seed))
	}
	return g.r
}

// Derive returns an independent sub-stream identified by name. The mapping
// (seed, name) -> sub-seed is stable across runs.
func (g *RNG) Derive(name string) *RNG {
	h := fnv.New64a()
	// Hash writes never fail.
	_, _ = h.Write([]byte(name))
	sub := g.seed ^ int64(h.Sum64())
	// Avoid the degenerate all-zero seed.
	if sub == 0 {
		sub = int64(h.Sum64()) | 1
	}
	return NewRNG(sub)
}

// Seed returns the seed this generator was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.src().Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.src().Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.src().Int63() }

// Uniform returns a uniform value in [lo, hi). If hi <= lo it returns lo.
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*g.src().Float64()
}

// Duration returns a uniform duration in [0, max). If max <= 0 it returns 0.
func (g *RNG) Duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(g.src().Int63n(int64(max)))
}

// DurationRange returns a uniform duration in [lo, hi). If hi <= lo it
// returns lo.
func (g *RNG) DurationRange(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.src().Int63n(int64(hi-lo)))
}

// Bool returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bool(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return g.src().Float64() < p
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.src().Perm(n) }

// WeightedIndex picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// It returns -1 if the slice is empty or all weights are zero.
func (g *RNG) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := g.src().Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
