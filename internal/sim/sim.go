// Package sim provides the discrete-event simulation kernel that every other
// layer of the reproduction runs on. It replaces GloMoSim/PARSEC, the
// simulator used in the paper's evaluation.
//
// The kernel is deliberately single-threaded and deterministic: events are
// totally ordered by (time, insertion sequence), and all randomness flows
// from a single seed through named sub-streams (see RNG). Two runs with the
// same configuration and seed produce bit-identical schedules, which makes
// every experiment in EXPERIMENTS.md replayable.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a simulation timestamp, expressed as the duration elapsed since
// the start of the run. Using time.Duration keeps arithmetic, parsing and
// formatting idiomatic while staying on an int64 nanosecond base.
type Time = time.Duration

// Timer is a handle for a scheduled event. It can be cancelled before it
// fires; cancellation after firing is a no-op.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	sched     *Scheduler
	cancelled bool
	fired     bool
}

// At reports the simulation time the timer is scheduled to fire.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer from firing. It is safe to call more than once
// and safe to call after the timer has fired. Cancelled timers do not
// linger until their deadline: the scheduler compacts its queue once
// they outnumber the live entries, so long runs with many cancelled
// MAC/route timers don't bloat the heap.
func (t *Timer) Cancel() {
	if t.cancelled || t.fired {
		return
	}
	t.cancelled = true
	t.fn = nil // release captured state promptly
	if t.sched != nil {
		t.sched.noteCancelled()
	}
}

// Cancelled reports whether Cancel was called before the timer fired;
// cancelling after firing is a no-op and leaves this false.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Fired reports whether the timer's callback has run.
func (t *Timer) Fired() bool { return t.fired }

// eventHeap orders timers by (at, seq); seq breaks ties so that events
// scheduled for the same instant fire in insertion order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	t, ok := x.(*Timer)
	if !ok {
		panic(fmt.Sprintf("sim: eventHeap.Push got %T, want *Timer", x))
	}
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Scheduler is the event loop. The zero value is not usable; construct with
// NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// processed counts events executed so far (cancelled events excluded).
	processed uint64
	// cancelled counts timers in the heap whose Cancel ran; Pending
	// subtracts it and compact drops them.
	cancelled int
}

// NewScheduler returns a scheduler positioned at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of live (non-cancelled) events currently
// scheduled.
func (s *Scheduler) Pending() int { return len(s.events) - s.cancelled }

// noteCancelled records one cancelled-but-queued timer and compacts the
// heap when cancelled entries outnumber live ones. The 64-entry floor
// keeps tiny queues from compacting constantly; the one-half ratio
// bounds the heap at twice the live count, making the amortised cost of
// each cancellation O(1) heap work.
func (s *Scheduler) noteCancelled() {
	s.cancelled++
	if s.cancelled >= 64 && s.cancelled > len(s.events)/2 {
		s.compact()
	}
}

// compact rebuilds the heap without its cancelled entries. Ordering is
// unaffected: the surviving timers keep their (at, seq) keys, so runs
// with and without compaction execute identically.
func (s *Scheduler) compact() {
	live := s.events[:0]
	for _, t := range s.events {
		if !t.cancelled {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	s.cancelled = 0
	heap.Init(&s.events)
}

// After schedules fn to run d after the current time and returns a handle
// that can cancel it. A negative d is treated as zero: the event fires at
// the current time, after already-queued events for that instant.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At schedules fn to run at absolute simulation time t. Times in the past
// are clamped to the present.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < s.now {
		t = s.now
	}
	timer := &Timer{at: t, seq: s.seq, fn: fn, sched: s}
	s.seq++
	heap.Push(&s.events, timer)
	return timer
}

// Stop makes Run return after the event currently executing completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue is empty or the next event
// is strictly after `until`. On return the clock is at the time of the last
// executed event, or at `until` if the queue drained earlier events only.
// It reports the number of events executed by this call.
func (s *Scheduler) Run(until Time) uint64 {
	var n uint64
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.events)
		if next.cancelled {
			s.cancelled--
			continue
		}
		s.now = next.at
		next.fired = true
		next.fn()
		s.processed++
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes events until the queue is empty or maxEvents have run.
// It reports the number executed and whether the queue drained completely.
// It is intended for tests; simulations should use Run with a horizon.
func (s *Scheduler) RunAll(maxEvents uint64) (uint64, bool) {
	var n uint64
	s.stopped = false
	for len(s.events) > 0 && n < maxEvents && !s.stopped {
		next := s.events[0]
		heap.Pop(&s.events)
		if next.cancelled {
			s.cancelled--
			continue
		}
		s.now = next.at
		next.fired = true
		next.fn()
		s.processed++
		n++
	}
	return n, len(s.events) == 0
}
