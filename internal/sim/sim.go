// Package sim provides the discrete-event simulation kernel that every other
// layer of the reproduction runs on. It replaces GloMoSim/PARSEC, the
// simulator used in the paper's evaluation.
//
// The kernel is deliberately single-threaded and deterministic: events are
// totally ordered by (time, insertion sequence), and all randomness flows
// from a single seed through named sub-streams (see RNG). Two runs with the
// same configuration and seed produce bit-identical schedules, which makes
// every experiment in EXPERIMENTS.md replayable.
//
// A corollary callers may rely on (the radio's batched reception model
// does — see DESIGN.md §6): insertion sequences are allocated at
// scheduling time and only grow, so events scheduled back-to-back for
// one instant execute as a contiguous block — nothing scheduled later,
// not even from a callback already executing at that instant, can
// interleave into the block. Replacing such a block with a single event
// carrying the block's work is therefore order-equivalent.
//
// Timers live in a generation-stamped pool inside the Scheduler: After/At
// allocate nothing per event, Timer handles are small copyable values, and
// fired or cancelled slots are recycled through a free list. The pending
// set is ordered by a pluggable event queue (see QueueKind) — an implicit
// 4-ary min-heap by default, with the original container/heap binary heap
// retained as a differential-testing reference.
package sim

import (
	"math"
	"time"
)

// Time is a simulation timestamp, expressed as the duration elapsed since
// the start of the run. Using time.Duration keeps arithmetic, parsing and
// formatting idiomatic while staying on an int64 nanosecond base.
type Time = time.Duration

// slotState tracks a pool slot through one timer lifecycle.
type slotState uint8

const (
	// slotPending: scheduled, queue entry outstanding.
	slotPending slotState = iota
	// slotCancelled: Cancel ran; the queue entry may still be riding
	// in the heap until it is popped or compacted away.
	slotCancelled
	// slotFired: the callback ran; the slot is on the free list.
	slotFired
)

// slot is one pooled timer. The callback is released (set to nil) as
// soon as the timer fires or is cancelled, so completed timers pin
// neither their captured closures nor anything those closures reach,
// even while protocol structs keep stale handles around.
type slot struct {
	fn func()
	at Time
	// next is the lazy-retarget deadline (see Timer.Postpone). Zero, or
	// equal to at, for ordinary timers. When a popped entry's slot
	// carries next > at, the kernel re-enqueues it at next — consuming
	// one insertion sequence at exactly the position the popped entry
	// held, just as a fired callback re-arming itself would — and counts
	// the hop in elided instead of processed.
	next Time
	// gen is 64-bit so it cannot wrap within any feasible run: a
	// wrapped stamp would let an ancient stale handle alias the slot's
	// live occupant.
	gen uint64
	// rank is the event's position in the serial total order. Under the
	// serial scheduler it simply mirrors the queue key's seq. Under the
	// sharded scheduler it is the ground truth the coordinator merges
	// lanes by: events scheduled inside a parallel window carry
	// rankPending until the window barrier replays the serial
	// allocation order and assigns exact ranks (see shard.go).
	rank  uint64
	state slotState
	// global marks events routed through the sharded coordinator's
	// cross-shard queue rather than the owning lane's local heap (always
	// false under the serial scheduler). Cancelling such an event must
	// not trigger local-heap compaction: its queue entry is not in the
	// local heap, so compaction could never reclaim it.
	global bool
}

// Timer is a handle for a scheduled event: a pool index plus the
// generation stamp it was issued under. It is a small value — copy it
// freely; the zero Timer is valid and behaves as a long-completed
// timer (Cancel is a no-op, Done reports true, IsZero reports true).
//
// Once a timer completes (fires or is cancelled), its pool slot is
// eventually recycled for a new timer and the slot's generation
// advances, so stale handles can never affect their slot's new
// occupant. State queries on a handle whose slot has been recycled
// conservatively report Fired() == false and Cancelled() == false;
// Done() remains exact and is the query to use for "finished either
// way".
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint64
}

// IsZero reports whether the handle is the zero Timer, i.e. was never
// returned by After/At.
func (t Timer) IsZero() bool { return t.s == nil }

// lookup resolves the handle to its pool slot. ok is false for zero
// handles and for handles whose slot has been recycled (generation
// mismatch).
func (t Timer) lookup() (*slot, bool) {
	if t.s == nil {
		return nil, false
	}
	sl := &t.s.pool[t.slot]
	return sl, sl.gen == t.gen
}

// At reports the simulation time the timer is scheduled to fire, or
// fired at. It returns 0 once the slot has been recycled.
func (t Timer) At() Time {
	if sl, ok := t.lookup(); ok {
		return sl.at
	}
	return 0
}

// Cancel prevents the timer from firing. It is safe to call more than
// once, after the timer has fired, and on the zero Timer. Cancelled
// timers do not linger until their deadline: the scheduler compacts
// its queue once they outnumber the live entries, so long runs with
// many cancelled MAC/route timers don't bloat the heap.
func (t Timer) Cancel() {
	sl, ok := t.lookup()
	if !ok || sl.state != slotPending {
		return
	}
	sl.state = slotCancelled
	sl.fn = nil // release captured state promptly
	if sl.global {
		// The entry rides in the coordinator's cross-shard queue and is
		// reclaimed when popped there; local compaction cannot reach it.
		return
	}
	t.s.noteCancelled()
}

// Postpone lazily retargets a pending timer to a later deadline. The
// queue entry stays where it is; when the kernel pops it at the old
// (time, seq) position it re-enqueues the timer at the postponed time —
// allocating the insertion sequence there, exactly as if the timer had
// fired and its callback had immediately re-armed it — and counts the
// hop as an elided event rather than a processed one. Callers use this
// to replace fire-and-rearm chains whose intermediate callbacks would
// compute a deadline the caller already knows exactly (the MAC's
// folded contention countdown, DESIGN.md §10); the observable schedule
// is bit-identical to the chain it replaces.
//
// At() keeps reporting the current queue position until the hop
// happens, matching the deadline a fire-and-rearm chain would report,
// so cancellation accounting against the deadline is unaffected.
// Postpone is monotone: targets at or before the current queue
// position are ignored, and a pending postponement only ever grows.
// It reports false if the timer already completed.
func (t Timer) Postpone(at Time) bool {
	sl, ok := t.lookup()
	if !ok || sl.state != slotPending {
		return false
	}
	if at > sl.at && at > sl.next {
		sl.next = at
	}
	return true
}

// Unpostpone clears any pending postponement, restoring the timer to
// fire at its current queue position. Callers use it when the
// knowledge that justified a Postpone is invalidated before the hop
// happens: the entry then fires exactly where the fire-and-rearm chain
// would have run its callback. A hop that already happened is
// unaffected (the postponed time became the queue position).
func (t Timer) Unpostpone() {
	if sl, ok := t.lookup(); ok && sl.state == slotPending {
		sl.next = 0
	}
}

// Cancelled reports whether Cancel stopped the timer before it fired.
// Exact until the slot is recycled (see the Timer doc).
func (t Timer) Cancelled() bool {
	sl, ok := t.lookup()
	return ok && sl.state == slotCancelled
}

// Fired reports whether the timer's callback has run. Exact until the
// slot is recycled (see the Timer doc).
func (t Timer) Fired() bool {
	sl, ok := t.lookup()
	return ok && sl.state == slotFired
}

// Done reports whether the timer has completed — fired or cancelled.
// Unlike Fired and Cancelled it stays exact after the slot is
// recycled: recycling is only possible once the timer completed. The
// zero Timer reports true, consistent with behaving as a
// long-completed timer.
func (t Timer) Done() bool {
	if t.s == nil {
		return true
	}
	sl, ok := t.lookup()
	return !ok || sl.state != slotPending
}

// Scheduler is the event loop. The zero value is not usable; construct with
// NewScheduler or NewSchedulerQueue.
type Scheduler struct {
	now     Time
	seq     uint64
	q       eventQueue
	pool    []slot
	free    []int32
	stopped bool

	// processed counts events executed so far (cancelled events excluded).
	processed uint64
	// elided counts postponed-timer hops the kernel re-enqueued in place
	// of firing (see Timer.Postpone): each stands for exactly one event
	// a fire-and-rearm chain would have executed, so event-count parity
	// is processed + elided.
	elided uint64
	// cancelled counts slots in the queue whose Cancel ran; Pending
	// subtracts it and compact drops them.
	cancelled int

	// curRank is the serial rank of the event currently executing — the
	// position it holds (or will hold) in the serial total order. The
	// serial kernel sets it to the popped entry's seq before firing;
	// the sharded kernel's execution paths maintain it per lane (see
	// ExecRank for the provisional-rank case inside parallel windows).
	curRank uint64

	// shard is non-nil when this scheduler is one lane of a Sharded
	// coordinator (a per-region lane, or the coordinator's global lane).
	// It reroutes At/AfterEmit through the coordinator's ordering
	// machinery; see shard.go. Nil for ordinary serial schedulers.
	shard *shardCtx
}

// NewScheduler returns a scheduler positioned at time zero, using the
// default event queue (QueueQuad).
func NewScheduler() *Scheduler {
	return NewSchedulerQueue(QueueQuad)
}

// NewSchedulerQueue returns a scheduler positioned at time zero, with
// the chosen event-queue implementation. All kinds execute identical
// schedules; see QueueKind.
func NewSchedulerQueue(kind QueueKind) *Scheduler {
	return &Scheduler{q: newEventQueue(kind)}
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Elided returns the number of postponed-timer hops the kernel
// re-enqueued without firing (see Timer.Postpone). Each hop stands for
// one event the equivalent fire-and-rearm chain would have processed,
// so Processed() + Elided() is the schedule-parity event count.
func (s *Scheduler) Elided() uint64 { return s.elided }

// Pending returns the number of live (non-cancelled) events currently
// scheduled.
func (s *Scheduler) Pending() int { return s.q.len() - s.cancelled }

// NextAt reports the timestamp of the earliest queued entry and whether
// one exists. The entry may be a cancelled timer still riding in the
// queue, so the reported time is a lower bound on the next event that
// will actually fire — callers that sleep until it (the real-time
// runtime does) simply wake, pop the tombstone, and sleep again.
func (s *Scheduler) NextAt() (Time, bool) {
	if s.q.len() == 0 {
		return 0, false
	}
	return s.q.peek().at, true
}

// noteCancelled records one cancelled-but-queued timer and compacts the
// queue when cancelled entries outnumber live ones. The 64-entry floor
// keeps tiny queues from compacting constantly; the one-half ratio
// bounds the queue at twice the live count, making the amortised cost of
// each cancellation O(1) heap work.
func (s *Scheduler) noteCancelled() {
	s.cancelled++
	if s.cancelled >= 64 && s.cancelled > s.q.len()/2 {
		// During a parallel window the barrier replay still references
		// this window's slots by generation; defer compaction until the
		// lane is back under coordinator control.
		if s.shard != nil && s.shard.coord.inWindow {
			return
		}
		s.compact()
	}
}

// compact rebuilds the queue without its cancelled entries, releasing
// their slots to the free list. Ordering is unaffected: the surviving
// entries keep their (at, seq) keys, so runs with and without
// compaction execute identically.
func (s *Scheduler) compact() {
	s.q.compact(func(idx int32) bool {
		if s.pool[idx].state == slotCancelled {
			s.free = append(s.free, idx)
			return false
		}
		return true
	})
	s.cancelled = 0
}

// After schedules fn to run d after the current time and returns a handle
// that can cancel it. A negative d is treated as zero: the event fires at
// the current time, after already-queued events for that instant. A d so
// large that now+d overflows saturates to the maximum representable time
// — the event is effectively never reached — instead of wrapping
// negative and firing immediately.
func (s *Scheduler) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	t := s.now + d
	if t < s.now { // overflow: saturate, don't wrap into the past
		t = Time(math.MaxInt64)
	}
	return s.At(t, fn)
}

// At schedules fn to run at absolute simulation time t. Times in the past
// are clamped to the present.
func (s *Scheduler) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < s.now {
		t = s.now
	}
	if s.shard != nil {
		return s.shard.at(s, t, fn, false)
	}
	idx := s.alloc(fn, t)
	s.pool[idx].rank = s.seq
	s.q.push(event{at: t, seq: s.seq, slot: idx})
	s.seq++
	return Timer{s: s, slot: idx, gen: s.pool[idx].gen}
}

// AfterEmit schedules fn like After, with a contract the sharded
// scheduler depends on: the callback may touch state shared across
// nodes — start a radio transmission, mutate the medium — where a
// callback scheduled with plain After/At may only touch its own node's
// state (and schedule further events). Under the serial scheduler the
// two are identical. Under the sharded scheduler, AfterEmit events are
// routed through the coordinator's global queue and executed solo,
// which is what lets every other event run inside a parallel window;
// the delay must be at least the coordinator's lookahead bound (the
// MAC's minimum transmit arming delay guarantees this).
func (s *Scheduler) AfterEmit(d Time, fn func()) Timer {
	if s.shard == nil {
		return s.After(d, fn)
	}
	if fn == nil {
		panic("sim: AfterEmit called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	t := s.now + d
	if t < s.now { // overflow: saturate, don't wrap into the past
		t = Time(math.MaxInt64)
	}
	return s.shard.at(s, t, fn, true)
}

// alloc claims a pool slot for a pending event, recycling from the free
// list when possible. The caller fills in rank and enqueues the entry.
func (s *Scheduler) alloc(fn func(), t Time) int32 {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		sl := &s.pool[idx]
		sl.gen++ // invalidate handles from the previous lifecycle
		sl.fn, sl.at, sl.state = fn, t, slotPending
		sl.next = 0
		sl.global = false
	} else {
		idx = int32(len(s.pool))
		s.pool = append(s.pool, slot{fn: fn, at: t, state: slotPending})
	}
	return idx
}

// fire pops the given entry's slot into the fired state, releases the
// callback and the slot, and returns the callback to run. The slot is
// recycled before the callback executes, so a callback that schedules
// a new timer may reuse it immediately.
func (s *Scheduler) fire(e event) func() {
	sl := &s.pool[e.slot]
	fn := sl.fn
	sl.fn = nil // release the closure the moment it is claimed
	sl.state = slotFired
	s.free = append(s.free, e.slot)
	return fn
}

// repost re-enqueues a popped-but-postponed timer at its lazy target,
// allocating the insertion sequence the hop's re-arm would have
// consumed at exactly this position in the order (serial scheduler
// only; the sharded lanes have their own repost paths in shard.go).
func (s *Scheduler) repost(e event) {
	sl := &s.pool[e.slot]
	sl.at = sl.next
	sl.rank = s.seq
	s.q.push(event{at: sl.next, seq: s.seq, slot: e.slot})
	s.seq++
	s.elided++
}

// Stop makes Run return after the event currently executing completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the queue is empty or the next event
// is strictly after `until`. On return the clock is at the time of the last
// executed event, or at `until` if the queue drained earlier events only.
// It reports the number of events executed by this call.
func (s *Scheduler) Run(until Time) uint64 {
	if s.shard != nil {
		panic("sim: Run called on a sharded lane; drive the run through Sharded.Run")
	}
	var n uint64
	s.stopped = false
	for s.q.len() > 0 && !s.stopped {
		if s.q.peek().at > until {
			break
		}
		e := s.q.pop()
		if s.pool[e.slot].state == slotCancelled {
			s.cancelled--
			s.free = append(s.free, e.slot)
			continue
		}
		s.now = e.at
		if s.pool[e.slot].next > e.at {
			s.repost(e)
			continue
		}
		s.curRank = e.seq
		s.fire(e)()
		s.processed++
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes events until the queue is empty or maxEvents have run.
// It reports the number executed and whether the queue drained completely.
// It is intended for tests; simulations should use Run with a horizon.
func (s *Scheduler) RunAll(maxEvents uint64) (uint64, bool) {
	if s.shard != nil {
		panic("sim: RunAll called on a sharded lane; drive the run through Sharded.Run")
	}
	var n uint64
	s.stopped = false
	for s.q.len() > 0 && n < maxEvents && !s.stopped {
		e := s.q.pop()
		if s.pool[e.slot].state == slotCancelled {
			s.cancelled--
			s.free = append(s.free, e.slot)
			continue
		}
		s.now = e.at
		if s.pool[e.slot].next > e.at {
			s.repost(e)
			n++ // an elided hop still counts against the event budget
			continue
		}
		s.curRank = e.seq
		s.fire(e)()
		s.processed++
		n++
	}
	return n, s.q.len() == 0
}

// ExecRank identifies the event currently executing by its serial
// rank: the position the event holds in the total order both kernels
// execute. Observers (the packet tracer) stamp recorded facts with it
// so records from different sharded lanes can be merged back into
// exact serial order.
//
// Inside a parallel window, an event that was also *scheduled* inside
// the window does not know its exact rank yet — the window barrier
// assigns it afterwards. For those, ExecRank returns a provisional
// value with the top bit set (RankIsProvisional reports it); the
// coordinator's barrier hook (Sharded.OnBarrier) supplies the
// resolver that maps provisional values to the exact ranks, once per
// window, before any merge can observe them.
func (s *Scheduler) ExecRank() uint64 {
	if s.shard != nil {
		c := s.shard.coord
		if c.inWindow {
			return s.curRank
		}
		return c.curRank
	}
	return s.curRank
}
