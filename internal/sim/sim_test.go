package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// forEachQueueKind runs a subtest against every queue implementation;
// the ordering and compaction contracts must hold for all of them.
func forEachQueueKind(t *testing.T, f func(t *testing.T, kind QueueKind)) {
	for _, kind := range []QueueKind{QueueQuad, QueueRef} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { f(t, kind) })
	}
}

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	forEachQueueKind(t, func(t *testing.T, kind QueueKind) {
		s := NewSchedulerQueue(kind)
		var got []Time
		for _, d := range []Time{5 * time.Second, time.Second, 3 * time.Second, 2 * time.Second} {
			d := d
			s.After(d, func() { got = append(got, s.Now()) })
		}
		s.Run(10 * time.Second)
		want := []Time{time.Second, 2 * time.Second, 3 * time.Second, 5 * time.Second}
		if len(got) != len(want) {
			t.Fatalf("executed %d events, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
			}
		}
	})
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	forEachQueueKind(t, func(t *testing.T, kind QueueKind) {
		s := NewSchedulerQueue(kind)
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			s.At(time.Second, func() { order = append(order, i) })
		}
		s.Run(time.Second)
		for i, v := range order {
			if v != i {
				t.Fatalf("same-instant events fired out of insertion order: %v", order)
			}
		}
	})
}

// TestSchedulerSameInstantBlockOrdering pins the ordering guarantee the
// radio's batched reception path builds on: events scheduled
// back-to-back for one instant form a contiguous sequence block, and an
// event scheduled later — even from a callback already executing at
// that same instant — can never interleave into the block, because
// sequence numbers are allocated at scheduling time and only grow. A
// single event standing in for such a block therefore executes at an
// equivalent point in the total order.
func TestSchedulerSameInstantBlockOrdering(t *testing.T) {
	forEachQueueKind(t, func(t *testing.T, kind QueueKind) {
		s := NewSchedulerQueue(kind)
		const at = time.Second
		var order []string
		// Scheduled first: fires before the block and schedules a
		// same-instant follow-up mid-execution.
		s.At(at, func() {
			order = append(order, "pre")
			s.At(at, func() { order = append(order, "follow-up") })
		})
		// The contiguous block, scheduled back to back.
		for i := 0; i < 3; i++ {
			i := i
			s.At(at, func() {
				order = append(order, fmt.Sprintf("block%d", i))
				if i == 0 {
					// Scheduling at the current instant from inside the
					// block lands after the block too.
					s.At(at, func() { order = append(order, "inner") })
				}
			})
		}
		s.Run(2 * at)
		want := []string{"pre", "block0", "block1", "block2", "follow-up", "inner"}
		if len(order) != len(want) {
			t.Fatalf("executed %d events, want %d: %v", len(order), len(want), order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("same-instant block order = %v, want %v", order, want)
			}
		}
	})
}

func TestSchedulerRunHorizon(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.After(time.Second, func() { fired++ })
	s.After(3*time.Second, func() { fired++ })

	n := s.Run(2 * time.Second)
	if n != 1 || fired != 1 {
		t.Fatalf("Run(2s) executed %d events (fired=%d), want 1", n, fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock at %v after Run(2s), want 2s", s.Now())
	}
	n = s.Run(5 * time.Second)
	if n != 1 || fired != 2 {
		t.Fatalf("second Run executed %d events (fired=%d), want 1", n, fired)
	}
}

func TestSchedulerClockAdvancesToHorizonWhenIdle(t *testing.T) {
	s := NewScheduler()
	s.Run(7 * time.Second)
	if s.Now() != 7*time.Second {
		t.Fatalf("idle Run left clock at %v, want 7s", s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	tm.Cancel()
	s.Run(2 * time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Cancelled() || tm.Fired() {
		t.Fatalf("timer state Cancelled=%v Fired=%v, want true,false", tm.Cancelled(), tm.Fired())
	}
}

func TestTimerCancelAfterFireIsNoop(t *testing.T) {
	s := NewScheduler()
	tm := s.After(time.Second, func() {})
	s.Run(2 * time.Second)
	if !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	tm.Cancel() // must not panic or corrupt state
}

func TestScheduleFromWithinEvent(t *testing.T) {
	s := NewScheduler()
	var at []Time
	s.After(time.Second, func() {
		s.After(time.Second, func() { at = append(at, s.Now()) })
		s.After(0, func() { at = append(at, s.Now()) })
	})
	s.Run(5 * time.Second)
	if len(at) != 2 || at[0] != time.Second || at[1] != 2*time.Second {
		t.Fatalf("nested scheduling fired at %v, want [1s 2s]", at)
	}
}

// TestAfterOverflowSaturates is the regression test for the now+d
// wraparound: before the fix, a huge delay wrapped negative, was
// clamped to now, and fired immediately. It must saturate to the
// maximum representable time instead — scheduled, never reached.
func TestAfterOverflowSaturates(t *testing.T) {
	s := NewScheduler()
	s.Run(time.Second) // advance the clock so now+MaxInt64 overflows
	fired := false
	tm := s.After(Time(math.MaxInt64), func() { fired = true })
	if tm.At() != Time(math.MaxInt64) {
		t.Fatalf("overflowing After scheduled at %v, want saturation at MaxInt64", tm.At())
	}
	s.Run(100 * 365 * 24 * time.Hour)
	if fired {
		t.Fatal("overflowing After fired instead of saturating")
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want the saturated event still queued", got)
	}
}

// TestFiredTimerReleasesState checks the pool recycles fired slots and
// drops their callbacks: a fired timer must not pin its closure, and
// the next After must reuse the slot rather than grow the pool.
func TestFiredTimerReleasesState(t *testing.T) {
	s := NewScheduler()
	a := s.After(time.Second, func() {})
	s.Run(2 * time.Second)
	if got := s.pool[a.slot].fn; got != nil {
		t.Fatal("fired timer still holds its callback")
	}
	if !a.Fired() || !a.Done() {
		t.Fatalf("Fired=%v Done=%v after firing, want true,true", a.Fired(), a.Done())
	}
	b := s.After(time.Second, func() {})
	if len(s.pool) != 1 {
		t.Fatalf("pool grew to %d slots, want the fired slot reused", len(s.pool))
	}
	if b.slot != a.slot || b.gen == a.gen {
		t.Fatalf("reuse did not advance the generation: a=%+v b=%+v", a, b)
	}
}

// TestStaleHandleCannotTouchNewOccupant: once a slot is recycled, the
// old handle's Cancel must be a no-op against the slot's new timer.
func TestStaleHandleCannotTouchNewOccupant(t *testing.T) {
	s := NewScheduler()
	a := s.After(time.Second, func() {})
	s.Run(2 * time.Second)
	fired := false
	s.After(time.Second, func() { fired = true }) // reuses a's slot
	a.Cancel()                                    // stale: must not cancel b
	if a.Fired() || a.Cancelled() {
		t.Fatalf("stale handle reports Fired=%v Cancelled=%v, want conservative false,false", a.Fired(), a.Cancelled())
	}
	if !a.Done() {
		t.Fatal("stale handle must still report Done")
	}
	s.Run(5 * time.Second)
	if !fired {
		t.Fatal("stale Cancel reached the slot's new occupant")
	}
}

// TestZeroTimerIsInert: the zero Timer must be safe to query and
// cancel (protocol structs use it as "no timer scheduled").
func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if !tm.IsZero() || tm.Fired() || tm.Cancelled() || tm.At() != 0 {
		t.Fatalf("zero Timer not inert: %+v", tm)
	}
	if !tm.Done() {
		t.Fatal("zero Timer must behave as long-completed: Done() = false")
	}
	tm.Cancel() // must not panic
}

func TestSchedulePastClampsToNow(t *testing.T) {
	s := NewScheduler()
	var fired Time = -1
	s.After(2*time.Second, func() {
		s.At(time.Second, func() { fired = s.Now() }) // in the past
	})
	s.Run(10 * time.Second)
	if fired != 2*time.Second {
		t.Fatalf("past-scheduled event fired at %v, want clamped to 2s", fired)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run(0)
	if !fired {
		t.Fatal("negative-delay event did not fire at t=0")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 5; i++ {
		s.After(Time(i)*time.Second, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run(10 * time.Second)
	if count != 2 {
		t.Fatalf("Stop did not halt Run: %d events executed, want 2", count)
	}
	// A subsequent Run resumes.
	s.Run(10 * time.Second)
	if count != 5 {
		t.Fatalf("resumed Run executed %d total, want 5", count)
	}
}

func TestRunAll(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 4; i++ {
		s.After(Time(i)*time.Second, func() { count++ })
	}
	n, drained := s.RunAll(2)
	if n != 2 || drained {
		t.Fatalf("RunAll(2) = (%d, %v), want (2, false)", n, drained)
	}
	n, drained = s.RunAll(100)
	if n != 2 || !drained {
		t.Fatalf("second RunAll = (%d, %v), want (2, true)", n, drained)
	}
}

func TestAtNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewScheduler().At(0, nil)
}

// Property: for any set of delays, events fire in non-decreasing time order
// and the clock never goes backwards.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		s := NewScheduler()
		var times []Time
		for _, d := range delaysMS {
			s.After(Time(d)*time.Millisecond, func() { times = append(times, s.Now()) })
		}
		s.Run(1000 * time.Second)
		if len(times) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Processed equals the number of scheduled, non-cancelled events
// after a full drain, regardless of which subset was cancelled.
func TestSchedulerCancelAccountingProperty(t *testing.T) {
	f := func(delaysMS []uint16, cancelMask []bool) bool {
		s := NewScheduler()
		timers := make([]Timer, 0, len(delaysMS))
		for _, d := range delaysMS {
			timers = append(timers, s.After(Time(d)*time.Millisecond, func() {}))
		}
		want := uint64(0)
		for i, tm := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				tm.Cancel()
			} else {
				want++
			}
		}
		s.Run(1000 * time.Second)
		return s.Processed() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	s := NewScheduler()
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = s.After(time.Second, func() {})
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for _, tm := range timers[:4] {
		tm.Cancel()
		tm.Cancel() // double-cancel must not double-count
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", got)
	}
	s.Run(2 * time.Second)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
	if got := s.Processed(); got != 6 {
		t.Fatalf("Processed = %d, want 6", got)
	}
}

// TestCancelCompactsHeap is the leak regression test: cancelling far-future
// timers must shrink the queue long before their deadlines arrive, instead
// of letting them ride in the heap (the pre-fix behaviour, where a long run
// with many cancelled MAC/route timers grew the queue without bound).
func TestCancelCompactsHeap(t *testing.T) {
	forEachQueueKind(t, func(t *testing.T, kind QueueKind) {
		s := NewSchedulerQueue(kind)
		const n = 10000
		timers := make([]Timer, n)
		for i := range timers {
			timers[i] = s.After(time.Hour, func() {})
		}
		for _, tm := range timers {
			tm.Cancel()
		}
		if got := s.Pending(); got != 0 {
			t.Fatalf("Pending after cancelling all = %d, want 0", got)
		}
		// The heap itself must have been compacted, not just the count.
		if got := s.q.len(); got >= n/2 {
			t.Fatalf("heap holds %d entries after cancelling all %d, want compaction", got, n)
		}
		// Compaction must have released the dead slots for reuse.
		if live := len(s.pool) - len(s.free); live != s.q.len() {
			t.Fatalf("%d slots outside the free list, want %d (queue residue)", live, s.q.len())
		}
	})
}

// TestCompactionPreservesOrdering drains a mixed live/cancelled schedule
// through a forced compaction and checks the survivors still fire in
// exact (time, insertion) order. Cancelling two thirds of the timers
// guarantees the cancelled count crosses the one-half compaction
// threshold while survivors remain to witness the ordering.
func TestCompactionPreservesOrdering(t *testing.T) {
	forEachQueueKind(t, func(t *testing.T, kind QueueKind) {
		s := NewSchedulerQueue(kind)
		var got []int
		var cancel []Timer
		want := make([]int, 0, 500)
		for i := 0; i < 500; i++ {
			i := i
			d := Time(i%7) * time.Second
			tm := s.After(d, func() { got = append(got, i) })
			if i%3 != 0 {
				cancel = append(cancel, tm)
			} else {
				want = append(want, i)
			}
		}
		before := s.q.len()
		for _, tm := range cancel {
			tm.Cancel()
		}
		if s.q.len() >= before {
			t.Fatalf("heap did not compact: %d entries before, %d after cancelling %d", before, s.q.len(), len(cancel))
		}
		s.Run(10 * time.Second)
		if len(got) != len(want) {
			t.Fatalf("executed %d events, want %d", len(got), len(want))
		}
		// Reconstruct the expected order: stable by (delay, insertion index).
		byTime := map[int][]int{}
		for _, i := range want {
			byTime[i%7] = append(byTime[i%7], i)
		}
		var expect []int
		for d := 0; d < 7; d++ {
			expect = append(expect, byTime[d]...)
		}
		for k := range expect {
			if got[k] != expect[k] {
				t.Fatalf("event %d fired as %d, want %d (compaction broke ordering)", k, got[k], expect[k])
			}
		}
	})
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Derive("mobility")
	b := root.Derive("mac")
	c := root.Derive("mobility")
	if a.Seed() == b.Seed() {
		t.Fatal("different stream names produced the same seed")
	}
	if a.Seed() != c.Seed() {
		t.Fatal("same stream name produced different seeds")
	}
	// Derived streams replay identically.
	for i := 0; i < 50; i++ {
		if a.Float64() != c.Float64() {
			t.Fatal("derived streams with same name diverged")
		}
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
	if got := g.Uniform(5, 5); got != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", got)
	}
	if got := g.Uniform(5, 2); got != 5 {
		t.Fatalf("Uniform(5,2) = %v, want lo", got)
	}
}

func TestRNGDurationBounds(t *testing.T) {
	g := NewRNG(2)
	if got := g.Duration(0); got != 0 {
		t.Fatalf("Duration(0) = %v, want 0", got)
	}
	if got := g.Duration(-time.Second); got != 0 {
		t.Fatalf("Duration(<0) = %v, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		v := g.Duration(80 * time.Second)
		if v < 0 || v >= 80*time.Second {
			t.Fatalf("Duration(80s) = %v out of range", v)
		}
	}
	for i := 0; i < 1000; i++ {
		v := g.DurationRange(time.Second, 2*time.Second)
		if v < time.Second || v >= 2*time.Second {
			t.Fatalf("DurationRange = %v out of range", v)
		}
	}
	if got := g.DurationRange(2*time.Second, time.Second); got != 2*time.Second {
		t.Fatalf("DurationRange(hi<lo) = %v, want lo", got)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	trues := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", frac)
	}
}

func TestWeightedIndex(t *testing.T) {
	g := NewRNG(4)
	if got := g.WeightedIndex(nil); got != -1 {
		t.Fatalf("WeightedIndex(nil) = %d, want -1", got)
	}
	if got := g.WeightedIndex([]float64{0, 0}); got != -1 {
		t.Fatalf("WeightedIndex(zeros) = %d, want -1", got)
	}
	if got := g.WeightedIndex([]float64{0, 3, 0}); got != 1 {
		t.Fatalf("WeightedIndex single positive = %d, want 1", got)
	}

	// Frequencies should be roughly proportional to weights.
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.WeightedIndex([]float64{1, 2, 1})]++
	}
	if f := float64(counts[1]) / n; f < 0.46 || f > 0.54 {
		t.Fatalf("weight-2 index frequency = %v, want ~0.5", f)
	}
	// Negative weights are ignored entirely.
	for i := 0; i < 1000; i++ {
		if got := g.WeightedIndex([]float64{-5, 1}); got != 1 {
			t.Fatalf("WeightedIndex with negative weight = %d, want 1", got)
		}
	}
}

// Property: WeightedIndex always returns an index with positive weight, for
// any weight vector containing at least one positive entry.
func TestWeightedIndexProperty(t *testing.T) {
	g := NewRNG(5)
	f := func(raw []float64) bool {
		anyPositive := false
		for _, w := range raw {
			if w > 0 {
				anyPositive = true
				break
			}
		}
		idx := g.WeightedIndex(raw)
		if !anyPositive {
			return idx == -1
		}
		return idx >= 0 && idx < len(raw) && raw[idx] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
