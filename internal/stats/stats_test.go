package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !close(s.Mean, 5) || !close(s.Min, 2) || !close(s.Max, 9) {
		t.Fatalf("summary = %+v", s)
	}
	if !close(s.Std, 2) {
		t.Fatalf("Std = %v, want 2", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.N != 1 || !close(s.Mean, 3) || !close(s.Min, 3) || !close(s.Max, 3) || !close(s.Std, 0) {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if s.N != 3 || !close(s.Mean, 2) {
		t.Fatalf("int summary = %+v", s)
	}
}

func TestMergeMatchesDirect(t *testing.T) {
	a := []float64{1, 5, 3, 8}
	b := []float64{2, 2, 9}
	merged := Merge(Summarize(a), Summarize(b))
	direct := Summarize(append(append([]float64{}, a...), b...))
	if merged.N != direct.N || !close(merged.Mean, direct.Mean) ||
		!close(merged.Min, direct.Min) || !close(merged.Max, direct.Max) ||
		!close(merged.Std, direct.Std) {
		t.Fatalf("merged %+v != direct %+v", merged, direct)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if got := Merge(s, Summary{}); got != s {
		t.Fatalf("Merge(s, empty) = %+v", got)
	}
	if got := Merge(Summary{}, s); got != s {
		t.Fatalf("Merge(empty, s) = %+v", got)
	}
}

// Property: Merge is equivalent to summarising the concatenation, for any
// two samples.
func TestMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		merged := Merge(Summarize(a), Summarize(b))
		direct := Summarize(append(append([]float64{}, a...), b...))
		if merged.N != direct.N {
			return false
		}
		if merged.N == 0 {
			return true
		}
		tol := 1e-6 * math.Max(1, math.Abs(direct.Mean))
		return math.Abs(merged.Mean-direct.Mean) < tol &&
			merged.Min == direct.Min && merged.Max == direct.Max &&
			math.Abs(merged.Std-direct.Std) < 1e-6*math.Max(1, direct.Std)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
