// Package stats provides the summary statistics the experiment harness
// reports: per-member delivery distributions (mean with min/max "error
// bars", as the paper plots) and their aggregation across seeds.
package stats

import "math"

// Summary describes a sample of observations.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	// Std is the population standard deviation.
	Std float64
}

// Summarize computes a Summary over xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	return s
}

// SummarizeInts converts and summarises integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Merge combines two samples' summaries into the summary of their union.
// Standard deviations combine via the parallel-axis theorem.
func Merge(a, b Summary) Summary {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	n := a.N + b.N
	mean := (a.Mean*float64(a.N) + b.Mean*float64(b.N)) / float64(n)
	da := a.Mean - mean
	db := b.Mean - mean
	variance := (float64(a.N)*(a.Std*a.Std+da*da) + float64(b.N)*(b.Std*b.Std+db*db)) / float64(n)
	return Summary{
		N:    n,
		Mean: mean,
		Min:  math.Min(a.Min, b.Min),
		Max:  math.Max(a.Max, b.Max),
		Std:  math.Sqrt(variance),
	}
}
