// The windowed sampler: a time series of channel-utilization windows
// built by differencing cumulative counter snapshots at a fixed
// cadence. The scheduling chain lives with the caller (the scenario
// harness arms one timer per window on the simulator's global lane, so
// ticks run solo and may read cross-node state); the sampler itself
// only diffs snapshots, which keeps this package free of kernel
// dependencies and usable from the live runtime's wall-clock timers
// too.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Snapshot is one cumulative reading of the run's counters, taken by
// the host-supplied closure at each window boundary. All counter
// fields are cumulative since the start of the run; the gauge fields
// (InFlight, QueueDepth) are instantaneous.
type Snapshot struct {
	// AirtimeByLayer / TxByLayer mirror ChannelCounters.
	AirtimeByLayer [NumLayers]time.Duration
	TxByLayer      [NumLayers]uint64
	// Collisions is the medium's cumulative collision count.
	Collisions uint64
	// Delivered counts packets handed to protocol handlers.
	Delivered uint64
	// DataDelivered counts multicast payload deliveries to group
	// members — the delivery-progress series.
	DataDelivered uint64
	// GossipRounds counts recovery rounds initiated (anonymous +
	// cache-directed), GossipReplies the repair replies sent.
	GossipRounds  uint64
	GossipReplies uint64
	// MACTxAttempts / MACRetries / MACBackoff aggregate the MACs'
	// transmit attempts, retransmissions and accumulated contention
	// wait.
	MACTxAttempts uint64
	MACRetries    uint64
	MACBackoff    time.Duration
	// InFlight is the number of transmissions currently on the air.
	InFlight int
	// QueueDepth is the total MAC transmit-queue backlog.
	QueueDepth int
}

// Window is one sampled interval [Start, End): the counter deltas
// accrued inside it plus the gauges observed at its end.
type Window struct {
	Start, End time.Duration

	Airtime [NumLayers]time.Duration
	Tx      [NumLayers]uint64

	Collisions    uint64
	Delivered     uint64
	DataDelivered uint64
	GossipRounds  uint64
	GossipReplies uint64
	MACTxAttempts uint64
	MACRetries    uint64
	MACBackoff    time.Duration

	InFlight   int
	QueueDepth int
}

// BusyFraction is the fraction of the window the channel was occupied:
// total transmission airtime over window length. Overlapping
// transmissions each count their full airtime, so saturated channels
// can exceed 1 — that excess is itself the signal (concurrent
// transmissions in collision range).
func (w Window) BusyFraction() float64 {
	d := w.End - w.Start
	if d <= 0 {
		return 0
	}
	var air time.Duration
	for _, a := range w.Airtime {
		air += a
	}
	return float64(air) / float64(d)
}

// AirtimeShare is the layer's fraction of the window's total airtime
// (zero when the channel was idle all window).
func (w Window) AirtimeShare(l Layer) float64 {
	var air time.Duration
	for _, a := range w.Airtime {
		air += a
	}
	if air <= 0 {
		return 0
	}
	return float64(w.Airtime[l]) / float64(air)
}

// Series is the sampler's output: consecutive windows of one run.
type Series struct {
	// WindowLen is the configured sampling cadence.
	WindowLen time.Duration
	Windows   []Window
}

// Sampler builds a Series by differencing snapshots. The host arms a
// repeating timer at the window cadence and calls Tick from it.
type Sampler struct {
	windowLen time.Duration
	snap      func() Snapshot

	last   Snapshot
	lastAt time.Duration
	series Series
	fired  uint64
}

// NewSampler returns a sampler with the given cadence and snapshot
// source. The first window starts at time zero.
func NewSampler(window time.Duration, snap func() Snapshot) *Sampler {
	if window <= 0 {
		panic("metrics: sampler window must be positive")
	}
	return &Sampler{windowLen: window, snap: snap, series: Series{WindowLen: window}}
}

// WindowLen returns the configured cadence.
func (s *Sampler) WindowLen() time.Duration { return s.windowLen }

// Tick closes the current window at `now`: it takes a snapshot, emits
// the delta window, and starts the next. The host calls it from the
// timer it armed (and once more at the horizon, if the final partial
// window should be kept).
func (s *Sampler) Tick(now time.Duration) {
	s.fired++
	cur := s.snap()
	if now <= s.lastAt {
		// A horizon flush landing exactly on a window boundary: nothing
		// accrued, nothing to emit.
		s.last = cur
		return
	}
	w := Window{Start: s.lastAt, End: now}
	for l := Layer(0); l < NumLayers; l++ {
		w.Airtime[l] = cur.AirtimeByLayer[l] - s.last.AirtimeByLayer[l]
		w.Tx[l] = cur.TxByLayer[l] - s.last.TxByLayer[l]
	}
	w.Collisions = cur.Collisions - s.last.Collisions
	w.Delivered = cur.Delivered - s.last.Delivered
	w.DataDelivered = cur.DataDelivered - s.last.DataDelivered
	w.GossipRounds = cur.GossipRounds - s.last.GossipRounds
	w.GossipReplies = cur.GossipReplies - s.last.GossipReplies
	w.MACTxAttempts = cur.MACTxAttempts - s.last.MACTxAttempts
	w.MACRetries = cur.MACRetries - s.last.MACRetries
	w.MACBackoff = cur.MACBackoff - s.last.MACBackoff
	w.InFlight = cur.InFlight
	w.QueueDepth = cur.QueueDepth
	s.series.Windows = append(s.series.Windows, w)
	s.last = cur
	s.lastAt = now
}

// Fired reports how many Tick calls have run. The scenario harness
// subtracts it from the kernel's processed-event count so
// Result.Events stays bit-identical with sampling on or off (the
// sampler's timer chain is real scheduler events, but they are
// measurement, not simulation).
func (s *Sampler) Fired() uint64 { return s.fired }

// Series returns the windows emitted so far. The slice is the
// sampler's own; callers must not mutate it while ticks may still run.
func (s *Sampler) Series() Series { return s.series }

// windowJSON is the export shape of one window: durations in seconds,
// derived ratios precomputed, so downstream plotting needs no unit
// knowledge.
type windowJSON struct {
	Start         float64            `json:"start_s"`
	End           float64            `json:"end_s"`
	BusyFraction  float64            `json:"busy_fraction"`
	AirtimeShare  map[string]float64 `json:"airtime_share"`
	Tx            map[string]uint64  `json:"tx"`
	Collisions    uint64             `json:"collisions"`
	Delivered     uint64             `json:"delivered"`
	DataDelivered uint64             `json:"data_delivered"`
	GossipRounds  uint64             `json:"gossip_rounds"`
	GossipReplies uint64             `json:"gossip_replies"`
	MACTxAttempts uint64             `json:"mac_tx_attempts"`
	MACRetries    uint64             `json:"mac_retries"`
	MACBackoffS   float64            `json:"mac_backoff_s"`
	InFlight      int                `json:"in_flight"`
	QueueDepth    int                `json:"queue_depth"`
}

func (w Window) exportJSON() windowJSON {
	j := windowJSON{
		Start:         w.Start.Seconds(),
		End:           w.End.Seconds(),
		BusyFraction:  w.BusyFraction(),
		AirtimeShare:  make(map[string]float64, int(NumLayers)),
		Tx:            make(map[string]uint64, int(NumLayers)),
		Collisions:    w.Collisions,
		Delivered:     w.Delivered,
		DataDelivered: w.DataDelivered,
		GossipRounds:  w.GossipRounds,
		GossipReplies: w.GossipReplies,
		MACTxAttempts: w.MACTxAttempts,
		MACRetries:    w.MACRetries,
		MACBackoffS:   w.MACBackoff.Seconds(),
		InFlight:      w.InFlight,
		QueueDepth:    w.QueueDepth,
	}
	for l := Layer(0); l < NumLayers; l++ {
		j.AirtimeShare[l.String()] = w.AirtimeShare(l)
		j.Tx[l.String()] = w.Tx[l]
	}
	return j
}

// MarshalJSON exports the window with derived ratios and second-based
// durations (see windowJSON).
func (w Window) MarshalJSON() ([]byte, error) {
	return json.Marshal(w.exportJSON())
}

// WriteCSV renders the series as a flat CSV table, one row per window,
// with a header row. The layer columns are expanded per layer so the
// file loads straight into a plotting tool.
func (s Series) WriteCSV(w io.Writer) error {
	var cols []string
	cols = append(cols, "start_s", "end_s", "busy_fraction")
	for l := Layer(0); l < NumLayers; l++ {
		cols = append(cols, "airtime_share_"+l.String(), "tx_"+l.String())
	}
	cols = append(cols, "collisions", "delivered", "data_delivered",
		"gossip_rounds", "gossip_replies", "mac_tx_attempts", "mac_retries",
		"mac_backoff_s", "in_flight", "queue_depth")
	for i, c := range cols {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, c); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, win := range s.Windows {
		row := fmt.Sprintf("%.3f,%.3f,%.4f", win.Start.Seconds(), win.End.Seconds(), win.BusyFraction())
		for l := Layer(0); l < NumLayers; l++ {
			row += fmt.Sprintf(",%.4f,%d", win.AirtimeShare(l), win.Tx[l])
		}
		row += fmt.Sprintf(",%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d\n",
			win.Collisions, win.Delivered, win.DataDelivered,
			win.GossipRounds, win.GossipReplies, win.MACTxAttempts, win.MACRetries,
			win.MACBackoff.Seconds(), win.InFlight, win.QueueDepth)
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}
