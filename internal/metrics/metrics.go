// Package metrics is the unified telemetry layer: per-layer counters
// the protocol stack increments on its hot paths, a windowed
// time-series sampler driven by the simulation scheduler, and a small
// registry that renders any of it in Prometheus text format.
//
// The package is observe-only by contract (DESIGN.md §11): nothing in
// it schedules protocol events, draws randomness, or mutates protocol
// state, so enabling collection never changes a simulation result —
// the golden digests stay bit-identical with metrics on or off. Hot
// paths pay for it with plain uint64 field increments (zero
// allocations, no atomics): inside the simulator every writer runs in
// a context that owns the counter exclusively (per-node counters on
// the node's lane, shared channel counters only from solo/emit
// events — see ChannelCounters). The live runtime (runtime/netrt)
// instead samples its engines' counters through each node's Do
// serializer, keeping the same engines instrumentation-free.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"anongossip/internal/pkt"
)

// Layer attributes channel usage to the protocol layer that caused it.
type Layer uint8

// Layers, in rendering order.
const (
	// LayerMAC is link-level control: RTS/CTS/ACK frames.
	LayerMAC Layer = iota
	// LayerRouting is routing-protocol control traffic (hello, route
	// request/reply/error, multicast tree maintenance, join floods).
	LayerRouting
	// LayerData is multicast payload traffic.
	LayerData
	// LayerGossip is the anonymous-gossip recovery layer's traffic:
	// gossip requests and the data retransmissions they trigger.
	LayerGossip
	// NumLayers sizes per-layer arrays.
	NumLayers
)

// String names the layer as the export labels spell it.
func (l Layer) String() string {
	switch l {
	case LayerMAC:
		return "mac"
	case LayerRouting:
		return "routing"
	case LayerData:
		return "data"
	case LayerGossip:
		return "gossip"
	default:
		return fmt.Sprintf("layer(%d)", uint8(l))
	}
}

// LayerOf classifies a network-layer packet kind. MAC-level frames
// (RTS/CTS/ACK) never appear as packet kinds; the MAC attributes them
// to LayerMAC directly.
func LayerOf(k pkt.Kind) Layer {
	switch k {
	case pkt.KindData:
		return LayerData
	case pkt.KindGossipReq, pkt.KindGossipRep:
		return LayerGossip
	default:
		return LayerRouting
	}
}

// ChannelCounters accumulates per-layer channel usage for one
// simulation run: every transmission's airtime, count and bytes,
// attributed to the layer whose packet (or control frame) occupied the
// channel. One instance is shared by every MAC in the run.
//
// Concurrency contract: fields are plain integers, not atomics, which
// is safe because every write site is a transmission start — and
// transmission starts only execute in contexts that are single-threaded
// even under the sharded kernel (AfterEmit-armed callbacks and radio
// finish processing both run solo; see DESIGN.md §7). Reads from the
// sampler run on the global lane, also solo.
type ChannelCounters struct {
	// AirtimeByLayer is the cumulative channel occupancy per layer.
	AirtimeByLayer [NumLayers]time.Duration
	// TxByLayer counts transmissions started per layer.
	TxByLayer [NumLayers]uint64
	// BytesByLayer sums the wire sizes transmitted per layer.
	BytesByLayer [NumLayers]uint64
}

// ObserveTx records one started transmission. It is the hot-path write
// and must stay allocation-free (metrics_test.go asserts 0 allocs/op).
func (c *ChannelCounters) ObserveTx(l Layer, airtime time.Duration, bytes int) {
	c.AirtimeByLayer[l] += airtime
	c.TxByLayer[l]++
	c.BytesByLayer[l] += uint64(bytes)
}

// TotalAirtime sums channel occupancy over all layers.
func (c *ChannelCounters) TotalAirtime() time.Duration {
	var t time.Duration
	for _, a := range c.AirtimeByLayer {
		t += a
	}
	return t
}

// TotalTx sums transmissions over all layers.
func (c *ChannelCounters) TotalTx() uint64 {
	var n uint64
	for _, v := range c.TxByLayer {
		n += v
	}
	return n
}

// Kind distinguishes monotonically increasing counters from
// point-in-time gauges in the Prometheus rendering.
type Kind uint8

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
)

func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one exported time-series point: a label set and a value.
type Sample struct {
	Labels []Label
	Value  float64
}

// family is one registered metric: a name, help text, kind, and a
// collect callback that emits the current samples. Collection is pull
// based — registering is cheap and the callback only runs when a
// scrape or summary actually wants values.
type family struct {
	name, help string
	kind       Kind
	collect    func(emit func(Sample))
}

// Registry holds metric families in registration order; Gather and
// WritePrometheus render them deterministically (families in
// registration order, samples in emission order), so two scrapes of an
// idle process are byte-identical.
type Registry struct {
	families []family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a monotonically increasing family.
func (r *Registry) Counter(name, help string, collect func(emit func(Sample))) {
	r.families = append(r.families, family{name: name, help: help, kind: KindCounter, collect: collect})
}

// Gauge registers a point-in-time family.
func (r *Registry) Gauge(name, help string, collect func(emit func(Sample))) {
	r.families = append(r.families, family{name: name, help: help, kind: KindGauge, collect: collect})
}

// Gathered is one family's rendered samples.
type Gathered struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Gather runs every family's collector and returns the results in
// registration order.
func (r *Registry) Gather() []Gathered {
	out := make([]Gathered, 0, len(r.families))
	for _, f := range r.families {
		g := Gathered{Name: f.name, Help: f.help, Kind: f.kind}
		f.collect(func(s Sample) { g.Samples = append(g.Samples, s) })
		out = append(out, g)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). The writer is hand-rolled — the
// repo takes no dependency on a client library — and covers the
// subset the registry produces: HELP/TYPE headers, label escaping,
// and shortest-round-trip float formatting.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, g := range r.Gather() {
		if g.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(g.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(g.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(g.Name)
		b.WriteByte(' ')
		b.WriteString(g.Kind.String())
		b.WriteByte('\n')
		for _, s := range g.Samples {
			b.WriteString(g.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
