package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"anongossip/internal/pkt"
)

func TestLayerOf(t *testing.T) {
	cases := []struct {
		kind pkt.Kind
		want Layer
	}{
		{pkt.KindData, LayerData},
		{pkt.KindGossipReq, LayerGossip},
		{pkt.KindGossipRep, LayerGossip},
		{pkt.KindHello, LayerRouting},
		{pkt.KindRREQ, LayerRouting},
		{pkt.KindRREP, LayerRouting},
		{pkt.KindRERR, LayerRouting},
		{pkt.KindMACT, LayerRouting},
		{pkt.KindGRPH, LayerRouting},
		{pkt.KindNearest, LayerRouting},
		{pkt.KindJoinQuery, LayerRouting},
		{pkt.KindJoinReply, LayerRouting},
	}
	for _, c := range cases {
		if got := LayerOf(c.kind); got != c.want {
			t.Errorf("LayerOf(%v) = %v, want %v", c.kind, got, c.want)
		}
	}
}

// TestObserveTxZeroAlloc pins the hot-path counter write at zero
// allocations: ObserveTx runs on every transmission start, and an
// allocation there would both slow the kernel and (under the sharded
// scheduler) be a GC-visible side effect of enabling metrics.
func TestObserveTxZeroAlloc(t *testing.T) {
	var c ChannelCounters
	allocs := testing.AllocsPerRun(1000, func() {
		c.ObserveTx(LayerData, 500*time.Microsecond, 128)
		c.ObserveTx(LayerMAC, 50*time.Microsecond, 14)
	})
	if allocs != 0 {
		t.Fatalf("ObserveTx allocated %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkObserveTx(b *testing.B) {
	var c ChannelCounters
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ObserveTx(LayerData, 500*time.Microsecond, 128)
	}
}

func TestChannelCountersTotals(t *testing.T) {
	var c ChannelCounters
	c.ObserveTx(LayerData, 2*time.Millisecond, 100)
	c.ObserveTx(LayerGossip, 1*time.Millisecond, 50)
	c.ObserveTx(LayerGossip, 1*time.Millisecond, 50)
	if got := c.TotalAirtime(); got != 4*time.Millisecond {
		t.Errorf("TotalAirtime = %v, want 4ms", got)
	}
	if got := c.TotalTx(); got != 3 {
		t.Errorf("TotalTx = %d, want 3", got)
	}
	if c.BytesByLayer[LayerGossip] != 100 {
		t.Errorf("gossip bytes = %d, want 100", c.BytesByLayer[LayerGossip])
	}
}

func TestSamplerWindows(t *testing.T) {
	var cum Snapshot
	s := NewSampler(time.Second, func() Snapshot { return cum })

	cum.AirtimeByLayer[LayerData] = 400 * time.Millisecond
	cum.AirtimeByLayer[LayerGossip] = 100 * time.Millisecond
	cum.TxByLayer[LayerData] = 4
	cum.Delivered = 10
	cum.InFlight = 2
	s.Tick(time.Second)

	cum.AirtimeByLayer[LayerData] = 500 * time.Millisecond
	cum.Delivered = 12
	cum.InFlight = 0
	s.Tick(2 * time.Second)

	ser := s.Series()
	if len(ser.Windows) != 2 {
		t.Fatalf("got %d windows, want 2", len(ser.Windows))
	}
	w0 := ser.Windows[0]
	if got := w0.BusyFraction(); got != 0.5 {
		t.Errorf("window 0 busy fraction = %v, want 0.5", got)
	}
	if got := w0.AirtimeShare(LayerData); got != 0.8 {
		t.Errorf("window 0 data airtime share = %v, want 0.8", got)
	}
	if w0.InFlight != 2 {
		t.Errorf("window 0 in-flight = %d, want 2", w0.InFlight)
	}
	w1 := ser.Windows[1]
	if got := w1.BusyFraction(); got != 0.1 {
		t.Errorf("window 1 busy fraction = %v, want 0.1", got)
	}
	if w1.Delivered != 2 {
		t.Errorf("window 1 delivered delta = %d, want 2", w1.Delivered)
	}
	if w1.InFlight != 0 {
		t.Errorf("window 1 in-flight = %d, want 0", w1.InFlight)
	}
	if got := s.Fired(); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

// A horizon flush at an exact window boundary must not emit an empty
// window, but still counts as a fired tick for event parity.
func TestSamplerBoundaryFlush(t *testing.T) {
	s := NewSampler(time.Second, func() Snapshot { return Snapshot{} })
	s.Tick(time.Second)
	s.Tick(time.Second)
	if got := len(s.Series().Windows); got != 1 {
		t.Fatalf("got %d windows, want 1", got)
	}
	if got := s.Fired(); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestWindowJSONAndCSV(t *testing.T) {
	var cum Snapshot
	s := NewSampler(time.Second, func() Snapshot { return cum })
	cum.AirtimeByLayer[LayerData] = 250 * time.Millisecond
	cum.TxByLayer[LayerData] = 2
	cum.GossipRounds = 3
	s.Tick(time.Second)

	raw, err := json.Marshal(s.Series().Windows[0])
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if m["busy_fraction"].(float64) != 0.25 {
		t.Errorf("busy_fraction = %v, want 0.25", m["busy_fraction"])
	}
	share := m["airtime_share"].(map[string]any)
	if share["data"].(float64) != 1 {
		t.Errorf("data airtime share = %v, want 1", share["data"])
	}

	var buf bytes.Buffer
	if err := s.Series().WriteCSV(&buf); err != nil {
		t.Fatalf("csv: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv has %d lines, want header + 1 row", len(lines))
	}
	if !strings.Contains(lines[0], "busy_fraction") || !strings.Contains(lines[0], "airtime_share_gossip") {
		t.Errorf("csv header missing expected columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], "0.2500") {
		t.Errorf("csv row missing busy fraction: %q", lines[1])
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	var hits uint64 = 42
	r.Counter("ag_hits_total", "Total hits.", func(emit func(Sample)) {
		emit(Sample{Labels: []Label{{"layer", "data"}}, Value: float64(hits)})
	})
	r.Gauge("ag_queue_depth", "Current backlog.", func(emit func(Sample)) {
		emit(Sample{Value: 3})
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP ag_hits_total Total hits.",
		"# TYPE ag_hits_total counter",
		`ag_hits_total{layer="data"} 42`,
		"# TYPE ag_queue_depth gauge",
		"ag_queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Two scrapes of unchanged state are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatalf("write: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Error("scrapes of unchanged state differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("ag_esc", "", func(emit func(Sample)) {
		emit(Sample{Labels: []Label{{"v", `a"b\c` + "\n"}}, Value: 1})
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.Contains(buf.String(), `ag_esc{v="a\"b\\c\n"} 1`) {
		t.Errorf("bad escaping: %q", buf.String())
	}
}
