package scenario

// stripElisionBreakdown returns a copy of the result with the
// event-accounting breakdown zeroed. The breakdown intentionally
// differs across reception models — the batched model moves
// per-receiver receptions from EventsProcessed to ElidedRadio — while
// their sum, Result.Events, stays bit-identical. Differential tests
// that cross the rx-model axis compare Results modulo that
// redistribution; tests along every other axis (index, queue,
// scheduler, metrics on/off) compare the raw structs, breakdown
// included.
func stripElisionBreakdown(r *Result) *Result {
	c := *r
	c.EventsProcessed = 0
	c.ElidedKernel = 0
	c.ElidedRadio = 0
	c.ElidedMAC = 0
	return &c
}
