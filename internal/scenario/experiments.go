package scenario

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/stack"
	"anongossip/internal/stats"
)

// Aggregate summarises one protocol at one sweep point across seeds: the
// union of all member observations (the paper's error bars span the full
// receiver set) plus mean goodput.
type Aggregate struct {
	// Received is the union summary of per-member delivery counts over
	// all seeds.
	Received stats.Summary
	// Goodput is the mean member goodput across seeds.
	Goodput float64
	// Sent is the mean per-run packet count across seeds. Seeds
	// usually agree exactly, but under overload (the dense family)
	// source sends can fail seed-dependently, so the mean — not an
	// arbitrary seed's count — is the DeliveryRatio denominator.
	Sent int
	// Events sums the logical simulation events over all seeds — a
	// workload-size metric for perf tracking, identical across the
	// index, queue and reception-model kinds.
	Events uint64
	// HeapLiveBytes is the largest post-run live heap across seeds
	// (zero unless the runs set Config.MeasureHeap; see the huge-scale
	// family).
	HeapLiveBytes uint64
}

// DeliveryRatio is mean delivery over packets sent, in [0, 1].
func (a Aggregate) DeliveryRatio() float64 {
	if a.Sent == 0 {
		return 0
	}
	return a.Received.Mean / float64(a.Sent)
}

// RunSeeds executes cfg once per seed, in parallel, and returns the
// per-seed results in seed order.
func RunSeeds(cfg Config, seeds []int64, parallel int) ([]*Result, error) {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = seed
			results[i], errs[i] = Run(c)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AggregateResults merges per-seed results into one Aggregate.
func AggregateResults(results []*Result) Aggregate {
	var agg Aggregate
	var goodputSum float64
	var sentSum int
	for _, r := range results {
		agg.Received = stats.Merge(agg.Received, r.Received)
		goodputSum += r.MeanGoodput()
		sentSum += r.Sent
		agg.Events += r.Events
		if r.HeapLiveBytes > agg.HeapLiveBytes {
			agg.HeapLiveBytes = r.HeapLiveBytes
		}
	}
	if len(results) > 0 {
		agg.Goodput = goodputSum / float64(len(results))
		agg.Sent = (sentSum + len(results)/2) / len(results)
	}
	return agg
}

// ComparisonRow is one x-axis point of a treatment-versus-baseline
// figure. The field names keep the paper's paired-curve labels: Gossip
// holds the treatment stack's aggregate (the stack with the recovery
// layer), Maodv the baseline's.
type ComparisonRow struct {
	X      float64
	Gossip Aggregate
	Maodv  Aggregate
	// Elapsed is the wall time this point took: both stacks, all seeds
	// (measurement metadata, not a simulation result). Together with
	// the aggregates' Events totals it gives the events/sec perf track
	// agbench -json records across PRs.
	Elapsed time.Duration
}

// RunComparisonStacks sweeps xs, running the treatment and baseline
// stacks at each point with the given seeds. apply customises the base
// config for an x value. progress (optional) receives one line per
// completed point.
func RunComparisonStacks(base Config, xs []float64, apply func(Config, float64) Config,
	seeds []int64, parallel int, progress io.Writer, treatment, baseline stack.Spec) ([]ComparisonRow, error) {
	rows := make([]ComparisonRow, 0, len(xs))
	for _, x := range xs {
		cfg := apply(base, x)
		start := time.Now()

		cfg.Stack = treatment
		tRes, err := RunSeeds(cfg, seeds, parallel)
		if err != nil {
			return nil, fmt.Errorf("%v at x=%v: %w", treatment, x, err)
		}
		cfg.Stack = baseline
		bRes, err := RunSeeds(cfg, seeds, parallel)
		if err != nil {
			return nil, fmt.Errorf("%v at x=%v: %w", baseline, x, err)
		}
		row := ComparisonRow{
			X: x, Gossip: AggregateResults(tRes), Maodv: AggregateResults(bRes),
			Elapsed: time.Since(start),
		}
		rows = append(rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "x=%-7.2f %v %7.1f [%5.0f,%5.0f]   %v %7.1f [%5.0f,%5.0f]\n",
				x, treatment, row.Gossip.Received.Mean, row.Gossip.Received.Min, row.Gossip.Received.Max,
				baseline, row.Maodv.Received.Mean, row.Maodv.Received.Min, row.Maodv.Received.Max)
		}
	}
	return rows, nil
}

// RunComparison sweeps xs with the paper's original pair — MAODV+AG as
// treatment against bare MAODV — mirroring the published curves.
func RunComparison(base Config, xs []float64, apply func(Config, float64) Config,
	seeds []int64, parallel int, progress io.Writer) ([]ComparisonRow, error) {
	return RunComparisonStacks(base, xs, apply, seeds, parallel, progress,
		stack.Spec{Routing: "maodv", Recovery: "gossip"}, stack.Spec{Routing: "maodv"})
}

// --- paper figure definitions (see DESIGN.md experiment index) ---

// Seeds returns the canonical seed list (the paper uses 10 random
// seeds).
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// Fig2Xs is the transmission-range sweep 45..85 m in 5 m steps.
func Fig2Xs() []float64 { return rangeXs(45, 85, 5) }

// Fig3Xs equals Fig2Xs (the figures differ in max speed only).
func Fig3Xs() []float64 { return Fig2Xs() }

// Fig4Xs is the low-speed sweep 0.1..1.0 m/s in 0.1 steps.
func Fig4Xs() []float64 { return rangeXs(0.1, 1.0, 0.1) }

// Fig5Xs is the high-speed sweep 1..10 m/s in 1 m/s steps.
func Fig5Xs() []float64 { return rangeXs(1, 10, 1) }

// Fig6Xs and Fig7Xs sweep the node count 40..100.
func Fig6Xs() []float64 { return rangeXs(40, 100, 15) }

// Fig7Xs sweeps node count at a fixed 55 m range.
func Fig7Xs() []float64 { return Fig6Xs() }

func rangeXs(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+1e-9; x += step {
		out = append(out, math.Round(x*100)/100)
	}
	return out
}

// ApplyFig2 sets the transmission range (40 nodes, 0.2 m/s).
func ApplyFig2(c Config, x float64) Config {
	c.Nodes, c.MaxSpeed, c.TxRange = 40, 0.2, x
	return c
}

// ApplyFig3 sets the transmission range (40 nodes, 2 m/s).
func ApplyFig3(c Config, x float64) Config {
	c.Nodes, c.MaxSpeed, c.TxRange = 40, 2, x
	return c
}

// ApplyFig4And5 sets the max speed (40 nodes, 75 m range).
func ApplyFig4And5(c Config, x float64) Config {
	c.Nodes, c.TxRange, c.MaxSpeed = 40, 75, x
	return c
}

// ApplyFig6 sets the node count, scaling the range to keep the mean
// neighbour count of the 40-node/75 m baseline: the expected degree in a
// uniform deployment scales with n·r², so r(n) = 75·sqrt(40/n).
func ApplyFig6(c Config, x float64) Config {
	c.MaxSpeed = 0.2
	c.Nodes = int(x)
	c.TxRange = 75 * math.Sqrt(40/x)
	return c
}

// ApplyFig7 sets the node count at a fixed 55 m range (0.2 m/s).
func ApplyFig7(c Config, x float64) Config {
	c.MaxSpeed = 0.2
	c.TxRange = 55
	c.Nodes = int(x)
	return c
}

// --- large-scale family (beyond the paper) ---
//
// The paper stops at 100 nodes on a fixed 200 m × 200 m field (Fig. 6
// holds mean degree constant there by shrinking the range as r(n) =
// 75·sqrt(40/n)). Shrinking the range much below 45 m fragments the
// network, so scaling past a few hundred nodes needs the opposite knob:
// the large-scale family keeps the paper's 75 m range and grows the
// field with the node count, holding node density — and hence mean
// degree (≈ n·πr²/A) — at the 40-node baseline. That makes the
// workload a pure scale sweep: per-node traffic locality is unchanged
// while the network diameter grows, which is exactly the regime where
// the grid neighbour index keeps radio events O(degree) instead of
// O(n). "Gossip-Based Ad Hoc Routing" (Haas, Halpern & Li) sweeps
// network size the same way to expose gossip's scaling behaviour.

// LargeScaleXs returns the node counts of the large-scale sweep.
func LargeScaleXs() []float64 { return []float64{100, 250, 500, 1000} }

// ApplyLargeScale sets the node count, growing the terrain so node
// density matches the paper's 40-nodes-per-200 m² baseline at a fixed
// 75 m range (side(n) = 200·sqrt(n/40)).
func ApplyLargeScale(c Config, x float64) Config {
	c.Nodes = int(x)
	side := 200 * math.Sqrt(x/40)
	c.Area = geom.Rect{W: side, H: side}
	c.TxRange = 75
	c.MaxSpeed = 0.2
	return c
}

// LargeScaleConfig returns the large-scale configuration at one node
// count: the paper's baseline protocol stack and traffic on the scaled
// terrain. Callers wanting a shorter run should use ShortenedData.
func LargeScaleConfig(nodes int) Config {
	return ApplyLargeScale(DefaultConfig(), float64(nodes))
}

// ShortenedData rescales the run to a shorter duration while keeping
// the paper's proportions: a 1/5 warm-up and a 40 s cool-down tail
// around the CBR window. It is the knob benchmarks and CI use to keep
// large-scale runs affordable. Durations of a minute or less collapse
// the tail to duration/5.
func ShortenedData(c Config, duration time.Duration) Config {
	c.Duration = duration
	c.DataStart = duration / 5
	tail := 40 * time.Second
	if duration <= 60*time.Second {
		tail = duration / 5
	}
	c.DataEnd = duration - tail
	return c
}

// --- huge-scale family (beyond the paper) ---
//
// The large-scale family stops at 1000 nodes. The huge family extends
// the same constant-density law (75 m range, side(n) = 200·sqrt(n/40))
// to 10k–100k nodes, where the questions change from delivery shape to
// engineering: does throughput stay O(events), and does per-node
// memory stay flat as the world grows? Its runs therefore measure the
// live heap (Config.MeasureHeap) alongside events/sec, and agbench
// -fig huge records heap_bytes_per_node / peak_heap_bytes for
// cmd/benchgate's memory gates. At these scales a full paper-length
// run is hours; the family is meant to be swept with a short data
// window (agbench's -huge-duration, default 10 s), which makes the
// delivery columns warm-up-dominated noise — the family's results are
// the perf and memory columns, not the delivery tables.

// HugeScaleXs returns the node counts of the huge-scale sweep.
func HugeScaleXs() []float64 { return []float64{10000, 25000, 50000, 100000} }

// ApplyHugeScale sets the node count on the constant-density terrain
// (identical law to ApplyLargeScale) and turns on per-run heap
// measurement.
func ApplyHugeScale(c Config, x float64) Config {
	c = ApplyLargeScale(c, x)
	c.MeasureHeap = true
	return c
}

// HugeScaleConfig returns the huge-scale configuration at one node
// count. Callers almost always want ShortenedData on top.
func HugeScaleConfig(nodes int) Config {
	return ApplyHugeScale(DefaultConfig(), float64(nodes))
}

// --- dense-traffic family (beyond the paper) ---
//
// The large-scale family grows the network at the paper's baseline
// density (~15 neighbours). The dense family turns the opposite knob:
// it packs the field so every node hears 20–60 neighbours and runs
// multiple concurrent CBR sources, putting many frames in every
// neighbourhood at once. That is the regime where reception cost
// dominates — each broadcast reaches O(degree) receivers — so the
// family is the standing stress workload for the radio's batched
// reception path and any future channel work. The delivery-under-load
// questions of gossip-based routing at scale (Haas/Halpern/Li; Hu/Jehl,
// PAPERS.md) live in exactly this regime.

// DenseXs returns the target mean degrees of the dense-traffic sweep.
func DenseXs() []float64 { return []float64{20, 30, 40, 60} }

// DenseSources is the number of concurrent CBR senders in the dense
// family (phase-shifted; AG tracks sequence numbers per origin).
const DenseSources = 5

// DenseNodes is the family's default node count; agbench's -dense-nodes
// raises it to 500 or 1000 for the larger members.
const DenseNodes = 250

// ApplyDense reshapes c to one dense sweep point: the field is sized so
// the expected mean degree at the paper's 75 m range equals x for the
// config's node count — side(n, d) = sqrt(n·π·75²/d) — ignoring edge
// effects, which only push the true degree below the target. Node count
// and source count are taken from c (see DenseConfig). A non-positive
// (or NaN) degree yields a degenerate area that Validate rejects,
// rather than an infinite field that would simulate silently.
func ApplyDense(c Config, degree float64) Config {
	c.TxRange = 75
	c.MaxSpeed = 0.2
	if !(degree > 0) {
		c.Area = geom.Rect{}
		return c
	}
	side := math.Sqrt(float64(c.Nodes) * math.Pi * c.TxRange * c.TxRange / degree)
	c.Area = geom.Rect{W: side, H: side}
	return c
}

// DenseConfig returns the dense-traffic configuration at one node count
// and target mean degree: DenseSources concurrent senders on a field
// packed to the requested degree.
func DenseConfig(nodes int, degree float64) Config {
	c := DefaultConfig()
	c.Nodes = nodes
	c.NumSources = DenseSources
	return ApplyDense(c, degree)
}

// GoodputCase is one of Fig. 8's four (range, speed) combinations.
type GoodputCase struct {
	TxRange  float64
	MaxSpeed float64
}

// Fig8Cases returns the paper's four goodput configurations.
func Fig8Cases() []GoodputCase {
	return []GoodputCase{
		{TxRange: 45, MaxSpeed: 0.2},
		{TxRange: 75, MaxSpeed: 0.2},
		{TxRange: 45, MaxSpeed: 2},
		{TxRange: 75, MaxSpeed: 2},
	}
}

// GoodputRow reports per-member goodput for one Fig. 8 case.
type GoodputRow struct {
	Case GoodputCase
	// PerMember holds each member's goodput percentage, ordered by node
	// ID, concatenated across seeds.
	PerMember []float64
	Summary   stats.Summary
}

// RunGoodput executes the Fig. 8 experiment for one case. The stack
// under test is the base config's when it has a recovery layer, else
// the paper's MAODV+AG.
func RunGoodput(base Config, gc GoodputCase, seeds []int64, parallel int) (GoodputRow, error) {
	cfg := base
	cfg.Stack = cfg.Spec()
	if cfg.Stack.Recovery == "" {
		cfg.Stack = stack.Spec{Routing: "maodv", Recovery: "gossip"}
	}
	cfg.Nodes = 40
	cfg.TxRange = gc.TxRange
	cfg.MaxSpeed = gc.MaxSpeed
	results, err := RunSeeds(cfg, seeds, parallel)
	if err != nil {
		return GoodputRow{}, err
	}
	row := GoodputRow{Case: gc}
	for _, r := range results {
		for _, m := range r.Members {
			row.PerMember = append(row.PerMember, m.Goodput)
		}
	}
	row.Summary = stats.Summarize(row.PerMember)
	return row, nil
}
