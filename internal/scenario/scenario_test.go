package scenario

import (
	"testing"
	"time"
)

// shortConfig is a trimmed run (120 s, 25 nodes) for fast tests.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 25
	cfg.TxRange = 60
	cfg.Duration = 120 * time.Second
	cfg.DataStart = 30 * time.Second
	cfg.DataEnd = 100 * time.Second
	return cfg
}

func TestExpectedPackets(t *testing.T) {
	if got := DefaultConfig().ExpectedPackets(); got != 2201 {
		t.Fatalf("paper workload = %d packets, want 2201", got)
	}
	cfg := shortConfig()
	if got := cfg.ExpectedPackets(); got != 351 {
		t.Fatalf("short workload = %d, want 351", got)
	}
	cfg.DataInterval = 0
	if got := cfg.ExpectedPackets(); got != 0 {
		t.Fatalf("zero-interval workload = %d, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := shortConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad protocol", func(c *Config) { c.Protocol = 0 }},
		{"one node", func(c *Config) { c.Nodes = 1 }},
		{"zero member fraction", func(c *Config) { c.MemberFraction = 0 }},
		{"negative range", func(c *Config) { c.TxRange = -1 }},
		{"degenerate area", func(c *Config) { c.Area.W = 0 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"data window past end", func(c *Config) { c.DataEnd = c.Duration + time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := shortConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
			if _, err := Run(cfg); err == nil {
				t.Fatal("Run accepted invalid config")
			}
		})
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	cfg := shortConfig()
	cfg.Seed = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != cfg.ExpectedPackets() {
		t.Fatalf("sent = %d, want %d", res.Sent, cfg.ExpectedPackets())
	}
	wantMembers := int(float64(cfg.Nodes)*cfg.MemberFraction+0.5) - 1 // minus source
	if len(res.Members) != wantMembers {
		t.Fatalf("members = %d, want %d", len(res.Members), wantMembers)
	}
	if res.Received.Mean <= 0 {
		t.Fatal("nobody received anything")
	}
	if res.Received.Max > float64(res.Sent) {
		t.Fatalf("member received %v > sent %d", res.Received.Max, res.Sent)
	}
	if res.DeliveryRatio() <= 0 || res.DeliveryRatio() > 1 {
		t.Fatalf("delivery ratio = %v", res.DeliveryRatio())
	}
	if res.Events == 0 || res.ControlBytes == 0 {
		t.Fatal("missing activity counters")
	}
	for _, m := range res.Members {
		if m.Goodput < 0 || m.Goodput > 100 {
			t.Fatalf("member %v goodput = %v", m.Node, m.Goodput)
		}
		if m.Recovered > m.Received {
			t.Fatalf("member %v recovered %d > received %d", m.Node, m.Recovered, m.Received)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := shortConfig()
	cfg.Seed = 11
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Received != b.Received || a.Sent != b.Sent || a.Events != b.Events {
		t.Fatalf("same seed diverged:\n a=%+v events=%d\n b=%+v events=%d",
			a.Received, a.Events, b.Received, b.Events)
	}
	cfg.Seed = 12
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Events == a.Events && c.Received == a.Received {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestGossipImprovesOnMAODV(t *testing.T) {
	// The paper's headline claim, at reduced scale: with everything else
	// fixed, MAODV+AG delivers more. (The variance-reduction claim is
	// asserted at full scale by the figure benchmarks; at this tiny
	// scale a single partitioned member dominates both ranges.)
	var gossipMean, maodvMean float64
	for _, seed := range []int64{1, 2} {
		cfg := shortConfig()
		cfg.Seed = seed

		cfg.Protocol = ProtocolGossip
		g, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Protocol = ProtocolMAODV
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gossipMean += g.Received.Mean
		maodvMean += m.Received.Mean
	}
	if gossipMean <= maodvMean {
		t.Fatalf("gossip mean %v <= maodv mean %v", gossipMean/2, maodvMean/2)
	}
}

func TestFloodProtocolRuns(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtocolFlood
	cfg.Seed = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received.Mean <= 0 {
		t.Fatal("flooding delivered nothing")
	}
	if res.DeliveryRatio() < 0.5 {
		t.Fatalf("flooding delivery ratio = %v, expected robust delivery", res.DeliveryRatio())
	}
}

func TestRunSeeds(t *testing.T) {
	cfg := shortConfig()
	seeds := []int64{5, 6, 7}
	results, err := RunSeeds(cfg, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Seed != seeds[i] {
			t.Fatalf("result %d has seed %d, want %d (order lost)", i, r.Seed, seeds[i])
		}
	}
	// Parallel execution must match serial execution exactly.
	serial, err := Run(withSeed(cfg, 6))
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Received != serial.Received || results[1].Events != serial.Events {
		t.Fatal("parallel result differs from serial run with the same seed")
	}
}

func withSeed(c Config, s int64) Config {
	c.Seed = s
	return c
}

func TestAggregateResults(t *testing.T) {
	cfg := shortConfig()
	results, err := RunSeeds(cfg, []int64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateResults(results)
	if agg.Received.N != results[0].Received.N+results[1].Received.N {
		t.Fatalf("aggregate N = %d", agg.Received.N)
	}
	if agg.Sent != results[0].Sent {
		t.Fatalf("aggregate Sent = %d", agg.Sent)
	}
	if agg.DeliveryRatio() <= 0 || agg.DeliveryRatio() > 1 {
		t.Fatalf("aggregate ratio = %v", agg.DeliveryRatio())
	}
	if agg.Goodput <= 0 || agg.Goodput > 100 {
		t.Fatalf("aggregate goodput = %v", agg.Goodput)
	}
}

func TestFigureSweepDefinitions(t *testing.T) {
	if xs := Fig2Xs(); len(xs) != 9 || xs[0] != 45 || xs[8] != 85 {
		t.Fatalf("Fig2Xs = %v", xs)
	}
	if xs := Fig4Xs(); len(xs) != 10 || xs[0] != 0.1 || xs[9] != 1.0 {
		t.Fatalf("Fig4Xs = %v", xs)
	}
	if xs := Fig5Xs(); len(xs) != 10 || xs[0] != 1 || xs[9] != 10 {
		t.Fatalf("Fig5Xs = %v", xs)
	}
	if xs := Fig6Xs(); xs[0] != 40 || xs[len(xs)-1] != 100 {
		t.Fatalf("Fig6Xs = %v", xs)
	}

	base := DefaultConfig()
	c := ApplyFig2(base, 60)
	if c.TxRange != 60 || c.MaxSpeed != 0.2 || c.Nodes != 40 {
		t.Fatalf("ApplyFig2 = %+v", c)
	}
	c = ApplyFig3(base, 60)
	if c.MaxSpeed != 2 {
		t.Fatalf("ApplyFig3 speed = %v", c.MaxSpeed)
	}
	c = ApplyFig4And5(base, 3)
	if c.MaxSpeed != 3 || c.TxRange != 75 {
		t.Fatalf("ApplyFig4And5 = %+v", c)
	}
	// Fig 6 keeps n*r^2 constant: 40*75^2 == n*r(n)^2.
	c = ApplyFig6(base, 90)
	if got, want := float64(c.Nodes)*c.TxRange*c.TxRange, 40.0*75*75; got < want*0.99 || got > want*1.01 {
		t.Fatalf("ApplyFig6 degree product = %v, want %v", got, want)
	}
	c = ApplyFig7(base, 70)
	if c.TxRange != 55 || c.Nodes != 70 {
		t.Fatalf("ApplyFig7 = %+v", c)
	}
	if cases := Fig8Cases(); len(cases) != 4 {
		t.Fatalf("Fig8Cases = %v", cases)
	}
	if s := Seeds(10); len(s) != 10 || s[0] != 1 || s[9] != 10 {
		t.Fatalf("Seeds = %v", s)
	}
}

func TestRunComparisonSmall(t *testing.T) {
	base := shortConfig()
	rows, err := RunComparison(base, []float64{60}, func(c Config, x float64) Config {
		c.TxRange = x
		return c
	}, []int64{1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].X != 60 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Gossip.Received.N == 0 || rows[0].Maodv.Received.N == 0 {
		t.Fatal("empty aggregates")
	}
}

func TestRunGoodputSmall(t *testing.T) {
	base := shortConfig()
	row, err := RunGoodput(base, GoodputCase{TxRange: 60, MaxSpeed: 0.2}, []int64{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.PerMember) == 0 {
		t.Fatal("no per-member goodput values")
	}
	for _, g := range row.PerMember {
		if g < 0 || g > 100 {
			t.Fatalf("goodput %v out of range", g)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolGossip.String() != "Gossip" || ProtocolMAODV.String() != "Maodv" ||
		ProtocolFlood.String() != "Flood" || ProtocolODMRP.String() != "Odmrp" ||
		ProtocolODMRPGossip.String() != "Odmrp+AG" {
		t.Fatal("protocol names changed; figure labels depend on them")
	}
	if Protocol(9).String() == "" {
		t.Fatal("unknown protocol has empty name")
	}
}

func TestODMRPProtocols(t *testing.T) {
	cfg := shortConfig()
	cfg.Seed = 2

	cfg.Protocol = ProtocolODMRP
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Received.Mean <= 0 {
		t.Fatal("ODMRP delivered nothing")
	}

	cfg.Protocol = ProtocolODMRPGossip
	withAG, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withAG.Received.Mean <= 0 {
		t.Fatal("ODMRP+AG delivered nothing")
	}
	// The paper's future-work claim: AG should improve (or at minimum
	// not hurt) mesh-based multicast too.
	if withAG.Received.Mean < bare.Received.Mean {
		t.Fatalf("AG over ODMRP regressed delivery: %.1f < %.1f",
			withAG.Received.Mean, bare.Received.Mean)
	}
}
