package scenario

import (
	"testing"
	"time"
)

// Tests for the extension features: multi-source workloads and latency
// metrics.

func TestMultiSourceWorkload(t *testing.T) {
	cfg := shortConfig()
	cfg.NumSources = 3
	cfg.Seed = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * cfg.ExpectedPackets(); res.Sent != want {
		t.Fatalf("sent = %d, want %d (3 sources)", res.Sent, want)
	}
	nMembers := int(float64(cfg.Nodes)*cfg.MemberFraction + 0.5)
	if want := nMembers - 3; len(res.Members) != want {
		t.Fatalf("receivers = %d, want %d (members minus sources)", len(res.Members), want)
	}
	// Receivers hear multiple origins: counts can exceed one stream.
	if res.Received.Max <= float64(cfg.ExpectedPackets()) {
		t.Logf("note: no member exceeded a single stream (max %.0f)", res.Received.Max)
	}
	if res.Received.Mean <= 0 {
		t.Fatal("nobody received anything with 3 sources")
	}
}

func TestTooManySourcesRejected(t *testing.T) {
	cfg := shortConfig()
	cfg.NumSources = 1000
	if _, err := Run(cfg); err == nil {
		t.Fatal("absurd source count accepted")
	}
}

func TestZeroSourcesDefaultsToOne(t *testing.T) {
	cfg := shortConfig()
	cfg.NumSources = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != cfg.ExpectedPackets() {
		t.Fatalf("sent = %d, want one stream %d", res.Sent, cfg.ExpectedPackets())
	}
}

func TestLatencyMetrics(t *testing.T) {
	cfg := shortConfig()
	cfg.Seed = 9
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeLatencyMean <= 0 {
		t.Fatal("no tree latency recorded")
	}
	// Tree forwarding is a handful of per-hop airtimes + jitter: well
	// under a second.
	if res.TreeLatencyMean > time.Second {
		t.Fatalf("tree latency %v implausibly high", res.TreeLatencyMean)
	}
	// Gossip recovery is round-based: when it happened at all, it must
	// be slower than tree delivery.
	if res.RecoveredLatencyMean > 0 && res.RecoveredLatencyMean < res.TreeLatencyMean {
		t.Fatalf("recovered latency %v < tree latency %v",
			res.RecoveredLatencyMean, res.TreeLatencyMean)
	}
}

func TestLatencyMetricsMAODV(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtocolMAODV
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeLatencyMean <= 0 {
		t.Fatal("no tree latency recorded for MAODV")
	}
	if res.RecoveredLatencyMean != 0 {
		t.Fatal("MAODV-only run recorded gossip recovery latency")
	}
}

func TestTraceCapture(t *testing.T) {
	cfg := shortConfig()
	cfg.TraceCapacity = 500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Total() == 0 {
		t.Fatal("trace enabled but empty")
	}
	if res.Trace.Len() > 500 {
		t.Fatalf("trace retained %d > capacity", res.Trace.Len())
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	cfg := shortConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace recorded without being requested")
	}
}
