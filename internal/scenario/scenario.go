// Package scenario assembles complete simulations matching the paper's
// evaluation environment (§5.1): a 200 m × 200 m terrain, random-waypoint
// mobility with pauses uniform in [0, 80 s], IEEE 802.11 at 2 Mbps, one
// multicast group containing a third of the nodes, and a single CBR
// source sending 64-byte packets every 200 ms from t=120 s to t=560 s
// (2201 packets) in a 600 s run.
//
// It also provides seed-parallel sweep helpers used by the figure
// benchmarks and the agbench tool.
package scenario

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"anongossip/internal/aodv"
	"anongossip/internal/flood"
	"anongossip/internal/geom"
	"anongossip/internal/gossip"
	"anongossip/internal/mac"
	"anongossip/internal/maodv"
	"anongossip/internal/metrics"
	"anongossip/internal/mobility"
	"anongossip/internal/node"
	"anongossip/internal/odmrp"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/runtime/simrt"
	"anongossip/internal/sim"
	"anongossip/internal/stack"
	"anongossip/internal/stats"
	"anongossip/internal/trace"
)

// Protocol is the legacy stack selector. The constants survive as thin
// aliases that resolve through the stack registry (package
// internal/stack); new code should prefer Config.Stack, which composes
// any registered routing protocol with any registered recovery layer —
// including combinations the enum never had, such as flood+gossip.
type Protocol int

// Protocols under test.
const (
	// ProtocolMAODV is the bare multicast routing protocol (the paper's
	// "Maodv" curves).
	ProtocolMAODV Protocol = iota + 1
	// ProtocolGossip is MAODV plus Anonymous Gossip (the paper's
	// "Gossip" curves).
	ProtocolGossip
	// ProtocolFlood is the plain-flooding baseline from related work
	// [13], used in ablations.
	ProtocolFlood
	// ProtocolODMRP is the bare mesh-based multicast protocol (paper
	// reference [10]).
	ProtocolODMRP
	// ProtocolODMRPGossip is ODMRP plus Anonymous Gossip — the paper's
	// §5.5/§7 future-work claim that AG generalises beyond MAODV.
	ProtocolODMRPGossip
)

// legacyStacks maps each Protocol constant onto the registry spec it
// aliases.
var legacyStacks = map[Protocol]stack.Spec{
	ProtocolMAODV:       {Routing: "maodv"},
	ProtocolGossip:      {Routing: "maodv", Recovery: "gossip"},
	ProtocolFlood:       {Routing: "flood"},
	ProtocolODMRP:       {Routing: "odmrp"},
	ProtocolODMRPGossip: {Routing: "odmrp", Recovery: "gossip"},
}

// legacyNames labels the legacy protocols as the paper's figures do.
var legacyNames = map[Protocol]string{
	ProtocolMAODV:       "Maodv",
	ProtocolGossip:      "Gossip",
	ProtocolFlood:       "Flood",
	ProtocolODMRP:       "Odmrp",
	ProtocolODMRPGossip: "Odmrp+AG",
}

// init teaches the registry the legacy spellings the CLIs and the
// paper's figure labels use.
func init() {
	stack.RegisterAlias("gossip", stack.Spec{Routing: "maodv", Recovery: "gossip"})
	stack.RegisterAlias("odmrp-gossip", stack.Spec{Routing: "odmrp", Recovery: "gossip"})
	stack.RegisterAlias("odmrp+ag", stack.Spec{Routing: "odmrp", Recovery: "gossip"})
}

// Spec resolves the legacy constant to its registry spec (the zero Spec
// for values outside the enum).
func (p Protocol) Spec() stack.Spec { return legacyStacks[p] }

// ProtocolOf reverse-maps a stack spec onto its legacy constant; ok is
// false for combinations the enum never expressed (e.g. flood+gossip).
func ProtocolOf(s stack.Spec) (Protocol, bool) {
	s = s.Normalize()
	for p, ls := range legacyStacks {
		if ls == s {
			return p, true
		}
	}
	return 0, false
}

// String names the protocol as the paper's figures do.
func (p Protocol) String() string {
	if n, ok := legacyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Group is the single multicast group used by all experiments.
const Group pkt.GroupID = 0xE0000001

// Config describes one simulation run.
type Config struct {
	// Stack composes the protocol stack under test by registry name: a
	// routing protocol ("maodv", "odmrp", "flood") plus an optional
	// recovery layer ("gossip"). When set it takes precedence over the
	// legacy Protocol field.
	Stack stack.Spec
	// Protocol is the legacy stack selector, kept source-compatible;
	// its constants resolve through the same registry as Stack.
	Protocol Protocol

	// Area is the terrain (200 m × 200 m in the paper).
	Area geom.Rect
	// Nodes is the total node count (40 unless swept).
	Nodes int
	// MemberFraction of nodes join the group (1/3 in the paper).
	MemberFraction float64
	// TxRange is the radio transmission range in metres.
	TxRange float64
	// RadioIndex selects the medium's neighbour lookup strategy. The
	// default (radio.IndexGrid) keeps radio events O(local degree);
	// radio.IndexBrute restores the O(N) scan for differential testing.
	// Both produce bit-identical results for the same seed.
	RadioIndex radio.IndexKind
	// RxModel selects the radio's reception bookkeeping. The default
	// (radio.ModelBatch) schedules one finish event per transmission
	// over a pooled per-frame receiver table; radio.ModelRef restores
	// the per-receiver reception path for differential testing. Both
	// produce bit-identical results for the same seed.
	RxModel radio.ReceptionModel
	// EventQueue selects the simulation kernel's event-queue
	// implementation. The default (sim.QueueQuad) is the pooled 4-ary
	// heap; sim.QueueCal is the calendar/bucket queue built for the
	// clustered timestamps of 10k+-node runs; sim.QueueRef restores
	// the container/heap reference for differential testing. All kinds
	// produce bit-identical results for the same seed.
	EventQueue sim.QueueKind
	// Scheduler selects the simulation kernel's execution engine. The
	// default (sim.SchedulerSerial) is the single-threaded kernel;
	// sim.SchedulerSharded partitions nodes into spatial shards and
	// executes conservative lookahead windows on Workers goroutines.
	// Both produce bit-identical results for the same seed.
	Scheduler sim.SchedulerKind
	// Workers bounds the goroutines the sharded scheduler uses (<= 0
	// means one). Results are bit-identical for any worker count.
	Workers int
	// Shards is the sharded scheduler's spatial lane count (<= 0 means
	// DefaultShards). Results are bit-identical for any shard count;
	// shards only set the grain of available parallelism.
	Shards int
	// MinSpeed/MaxSpeed bound random-waypoint speeds (m/s).
	MinSpeed, MaxSpeed float64
	// MaxPause bounds the waypoint rest period (80 s in the paper).
	MaxPause time.Duration

	// Duration is the simulated time (600 s in the paper).
	Duration time.Duration
	// DataStart/DataEnd bound the CBR transmission window (120/560 s).
	DataStart, DataEnd time.Duration
	// DataInterval is the CBR period (200 ms).
	DataInterval time.Duration
	// NumSources is the number of sending members (1 in the paper; AG
	// tracks sequence numbers per origin, so more are supported as an
	// extension). Each source sends a full CBR stream, phase-shifted.
	NumSources int

	// JoinWindow spreads member joins over the warm-up.
	JoinWindow time.Duration

	// Seed drives all randomness in the run.
	Seed int64

	// MeasureHeap, when set, records the post-run live heap into
	// Result.HeapLiveBytes (a forced GC plus ReadMemStats, a few ms).
	// The sample is process-wide: run points sequentially (seeds
	// parallel=1, one run at a time) for meaningful per-run numbers.
	// The huge-scale family sets it; the memory gates in cmd/benchgate
	// are built on it.
	MeasureHeap bool

	// TraceCapacity, when positive, records the last N packet events
	// network-wide into Result.Trace.
	TraceCapacity int
	// TraceKinds restricts tracing to the listed packet kinds (empty =
	// all kinds).
	TraceKinds []pkt.Kind

	// MetricsWindow, when positive, enables the telemetry sampler: the
	// run's channel-utilization counters are snapshotted at this cadence
	// and the per-window deltas collected into Result.Metrics. The
	// sampler is observe-only — its timer chain is subtracted from
	// Result.Events and its snapshots read protocol state without
	// mutating it, so every result stays bit-identical with sampling on
	// or off.
	MetricsWindow time.Duration

	// Per-layer parameter blocks.
	MAC    mac.Config
	AODV   aodv.Config
	MAODV  maodv.Config
	Flood  flood.Config
	ODMRP  odmrp.Config
	Gossip gossip.Config
}

// DefaultConfig returns the paper's baseline configuration (§5.1): 40
// nodes, 75 m range, max speed 0.2 m/s, MAODV+AG.
func DefaultConfig() Config {
	return Config{
		Protocol:       ProtocolGossip,
		Area:           geom.Rect{W: 200, H: 200},
		Nodes:          40,
		MemberFraction: 1.0 / 3.0,
		TxRange:        75,
		MinSpeed:       0,
		MaxSpeed:       0.2,
		MaxPause:       80 * time.Second,
		Duration:       600 * time.Second,
		DataStart:      120 * time.Second,
		DataEnd:        560 * time.Second,
		DataInterval:   200 * time.Millisecond,
		NumSources:     1,
		JoinWindow:     10 * time.Second,
		Seed:           1,
		MAC:            mac.DefaultConfig(),
		AODV:           aodv.DefaultConfig(),
		MAODV:          maodv.DefaultConfig(),
		Flood:          flood.DefaultConfig(),
		ODMRP:          odmrp.DefaultConfig(),
		Gossip:         gossip.DefaultConfig(),
	}
}

// ExpectedPackets returns the number of packets each source generates
// (2201 under the paper's parameters).
func (c Config) ExpectedPackets() int {
	if c.DataEnd < c.DataStart || c.DataInterval <= 0 {
		return 0
	}
	return int((c.DataEnd-c.DataStart)/c.DataInterval) + 1
}

// sources returns the effective source count.
func (c Config) sources() int {
	if c.NumSources <= 0 {
		return 1
	}
	return c.NumSources
}

// Spec returns the effective stack spec: Config.Stack when set, else
// the legacy Protocol alias resolved through the registry.
func (c Config) Spec() stack.Spec {
	if !c.Stack.IsZero() {
		return c.Stack.Normalize()
	}
	return c.Protocol.Spec()
}

// Validate reports configuration errors. Stack validation is a registry
// lookup: the error of an unknown stack lists every registered name.
func (c Config) Validate() error {
	if _, _, err := stack.Resolve(c.Spec()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("scenario: need at least 2 nodes, have %d", c.Nodes)
	case c.MemberFraction <= 0 || c.MemberFraction > 1:
		return fmt.Errorf("scenario: member fraction %v out of (0,1]", c.MemberFraction)
	case c.TxRange <= 0:
		return fmt.Errorf("scenario: non-positive transmission range %v", c.TxRange)
	// The negated comparisons also reject NaN dimensions (NaN > 0 is
	// false), which a plain `<= 0` would let through.
	case !(c.Area.W > 0) || !(c.Area.H > 0) || math.IsInf(c.Area.W, 1) || math.IsInf(c.Area.H, 1):
		return fmt.Errorf("scenario: degenerate area %+v", c.Area)
	case c.Duration <= 0:
		return fmt.Errorf("scenario: non-positive duration %v", c.Duration)
	case c.DataEnd > c.Duration:
		return fmt.Errorf("scenario: data window ends at %v after the run ends at %v", c.DataEnd, c.Duration)
	case c.EventQueue != sim.QueueQuad && c.EventQueue != sim.QueueRef && c.EventQueue != sim.QueueCal:
		return fmt.Errorf("scenario: unknown event queue kind %d (registered: %s)", int(c.EventQueue), sim.QueueNames())
	case c.RxModel != radio.ModelBatch && c.RxModel != radio.ModelRef:
		return fmt.Errorf("scenario: unknown reception model %d", int(c.RxModel))
	case c.Scheduler != sim.SchedulerSerial && c.Scheduler != sim.SchedulerSharded:
		return fmt.Errorf("scenario: unknown scheduler kind %d (registered: %s)", int(c.Scheduler), sim.SchedulerNames())
	case c.MetricsWindow < 0:
		return fmt.Errorf("scenario: negative metrics window %v", c.MetricsWindow)
	}
	return nil
}

// DefaultShards is the sharded scheduler's lane count when Config.
// Shards is unset. It is fixed — independent of worker count and CPU
// count — so a configuration names one exact run everywhere.
const DefaultShards = 8

// effShards returns the effective shard count.
func (c Config) effShards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return DefaultShards
}

// effWorkers returns the effective worker count.
func (c Config) effWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 1
}

// MemberResult reports one non-source member's outcome.
type MemberResult struct {
	Node pkt.NodeID
	// Received counts unique data packets obtained (tree + gossip).
	Received int
	// Recovered counts packets obtained through gossip replies.
	Recovered int
	// ReplyNew/ReplyDup are the goodput numerator components (§5.5).
	ReplyNew, ReplyDup uint64
	// Goodput is the per-member goodput percentage.
	Goodput float64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Stack names the protocol stack that ran.
	Stack stack.Spec
	// Protocol is the legacy alias of Stack, zero for combinations the
	// enum never expressed (e.g. flood+gossip).
	Protocol Protocol
	Seed     int64
	// Sent is the number of data packets the source generated.
	Sent int
	// Source is the sending member (excluded from Members).
	Source pkt.NodeID
	// Members holds the per-receiver outcomes.
	Members []MemberResult

	// Received summarises Members[i].Received (the paper's data points
	// and error bars).
	Received stats.Summary

	// TreeLatencyMean and RecoveredLatencyMean average the send-to-
	// delivery delay of packets arriving over the multicast tree and
	// through gossip replies respectively (an extension metric; the
	// paper reports delivery counts only).
	TreeLatencyMean      time.Duration
	RecoveredLatencyMean time.Duration

	// ControlBytes / PayloadBytes split network-layer transmit volume.
	ControlBytes, PayloadBytes uint64
	// MACCollisions counts corrupted receptions medium-wide.
	MACCollisions uint64
	// Events is the number of logical simulation events executed:
	// kernel events plus the per-receiver reception events the batched
	// radio model folds into per-frame finish events, so the count is
	// identical across reception models (and across the index and
	// queue kinds) for the same configuration and seed.
	Events uint64
	// EventsProcessed, ElidedKernel, ElidedRadio and ElidedMAC break
	// Events down into executed kernel events and the three elision
	// sources: postponed contention hops the kernel re-enqueued without
	// firing, per-receiver receptions the batched radio model folded
	// into per-frame finishes, and MAC timers cancelled instead of
	// firing as no-ops. EventsProcessed excludes the telemetry
	// sampler's own timer chain, so the four fields sum to Events
	// regardless of Config.MetricsWindow.
	EventsProcessed uint64
	ElidedKernel    uint64
	ElidedRadio     uint64
	ElidedMAC       uint64
	// MeanDegree is the average neighbour count at the end of the run.
	MeanDegree float64
	// HeapLiveBytes is the process's live heap after the run with the
	// simulated world still reachable (Config.MeasureHeap only) — the
	// per-node memory-footprint metric of the huge-scale family.
	HeapLiveBytes uint64
	// Trace holds the packet trace when Config.TraceCapacity > 0.
	Trace *trace.Ring
	// Metrics holds the sampled channel-utilization series when
	// Config.MetricsWindow > 0.
	Metrics *metrics.Series
	// Channel holds the run's final per-layer airtime and transmission
	// totals when Config.MetricsWindow > 0.
	Channel *metrics.ChannelCounters
}

// DeliveryRatio is mean received over packets sent, in [0, 1].
func (r *Result) DeliveryRatio() float64 {
	if r.Sent == 0 {
		return 0
	}
	return r.Received.Mean / float64(r.Sent)
}

// MeanGoodput averages member goodput (only meaningful for stacks with
// a recovery layer; bare-routing members report 100).
func (r *Result) MeanGoodput() float64 {
	if len(r.Members) == 0 {
		return 100
	}
	var sum float64
	for _, m := range r.Members {
		sum += m.Goodput
	}
	return sum / float64(len(r.Members))
}

// Run executes one simulation and collects its results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if w.coord != nil {
		w.coord.Run(cfg.Duration)
	} else {
		w.sched.Run(cfg.Duration)
	}
	res := w.collect()
	if cfg.MeasureHeap {
		runtime.GC() // settle garbage so the sample is live bytes
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		res.HeapLiveBytes = ms.HeapAlloc
		// The world must stay reachable through the sample or the GC
		// would collect exactly the footprint being measured.
		runtime.KeepAlive(w)
	}
	return res, nil
}

// world is one assembled simulation.
type world struct {
	cfg  Config
	spec stack.Spec
	// sched is the build-time and cross-node scheduler: the serial
	// kernel, or the sharded coordinator's global lane.
	sched *sim.Scheduler
	// coord is the sharded coordinator, nil under the serial kernel.
	coord  *sim.Sharded
	medium *radio.Medium

	// rts are the per-node simulation runtimes (the runtime/simrt side
	// of the engine/kernel boundary); stacks are the network layers
	// assembled over them.
	rts      []*simrt.Runtime
	stacks   []*node.Stack
	routing  []stack.RoutingNode
	recovery []stack.RecoveryNode // nil entries when the spec has no recovery layer

	memberIdx []int // node indices that are members; the first sources() are senders
	isSource  map[int]bool
	sent      int
	sentAt    map[pkt.SeqKey]sim.Time
	// tracer is the serial kernel's single trace ring. Under the sharded
	// kernel each lane records into its own ring (window execution) plus
	// one shared solo ring (sweep/solo execution, which is
	// coordinator-serial by construction); collect merges them back into
	// serial order by the ExecRank stamps.
	tracer    *trace.Ring
	laneRings []*trace.Ring
	soloRing  *trace.Ring
	// chm accumulates per-layer channel occupancy across all MACs;
	// sampler turns it (plus the other cumulative counters) into the
	// windowed series. Both nil unless Config.MetricsWindow > 0.
	chm     *metrics.ChannelCounters
	sampler *metrics.Sampler

	treeLatSum, recLatSum     time.Duration
	treeLatCount, recLatCount uint64
}

func build(cfg Config) (*world, error) {
	spec := cfg.Spec()
	routingB, recoveryB, err := stack.Resolve(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	w := &world{cfg: cfg, spec: spec}
	if cfg.Scheduler == sim.SchedulerSharded {
		w.coord = sim.NewSharded(sim.ShardedConfig{
			Queue:   cfg.EventQueue,
			Shards:  cfg.effShards(),
			Workers: cfg.effWorkers(),
			// Lookahead: no event can start a transmission sooner than
			// the MAC's minimum arming delay (DESIGN.md §7).
			Lookahead: cfg.MAC.MinTxDelay(),
		})
		w.sched = w.coord.Global()
	} else {
		w.sched = sim.NewSchedulerQueue(cfg.EventQueue)
	}
	w.medium = radio.NewMedium(w.sched, radio.Params{
		Range: cfg.TxRange, Index: cfg.RadioIndex, Model: cfg.RxModel,
	})
	root := sim.NewRNG(cfg.Seed)

	mobCfg := mobility.WaypointConfig{
		Area:     cfg.Area,
		MinSpeed: cfg.MinSpeed,
		MaxSpeed: cfg.MaxSpeed,
		MaxPause: cfg.MaxPause,
	}

	if cfg.TraceCapacity > 0 {
		newRing := func() *trace.Ring {
			r := trace.NewRing(cfg.TraceCapacity)
			if len(cfg.TraceKinds) > 0 {
				r.SetFilter(trace.KindFilter(cfg.TraceKinds...))
			}
			return r
		}
		if w.coord == nil {
			w.tracer = newRing()
		} else {
			// One ring per lane plus a solo ring; each lane ring is as
			// large as the merged capacity so no lane evicts events the
			// merged last-capacity window would retain. Window-recorded
			// events may carry provisional ranks until the barrier
			// resolves them.
			w.laneRings = make([]*trace.Ring, w.coord.NumShards())
			for i := range w.laneRings {
				w.laneRings[i] = newRing()
			}
			w.soloRing = newRing()
			w.coord.OnBarrier(func(lane int, resolve func(uint64) uint64) {
				w.laneRings[lane].Resolve(resolve)
			})
		}
	}
	if cfg.MetricsWindow > 0 {
		w.chm = &metrics.ChannelCounters{}
	}

	params := stack.Params{
		"aodv":   cfg.AODV,
		"maodv":  cfg.MAODV,
		"flood":  cfg.Flood,
		"odmrp":  cfg.ODMRP,
		"gossip": cfg.Gossip,
	}

	for i := 0; i < cfg.Nodes; i++ {
		id := pkt.NodeID(i + 1)
		mob := mobility.NewWaypoint(mobCfg, root.Derive(fmt.Sprintf("mob/%d", i)))
		nodeSched := w.sched
		lane := -1
		if w.coord != nil {
			// Spatial stripes over the initial positions. Any static
			// partition is bit-identical (correctness comes from shard
			// ownership, not geometry); striping just keeps nearby nodes
			// — whose events cluster at the same instants — on the same
			// lane for load balance.
			lane = stripeShard(mob.Position(0).X, cfg.Area.W, w.coord.NumShards())
			nodeSched = w.coord.Shard(lane)
		}
		rt, err := simrt.New(nodeSched, root.Derive(fmt.Sprintf("stack/%d", i)), w.medium, id, mob, cfg.MAC)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		rt.MAC().SetHorizon(cfg.Duration)
		if w.chm != nil {
			rt.MAC().SetChannelMetrics(w.chm)
		}
		st := node.NewOnRuntime(rt)
		if w.tracer != nil {
			ring, ls := w.tracer, nodeSched
			st.SetTracer(func(e trace.Event) {
				e.Seq = ls.ExecRank()
				ring.Record(e)
			})
		} else if w.laneRings != nil {
			// Record into the node's own lane ring during window
			// execution (lane-exclusive) and into the shared solo ring
			// otherwise (coordinator-serial). Records that tie on
			// (At, Seq) — one fired event tracing several operations —
			// always land in the same ring, which is what lets
			// MergeRings restore the exact serial order.
			ring, ls := w.laneRings[lane], nodeSched
			st.SetTracer(func(e trace.Event) {
				e.Seq = ls.ExecRank()
				if w.coord.InWindow() {
					ring.Record(e)
				} else {
					w.soloRing.Record(e)
				}
			})
		}
		w.rts = append(w.rts, rt)
		w.stacks = append(w.stacks, st)

		env := stack.Env{Stack: st, RNG: root, Index: i, Params: params}
		rn := routingB.Build(env)
		var recn stack.RecoveryNode
		if recoveryB != nil {
			recn, err = recoveryB.Build(env, rn)
			if err != nil {
				return nil, fmt.Errorf("scenario: assembling stack %v: %w", spec, err)
			}
			recn.OnDeliver(func(_ pkt.GroupID, d *pkt.Data, recovered bool) {
				w.noteLatency(d.Key(), recovered)
			})
		} else {
			rn.OnDeliver(func(_ pkt.GroupID, d *pkt.Data) {
				w.noteLatency(d.Key(), false)
			})
		}
		rn.Start()
		if recn != nil {
			recn.Start()
		}
		w.routing = append(w.routing, rn)
		w.recovery = append(w.recovery, recn)
	}

	// Membership: a random third of the nodes; the first drawn members
	// are the CBR sources.
	nMembers := int(float64(cfg.Nodes)*cfg.MemberFraction + 0.5)
	if nMembers < 2 {
		nMembers = 2
	}
	if cfg.sources() >= nMembers {
		return nil, fmt.Errorf("scenario: %d sources need more than %d members", cfg.sources(), nMembers)
	}
	perm := root.Derive("membership").Perm(cfg.Nodes)
	w.memberIdx = perm[:nMembers]
	w.isSource = make(map[int]bool, cfg.sources())
	for _, idx := range w.memberIdx[:cfg.sources()] {
		w.isSource[idx] = true
	}
	w.sentAt = make(map[pkt.SeqKey]sim.Time, cfg.sources()*cfg.ExpectedPackets())

	// The first source joins first and, finding no tree, becomes the
	// group leader (its join retries take ~6 s to conclude). Other
	// members join after that window so their floods find a tree to
	// answer them instead of racing into simultaneous leader elections.
	// The paper's 120 s warm-up comfortably covers this.
	joinRNG := root.Derive("joins")
	const leaderBootstrap = 8 * time.Second
	for k, idx := range w.memberIdx {
		idx := idx
		var at sim.Time
		if k == 0 {
			at = 50 * time.Millisecond
		} else {
			at = leaderBootstrap + joinRNG.Duration(cfg.JoinWindow)
		}
		w.sched.At(at, func() { w.join(idx) })
	}

	// CBR workload: each source sends exactly ExpectedPackets packets,
	// phase-shifted to avoid synchronised transmissions.
	nSrc := cfg.sources()
	for s := 0; s < nSrc; s++ {
		src := w.memberIdx[s]
		offset := time.Duration(s) * cfg.DataInterval / time.Duration(nSrc)
		for k := 0; k < cfg.ExpectedPackets(); k++ {
			at := cfg.DataStart + offset + time.Duration(k)*cfg.DataInterval
			w.sched.At(at, func() { w.sendData(src) })
		}
	}

	// Sampler timer chain on the global lane: every tick runs solo, so
	// the snapshot may read cross-node and medium state. The chain ends
	// with a tick exactly at the horizon (events at the horizon still
	// fire), closing the final — possibly partial — window; every
	// scheduled tick fires, so Sampler.Fired equals the chain's
	// processed-event contribution and collect can subtract it exactly.
	if cfg.MetricsWindow > 0 {
		w.sampler = metrics.NewSampler(cfg.MetricsWindow, w.snapshot)
		var tick func()
		tick = func() {
			now := w.sched.Now()
			w.sampler.Tick(now)
			if now >= cfg.Duration {
				return
			}
			next := now + cfg.MetricsWindow
			if next > cfg.Duration {
				next = cfg.Duration
			}
			w.sched.At(next, tick)
		}
		first := cfg.MetricsWindow
		if first > cfg.Duration {
			first = cfg.Duration
		}
		w.sched.At(first, tick)
	}
	return w, nil
}

// snapshot reads the run's cumulative telemetry counters. It runs solo
// on the global lane (the sampler's timer chain), so cross-node and
// medium state are safe to read; it mutates nothing.
func (w *world) snapshot() metrics.Snapshot {
	var s metrics.Snapshot
	s.AirtimeByLayer = w.chm.AirtimeByLayer
	s.TxByLayer = w.chm.TxByLayer
	s.Collisions = w.medium.Stats().Collisions
	s.InFlight = w.medium.ActiveTx()
	for _, rt := range w.rts {
		m := rt.MAC()
		st := m.Stats()
		s.MACTxAttempts += st.TxAttempts
		s.MACRetries += st.Retries
		s.MACBackoff += st.BackoffWait
		s.QueueDepth += m.QueueLen()
	}
	for _, st := range w.stacks {
		s.Delivered += st.Stats().Delivered
	}
	for _, idx := range w.memberIdx {
		if rec := w.recovery[idx]; rec != nil {
			s.DataDelivered += rec.Stats().Delivered
			if gs, ok := rec.(interface{ RoundStats() (uint64, uint64) }); ok {
				rounds, replies := gs.RoundStats()
				s.GossipRounds += rounds
				s.GossipReplies += replies
			}
		} else {
			s.DataDelivered += w.routing[idx].Delivered()
		}
	}
	return s
}

// stripeShard maps an x coordinate onto one of n vertical stripes.
func stripeShard(x, width float64, n int) int {
	s := int(x / width * float64(n))
	if s < 0 {
		s = 0
	}
	if s >= n {
		s = n - 1
	}
	return s
}

// noteLatency accumulates send-to-delivery delay for one delivered
// packet.
func (w *world) noteLatency(key pkt.SeqKey, recovered bool) {
	t0, ok := w.sentAt[key]
	if !ok {
		return
	}
	lat := w.sched.Now() - t0
	if recovered {
		w.recLatSum += lat
		w.recLatCount++
	} else {
		w.treeLatSum += lat
		w.treeLatCount++
	}
}

func (w *world) join(idx int) {
	w.routing[idx].Join(Group)
	if rec := w.recovery[idx]; rec != nil {
		rec.Attach(Group)
	}
}

func (w *world) sendData(idx int) {
	key, err := w.routing[idx].SendData(Group)
	if err != nil {
		return
	}
	w.sent++
	w.sentAt[key] = w.sched.Now()
	if rec := w.recovery[idx]; rec != nil {
		rec.OnLocalSend(Group, key)
	}
}

func (w *world) collect() *Result {
	processed := w.sched.Processed()
	elided := w.sched.Elided()
	if w.coord != nil {
		processed = w.coord.Processed()
		elided = w.coord.Elided()
	}
	// The sampler's timer chain is real scheduler events, but it is
	// measurement, not simulation: subtracting its fired count keeps
	// Events bit-identical with sampling on or off.
	if w.sampler != nil {
		processed -= w.sampler.Fired()
	}
	// Logical events: the batched reception model folds per-receiver
	// finish events into per-frame ones, the MAC cancels contention
	// timers whose frame completed early instead of letting them fire
	// as no-ops, and the kernel re-enqueues postponed contention hops
	// without firing them (the folded countdown, DESIGN.md §10); adding
	// every elided count keeps the metric — and the golden digests
	// pinned on it — identical across reception models, indexes,
	// queues, schedulers and fold settings.
	radioElided := w.medium.ElidedEvents()
	var macElided uint64
	for _, rt := range w.rts {
		macElided += rt.MAC().Stats().ElidedEvents
	}
	events := processed + elided + radioElided + macElided
	res := &Result{
		Stack:           w.spec,
		Seed:            w.cfg.Seed,
		Sent:            w.sent,
		Source:          pkt.NodeID(w.memberIdx[0] + 1),
		Events:          events,
		EventsProcessed: processed,
		ElidedKernel:    elided,
		ElidedRadio:     radioElided,
		ElidedMAC:       macElided,
		MeanDegree:      w.medium.MeanDegree(),
		Trace:           w.tracer,
	}
	if w.laneRings != nil {
		res.Trace = trace.MergeRings(w.cfg.TraceCapacity, append(append([]*trace.Ring{}, w.laneRings...), w.soloRing)...)
	}
	if w.sampler != nil {
		series := w.sampler.Series()
		res.Metrics = &series
		res.Channel = w.chm
	}
	res.MACCollisions = w.medium.Stats().Collisions
	if p, ok := ProtocolOf(w.spec); ok {
		res.Protocol = p
	}

	if w.treeLatCount > 0 {
		res.TreeLatencyMean = w.treeLatSum / time.Duration(w.treeLatCount)
	}
	if w.recLatCount > 0 {
		res.RecoveredLatencyMean = w.recLatSum / time.Duration(w.recLatCount)
	}

	received := make([]int, 0, len(w.memberIdx)-1)
	for _, idx := range w.memberIdx {
		if w.isSource[idx] {
			continue // sources trivially have their own packets
		}
		mr := MemberResult{Node: pkt.NodeID(idx + 1)}
		if rec := w.recovery[idx]; rec != nil {
			rs := rec.Stats()
			mr.Received = int(rs.Delivered)
			mr.Recovered = int(rs.Recovered)
			mr.ReplyNew = rs.ReplyNew
			mr.ReplyDup = rs.ReplyDup
			mr.Goodput = rs.Goodput
		} else {
			mr.Received = int(w.routing[idx].Delivered())
			mr.Goodput = 100
		}
		res.Members = append(res.Members, mr)
		received = append(received, mr.Received)
	}
	res.Received = stats.SummarizeInts(received)

	for _, st := range w.stacks {
		s := st.Stats()
		res.ControlBytes += s.ControlBytes
		res.PayloadBytes += s.PayloadBytes
	}
	return res
}
