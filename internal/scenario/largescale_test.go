package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"

	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// TestLargeScaleFamilyHoldsDensity checks the family's defining
// invariant: node density (and hence expected mean degree) stays at the
// 40-node baseline while the field grows with the node count and the
// range stays at the paper's 75 m.
func TestLargeScaleFamilyHoldsDensity(t *testing.T) {
	base := DefaultConfig()
	baseDensity := float64(base.Nodes) / base.Area.Area()
	for _, x := range LargeScaleXs() {
		cfg := ApplyLargeScale(base, x)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("n=%v: invalid config: %v", x, err)
		}
		if cfg.TxRange != 75 {
			t.Fatalf("n=%v: range %v, want the paper's 75 m", x, cfg.TxRange)
		}
		density := float64(cfg.Nodes) / cfg.Area.Area()
		if math.Abs(density-baseDensity)/baseDensity > 0.01 {
			t.Fatalf("n=%v: density %v deviates from baseline %v", x, density, baseDensity)
		}
		if cfg.Area.W != cfg.Area.H {
			t.Fatalf("n=%v: non-square field %+v", x, cfg.Area)
		}
	}
}

func TestShortenedDataKeepsProportions(t *testing.T) {
	cfg := ShortenedData(DefaultConfig(), 120*time.Second)
	if cfg.Duration != 120*time.Second || cfg.DataStart != 24*time.Second || cfg.DataEnd != 80*time.Second {
		t.Fatalf("120 s reshape: start %v end %v", cfg.DataStart, cfg.DataEnd)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("reshaped config invalid: %v", err)
	}
	// Short runs collapse the fixed 40 s tail so a window survives.
	cfg = ShortenedData(DefaultConfig(), 30*time.Second)
	if cfg.DataEnd <= cfg.DataStart || cfg.DataEnd > cfg.Duration {
		t.Fatalf("30 s reshape: start %v end %v", cfg.DataStart, cfg.DataEnd)
	}
}

// TestLargeScale250GridBruteBitIdentical is the determinism acceptance
// test for the neighbour-index refactor: a 250-node run must produce
// bit-identical results — every member count, latency, byte counter and
// the event total — whether the radio uses the spatial grid or the
// brute-force scan. Short mode trims the simulated time, not the node
// count, so CI still exercises the 250-node grid geometry.
func TestLargeScale250GridBruteBitIdentical(t *testing.T) {
	duration := 60 * time.Second
	if testing.Short() {
		duration = 20 * time.Second
	}
	cfg := ShortenedData(LargeScaleConfig(250), duration)
	cfg.Seed = 11

	cfg.RadioIndex = radio.IndexGrid
	grid, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RadioIndex = radio.IndexBrute
	brute, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grid, brute) {
		t.Fatalf("grid and brute runs diverged:\ngrid:  %+v\nbrute: %+v", grid, brute)
	}
	if grid.Sent == 0 || grid.Received.Mean == 0 {
		t.Fatalf("degenerate run: sent %d, mean received %v", grid.Sent, grid.Received.Mean)
	}
}

// TestLargeScaleQueueQuadRefBitIdentical is the determinism acceptance
// test for the event-queue implementations: large-scale runs must
// produce bit-identical results — every member count, latency, byte
// counter and the event total — whether the kernel orders events with
// the pooled 4-ary heap, the calendar/bucket queue, or the
// container/heap reference. The 250-node set runs always (short mode
// trims simulated time, not node count); the 500-node set is full-mode
// only.
func TestLargeScaleQueueQuadRefBitIdentical(t *testing.T) {
	cases := []struct {
		nodes    int
		duration time.Duration
		seed     int64
	}{
		{250, 60 * time.Second, 11},
		{500, 24 * time.Second, 7},
	}
	if testing.Short() {
		cases = cases[:1]
		cases[0].duration = 20 * time.Second
	}
	for _, tc := range cases {
		cfg := ShortenedData(LargeScaleConfig(tc.nodes), tc.duration)
		cfg.Seed = tc.seed

		cfg.EventQueue = sim.QueueQuad
		quad, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []sim.QueueKind{sim.QueueCal, sim.QueueRef} {
			cfg.EventQueue = kind
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%d nodes %v: %v", tc.nodes, kind, err)
			}
			if !reflect.DeepEqual(quad, res) {
				t.Fatalf("%d nodes: quad and %v queue runs diverged:\nquad: %+v\n%v:  %+v",
					tc.nodes, kind, quad, kind, res)
			}
		}
		if quad.Sent == 0 || quad.Received.Mean == 0 {
			t.Fatalf("%d nodes: degenerate run: sent %d, mean received %v", tc.nodes, quad.Sent, quad.Received.Mean)
		}
	}
}

// TestLargeScale250RxModelIndexMatrixBitIdentical is the determinism
// acceptance test for the reception-path refactor: a 250-node run must
// produce bit-identical results — every member count, latency, byte
// counter and the logical event total — across all four reception-model
// × neighbour-index combinations. Short mode trims the simulated time,
// not the node count.
func TestLargeScale250RxModelIndexMatrixBitIdentical(t *testing.T) {
	duration := 40 * time.Second
	if testing.Short() {
		duration = 16 * time.Second
	}
	cfg := ShortenedData(LargeScaleConfig(250), duration)
	cfg.Seed = 13

	var ref *Result
	var refName string
	for _, model := range []radio.ReceptionModel{radio.ModelBatch, radio.ModelRef} {
		for _, index := range []radio.IndexKind{radio.IndexGrid, radio.IndexBrute} {
			name := model.String() + "/" + index.String()
			cfg.RxModel, cfg.RadioIndex = model, index
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if ref == nil {
				ref, refName = res, name
				continue
			}
			if !reflect.DeepEqual(stripElisionBreakdown(res), stripElisionBreakdown(ref)) {
				t.Fatalf("%s diverged from %s:\n%s: %+v\n%s: %+v", name, refName, name, res, refName, ref)
			}
		}
	}
	if ref.Sent == 0 || ref.Received.Mean == 0 {
		t.Fatalf("degenerate run: sent %d, mean received %v", ref.Sent, ref.Received.Mean)
	}
}

// TestBaselineGridBruteBitIdentical covers the paper's own operating
// point (40 nodes, mobile, full protocol stack) across two seeds.
func TestBaselineGridBruteBitIdentical(t *testing.T) {
	duration := 240 * time.Second
	if testing.Short() {
		duration = 120 * time.Second
	}
	for _, seed := range []int64{1, 5} {
		cfg := ShortenedData(DefaultConfig(), duration)
		cfg.Seed = seed
		cfg.RadioIndex = radio.IndexGrid
		grid, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.RadioIndex = radio.IndexBrute
		brute, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(grid, brute) {
			t.Fatalf("seed %d: grid and brute runs diverged", seed)
		}
	}
}

// TestLargeScaleRunsDeliver sanity-checks the smallest family member
// end to end: the scaled field stays connected enough for multicast to
// deliver a meaningful share of traffic.
func TestLargeScaleRunsDeliver(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by the 250-node determinism test")
	}
	cfg := ShortenedData(LargeScaleConfig(100), 90*time.Second)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if ratio := res.DeliveryRatio(); ratio < 0.2 {
		t.Fatalf("delivery ratio %.2f suspiciously low for the 100-node member", ratio)
	}
	if res.MeanDegree < 5 || res.MeanDegree > 40 {
		t.Fatalf("mean degree %.1f outside the constant-density band", res.MeanDegree)
	}
}
