package scenario

import (
	"strings"
	"testing"
	"time"

	"anongossip/internal/stack"
)

// TestRegisteredStacks pins the composable stack set: three routing
// protocols × (bare | gossip) = six stacks, including flood+gossip,
// the combination the legacy enum could not express.
func TestRegisteredStacks(t *testing.T) {
	want := []string{
		"maodv", "maodv+gossip",
		"odmrp", "odmrp+gossip",
		"flood", "flood+gossip",
	}
	names := stack.Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("stack %q not registered (have %v)", w, names)
		}
	}
	if len(names) != len(want) {
		t.Fatalf("registered %d stacks %v, want %d", len(names), names, len(want))
	}
	// Every canonical name round-trips through the registry.
	for _, s := range stack.Stacks() {
		back, err := stack.ByName(s.String())
		if err != nil {
			t.Fatalf("ByName(%q): %v", s, err)
		}
		if back != s.Normalize() {
			t.Fatalf("round-trip %q: got %v", s, back)
		}
	}
}

// TestLegacyProtocolAliases checks every Protocol constant and every
// legacy CLI spelling resolves to the right registry spec.
func TestLegacyProtocolAliases(t *testing.T) {
	byConst := map[Protocol]stack.Spec{
		ProtocolMAODV:       {Routing: "maodv"},
		ProtocolGossip:      {Routing: "maodv", Recovery: "gossip"},
		ProtocolFlood:       {Routing: "flood"},
		ProtocolODMRP:       {Routing: "odmrp"},
		ProtocolODMRPGossip: {Routing: "odmrp", Recovery: "gossip"},
	}
	for p, want := range byConst {
		if got := p.Spec(); got != want {
			t.Fatalf("%v.Spec() = %v, want %v", p, got, want)
		}
		if back, ok := ProtocolOf(want); !ok || back != p {
			t.Fatalf("ProtocolOf(%v) = %v, %v; want %v", want, back, ok, p)
		}
	}
	if _, ok := ProtocolOf(stack.Spec{Routing: "flood", Recovery: "gossip"}); ok {
		t.Fatal("flood+gossip claims a legacy constant")
	}
	byName := map[string]stack.Spec{
		"gossip":       {Routing: "maodv", Recovery: "gossip"},
		"odmrp-gossip": {Routing: "odmrp", Recovery: "gossip"},
		"odmrp+ag":     {Routing: "odmrp", Recovery: "gossip"},
	}
	for name, want := range byName {
		got, err := stack.ByName(name)
		if err != nil {
			t.Fatalf("alias %q: %v", name, err)
		}
		if got != want {
			t.Fatalf("alias %q = %v, want %v", name, got, want)
		}
	}
}

// TestValidateUnknownStackListsNames checks the registry-backed
// Validate error names every registered stack instead of the old
// opaque "unknown protocol N".
func TestValidateUnknownStackListsNames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = 0
	cfg.Stack = stack.Spec{Routing: "carrier-pigeon"}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown stack accepted")
	}
	for _, name := range stack.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("validate error does not list %q: %v", name, err)
		}
	}
}

// TestStackFieldMatchesLegacyProtocol runs the same scenario selected
// through Config.Stack and through the legacy Protocol constant and
// requires bit-identical results — the two selectors are aliases of
// one registry entry.
func TestStackFieldMatchesLegacyProtocol(t *testing.T) {
	base := shortConfig()
	base.Seed = 5

	legacy := base
	legacy.Protocol = ProtocolGossip
	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}

	byStack := base
	byStack.Protocol = 0
	byStack.Stack = stack.Spec{Routing: "maodv", Recovery: "gossip"}
	b, err := Run(byStack)
	if err != nil {
		t.Fatal(err)
	}

	if a.Events != b.Events || a.Received != b.Received || a.Sent != b.Sent {
		t.Fatalf("Stack spec diverged from legacy Protocol:\n legacy %+v events=%d\n spec   %+v events=%d",
			a.Received, a.Events, b.Received, b.Events)
	}
	if a.Protocol != ProtocolGossip || b.Protocol != ProtocolGossip {
		t.Fatalf("legacy Protocol not back-filled: %v / %v", a.Protocol, b.Protocol)
	}
	if a.Stack.String() != "maodv+gossip" || b.Stack.String() != "maodv+gossip" {
		t.Fatalf("result stack = %v / %v, want maodv+gossip", a.Stack, b.Stack)
	}
}

// TestFloodGossipStack exercises the sixth registered stack end to end:
// Anonymous Gossip over plain flooding, a combination the Protocol enum
// forbade. At a short 45 m range flooding drops plenty of packets;
// the gossip layer must recover some of them and never hurt the mean.
func TestFloodGossipStack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 25
	cfg.TxRange = 45
	cfg.Duration = 120 * time.Second
	cfg.DataStart = 30 * time.Second
	cfg.DataEnd = 100 * time.Second

	for _, seed := range []int64{1, 2} {
		bare := cfg
		bare.Seed = seed
		bare.Stack = stack.Spec{Routing: "flood"}
		base, err := Run(bare)
		if err != nil {
			t.Fatalf("flood seed %d: %v", seed, err)
		}

		composed := cfg
		composed.Seed = seed
		composed.Stack = stack.Spec{Routing: "flood", Recovery: "gossip"}
		res, err := Run(composed)
		if err != nil {
			t.Fatalf("flood+gossip seed %d: %v", seed, err)
		}

		if res.Protocol != 0 {
			t.Fatalf("flood+gossip mapped to legacy protocol %v", res.Protocol)
		}
		if got := res.Stack.String(); got != "flood+gossip" {
			t.Fatalf("result stack = %q", got)
		}
		recovered := 0
		for _, m := range res.Members {
			if m.Recovered > m.Received {
				t.Fatalf("member %v recovered %d > received %d", m.Node, m.Recovered, m.Received)
			}
			if m.Goodput < 0 || m.Goodput > 100 {
				t.Fatalf("member %v goodput %v", m.Node, m.Goodput)
			}
			recovered += m.Recovered
		}
		if recovered == 0 {
			t.Fatalf("seed %d: gossip over flooding recovered nothing", seed)
		}
		if res.Received.Mean < base.Received.Mean {
			t.Fatalf("seed %d: flood+gossip mean %.1f below bare flood %.1f",
				seed, res.Received.Mean, base.Received.Mean)
		}
		t.Logf("seed %d: flood %.1f -> flood+gossip %.1f (recovered %d)",
			seed, base.Received.Mean, res.Received.Mean, recovered)
	}
}
