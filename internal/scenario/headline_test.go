package scenario

import (
	"testing"
	"time"

	"anongossip/internal/gossip"
)

// TestPaperHeadlineFullScale runs the paper's exact baseline (600 s,
// 40 nodes, 75 m, 0.2 m/s) once per protocol and asserts the headline
// claims quantitatively. ~4 s wall time; skipped in -short runs.
func TestPaperHeadlineFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in short mode")
	}
	cfg := DefaultConfig()
	cfg.Seed = 1

	cfg.Protocol = ProtocolGossip
	g, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = ProtocolMAODV
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if g.Sent != 2201 || m.Sent != 2201 {
		t.Fatalf("sent %d/%d packets, want the paper's 2201", g.Sent, m.Sent)
	}
	// Headline 1: gossip significantly improves delivery.
	if g.Received.Mean < m.Received.Mean*1.1 {
		t.Fatalf("gossip mean %.0f not significantly above maodv %.0f",
			g.Received.Mean, m.Received.Mean)
	}
	// Headline 2: gossip achieves high absolute delivery at 0.2 m/s.
	if ratio := g.DeliveryRatio(); ratio < 0.85 {
		t.Fatalf("gossip delivery ratio %.2f < 0.85 at the paper baseline", ratio)
	}
	// Headline 3: variation across members shrinks.
	if g.Received.Std >= m.Received.Std {
		t.Fatalf("gossip std %.1f >= maodv std %.1f", g.Received.Std, m.Received.Std)
	}
	// Headline 4 (§5.5): goodput near 100%.
	if gp := g.MeanGoodput(); gp < 95 {
		t.Fatalf("goodput %.1f%% < 95%%", gp)
	}
}

// TestPathologicalConfigs exercises failure injection: the stack must
// degrade, not crash, under hostile parameters.
func TestPathologicalConfigs(t *testing.T) {
	t.Run("fully partitioned", func(t *testing.T) {
		cfg := shortConfig()
		cfg.TxRange = 1 // nobody hears anybody
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Received.Mean != 0 {
			t.Fatalf("delivery %.1f in a fully partitioned network", res.Received.Mean)
		}
	})

	t.Run("tiny MAC queue", func(t *testing.T) {
		cfg := shortConfig()
		cfg.MAC.QueueCap = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Heavy queue drops, but the system keeps operating.
		if res.Received.Mean <= 0 {
			t.Fatal("nothing delivered with a tiny MAC queue")
		}
	})

	t.Run("zero gossip capacity", func(t *testing.T) {
		cfg := shortConfig()
		cfg.Gossip.HistoryCap = 0
		cfg.Gossip.LostTableCap = 0
		cfg.Gossip.CacheCap = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Gossip can't recover anything, but tree delivery still works.
		if res.Received.Mean <= 0 {
			t.Fatal("nothing delivered with zeroed gossip tables")
		}
	})

	t.Run("extreme speed", func(t *testing.T) {
		cfg := shortConfig()
		cfg.MaxSpeed = 50 // 180 km/h across a 200 m box
		cfg.MaxPause = 0
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("saturating data rate", func(t *testing.T) {
		cfg := shortConfig()
		cfg.DataInterval = 5 * time.Millisecond // 200 pkt/s
		cfg.DataStart = 30 * time.Second
		cfg.DataEnd = 40 * time.Second
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The channel cannot carry this for the whole tree: losses are
		// expected, crashes are not.
		if res.DeliveryRatio() > 1 {
			t.Fatalf("delivery ratio %v > 1", res.DeliveryRatio())
		}
	})

	t.Run("rts cts full stack", func(t *testing.T) {
		cfg := shortConfig()
		cfg.MAC.RTSThreshold = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Received.Mean <= 0 {
			t.Fatal("nothing delivered with RTS/CTS enabled")
		}
	})

	t.Run("push mode full stack", func(t *testing.T) {
		cfg := shortConfig()
		cfg.Gossip.Mode = gossip.ModePush
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Received.Mean <= 0 {
			t.Fatal("nothing delivered in push mode")
		}
	})
}
