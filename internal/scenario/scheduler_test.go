package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// shardedConfig copies cfg and switches it onto the parallel kernel
// with the given worker/shard counts (zero = defaults).
func shardedConfig(cfg Config, workers, shards int) Config {
	cfg.Scheduler = sim.SchedulerSharded
	cfg.Workers = workers
	cfg.Shards = shards
	return cfg
}

// TestSchedulerSerialShardedBitIdentical is the core determinism
// acceptance test for the sharded kernel: every legacy protocol on the
// golden config must produce a bit-identical Result — every member
// count, latency, byte counter and the logical event total — whether
// the run executes on the serial kernel or the sharded one, at any
// worker count.
func TestSchedulerSerialShardedBitIdentical(t *testing.T) {
	for _, p := range goldenProtocols {
		cfg := goldenConfig()
		cfg.Protocol = p
		cfg.Seed = 1

		serial, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v serial: %v", p, err)
		}
		for _, workers := range []int{1, 2, 4} {
			sharded, err := Run(shardedConfig(cfg, workers, 0))
			if err != nil {
				t.Fatalf("%v workers=%d: %v", p, workers, err)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Fatalf("%v workers=%d diverged from serial:\nserial:  %+v\nsharded: %+v",
					p, workers, serial, sharded)
			}
		}
	}
}

// TestSchedulerShardCountInvariant pins the second half of the
// determinism claim: the result is independent not just of the worker
// count but of the spatial partition itself, because the barrier
// replay reconstructs the serial rank order whatever the shard
// boundaries are.
func TestSchedulerShardCountInvariant(t *testing.T) {
	cfg := goldenConfig()
	cfg.Protocol = ProtocolGossip
	cfg.Seed = 2

	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8, 13} {
		sharded, err := Run(shardedConfig(cfg, 4, shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("shards=%d diverged from serial:\nserial:  %+v\nsharded: %+v",
				shards, serial, sharded)
		}
	}
}

// TestShardedMatchesCommittedGolden replays the committed golden
// digests on the sharded kernel: the parallel path must reproduce the
// recorded pre-redesign results exactly, not merely agree with
// whatever the current serial kernel computes.
func TestShardedMatchesCommittedGolden(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (record with -update-golden): %v", err)
	}
	var want map[string]goldenView
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	protocols := goldenProtocols
	seeds := goldenSeeds
	if testing.Short() {
		protocols = []Protocol{ProtocolGossip, ProtocolMAODV}
		seeds = goldenSeeds[:1]
	}
	for _, p := range protocols {
		for _, seed := range seeds {
			cfg := goldenConfig()
			cfg.Protocol = p
			cfg.Seed = seed
			res, err := Run(shardedConfig(cfg, 4, 0))
			if err != nil {
				t.Fatalf("%v seed %d: %v", p, seed, err)
			}
			w, ok := want[key(p, seed)]
			if !ok {
				t.Fatalf("%s missing from golden file", key(p, seed))
			}
			wj, _ := json.Marshal(w)
			gj, _ := json.Marshal(viewOf(res))
			if string(wj) != string(gj) {
				t.Errorf("%s: sharded run diverged from committed golden:\n want %s\n got  %s",
					key(p, seed), wj, gj)
			}
		}
	}
}

// TestLargeScale250SchedulerBitIdentical scales the differential to a
// 250-node run, where parallel windows (rather than solo spans) carry
// a meaningful share of the event population. Short mode trims the
// simulated time, not the node count.
func TestLargeScale250SchedulerBitIdentical(t *testing.T) {
	duration := 40 * time.Second
	if testing.Short() {
		duration = 16 * time.Second
	}
	cfg := ShortenedData(LargeScaleConfig(250), duration)
	cfg.Seed = 19

	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		sharded, err := Run(shardedConfig(cfg, workers, 0))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("workers=%d diverged from serial on 250 nodes:\nserial:  %+v\nsharded: %+v",
				workers, serial, sharded)
		}
	}
	if serial.Sent == 0 || serial.Received.Mean == 0 {
		t.Fatalf("degenerate run: sent %d, mean received %v", serial.Sent, serial.Received.Mean)
	}
}

// TestDenseSchedulerBitIdentical runs the differential on the dense
// family — tens of neighbours per node, five concurrent senders,
// constant frame overlap — the workload with the heaviest MAC timer
// churn and hence the most window/solo mode switching.
func TestDenseSchedulerBitIdentical(t *testing.T) {
	duration := 24 * time.Second
	if testing.Short() {
		duration = 12 * time.Second
	}
	cfg := ShortenedData(DenseConfig(250, 30), duration)
	cfg.Seed = 23

	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(shardedConfig(cfg, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("dense serial and sharded runs diverged:\nserial:  %+v\nsharded: %+v",
			serial, sharded)
	}
	if serial.Sent == 0 {
		t.Fatal("degenerate dense run: nothing sent")
	}
}

// TestSchedulerRxModelQueueMatrixBitIdentical crosses the new
// scheduler axis with the existing engine axes: every reception-model
// × event-queue × scheduler combination must agree bit for bit on the
// same run.
func TestSchedulerRxModelQueueMatrixBitIdentical(t *testing.T) {
	cfg := goldenConfig()
	cfg.Protocol = ProtocolGossip
	cfg.Seed = 3

	var ref *Result
	var refName string
	for _, model := range []radio.ReceptionModel{radio.ModelBatch, radio.ModelRef} {
		for _, queue := range []sim.QueueKind{sim.QueueQuad, sim.QueueCal, sim.QueueRef} {
			for _, sched := range []sim.SchedulerKind{sim.SchedulerSerial, sim.SchedulerSharded} {
				name := fmt.Sprintf("%v/%v/%v", model, queue, sched)
				c := cfg
				c.RxModel, c.EventQueue, c.Scheduler = model, queue, sched
				if sched == sim.SchedulerSharded {
					c.Workers = 2
				}
				res, err := Run(c)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if ref == nil {
					ref, refName = res, name
					continue
				}
				if !reflect.DeepEqual(stripElisionBreakdown(res), stripElisionBreakdown(ref)) {
					t.Fatalf("%s diverged from %s:\n%s: %+v\n%s: %+v",
						name, refName, name, res, refName, ref)
				}
			}
		}
	}
}

// TestValidateSchedulerAxis pins the config surface of the new axis:
// unknown kinds are rejected with the registered names in the message,
// and trace capture composes with the sharded kernel (per-lane rings
// merged in barrier-replay order lifted the old serial-only
// restriction).
func TestValidateSchedulerAxis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = sim.SchedulerKind(99)
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown scheduler kind accepted")
	}
	for _, name := range []string{"serial", "sharded"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered kind %q", err, name)
		}
	}

	cfg = DefaultConfig()
	cfg.Scheduler = sim.SchedulerSharded
	cfg.TraceCapacity = 64
	if err := cfg.Validate(); err != nil {
		t.Fatalf("sharded + trace capture rejected: %v", err)
	}
	cfg.TraceCapacity = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("plain sharded config rejected: %v", err)
	}
}

// TestValidateQueueAxis mirrors the scheduler-axis test for the event
// queue: unknown kinds are rejected with every registered name in the
// message, and each registered kind validates cleanly.
func TestValidateQueueAxis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EventQueue = sim.QueueKind(99)
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown queue kind accepted")
	}
	for _, name := range []string{"quad", "cal", "ref"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered kind %q", err, name)
		}
	}

	for _, kind := range []sim.QueueKind{sim.QueueQuad, sim.QueueCal, sim.QueueRef} {
		cfg = DefaultConfig()
		cfg.EventQueue = kind
		if err := cfg.Validate(); err != nil {
			t.Fatalf("queue kind %v rejected: %v", kind, err)
		}
	}
}
