package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"

	"anongossip/internal/radio"
)

// TestDenseFamilyGeometry checks the family's defining invariant: the
// field is sized so the expected mean degree at the paper's 75 m range
// hits the sweep target for the configured node count, with multiple
// concurrent senders.
func TestDenseFamilyGeometry(t *testing.T) {
	for _, nodes := range []int{250, 500, 1000} {
		for _, degree := range DenseXs() {
			cfg := DenseConfig(nodes, degree)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("n=%d degree=%v: invalid config: %v", nodes, degree, err)
			}
			if cfg.TxRange != 75 {
				t.Fatalf("n=%d degree=%v: range %v, want the paper's 75 m", nodes, degree, cfg.TxRange)
			}
			if cfg.NumSources != DenseSources {
				t.Fatalf("n=%d degree=%v: %d sources, want %d", nodes, degree, cfg.NumSources, DenseSources)
			}
			if cfg.Area.W != cfg.Area.H {
				t.Fatalf("n=%d degree=%v: non-square field %+v", nodes, degree, cfg.Area)
			}
			// Expected degree of a uniform deployment, ignoring edge
			// effects: n·πr²/A.
			expected := float64(cfg.Nodes) * math.Pi * cfg.TxRange * cfg.TxRange / cfg.Area.Area()
			if math.Abs(expected-degree)/degree > 1e-9 {
				t.Fatalf("n=%d: field sized for degree %v, want %v", nodes, expected, degree)
			}
		}
	}
	// Denser points must shrink the field, not grow it.
	xs := DenseXs()
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("DenseXs not increasing: %v", xs)
		}
		a := DenseConfig(250, xs[i]).Area.Area()
		b := DenseConfig(250, xs[i-1]).Area.Area()
		if a >= b {
			t.Fatalf("degree %v field (%v) not smaller than degree %v field (%v)", xs[i], a, xs[i-1], b)
		}
	}
}

// TestDenseRejectsBadDegree: a non-positive or NaN target degree must
// fail validation instead of yielding an infinite field that simulates
// silently.
func TestDenseRejectsBadDegree(t *testing.T) {
	for _, degree := range []float64{0, -5, math.NaN()} {
		if err := DenseConfig(250, degree).Validate(); err == nil {
			t.Fatalf("degree %v accepted, want a validation error", degree)
		}
	}
}

// TestDenseRxModelBitIdentical asserts the reception-path refactor's
// bit-identity on the workload built to stress it: a dense run — tens
// of neighbours per node, five concurrent senders, constant frame
// overlap — must be identical under the batched and reference models.
func TestDenseRxModelBitIdentical(t *testing.T) {
	duration := 24 * time.Second
	if testing.Short() {
		duration = 12 * time.Second
	}
	cfg := ShortenedData(DenseConfig(250, 30), duration)
	cfg.Seed = 17

	cfg.RxModel = radio.ModelBatch
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RxModel = radio.ModelRef
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElisionBreakdown(batch), stripElisionBreakdown(ref)) {
		t.Fatalf("batch and ref dense runs diverged:\nbatch: %+v\nref:   %+v", batch, ref)
	}
	if batch.Sent == 0 {
		t.Fatal("degenerate dense run: nothing sent")
	}
}

// TestDenseRunsDeliver sanity-checks the family end to end: all five
// sources emit their full streams, the measured degree lands in the
// target's neighbourhood (below it — edge effects only subtract), and
// the packed network still delivers.
func TestDenseRunsDeliver(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by the dense bit-identity test")
	}
	cfg := ShortenedData(DenseConfig(250, 20), 75*time.Second)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Under dense load some source sends legitimately fail (queue
	// pressure at the sources is part of the workload), but the five
	// streams must still be substantially complete.
	max := DenseSources * cfg.ExpectedPackets()
	if res.Sent > max || res.Sent < max*9/10 {
		t.Fatalf("sent %d packets, want within [%d, %d] (%d sources × %d)",
			res.Sent, max*9/10, max, DenseSources, cfg.ExpectedPackets())
	}
	if res.MeanDegree < 10 || res.MeanDegree > 22 {
		t.Fatalf("mean degree %.1f outside the degree-20 target band", res.MeanDegree)
	}
	if ratio := res.DeliveryRatio(); ratio < 0.05 {
		t.Fatalf("delivery ratio %.3f suspiciously low even for a loaded channel", ratio)
	}
}
