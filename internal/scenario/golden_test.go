package scenario

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The golden digests below were recorded from the pre-registry code
// (the Protocol-enum switch era) and pin the exact per-member outcome
// of every legacy protocol at fixed seeds. The stack-registry redesign
// must reproduce them bit-for-bit: any divergence means the registry
// path wires a protocol differently than the enum switch did.
//
// Regenerate (only after an intentional behaviour change) with:
//
//	go test ./internal/scenario -run TestLegacyProtocolGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stacks.json from the current code")

// goldenView is the deterministic, JSON-stable projection of a Result.
type goldenView struct {
	Sent          int
	Source        int
	Events        uint64
	MACCollisions uint64
	ControlBytes  uint64
	PayloadBytes  uint64
	TreeLatency   time.Duration
	RecLatency    time.Duration
	ReceivedMean  float64
	ReceivedMin   float64
	ReceivedMax   float64
	ReceivedStd   float64
	Members       []MemberResult
}

func viewOf(r *Result) goldenView {
	return goldenView{
		Sent:          r.Sent,
		Source:        int(r.Source),
		Events:        r.Events,
		MACCollisions: r.MACCollisions,
		ControlBytes:  r.ControlBytes,
		PayloadBytes:  r.PayloadBytes,
		TreeLatency:   r.TreeLatencyMean,
		RecLatency:    r.RecoveredLatencyMean,
		ReceivedMean:  r.Received.Mean,
		ReceivedMin:   r.Received.Min,
		ReceivedMax:   r.Received.Max,
		ReceivedStd:   r.Received.Std,
		Members:       r.Members,
	}
}

// goldenConfig is the trimmed run the digests were recorded under.
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 25
	cfg.TxRange = 60
	cfg.Duration = 120 * time.Second
	cfg.DataStart = 30 * time.Second
	cfg.DataEnd = 100 * time.Second
	return cfg
}

var goldenProtocols = []Protocol{
	ProtocolMAODV, ProtocolGossip, ProtocolFlood, ProtocolODMRP, ProtocolODMRPGossip,
}

var goldenSeeds = []int64{1, 2}

const goldenPath = "testdata/golden_stacks.json"

// TestLegacyProtocolGolden is the differential test of the stack
// redesign: every legacy Protocol constant, resolved through whatever
// dispatch path the current code uses, must reproduce the recorded
// pre-redesign results exactly.
func TestLegacyProtocolGolden(t *testing.T) {
	got := make(map[string]goldenView)
	for _, p := range goldenProtocols {
		for _, seed := range goldenSeeds {
			cfg := goldenConfig()
			cfg.Protocol = p
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v seed %d: %v", p, seed, err)
			}
			got[key(p, seed)] = viewOf(res)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden digests to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (record with -update-golden): %v", err)
	}
	var want map[string]goldenView
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if len(want) != len(goldenProtocols)*len(goldenSeeds) {
		t.Fatalf("golden file holds %d digests, want %d", len(want), len(goldenProtocols)*len(goldenSeeds))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from current run set", k)
			continue
		}
		wj, _ := json.Marshal(w)
		gj, _ := json.Marshal(g)
		if string(wj) != string(gj) {
			t.Errorf("%s diverged from pre-redesign golden:\n want %s\n got  %s", k, wj, gj)
		}
	}
}

func key(p Protocol, seed int64) string {
	return fmt.Sprintf("%v/seed=%d", p, seed)
}
