package scenario

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// TestMetricsObserveOnlyBitIdentical is the acceptance test of the
// telemetry layer's observe-only contract: enabling the sampler must
// leave every result field — member outcomes, byte counters, latencies,
// the logical event total, and its processed/elided breakdown — bit
// identical, across the index × queue × scheduler matrix. The sampler's
// own timer chain is subtracted out of the event accounting; everything
// else it does is reads.
func TestMetricsObserveOnlyBitIdentical(t *testing.T) {
	cfg := goldenConfig()
	cfg.Protocol = ProtocolGossip
	cfg.Seed = 3

	for _, index := range []radio.IndexKind{radio.IndexGrid, radio.IndexBrute} {
		for _, queue := range []sim.QueueKind{sim.QueueQuad, sim.QueueCal} {
			for _, sched := range []sim.SchedulerKind{sim.SchedulerSerial, sim.SchedulerSharded} {
				name := fmt.Sprintf("%v/%v/%v", index, queue, sched)
				c := cfg
				c.RadioIndex, c.EventQueue, c.Scheduler = index, queue, sched
				if sched == sim.SchedulerSharded {
					c.Workers = 2
				}

				off, err := Run(c)
				if err != nil {
					t.Fatalf("%s off: %v", name, err)
				}
				// A cadence that does not divide the duration, so the
				// final window is partial and the horizon flush runs.
				c.MetricsWindow = 7 * time.Second
				on, err := Run(c)
				if err != nil {
					t.Fatalf("%s on: %v", name, err)
				}

				if on.Metrics == nil || len(on.Metrics.Windows) == 0 {
					t.Fatalf("%s: sampling enabled but no windows collected", name)
				}
				if on.Channel == nil || on.Channel.TotalTx() == 0 {
					t.Fatalf("%s: sampling enabled but no channel activity observed", name)
				}
				clean := *on
				clean.Metrics, clean.Channel = nil, nil
				if !reflect.DeepEqual(&clean, off) {
					t.Fatalf("%s: sampling changed the result:\noff: %+v\non:  %+v", name, off, &clean)
				}
			}
		}
	}
}

// TestMetricsSeriesShape sanity-checks the collected series on one run:
// windows tile [0, Duration] without gaps, the channel shows activity
// once the CBR stream starts, and the per-window data-delivery deltas
// sum to the cumulative total.
func TestMetricsSeriesShape(t *testing.T) {
	cfg := goldenConfig()
	cfg.Protocol = ProtocolGossip
	cfg.Seed = 2
	cfg.MetricsWindow = 10 * time.Second

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := res.Metrics.Windows
	if len(wins) == 0 {
		t.Fatal("no windows collected")
	}
	prev := time.Duration(0)
	var delivered uint64
	var busyAfterStart bool
	for _, w := range wins {
		if w.Start != prev {
			t.Fatalf("window gap: starts at %v, previous ended at %v", w.Start, prev)
		}
		if w.End <= w.Start {
			t.Fatalf("degenerate window [%v, %v)", w.Start, w.End)
		}
		prev = w.End
		delivered += w.DataDelivered
		if w.Start >= cfg.DataStart && w.BusyFraction() > 0 {
			busyAfterStart = true
		}
	}
	if prev != cfg.Duration {
		t.Fatalf("series ends at %v, want %v", prev, cfg.Duration)
	}
	if !busyAfterStart {
		t.Fatal("channel never busy after the CBR stream started")
	}
	var total uint64
	for _, m := range res.Members {
		total += uint64(m.Received)
	}
	if delivered != total {
		t.Fatalf("windowed delivery deltas sum to %d, members received %d", delivered, total)
	}
}

// TestShardedTraceMatchesSerial is the acceptance test for lifting the
// serial-only trace restriction: the per-lane rings, merged in
// barrier-replay order, must reproduce the serial kernel's single ring
// exactly — same events, same order, same serial ranks, same totals.
func TestShardedTraceMatchesSerial(t *testing.T) {
	cfg := goldenConfig()
	cfg.Protocol = ProtocolGossip
	cfg.Seed = 5
	cfg.TraceCapacity = 512
	cfg.TraceKinds = []pkt.Kind{pkt.KindData, pkt.KindGossipReq, pkt.KindGossipRep}

	cfg.Scheduler = sim.SchedulerSerial
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler = sim.SchedulerSharded
	cfg.Workers = 4
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Trace.Total() == 0 {
		t.Fatal("degenerate run: no trace events recorded")
	}
	if got, want := sharded.Trace.Total(), serial.Trace.Total(); got != want {
		t.Fatalf("sharded trace recorded %d events total, serial %d", got, want)
	}
	se, pe := serial.Trace.Events(), sharded.Trace.Events()
	if len(se) != len(pe) {
		t.Fatalf("sharded trace retains %d events, serial %d", len(pe), len(se))
	}
	for i := range se {
		if !reflect.DeepEqual(se[i], pe[i]) {
			t.Fatalf("trace[%d] diverged:\nserial:  %+v\nsharded: %+v", i, se[i], pe[i])
		}
	}
}
