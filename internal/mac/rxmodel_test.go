package mac

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// macTrace is everything a MAC-level run observes: per-node delivery
// and completion logs plus MAC and channel counters.
type macTrace struct {
	rxs    [][]string
	dones  [][]string
	stats  []Stats
	radio  radio.Stats
	events uint64
}

// runMACWorkload drives a contended five-node topology — hidden
// terminals at the ends, everyone backing off against everyone — with
// interleaved unicast chains and broadcasts, and records every
// observable outcome. The workload forces the full DCF repertoire:
// carrier-sense deferral, backoff, ACK loss and retries, duplicate
// filtering, and retry exhaustion.
func runMACWorkload(t *testing.T, model radio.ReceptionModel) macTrace {
	t.Helper()
	sched := sim.NewScheduler()
	medium := radio.NewMedium(sched, radio.Params{Range: 60, Model: model})
	rng := sim.NewRNG(42)
	// 0-1-2-3-4 in a line, 50 m apart with 60 m range: each node hears
	// only its direct neighbours, so the ends are hidden from the
	// middle's peers.
	positions := []geom.Point{{X: 0}, {X: 50}, {X: 100}, {X: 150}, {X: 200}}
	tr := macTrace{rxs: make([][]string, len(positions)), dones: make([][]string, len(positions))}
	macs := make([]*DCF, len(positions))
	for i, p := range positions {
		i := i
		cb := Callbacks{
			OnReceive: func(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
				tr.rxs[i] = append(tr.rxs[i], fmt.Sprintf("@%v from=%v bcast=%v kind=%v", sched.Now(), from, broadcast, p.Kind))
			},
			OnSendDone: func(p *pkt.Packet, to pkt.NodeID, ok bool) {
				tr.dones[i] = append(tr.dones[i], fmt.Sprintf("@%v to=%v ok=%v", sched.Now(), to, ok))
			},
		}
		m, err := New(sched, rng.Derive(fmt.Sprintf("mac/%d", i)), medium, pkt.NodeID(i+1),
			mobility.Static{P: p}, DefaultConfig(), cb)
		if err != nil {
			t.Fatal(err)
		}
		macs[i] = m
	}

	hello := func(src, dst pkt.NodeID) *pkt.Packet { return pkt.NewPacket(src, dst, &pkt.Hello{Seq: 1}) }
	for k := 0; k < 40; k++ {
		k := k
		at := time.Duration(k) * 400 * time.Microsecond
		sched.At(at, func() {
			switch k % 4 {
			case 0: // unicast chains from both ends (hidden from each other)
				macs[0].Send(hello(1, 2), 2)
				macs[4].Send(hello(5, 4), 4)
			case 1: // broadcasts from the middle
				macs[2].Send(hello(3, pkt.Broadcast), pkt.Broadcast)
			case 2: // crossing unicasts on the same link
				macs[1].Send(hello(2, 3), 3)
				macs[3].Send(hello(4, 3), 3)
			case 3: // unicast to an unreachable node: retry exhaustion
				macs[0].Send(hello(1, 5), 5)
			}
		})
	}
	sched.Run(2 * time.Second)
	for _, m := range macs {
		tr.stats = append(tr.stats, m.Stats())
	}
	tr.radio = medium.Stats()
	tr.events = sched.Processed() + medium.ElidedEvents()
	return tr
}

// TestMACIdenticalAcrossRxModels re-verifies the MAC's carrier-sense
// and retry interplay with the radio over both reception models: every
// delivery, completion, counter and the logical event total must be
// identical, and the workload must actually have exercised collisions
// and retries.
func TestMACIdenticalAcrossRxModels(t *testing.T) {
	batch := runMACWorkload(t, radio.ModelBatch)
	ref := runMACWorkload(t, radio.ModelRef)
	if !reflect.DeepEqual(batch, ref) {
		t.Fatalf("MAC observations diverge across reception models:\nbatch: %+v\nref:   %+v", batch, ref)
	}
	var retries, failures, delivered uint64
	for _, s := range batch.stats {
		retries += s.Retries
		failures += s.Failures
		delivered += s.Delivered
	}
	if delivered == 0 || retries == 0 || failures == 0 || batch.radio.Collisions == 0 {
		t.Fatalf("workload too tame to re-verify the interplay: delivered=%d retries=%d failures=%d collisions=%d",
			delivered, retries, failures, batch.radio.Collisions)
	}
}
