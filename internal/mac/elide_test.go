package mac

import (
	"testing"
	"time"

	"anongossip/internal/geom"
)

func TestMinTxDelay(t *testing.T) {
	cfg := DefaultConfig()
	want := cfg.SIFS
	if cfg.DIFS < want {
		want = cfg.DIFS
	}
	if got := cfg.MinTxDelay(); got != want {
		t.Fatalf("MinTxDelay %v, want min(SIFS, DIFS) = %v", got, want)
	}
	cfg.SIFS, cfg.DIFS = -time.Millisecond, time.Millisecond
	if got := cfg.MinTxDelay(); got != 0 {
		t.Fatalf("negative SIFS: MinTxDelay %v, want the 0 floor", got)
	}
}

// TestElideStepHorizon pins the accounting rule the golden digests
// depend on: a cancelled step timer counts as an elided event only if
// its deadline lies within the run horizon — the eager-timer code
// never executed events past the end of the run, so counting those
// would inflate the logical event total.
func TestElideStepHorizon(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}})
	d := h.macs[0]

	// No step pending: a no-op.
	d.elideStep()
	if got := d.Stats().ElidedEvents; got != 0 {
		t.Fatalf("elideStep with no timer counted %d", got)
	}

	// In-horizon cancel counts.
	d.SetHorizon(5 * time.Millisecond)
	d.step = h.sched.After(time.Millisecond, func() {})
	d.elideStep()
	if got := d.Stats().ElidedEvents; got != 1 {
		t.Fatalf("in-horizon elision counted %d, want 1", got)
	}
	if !d.step.IsZero() {
		t.Fatal("elideStep did not clear the step handle")
	}

	// Past-horizon cancel is excluded.
	d.step = h.sched.After(10*time.Millisecond, func() {})
	d.elideStep()
	if got := d.Stats().ElidedEvents; got != 1 {
		t.Fatalf("past-horizon elision counted (total %d), want it excluded", got)
	}

	// Zero horizon means no bound: everything counts.
	d.SetHorizon(0)
	d.step = h.sched.After(time.Hour, func() {})
	d.elideStep()
	if got := d.Stats().ElidedEvents; got != 2 {
		t.Fatalf("unbounded elision counted %d, want 2", got)
	}

	// An already-fired timer must not count: nothing was elided.
	d.step = h.sched.After(time.Microsecond, func() {})
	h.sched.Run(h.sched.Now() + time.Second)
	steps := d.step
	d.step = steps
	d.elideStep()
	if got := d.Stats().ElidedEvents; got != 2 {
		t.Fatalf("fired timer counted as elided (total %d)", got)
	}
}

// TestLateAckElidesContentionStep engages the elision on the race it
// defends against: an ACK that lands after the sender has timed out
// and re-entered contention. The old code let the abandoned backoff
// timer fire as an inflight-guarded no-op; the new code cancels it and
// counts the elision. With instantaneous propagation this race never
// arises organically, so the test steps the kernel to the vulnerable
// state and injects the late ACK directly.
func TestLateAckElidesContentionStep(t *testing.T) {
	// Receiver far out of range: every data frame goes unacknowledged,
	// so the sender cycles through retries — ack timeout, re-contention
	// — with a live backoff step each cycle.
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 5000}})
	d := h.macs[0]
	if !d.Send(testPacket(1, 2), 2) {
		t.Fatal("queue refused packet")
	}
	for {
		if _, done := h.sched.RunAll(1); done {
			t.Fatal("run drained before a retry re-entered contention")
		}
		if d.inflight != nil && d.inflight.attempt > 0 && !d.step.IsZero() && !d.step.Done() {
			break
		}
	}
	// Every completed transmission folds its airtime-end step into the
	// radio's TxDone hook: exactly one transmission (attempt 0) has
	// left the air by the time the retry is mid-backoff.
	attempts := uint64(d.inflight.attempt)
	if got := d.Stats().ElidedEvents; got != attempts {
		t.Fatalf("%d completed transmissions elided %d events, want one each", attempts, got)
	}
	// The sender is mid-backoff for a retry. The original ACK finally
	// arrives.
	d.onRadio(frame{kind: frameAck, src: 2, dst: 1, seq: d.inflight.frm.seq}, 2, true)
	if got := d.Stats().ElidedEvents; got != attempts+1 {
		t.Fatalf("late ACK elided %d events total, want the abandoned backoff step on top of %d",
			got, attempts)
	}
	if d.inflight != nil {
		t.Fatal("late ACK did not complete the frame")
	}
	h.sched.Run(h.sched.Now() + time.Second)
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("send outcome %+v, want one acknowledged completion", h.dones[0])
	}
}

// TestElisionEventsParity replays the sum the scenario layer reports:
// scheduler-processed plus elided must be deterministic per seed — two
// identical runs agree exactly.
func TestElisionEventsParity(t *testing.T) {
	run := func() uint64 {
		h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 40}, {X: 80}})
		for i := 0; i < 5; i++ {
			h.macs[0].Send(testPacket(1, 3), 3)
			h.macs[2].Send(testPacket(3, 1), 1)
		}
		h.sched.Run(time.Second)
		total := h.sched.Processed()
		for _, m := range h.macs {
			total += m.Stats().ElidedEvents
		}
		return total
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("logical event totals diverged across identical runs: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("degenerate run: no events")
	}
}
