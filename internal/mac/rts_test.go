package mac

import (
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// rtsConfig enables RTS/CTS for every unicast frame.
func rtsConfig() Config {
	cfg := DefaultConfig()
	cfg.RTSThreshold = 0
	return cfg
}

// newHarnessCfg is newHarness with a custom MAC config.
func newHarnessCfg(t *testing.T, rangeM float64, positions []geom.Point, cfg Config) *harness {
	t.Helper()
	h := &harness{
		sched: sim.NewScheduler(),
		rxs:   make([][]received, len(positions)),
		dones: make([][]sendDone, len(positions)),
	}
	h.medium = radio.NewMedium(h.sched, radio.Params{Range: rangeM})
	rng := sim.NewRNG(4321)
	for i, p := range positions {
		i := i
		id := pkt.NodeID(i + 1)
		cb := Callbacks{
			OnReceive: func(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
				h.rxs[i] = append(h.rxs[i], received{p: p, from: from, broadcast: broadcast})
			},
			OnSendDone: func(p *pkt.Packet, to pkt.NodeID, ok bool) {
				h.dones[i] = append(h.dones[i], sendDone{p: p, to: to, ok: ok})
			},
		}
		m, err := New(h.sched, rng.Derive(id.String()), h.medium, id,
			mobility.Static{P: p}, cfg, cb)
		if err != nil {
			t.Fatal(err)
		}
		h.macs = append(h.macs, m)
	}
	return h
}

func TestRTSCTSDelivers(t *testing.T) {
	h := newHarnessCfg(t, 100, []geom.Point{{X: 0}, {X: 50}}, rtsConfig())
	p := testPacket(1, 2)
	h.sched.After(0, func() { h.macs[0].Send(p, 2) })
	h.sched.Run(time.Second)

	if len(h.rxs[1]) != 1 {
		t.Fatalf("receiver got %d packets, want 1", len(h.rxs[1]))
	}
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("sender completion %+v", h.dones[0])
	}
	s := h.macs[0].Stats()
	if s.RTSSent != 1 {
		t.Fatalf("RTSSent = %d, want 1", s.RTSSent)
	}
	if r := h.macs[1].Stats(); r.CTSSent != 1 || r.AcksSent != 1 {
		t.Fatalf("receiver control frames = %+v", r)
	}
}

func TestRTSBelowThresholdSkipsHandshake(t *testing.T) {
	cfg := DefaultConfig() // threshold off
	h := newHarnessCfg(t, 100, []geom.Point{{X: 0}, {X: 50}}, cfg)
	h.sched.After(0, func() { h.macs[0].Send(testPacket(1, 2), 2) })
	h.sched.Run(time.Second)

	if s := h.macs[0].Stats(); s.RTSSent != 0 {
		t.Fatalf("RTS sent below threshold: %+v", s)
	}
	if len(h.rxs[1]) != 1 {
		t.Fatal("packet not delivered")
	}
}

func TestBroadcastNeverUsesRTS(t *testing.T) {
	h := newHarnessCfg(t, 100, []geom.Point{{X: 0}, {X: 50}}, rtsConfig())
	h.sched.After(0, func() { h.macs[0].Send(testPacket(1, pkt.Broadcast), pkt.Broadcast) })
	h.sched.Run(time.Second)
	if s := h.macs[0].Stats(); s.RTSSent != 0 {
		t.Fatal("broadcast used RTS")
	}
	if len(h.rxs[1]) != 1 {
		t.Fatal("broadcast not delivered")
	}
}

func TestRTSToUnreachableFails(t *testing.T) {
	h := newHarnessCfg(t, 100, []geom.Point{{X: 0}, {X: 500}}, rtsConfig())
	h.sched.After(0, func() { h.macs[0].Send(testPacket(1, 2), 2) })
	h.sched.Run(10 * time.Second)
	if len(h.dones[0]) != 1 || h.dones[0][0].ok {
		t.Fatalf("completion = %+v, want failure", h.dones[0])
	}
	if s := h.macs[0].Stats(); s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// 1 -> 2 exchange with RTS/CTS; node 3 hears node 2's CTS (it is in
	// range of 2 but not of 1) and must defer its own transmission to 2
	// until the exchange completes.
	h := newHarnessCfg(t, 60, []geom.Point{{X: 0}, {X: 50}, {X: 100}}, rtsConfig())

	h.sched.After(0, func() { h.macs[0].Send(testPacket(1, 2), 2) })
	// Node 3 queues shortly after the RTS/CTS handshake begins.
	h.sched.After(300*time.Microsecond, func() { h.macs[2].Send(testPacket(3, 2), 2) })
	h.sched.Run(5 * time.Second)

	// Both exchanges must succeed: without NAV, node 3 (a hidden
	// terminal to node 1) would often corrupt the data frame at node 2.
	if got := len(h.rxs[1]); got != 2 {
		t.Fatalf("receiver got %d packets, want 2", got)
	}
	okCount := 0
	for _, d := range append(h.dones[0], h.dones[2]...) {
		if d.ok {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("completions ok = %d, want 2", okCount)
	}
	if h.macs[2].navUntil == 0 {
		t.Fatal("node 3 never set its NAV from the overheard CTS")
	}
}

func TestHiddenTerminalRetriesReducedByRTS(t *testing.T) {
	// The classic experiment: two hidden senders bombard a middle
	// receiver. RTS/CTS + NAV should need fewer data retransmissions
	// than plain DCF for the same workload.
	load := func(cfg Config) uint64 {
		h := newHarnessCfg(t, 60, []geom.Point{{X: 0}, {X: 50}, {X: 100}}, cfg)
		const n = 40
		h.sched.After(0, func() {
			for i := 0; i < n; i++ {
				h.macs[0].Send(testPacket(1, 2), 2)
				h.macs[2].Send(testPacket(3, 2), 2)
			}
		})
		h.sched.Run(60 * time.Second)
		return h.macs[0].Stats().Retries + h.macs[2].Stats().Retries
	}
	plain := load(DefaultConfig())
	rts := load(rtsConfig())
	if plain == 0 {
		t.Skip("no contention in this schedule")
	}
	if rts >= plain {
		t.Fatalf("RTS/CTS retries %d >= plain DCF retries %d", rts, plain)
	}
}
