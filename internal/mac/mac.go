// Package mac implements a simplified IEEE 802.11 DCF MAC on top of the
// radio medium, matching the paper's simulation environment ("the MAC
// layer protocol used was IEEE 802.11 and the bandwidth of the wireless
// medium was assumed to be 2 Mbps").
//
// The model keeps the DCF behaviours the paper's loss processes depend on
// and omits the rest:
//
//   - physical carrier sense with DIFS deferral and slotted binary
//     exponential backoff (CWmin 31 .. CWmax 1023);
//   - unicast frames are acknowledged after SIFS and retransmitted up to
//     RetryLimit times; exhaustion is reported to the network layer, which
//     is how AODV/MAODV detect broken links;
//   - broadcast frames are sent once, unacknowledged — the fundamental
//     unreliability that costs MAODV tree forwarding its packets;
//   - receiver-side duplicate filtering for retransmitted unicast frames;
//   - optional RTS/CTS with NAV (virtual carrier sense) above a
//     configurable threshold. The paper's configuration runs without it
//     (64-byte payloads sit far below the usual threshold); the ablation
//     benchmarks measure what the handshake would change.
package mac

import (
	"time"

	"anongossip/internal/metrics"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// Config holds the DCF parameters. Defaults follow 802.11 DSSS at 2 Mbps.
type Config struct {
	// BitRate is the channel rate in bits/s.
	BitRate float64
	// SlotTime, SIFS and DIFS are the 802.11 interframe timings.
	SlotTime time.Duration
	SIFS     time.Duration
	DIFS     time.Duration
	// CWMin and CWMax bound the contention window (in slots).
	CWMin int
	CWMax int
	// RetryLimit is the maximum number of retransmissions for a unicast
	// frame before the MAC reports failure.
	RetryLimit int
	// PhyOverhead is the preamble+PLCP header time prefixed to every
	// frame.
	PhyOverhead time.Duration
	// HeaderBytes is the MAC header+FCS size added to every data frame.
	HeaderBytes int
	// AckBytes is the size of an ACK control frame.
	AckBytes int
	// QueueCap bounds the transmit queue; excess frames are dropped.
	QueueCap int
	// RTSThreshold enables RTS/CTS for unicast frames whose MAC-level
	// size exceeds it. RTSThresholdOff disables the exchange (the
	// paper's 64-byte payloads sit below any realistic threshold).
	RTSThreshold int
	// RTSBytes and CTSBytes size the control frames.
	RTSBytes int
	CTSBytes int
	// DisableFold turns off the folded contention countdown (one timer
	// postponed in place on channel-state notifications instead of a
	// wake per busy period; DESIGN.md §10). The fold is bit-identical
	// to the eager cycle — the flag exists so differential tests can
	// run the reference schedule against it.
	DisableFold bool
}

// RTSThresholdOff disables RTS/CTS (the 802.11 "dot11RTSThreshold off"
// convention).
const RTSThresholdOff = 1 << 16

// MinTxDelay returns the minimum delay between any MAC event and the
// earliest transmission it can start: every StartTx happens inside a
// timer armed at least SIFS (ACK/CTS/data responses) or DIFS (backoff
// expiry) ahead of the event that armed it. The sharded scheduler uses
// this as its conservative lookahead bound — within a window shorter
// than MinTxDelay, no event can change the channel.
func (c Config) MinTxDelay() time.Duration {
	d := c.SIFS
	if c.DIFS < d {
		d = c.DIFS
	}
	if d < 0 {
		d = 0
	}
	return d
}

// DefaultConfig returns 802.11 DSSS parameters at the paper's 2 Mbps.
func DefaultConfig() Config {
	return Config{
		BitRate:      2e6,
		SlotTime:     20 * time.Microsecond,
		SIFS:         10 * time.Microsecond,
		DIFS:         50 * time.Microsecond,
		CWMin:        31,
		CWMax:        1023,
		RetryLimit:   7,
		PhyOverhead:  192 * time.Microsecond,
		HeaderBytes:  28,
		AckBytes:     14,
		QueueCap:     100,
		RTSThreshold: RTSThresholdOff,
		RTSBytes:     20,
		CTSBytes:     14,
	}
}

// frameKind discriminates MAC frames.
type frameKind uint8

const (
	frameData frameKind = iota + 1
	frameAck
	frameRTS
	frameCTS
)

// frame is the MAC PDU exchanged over the radio.
type frame struct {
	kind    frameKind
	src     pkt.NodeID
	dst     pkt.NodeID
	seq     uint16
	payload *pkt.Packet // nil for control frames
	// nav is the 802.11 duration field: how long the exchange occupies
	// the channel after this frame ends. Overhearers defer (virtual
	// carrier sense).
	nav sim.Time
}

// Stats aggregates per-node MAC counters.
type Stats struct {
	// UnicastSent and BroadcastSent count first transmissions (not
	// retries).
	UnicastSent   uint64
	BroadcastSent uint64
	// Retries counts retransmission attempts.
	Retries uint64
	// Failures counts unicast frames dropped after RetryLimit.
	Failures uint64
	// QueueDrops counts frames rejected because the queue was full.
	QueueDrops uint64
	// AcksSent counts acknowledgements transmitted.
	AcksSent uint64
	// DupsFiltered counts retransmitted unicast frames suppressed by the
	// receiver-side duplicate filter.
	DupsFiltered uint64
	// Delivered counts frames handed up to the network layer.
	Delivered uint64
	// BytesSent counts all transmitted bytes including MAC framing.
	BytesSent uint64
	// RTSSent and CTSSent count RTS/CTS control frames.
	RTSSent uint64
	CTSSent uint64
	// TxAttempts counts channel-occupying transmission starts for
	// queued frames — data frames and RTS handshake openers, retries
	// included (ACK/CTS responses are counted by their own fields).
	TxAttempts uint64
	// BackoffWait accumulates the contention wait this node armed
	// (DIFS + drawn backoff slots per cycle) — the time the MAC spent
	// standing off the channel rather than occupying it.
	BackoffWait time.Duration
	// ElidedEvents counts MAC events folded out of the kernel: the
	// airtime-end step the eager code scheduled per data/RTS
	// transmission, now run from the radio's TxDone hook (one per
	// completed transmission), and contention-step timers (defer
	// wakes, backoff expiries, pending response transmissions)
	// cancelled when their frame completed out from under them —
	// events that would have fired as inflight-guarded no-ops before
	// the MAC re-armed lazily. Adding it to the scheduler's processed
	// count keeps the logical event total (and the golden digests
	// pinned on it) identical to the eager-timer code. Cancels whose
	// deadline lies beyond the horizon set with SetHorizon are
	// excluded: the old code never reached those events either.
	ElidedEvents uint64
}

// Callbacks connects the MAC to the network layer.
type Callbacks struct {
	// OnReceive delivers a received packet. from is the transmitting
	// neighbour (the previous hop, not the network-layer source).
	// broadcast reports whether the frame was link-layer broadcast.
	OnReceive func(p *pkt.Packet, from pkt.NodeID, broadcast bool)
	// OnSendDone reports the fate of a queued packet: ok is true when the
	// frame was acknowledged (or broadcast and therefore fire-and-forget),
	// false when the retry limit was exhausted. Routing layers use
	// failures as link-break indications.
	OnSendDone func(p *pkt.Packet, to pkt.NodeID, ok bool)
}

// outgoing is one queued network packet with its MAC bookkeeping.
type outgoing struct {
	frm     frame
	attempt int
	cw      int
}

// stepPhase says what a firing of the contention-step timer means; it
// is written together with the timer on every arm, so the single
// reusable stepFn closure can dispatch without capturing state.
type stepPhase uint8

const (
	// stepDeferWake: the channel was busy; wake at the sensed busy-until
	// time and re-sample.
	stepDeferWake stepPhase = iota
	// stepBackoff: DIFS + backoff expired; transmit if still idle, else
	// start the defer cycle over.
	stepBackoff
	// stepCtsData: CTS received; send the protected data frame after
	// SIFS.
	stepCtsData
)

// DCF is one node's MAC entity.
type DCF struct {
	id    pkt.NodeID
	cfg   Config
	sched *sim.Scheduler
	rng   *sim.RNG
	tr    *radio.Transceiver
	cb    Callbacks

	queue    []*outgoing
	inflight *outgoing
	// busy is true from the moment a frame reaches the head of the queue
	// until its final success/failure, covering defer, backoff, airtime
	// and ACK wait.
	busy bool

	nextSeq  uint16
	ackTimer sim.Timer
	ctsTimer sim.Timer
	// step is the pending timer driving the head frame's contention
	// cycle (defer wake, backoff expiry, or pending response). When the
	// frame completes early — a late ACK during re-contention, say —
	// finish cancels it instead of letting it fire as an
	// inflight-guarded no-op; see Stats.ElidedEvents.
	//
	// The timer is always armed with the reusable stepFn closure; what
	// a firing means is carried in (stepKind, stepOut), written together
	// with every arm. At most one step is pending at a time, so the
	// fields cannot be clobbered under a live timer.
	step     sim.Timer
	stepKind stepPhase
	stepOut  *outgoing
	stepFn   func()
	// ackOut/ctsOut are the frames the ack/cts timeout timers guard;
	// like stepOut they let the timers share one closure each instead
	// of capturing per arm.
	ackOut *outgoing
	ackFn  func()
	ctsOut *outgoing
	ctsFn  func()
	// vtxOut/vtxAt/vtxKind describe the virtual airtime-end step: since
	// the radio's finish processing ends at the exact schedule position
	// of a timer armed right after StartTx, the MAC no longer schedules
	// one — it records what the timer would have done and runs it from
	// the radio's TxDone hook, counting one elided event per
	// transmission (see Stats.ElidedEvents). vtxOut is nil when no
	// transmission is in the air.
	vtxOut  *outgoing
	vtxAt   sim.Time
	vtxKind frameKind
	// horizon bounds elision accounting; see SetHorizon.
	horizon sim.Time
	// navUntil is the virtual carrier-sense deadline learned from
	// overheard RTS/CTS duration fields.
	navUntil sim.Time
	// Folded contention countdown (DESIGN.md §10). folding is set when
	// the fold is enabled and the transceiver can bound neighbourhood
	// motion; foldOK says the closure proofs covering the pending step
	// still hold; foldVK is the largest proven busy-until learned since
	// the step was armed; foldBase anchors the prediction window —
	// every folded decision must stay within
	// radio.CarrierPredictWindow of the probe that established the
	// closure.
	folding  bool
	foldOK   bool
	foldVK   sim.Time
	foldBase sim.Time
	// lastSeq filters duplicate unicast frames per sender.
	lastSeq map[pkt.NodeID]uint16

	stats Stats
	// chm, when non-nil, receives per-layer channel-usage observations
	// for every transmission this MAC starts (see SetChannelMetrics).
	chm *metrics.ChannelCounters
}

// New attaches a MAC entity for node id to the medium. pos supplies the
// node's mobility model to the radio layer. It fails when the medium
// already has a transceiver for id (radio.ErrDuplicateNode).
func New(sched *sim.Scheduler, rng *sim.RNG, medium *radio.Medium, id pkt.NodeID,
	pos mobility.Model, cfg Config, cb Callbacks) (*DCF, error) {
	d := &DCF{
		id:      id,
		cfg:     cfg,
		sched:   sched,
		rng:     rng,
		cb:      cb,
		lastSeq: make(map[pkt.NodeID]uint16),
	}
	// One closure per timer role for the DCF's whole lifetime: arming a
	// contention step or a timeout passes these instead of allocating a
	// fresh capture per arm (thousands per node per run).
	d.stepFn = d.onStep
	d.ackFn = d.onAckTimeout
	d.ctsFn = d.onCtsTimeout
	// Attach with the node's own scheduler as the transceiver clock:
	// under the sharded kernel this is the node's shard lane, so
	// carrier-sense reads inside parallel windows see the shard clock.
	tr, err := medium.AttachOn(sched, id, pos, d.onRadio)
	if err != nil {
		return nil, err
	}
	d.tr = tr
	if !cfg.DisableFold && tr.CarrierPredictable() {
		// Fold the contention countdown: the radio notifies carrier
		// onsets instead of the MAC polling with a wake per busy
		// period.
		tr.SetCarrierListener(d)
		d.folding = true
	}
	return d, nil
}

// ID returns the node ID.
func (d *DCF) ID() pkt.NodeID { return d.id }

// SetHorizon tells the MAC when the run ends, so cancelled step timers
// scheduled past the end — events the eager-timer code would never
// have executed — are excluded from Stats.ElidedEvents. A zero horizon
// (the default) counts every cancel.
func (d *DCF) SetHorizon(t sim.Time) { d.horizon = t }

// elideStep cancels the pending contention-step timer, if any, and
// accounts for the no-op event the cancel elides.
func (d *DCF) elideStep() {
	if d.step.IsZero() {
		return
	}
	at := d.step.At()
	d.step.Cancel()
	if d.step.Cancelled() && (d.horizon == 0 || at <= d.horizon) {
		d.stats.ElidedEvents++
	}
	d.step = sim.Timer{}
	d.foldOK = false
}

// Stats returns a copy of the MAC counters.
func (d *DCF) Stats() Stats { return d.stats }

// SetChannelMetrics points the MAC at a shared per-run channel-usage
// accumulator; every transmission start then reports its layer,
// airtime and bytes there. Nil (the default) disables the observation.
//
// Sharing one plain-field ChannelCounters across all MACs is safe even
// under the sharded kernel because every transmission start executes
// in solo context: data/RTS sends fire from AfterEmit-armed contention
// steps and ACK/CTS responses from AfterEmit closures, all routed
// through the coordinator's global queue (see metrics.ChannelCounters).
func (d *DCF) SetChannelMetrics(c *metrics.ChannelCounters) { d.chm = c }

// QueueLen returns the number of frames waiting (excluding in-flight).
func (d *DCF) QueueLen() int { return len(d.queue) }

// airtime returns the channel occupancy of a data frame carrying
// payloadBytes of network-layer payload.
func (d *DCF) airtime(payloadBytes int) sim.Time {
	bits := float64((d.cfg.HeaderBytes + payloadBytes) * 8)
	return d.cfg.PhyOverhead + time.Duration(bits/d.cfg.BitRate*float64(time.Second))
}

func (d *DCF) ackAirtime() sim.Time {
	return d.ctlAirtime(d.cfg.AckBytes)
}

func (d *DCF) ctlAirtime(bytes int) sim.Time {
	bits := float64(bytes * 8)
	return d.cfg.PhyOverhead + time.Duration(bits/d.cfg.BitRate*float64(time.Second))
}

// senseProbe reads the channel exactly — physical and virtual (NAV)
// carrier sense combined — and, when folding, the conservative reach
// bound that seeds the countdown's closure proof (radio.CarrierProbe:
// the latest end time any transmission currently on the air could
// still occupy this node's channel with, motion included).
func (d *DCF) senseProbe() (busy, reach sim.Time) {
	if d.folding {
		busy, reach = d.tr.CarrierProbe()
	} else {
		busy = d.tr.CarrierBusyUntil()
	}
	if d.navUntil > busy {
		busy = d.navUntil
	}
	return busy, reach
}

// ackTimeout is the wait after a unicast transmission before declaring the
// ACK lost.
func (d *DCF) ackTimeout() sim.Time {
	return d.cfg.SIFS + d.ackAirtime() + 2*d.cfg.SlotTime
}

// Send queues p for transmission to the link-layer destination dst
// (pkt.Broadcast for broadcast). It reports whether the frame was
// accepted; false means the queue was full and the packet dropped.
func (d *DCF) Send(p *pkt.Packet, dst pkt.NodeID) bool {
	if len(d.queue) >= d.cfg.QueueCap {
		d.stats.QueueDrops++
		return false
	}
	d.nextSeq++
	out := &outgoing{
		frm: frame{kind: frameData, src: d.id, dst: dst, seq: d.nextSeq, payload: p},
	}
	d.queue = append(d.queue, out)
	if !d.busy {
		d.startHead()
	}
	return true
}

// startHead begins the contention cycle for the frame at the queue head.
func (d *DCF) startHead() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	d.inflight = d.queue[0]
	d.queue = d.queue[1:]
	d.inflight.attempt = 0
	d.inflight.cw = d.cfg.CWMin
	d.defer_()
}

// defer_ waits for the channel (physical + NAV) to go idle, then backs
// off and transmits.
func (d *DCF) defer_() {
	out := d.inflight
	busy, reach := d.senseProbe()
	if busy > d.sched.Now() {
		d.armWake(out, busy, reach)
		return
	}
	d.armBackoff(out, reach, true)
}

// armWake arms the defer wake at the sensed busy-until instant and
// establishes the fold closure: the probe just taken anchors the
// prediction window, and the wake may skip re-sensing if every proof
// holds until it fires.
func (d *DCF) armWake(out *outgoing, target, reach sim.Time) {
	d.stepKind, d.stepOut = stepDeferWake, out
	d.step = d.sched.At(target, d.stepFn)
	d.foldBase = d.sched.Now()
	d.foldVK = 0
	d.foldOK = d.folding && reach <= target && target <= d.foldBase+radio.CarrierPredictWindow
}

// armBackoff draws the contention slots and arms the expiry. probed
// says the caller just probed the channel (reach is its closure
// bound); a proven-idle wake skips the probe and extends the closure
// it fired under, still anchored at the original probe's window.
func (d *DCF) armBackoff(out *outgoing, reach sim.Time, probed bool) {
	now := d.sched.Now()
	if probed {
		d.foldBase = now
	}
	slots := d.rng.Intn(out.cw + 1)
	wait := d.cfg.DIFS + time.Duration(slots)*d.cfg.SlotTime
	d.stats.BackoffWait += wait
	// The expiry may start a transmission (AfterEmit); its DIFS floor
	// is what makes Config.MinTxDelay a sound lookahead bound.
	d.stepKind, d.stepOut = stepBackoff, out
	d.step = d.sched.AfterEmit(wait, d.stepFn)
	exp := now + wait
	d.foldVK = 0
	d.foldOK = d.folding && (probed || d.foldOK) && reach <= exp &&
		exp <= d.foldBase+radio.CarrierPredictWindow
}

// foldIdle reports whether the folded countdown proves the channel
// (and NAV) idle at the firing instant, making the exact carrier read
// redundant: any invalidation since the arm cleared foldOK, every
// proven busy interval has ended (a later one would have postponed
// this firing past itself), and anything unproven never existed
// within reach.
func (d *DCF) foldIdle() bool {
	if !d.foldOK {
		return false
	}
	now := d.sched.Now()
	return d.foldVK <= now && d.navUntil <= now
}

// onStep is the single contention-step callback; (stepKind, stepOut)
// written at arm time say which transition fired.
func (d *DCF) onStep() {
	out := d.stepOut
	switch d.stepKind {
	case stepDeferWake:
		if d.inflight != out {
			return
		}
		if d.foldIdle() {
			// Every proof held from arm to expiry: the exact read is
			// elided and the countdown proceeds straight to backoff.
			d.armBackoff(out, 0, false)
			return
		}
		d.defer_()
	case stepBackoff:
		if d.inflight != out {
			return
		}
		if d.foldIdle() {
			d.transmit()
			return
		}
		// The channel may have become busy during the backoff; if so,
		// start over (simplification of 802.11's counter freezing).
		busy, reach := d.senseProbe()
		if busy > d.sched.Now() {
			d.armWake(out, busy, reach)
			return
		}
		d.transmit()
	case stepCtsData:
		if d.inflight == out {
			d.transmitData(out)
		}
	}
}

// CarrierOnset implements radio.CarrierListener: the radio reports
// every transmission start that could occupy this node's channel
// within the prediction window. Proven in-range onsets advance the
// folded countdown's busy horizon and postpone the pending step in
// place; unproven (band) onsets invalidate the fold, so the step
// falls back to an exact carrier read — after restoring its original
// deadline, which is where the eager cycle would have re-sensed.
func (d *DCF) CarrierOnset(end sim.Time, proven bool) {
	if d.step.IsZero() || d.step.Done() || d.stepKind == stepCtsData {
		return
	}
	if !proven {
		if d.foldOK {
			d.foldOK = false
			d.step.Unpostpone()
		}
		return
	}
	if end > d.foldVK {
		d.foldVK = end
		d.maybePostpone()
	}
}

// maybePostpone slides the pending step to the folded busy horizon
// when the proofs allow it, flipping a backoff expiry into a defer
// wake exactly as the eager cycle's busy re-sense would have. A
// horizon beyond the prediction window cannot be proven; the fold is
// abandoned and the step restored to fire (and re-sense) at its
// original deadline.
func (d *DCF) maybePostpone() {
	if !d.foldOK {
		return
	}
	v := d.foldVK
	if d.navUntil > v {
		v = d.navUntil
	}
	if v <= d.step.At() {
		return
	}
	if v > d.foldBase+radio.CarrierPredictWindow {
		d.foldOK = false
		d.step.Unpostpone()
		return
	}
	d.step.Postpone(v)
	d.stepKind = stepDeferWake
}

// onAckTimeout declares the awaited ACK lost and retries.
func (d *DCF) onAckTimeout() {
	if out := d.ackOut; d.inflight == out && out != nil {
		d.retry(out)
	}
}

// onCtsTimeout declares the awaited CTS lost and retries.
func (d *DCF) onCtsTimeout() {
	if out := d.ctsOut; d.inflight == out && out != nil {
		d.retry(out)
	}
}

// needRTS reports whether the head frame must be protected by RTS/CTS.
func (d *DCF) needRTS(out *outgoing) bool {
	if out.frm.dst == pkt.Broadcast {
		return false
	}
	return d.cfg.HeaderBytes+out.frm.payload.WireSize() > d.cfg.RTSThreshold
}

// transmit puts the head frame (or its RTS) on the air.
func (d *DCF) transmit() {
	out := d.inflight
	if d.needRTS(out) {
		d.transmitRTS(out)
		return
	}
	d.transmitData(out)
}

// transmitRTS starts the RTS/CTS handshake for the head frame.
func (d *DCF) transmitRTS(out *outgoing) {
	dataAt := d.airtime(out.frm.payload.WireSize())
	ctsAt := d.ctlAirtime(d.cfg.CTSBytes)
	// Duration field: everything after the RTS ends.
	nav := d.cfg.SIFS + ctsAt + d.cfg.SIFS + dataAt + d.cfg.SIFS + d.ackAirtime()
	rts := frame{kind: frameRTS, src: d.id, dst: out.frm.dst, seq: out.frm.seq, nav: nav}
	rtsAt := d.ctlAirtime(d.cfg.RTSBytes)
	if err := d.tr.StartTxNotify(rts, rtsAt, d); err != nil {
		d.retry(out)
		return
	}
	d.stats.RTSSent++
	d.stats.TxAttempts++
	d.stats.BytesSent += uint64(d.cfg.RTSBytes)
	if d.chm != nil {
		d.chm.ObserveTx(metrics.LayerMAC, rtsAt, d.cfg.RTSBytes)
	}
	// The airtime-end step is virtual: the radio's TxDone hook arms the
	// CTS timeout when the RTS leaves the air.
	d.vtxOut, d.vtxAt, d.vtxKind = out, d.sched.Now()+rtsAt, frameRTS
}

// transmitData puts the head data frame on the air; the radio's TxDone
// hook completes broadcasts and arms the ACK timer for unicast when
// the frame leaves the air.
func (d *DCF) transmitData(out *outgoing) {
	payloadSize := out.frm.payload.WireSize()
	at := d.airtime(payloadSize)
	if err := d.tr.StartTxNotify(out.frm, at, d); err != nil {
		// Should be unreachable: the defer cycle guarantees idleness.
		// Treat as a collision-equivalent retry rather than crashing.
		d.retry(out)
		return
	}
	d.stats.BytesSent += uint64(d.cfg.HeaderBytes + payloadSize)
	d.stats.TxAttempts++
	if d.chm != nil {
		d.chm.ObserveTx(metrics.LayerOf(out.frm.payload.Kind), at, d.cfg.HeaderBytes+payloadSize)
	}
	if out.attempt == 0 {
		if out.frm.dst == pkt.Broadcast {
			d.stats.BroadcastSent++
		} else {
			d.stats.UnicastSent++
		}
	}
	d.vtxOut, d.vtxAt, d.vtxKind = out, d.sched.Now()+at, frameData
}

// TxDone implements radio.TxDone: it runs the virtual airtime-end step
// when the radio finishes the transmission, in the exact schedule
// position the eager MAC's timer fired in. The timer it replaces
// executed as a real event, so each invocation that finds the virtual
// step still armed counts one elided event to keep the logical total
// identical. A cleared vtxOut means the frame already completed (a
// late ACK during the retransmission's airtime); the early finish
// accounted for the step, and there is nothing left to do.
func (d *DCF) TxDone() {
	out := d.vtxOut
	if out == nil {
		return
	}
	d.vtxOut = nil
	d.stats.ElidedEvents++
	if d.inflight != out {
		return
	}
	switch d.vtxKind {
	case frameData:
		if out.frm.dst == pkt.Broadcast {
			d.finish(out, true)
			return
		}
		// Await the ACK.
		d.ackOut = out
		d.ackTimer = d.sched.After(d.ackTimeout(), d.ackFn)
	case frameRTS:
		// Await the CTS.
		ctsAt := d.ctlAirtime(d.cfg.CTSBytes)
		d.ctsOut = out
		d.ctsTimer = d.sched.After(d.cfg.SIFS+ctsAt+2*d.cfg.SlotTime, d.ctsFn)
	}
}

// retry reschedules a unicast frame after a lost ACK, doubling the
// contention window, or fails the frame once the retry limit is reached.
func (d *DCF) retry(out *outgoing) {
	out.attempt++
	if out.attempt > d.cfg.RetryLimit {
		d.stats.Failures++
		d.finish(out, false)
		return
	}
	d.stats.Retries++
	out.cw = min(2*(out.cw+1)-1, d.cfg.CWMax)
	d.defer_()
}

// elideVirtualStep accounts for a pending virtual airtime-end step on
// early completion, mirroring elideStep: the eager MAC would have
// cancelled a real timer here and counted the elision (subject to the
// same horizon bound). The radio's TxDone hook still fires at the
// airtime's end but finds vtxOut cleared and does nothing — and counts
// nothing, or the event would be accounted twice.
func (d *DCF) elideVirtualStep() {
	if d.vtxOut == nil {
		return
	}
	if d.horizon == 0 || d.vtxAt <= d.horizon {
		d.stats.ElidedEvents++
	}
	d.vtxOut = nil
}

// finish completes the head frame and starts the next.
func (d *DCF) finish(out *outgoing, ok bool) {
	d.elideStep()
	d.elideVirtualStep()
	d.ackTimer.Cancel()
	d.ackTimer = sim.Timer{}
	d.ackOut = nil
	d.ctsTimer.Cancel()
	d.ctsTimer = sim.Timer{}
	d.ctsOut = nil
	d.inflight = nil
	if d.cb.OnSendDone != nil {
		d.cb.OnSendDone(out.frm.payload, out.frm.dst, ok)
	}
	d.startHead()
}

// onRadio handles a reception outcome from the radio layer.
func (d *DCF) onRadio(raw any, _ pkt.NodeID, ok bool) {
	if !ok {
		return // corrupted receptions carry no usable frame
	}
	frm, isFrame := raw.(frame)
	if !isFrame {
		return // foreign traffic on the medium (tests)
	}
	// Virtual carrier sense: frames not for us with a duration field
	// reserve the channel.
	if frm.dst != d.id && frm.nav > 0 {
		if until := d.sched.Now() + frm.nav; until > d.navUntil {
			d.navUntil = until
			// NAV growth is own-state and exact: it feeds the folded
			// countdown the same way a proven carrier onset does.
			if d.folding && !d.step.IsZero() && !d.step.Done() && d.stepKind != stepCtsData {
				d.maybePostpone()
			}
		}
	}
	switch frm.kind {
	case frameAck:
		if frm.dst != d.id || d.inflight == nil {
			return
		}
		if frm.seq == d.inflight.frm.seq {
			d.finish(d.inflight, true)
		}
	case frameRTS:
		d.onRTS(frm)
	case frameCTS:
		if frm.dst != d.id || d.inflight == nil || d.ctsTimer.IsZero() {
			return
		}
		if frm.seq == d.inflight.frm.seq {
			d.ctsTimer.Cancel()
			d.ctsTimer = sim.Timer{}
			d.ctsOut = nil
			d.stepKind, d.stepOut = stepCtsData, d.inflight
			d.step = d.sched.AfterEmit(d.cfg.SIFS, d.stepFn)
			// Response steps never fold: the data send is unconditional.
			d.foldOK = false
		}
	case frameData:
		d.onData(frm)
	}
}

// onRTS answers a request-to-send addressed to this node.
func (d *DCF) onRTS(frm frame) {
	if frm.dst != d.id {
		return
	}
	ctsAt := d.ctlAirtime(d.cfg.CTSBytes)
	nav := frm.nav - d.cfg.SIFS - ctsAt
	if nav < 0 {
		nav = 0
	}
	d.sched.AfterEmit(d.cfg.SIFS, func() {
		if d.tr.Transmitting() {
			return
		}
		cts := frame{kind: frameCTS, src: d.id, dst: frm.src, seq: frm.seq, nav: nav}
		if err := d.tr.StartTx(cts, ctsAt); err == nil {
			d.stats.CTSSent++
			d.stats.BytesSent += uint64(d.cfg.CTSBytes)
			if d.chm != nil {
				d.chm.ObserveTx(metrics.LayerMAC, ctsAt, d.cfg.CTSBytes)
			}
		}
	})
}

func (d *DCF) onData(frm frame) {
	if frm.dst == pkt.Broadcast {
		d.stats.Delivered++
		if d.cb.OnReceive != nil {
			d.cb.OnReceive(frm.payload, frm.src, true)
		}
		return
	}
	if frm.dst != d.id {
		return // unicast overheard in promiscuous range; ignore
	}
	// Acknowledge after SIFS unless we are mid-transmission (half-duplex;
	// the sender will retry).
	d.sched.AfterEmit(d.cfg.SIFS, func() {
		if d.tr.Transmitting() {
			return
		}
		ack := frame{kind: frameAck, src: d.id, dst: frm.src, seq: frm.seq}
		if err := d.tr.StartTx(ack, d.ackAirtime()); err == nil {
			d.stats.AcksSent++
			d.stats.BytesSent += uint64(d.cfg.AckBytes)
			if d.chm != nil {
				d.chm.ObserveTx(metrics.LayerMAC, d.ackAirtime(), d.cfg.AckBytes)
			}
		}
	})
	// Filter duplicates from ACK-lost retransmissions.
	if last, seen := d.lastSeq[frm.src]; seen && last == frm.seq {
		d.stats.DupsFiltered++
		return
	}
	d.lastSeq[frm.src] = frm.seq
	d.stats.Delivered++
	if d.cb.OnReceive != nil {
		d.cb.OnReceive(frm.payload, frm.src, false)
	}
}
