package mac

import (
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

type received struct {
	p         *pkt.Packet
	from      pkt.NodeID
	broadcast bool
}

type sendDone struct {
	p  *pkt.Packet
	to pkt.NodeID
	ok bool
}

type harness struct {
	sched  *sim.Scheduler
	medium *radio.Medium
	macs   []*DCF
	rxs    [][]received
	dones  [][]sendDone
}

// newHarness builds MACs at fixed positions on a shared medium.
func newHarness(t *testing.T, rangeM float64, positions []geom.Point) *harness {
	t.Helper()
	h := &harness{
		sched: sim.NewScheduler(),
		rxs:   make([][]received, len(positions)),
		dones: make([][]sendDone, len(positions)),
	}
	h.medium = radio.NewMedium(h.sched, radio.Params{Range: rangeM})
	rng := sim.NewRNG(1234)
	for i, p := range positions {
		i := i
		id := pkt.NodeID(i + 1)
		cb := Callbacks{
			OnReceive: func(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
				h.rxs[i] = append(h.rxs[i], received{p: p, from: from, broadcast: broadcast})
			},
			OnSendDone: func(p *pkt.Packet, to pkt.NodeID, ok bool) {
				h.dones[i] = append(h.dones[i], sendDone{p: p, to: to, ok: ok})
			},
		}
		m, err := New(h.sched, rng.Derive(id.String()), h.medium, id,
			mobility.Static{P: p}, DefaultConfig(), cb)
		if err != nil {
			t.Fatal(err)
		}
		h.macs = append(h.macs, m)
	}
	return h
}

func testPacket(src, dst pkt.NodeID) *pkt.Packet {
	return pkt.NewPacket(src, dst, &pkt.Hello{Seq: 9})
}

func TestUnicastDeliveredAndAcked(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 50}})
	p := testPacket(1, 2)
	h.sched.After(0, func() {
		if !h.macs[0].Send(p, 2) {
			t.Error("Send rejected")
		}
	})
	h.sched.Run(time.Second)

	if len(h.rxs[1]) != 1 {
		t.Fatalf("receiver got %d packets, want 1", len(h.rxs[1]))
	}
	if got := h.rxs[1][0]; got.p != p || got.from != 1 || got.broadcast {
		t.Fatalf("bad reception %+v", got)
	}
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("sender completion %+v, want ok", h.dones[0])
	}
	if s := h.macs[0].Stats(); s.UnicastSent != 1 || s.Failures != 0 {
		t.Fatalf("sender stats %+v", s)
	}
	if s := h.macs[1].Stats(); s.AcksSent != 1 || s.Delivered != 1 {
		t.Fatalf("receiver stats %+v", s)
	}
}

func TestBroadcastDeliveredToAllInRange(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 50}, {X: 80}, {X: 500}})
	p := testPacket(1, pkt.Broadcast)
	h.sched.After(0, func() { h.macs[0].Send(p, pkt.Broadcast) })
	h.sched.Run(time.Second)

	for _, i := range []int{1, 2} {
		if len(h.rxs[i]) != 1 || !h.rxs[i][0].broadcast {
			t.Fatalf("node %d receptions %+v, want 1 broadcast", i+1, h.rxs[i])
		}
	}
	if len(h.rxs[3]) != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
	// Broadcast completes immediately with ok=true and no ACKs.
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("broadcast completion %+v", h.dones[0])
	}
	for i := 1; i < 4; i++ {
		if s := h.macs[i].Stats(); s.AcksSent != 0 {
			t.Fatalf("node %d sent ACK for broadcast", i+1)
		}
	}
}

func TestUnicastToUnreachableFailsAfterRetries(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 500}})
	p := testPacket(1, 2)
	h.sched.After(0, func() { h.macs[0].Send(p, 2) })
	h.sched.Run(5 * time.Second)

	if len(h.dones[0]) != 1 || h.dones[0][0].ok {
		t.Fatalf("completion %+v, want failure", h.dones[0])
	}
	s := h.macs[0].Stats()
	if s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
	if s.Retries != uint64(DefaultConfig().RetryLimit) {
		t.Fatalf("Retries = %d, want %d", s.Retries, DefaultConfig().RetryLimit)
	}
}

func TestQueueDropsWhenFull(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 50}})
	h.sched.After(0, func() {
		accepted := 0
		for i := 0; i < DefaultConfig().QueueCap+10; i++ {
			if h.macs[0].Send(testPacket(1, 2), 2) {
				accepted++
			}
		}
		// One frame goes in flight immediately; the queue holds QueueCap.
		if accepted < DefaultConfig().QueueCap {
			t.Errorf("accepted %d, want >= %d", accepted, DefaultConfig().QueueCap)
		}
	})
	h.sched.Run(10 * time.Second)
	if s := h.macs[0].Stats(); s.QueueDrops == 0 {
		t.Fatal("no queue drops recorded")
	}
	// Everything accepted must eventually complete.
	if len(h.dones[0]) == 0 {
		t.Fatal("no completions")
	}
}

func TestQueuedFramesAllDelivered(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 50}})
	const n = 20
	h.sched.After(0, func() {
		for i := 0; i < n; i++ {
			h.macs[0].Send(testPacket(1, 2), 2)
		}
	})
	h.sched.Run(time.Second)
	if len(h.rxs[1]) != n {
		t.Fatalf("delivered %d, want %d", len(h.rxs[1]), n)
	}
	if len(h.dones[0]) != n {
		t.Fatalf("completions %d, want %d", len(h.dones[0]), n)
	}
}

func TestDuplicateFilteringOnRetransmission(t *testing.T) {
	// Receiver at the edge of the range cannot happen with a static
	// geometry, so force duplicates by making the ACK collide: a hidden
	// terminal saturates the receiver's channel... Simpler determinism:
	// two senders far apart, both in range of the middle receiver, cause
	// data/ACK collisions and retransmissions; the filter must keep
	// deliveries unique per MAC sequence number.
	h := newHarness(t, 60, []geom.Point{{X: 0}, {X: 50}, {X: 100}})
	const n = 30
	h.sched.After(0, func() {
		for i := 0; i < n; i++ {
			h.macs[0].Send(testPacket(1, 2), 2)
			h.macs[2].Send(testPacket(3, 2), 2)
		}
	})
	h.sched.Run(30 * time.Second)

	s := h.macs[1].Stats()
	if s.DupsFiltered == 0 {
		t.Skip("no retransmission-induced duplicates in this schedule; nothing to assert")
	}
	// Delivered must equal unique frames: n per sender at most.
	if s.Delivered > 2*n {
		t.Fatalf("delivered %d > unique frames %d", s.Delivered, 2*n)
	}
}

func TestContendingSendersBothSucceed(t *testing.T) {
	// Both senders in range of each other: carrier sense + backoff must
	// serialise them with high probability.
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 30}, {X: 60}})
	const n = 50
	h.sched.After(0, func() {
		for i := 0; i < n; i++ {
			h.macs[0].Send(testPacket(1, 2), 2)
			h.macs[2].Send(testPacket(3, 2), 2)
		}
	})
	h.sched.Run(30 * time.Second)

	okFrom := map[pkt.NodeID]int{}
	for _, r := range h.rxs[1] {
		okFrom[r.from]++
	}
	if okFrom[1] != n || okFrom[3] != n {
		t.Fatalf("deliveries from contending senders = %v, want %d each", okFrom, n)
	}
}

func TestAirtimeComputation(t *testing.T) {
	d := &DCF{cfg: DefaultConfig()}
	// 64-byte payload: 192us + (28+64)*8 bits / 2 Mbps = 192us + 368us.
	want := 192*time.Microsecond + 368*time.Microsecond
	if got := d.airtime(64); got != want {
		t.Fatalf("airtime(64) = %v, want %v", got, want)
	}
	// ACK: 192us + 14*8/2e6 = 192us + 56us.
	if got := d.ackAirtime(); got != 248*time.Microsecond {
		t.Fatalf("ackAirtime = %v, want 248us", got)
	}
}

func TestBytesSentAccounting(t *testing.T) {
	h := newHarness(t, 100, []geom.Point{{X: 0}, {X: 50}})
	p := testPacket(1, 2)
	h.sched.After(0, func() { h.macs[0].Send(p, 2) })
	h.sched.Run(time.Second)

	wantSender := uint64(DefaultConfig().HeaderBytes + p.WireSize())
	if s := h.macs[0].Stats(); s.BytesSent != wantSender {
		t.Fatalf("sender BytesSent = %d, want %d", s.BytesSent, wantSender)
	}
	if s := h.macs[1].Stats(); s.BytesSent != uint64(DefaultConfig().AckBytes) {
		t.Fatalf("receiver BytesSent = %d, want %d (ACK)", s.BytesSent, DefaultConfig().AckBytes)
	}
}

func TestHiddenTerminalCausesRetries(t *testing.T) {
	// 1 and 3 cannot hear each other; both bombard 2. Without RTS/CTS we
	// expect collisions at 2 and therefore retries at the senders.
	h := newHarness(t, 60, []geom.Point{{X: 0}, {X: 50}, {X: 100}})
	const n = 40
	h.sched.After(0, func() {
		for i := 0; i < n; i++ {
			h.macs[0].Send(testPacket(1, 2), 2)
			h.macs[2].Send(testPacket(3, 2), 2)
		}
	})
	h.sched.Run(60 * time.Second)
	if h.macs[0].Stats().Retries+h.macs[2].Stats().Retries == 0 {
		t.Fatal("hidden-terminal senders never retried")
	}
}
