package mac

import (
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// newFoldHarness is newHarness with a caller-supplied MAC config, so
// the differential tests below can cross DisableFold against the
// default folding build on an otherwise identical world.
func newFoldHarness(t *testing.T, cfg Config, rangeM float64, positions []geom.Point) *harness {
	t.Helper()
	h := &harness{
		sched: sim.NewScheduler(),
		rxs:   make([][]received, len(positions)),
		dones: make([][]sendDone, len(positions)),
	}
	h.medium = radio.NewMedium(h.sched, radio.Params{Range: rangeM})
	rng := sim.NewRNG(1234)
	for i, p := range positions {
		i := i
		id := pkt.NodeID(i + 1)
		cb := Callbacks{
			OnReceive: func(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
				h.rxs[i] = append(h.rxs[i], received{p: p, from: from, broadcast: broadcast})
			},
			OnSendDone: func(p *pkt.Packet, to pkt.NodeID, ok bool) {
				h.dones[i] = append(h.dones[i], sendDone{p: p, to: to, ok: ok})
			},
		}
		m, err := New(h.sched, rng.Derive(id.String()), h.medium, id,
			mobility.Static{P: p}, cfg, cb)
		if err != nil {
			t.Fatal(err)
		}
		h.macs = append(h.macs, m)
	}
	return h
}

// stepToBackoff advances the run until d is mid-contention with a live
// backoff step, and returns that step's queue deadline.
func stepToBackoff(t *testing.T, h *harness, d *DCF) sim.Time {
	t.Helper()
	for {
		if d.inflight != nil && d.stepKind == stepBackoff && !d.step.IsZero() && !d.step.Done() {
			return d.step.At()
		}
		if _, done := h.sched.RunAll(1); done {
			t.Fatal("run drained before a backoff step was armed")
		}
	}
}

// TestFoldPostponedCountdownElidesHop drives the fold end to end: a
// proven busy onset mid-countdown postpones the backoff step in place,
// the kernel re-enqueues the hop without firing it (one elided event),
// and the wake at the proven-idle instant proceeds straight to a fresh
// countdown — no re-probe, no extra events, delivery unchanged.
func TestFoldPostponedCountdownElidesHop(t *testing.T) {
	h := newFoldHarness(t, DefaultConfig(), 100, []geom.Point{{X: 0}, {X: 50}})
	d := h.macs[0]
	if !d.Send(testPacket(1, 2), 2) {
		t.Fatal("queue refused packet")
	}
	exp := stepToBackoff(t, h, d)
	if !d.folding || !d.foldOK {
		t.Fatalf("folding=%v foldOK=%v, want an armed fold on a static node", d.folding, d.foldOK)
	}

	// A neighbour's transmission, provably heard, ends shortly after
	// our countdown would have expired.
	end := exp + 200*time.Microsecond
	d.CarrierOnset(end, true)
	if d.foldVK != end || !d.foldOK {
		t.Fatalf("after proven onset: foldVK=%v foldOK=%v, want vk=%v and fold intact",
			d.foldVK, d.foldOK, end)
	}
	if d.stepKind != stepDeferWake {
		t.Fatal("postponed countdown did not flip to a defer wake")
	}
	if d.step.At() != exp {
		t.Fatalf("queue deadline moved to %v on postpone, want it parked at %v until the hop", d.step.At(), exp)
	}

	h.sched.Run(h.sched.Now() + time.Second)
	if got := h.sched.Elided(); got != 1 {
		t.Fatalf("kernel elided %d hops, want exactly 1 for the postponed countdown", got)
	}
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("send outcome %+v, want one acknowledged completion", h.dones[0])
	}
}

// TestLateAckMidFoldedCountdown is the cancel race the fold must not
// break: the step is postponed (its queue entry still parked at the
// original deadline) when a late ACK lands and elideStep cancels it.
// The elision must count against the original queue deadline — the
// position the eager chain's timer held — not the postpone target,
// or horizon accounting would drift.
func TestLateAckMidFoldedCountdown(t *testing.T) {
	h := newFoldHarness(t, DefaultConfig(), 100, []geom.Point{{X: 0}, {X: 5000}})
	d := h.macs[0]
	if !d.Send(testPacket(1, 2), 2) {
		t.Fatal("queue refused packet")
	}
	for {
		if _, done := h.sched.RunAll(1); done {
			t.Fatal("run drained before a retry re-entered contention")
		}
		if d.inflight != nil && d.inflight.attempt > 0 &&
			d.stepKind == stepBackoff && !d.step.IsZero() && !d.step.Done() {
			break
		}
	}
	exp := d.step.At()
	d.CarrierOnset(exp+time.Millisecond, true)
	if d.stepKind != stepDeferWake || d.step.At() != exp {
		t.Fatalf("onset did not postpone in place: kind=%v at=%v want deadline %v",
			d.stepKind, d.step.At(), exp)
	}

	attempts := uint64(d.inflight.attempt)
	before := d.Stats().ElidedEvents
	d.onRadio(frame{kind: frameAck, src: 2, dst: 1, seq: d.inflight.frm.seq}, 2, true)
	if got := d.Stats().ElidedEvents; got != before+1 {
		t.Fatalf("late ACK mid-fold elided %d events (had %d), want exactly one more", got, before)
	}
	if d.inflight != nil {
		t.Fatal("late ACK did not complete the frame")
	}
	if !d.step.IsZero() {
		t.Fatal("elideStep left the postponed step handle live")
	}
	_ = attempts
	h.sched.Run(h.sched.Now() + time.Second)
	if h.sched.Elided() != 0 {
		t.Fatalf("cancelled fold still elided %d kernel hops, want 0 — the entry must die as a tombstone",
			h.sched.Elided())
	}
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("send outcome %+v, want one acknowledged completion", h.dones[0])
	}
}

// TestUnprovenOnsetRestoresCountdown: a band-region (unproven) onset
// invalidates the fold. An already-issued postpone must be revoked so
// the step fires at its original queue position and re-probes exactly
// as the reference chain would — zero kernel hops elided.
func TestUnprovenOnsetRestoresCountdown(t *testing.T) {
	h := newFoldHarness(t, DefaultConfig(), 100, []geom.Point{{X: 0}, {X: 50}})
	d := h.macs[0]
	if !d.Send(testPacket(1, 2), 2) {
		t.Fatal("queue refused packet")
	}
	exp := stepToBackoff(t, h, d)
	d.CarrierOnset(exp+500*time.Microsecond, true)
	if d.stepKind != stepDeferWake {
		t.Fatal("proven onset did not postpone the countdown")
	}
	d.CarrierOnset(exp+time.Millisecond, false)
	if d.foldOK {
		t.Fatal("unproven onset left the fold armed")
	}
	h.sched.Run(h.sched.Now() + time.Second)
	if got := h.sched.Elided(); got != 0 {
		t.Fatalf("revoked postpone still elided %d hops, want 0 — Unpostpone must restore the original fire",
			got)
	}
	if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
		t.Fatalf("send outcome %+v, want one acknowledged completion", h.dones[0])
	}
}

// TestOnsetAtExactExpiryInstant pins both seq orders of the tightest
// race: a busy onset landing on the very instant the folded countdown
// expires. Onset processed first → the hop is elided and the wake
// slides to the busy end. Pop processed first → the countdown fires
// proven-idle and transmits; the onset then finds no foldable step and
// must be a no-op. Both orders must complete delivery with exact
// accounting.
func TestOnsetAtExactExpiryInstant(t *testing.T) {
	t.Run("onset-before-pop", func(t *testing.T) {
		h := newFoldHarness(t, DefaultConfig(), 100, []geom.Point{{X: 0}, {X: 50}})
		d := h.macs[0]
		if !d.Send(testPacket(1, 2), 2) {
			t.Fatal("queue refused packet")
		}
		exp := stepToBackoff(t, h, d)
		// The onset's event executes at exp with an earlier seq than the
		// step's pop; its busy period extends past the expiry.
		d.CarrierOnset(exp+300*time.Microsecond, true)
		h.sched.Run(h.sched.Now() + time.Second)
		if got := h.sched.Elided(); got != 1 {
			t.Fatalf("onset-before-pop elided %d hops, want 1", got)
		}
		if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
			t.Fatalf("send outcome %+v, want one acknowledged completion", h.dones[0])
		}
	})
	t.Run("pop-before-onset", func(t *testing.T) {
		h := newFoldHarness(t, DefaultConfig(), 100, []geom.Point{{X: 0}, {X: 50}})
		d := h.macs[0]
		if !d.Send(testPacket(1, 2), 2) {
			t.Fatal("queue refused packet")
		}
		exp := stepToBackoff(t, h, d)
		// Drive the run up to and THROUGH the pop at exp, then deliver
		// the same-instant onset after it — the later-seq order.
		for h.sched.Now() < exp {
			if _, done := h.sched.RunAll(1); done {
				break
			}
		}
		d.CarrierOnset(exp+300*time.Microsecond, true)
		h.sched.Run(h.sched.Now() + time.Second)
		if got := h.sched.Elided(); got != 0 {
			t.Fatalf("pop-before-onset elided %d hops, want 0 — the countdown fired first", got)
		}
		if len(h.dones[0]) != 1 || !h.dones[0][0].ok {
			t.Fatalf("send outcome %+v, want one acknowledged completion", h.dones[0])
		}
	})
}

// TestFoldDifferentialSerial is the serial-vs-fold differential the CI
// race job runs: the identical contention workload with folding
// disabled and enabled must produce identical deliveries, identical
// completion outcomes, and an identical logical event total
// (processed + kernel hops + MAC elisions) — while the folded run
// demonstrably elides kernel hops.
func TestFoldDifferentialSerial(t *testing.T) {
	run := func(disable bool) (*harness, uint64) {
		cfg := DefaultConfig()
		cfg.DisableFold = disable
		h := newFoldHarness(t, cfg, 100, []geom.Point{{X: 0}, {X: 40}, {X: 80}})
		for i := 0; i < 5; i++ {
			h.macs[0].Send(testPacket(1, 3), 3)
			h.macs[2].Send(testPacket(3, 1), 1)
		}
		h.sched.Run(time.Second)
		total := h.sched.Processed() + h.sched.Elided()
		for _, m := range h.macs {
			total += m.Stats().ElidedEvents
		}
		return h, total
	}
	ref, refTotal := run(true)
	fold, foldTotal := run(false)

	if refTotal != foldTotal {
		t.Fatalf("logical event totals diverged: reference %d, folded %d", refTotal, foldTotal)
	}
	if fold.sched.Elided() == 0 {
		t.Fatal("folded run elided no kernel hops: the differential is vacuous")
	}
	if ref.sched.Processed() <= fold.sched.Processed() {
		t.Fatalf("folding did not reduce processed events: reference %d, folded %d",
			ref.sched.Processed(), fold.sched.Processed())
	}
	for i := range ref.macs {
		if len(ref.rxs[i]) != len(fold.rxs[i]) {
			t.Fatalf("node %d receptions diverged: reference %d, folded %d",
				i+1, len(ref.rxs[i]), len(fold.rxs[i]))
		}
		if len(ref.dones[i]) != len(fold.dones[i]) {
			t.Fatalf("node %d completions diverged: reference %d, folded %d",
				i+1, len(ref.dones[i]), len(fold.dones[i]))
		}
		for j := range ref.dones[i] {
			if ref.dones[i][j].ok != fold.dones[i][j].ok {
				t.Fatalf("node %d completion %d outcome diverged", i+1, j)
			}
		}
		rs, fs := ref.macs[i].Stats(), fold.macs[i].Stats()
		if rs.Delivered != fs.Delivered || rs.Failures != fs.Failures ||
			rs.UnicastSent != fs.UnicastSent || rs.Retries != fs.Retries {
			t.Fatalf("node %d stats diverged: reference %+v, folded %+v", i+1, rs, fs)
		}
	}
}
