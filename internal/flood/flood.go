// Package flood implements plain flooding multicast, the approach of the
// paper's related work [13] (Ho et al., "Flooding for Reliable Multicast
// in Multi-Hop Ad-Hoc Networks") in its basic, non-hyper variant: every
// node rebroadcasts every data packet exactly once.
//
// It serves as a baseline for the ablation benchmarks: flooding is robust
// to mobility (no structures to repair) but generates a transmission per
// node per packet, congesting the medium exactly as the paper's related
// work section argues.
package flood

import (
	"errors"
	"time"

	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// Config parameterises the flooding protocol.
type Config struct {
	// RebroadcastJitter spreads rebroadcasts to avoid synchronised
	// collisions among neighbours (the classic broadcast-storm
	// mitigation).
	RebroadcastJitter time.Duration
	// CacheSize bounds the duplicate-suppression cache.
	CacheSize int
	// PayloadLen is the synthetic application payload size.
	PayloadLen uint16
	// RelayLifetime is how long a neighbour heard flooding data stays a
	// valid gossip walk link (see NextHops). Zero disables tracking.
	RelayLifetime time.Duration
}

// DefaultConfig returns flooding defaults matched to the paper's
// workload.
func DefaultConfig() Config {
	return Config{
		RebroadcastJitter: 10 * time.Millisecond,
		CacheSize:         1024,
		PayloadLen:        64,
		RelayLifetime:     10 * time.Second,
	}
}

// DeliverFunc consumes data packets delivered to a member application.
type DeliverFunc func(group pkt.GroupID, d *pkt.Data, from pkt.NodeID)

// Stats counts flooding activity at one node.
type Stats struct {
	DataSent        uint64
	DataDelivered   uint64
	DataRebroadcast uint64
	DataDuplicates  uint64
}

// Router is one node's flooding entity.
type Router struct {
	cfg   Config
	stack *node.Stack
	sched runtime.Clock
	rng   *sim.RNG

	members map[pkt.GroupID]bool
	seen    map[pkt.SeqKey]struct{}
	order   []pkt.SeqKey
	next    int
	seq     uint32

	// relays maps neighbours recently heard transmitting data to the
	// expiry of that evidence. Flooding keeps no routing structure, so
	// these data-plane links are the walkable substrate a gossip
	// recovery layer biases its anonymous walks over. Recording only
	// happens once trackRelays is set (a recovery layer took the
	// substrate); bare flooding pays nothing on the data hot path.
	relays      map[pkt.NodeID]sim.Time
	trackRelays bool

	subs  []DeliverFunc
	stats Stats
}

// New builds a flooding router bound to the node stack.
func New(st *node.Stack, rng *sim.RNG, cfg Config) *Router {
	r := &Router{
		cfg:     cfg,
		stack:   st,
		sched:   st.Clock(),
		rng:     rng,
		members: make(map[pkt.GroupID]bool),
		seen:    make(map[pkt.SeqKey]struct{}, cfg.CacheSize),
		relays:  make(map[pkt.NodeID]sim.Time),
	}
	st.Handle(pkt.KindData, r.onData)
	return r
}

// OnDeliver subscribes to member deliveries.
func (r *Router) OnDeliver(fn DeliverFunc) { r.subs = append(r.subs, fn) }

// Stats returns a copy of the counters.
func (r *Router) Stats() Stats { return r.stats }

// Join registers group membership (delivery only; flooding needs no
// routing state).
func (r *Router) Join(g pkt.GroupID) { r.members[g] = true }

// Leave revokes membership.
func (r *Router) Leave(g pkt.GroupID) { delete(r.members, g) }

// IsMember reports membership.
func (r *Router) IsMember(g pkt.GroupID) bool { return r.members[g] }

// ErrNotMember reports a SendData call from a non-member.
var ErrNotMember = errors.New("flood: node is not a member of the group")

// SendData floods one application payload to the group.
func (r *Router) SendData(g pkt.GroupID) (pkt.SeqKey, error) {
	if !r.members[g] {
		return pkt.SeqKey{}, ErrNotMember
	}
	r.seq++
	d := &pkt.Data{Group: g, Origin: r.stack.ID(), Seq: r.seq, PayloadLen: r.cfg.PayloadLen}
	r.note(d.Key())
	r.stats.DataSent++
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, d))
	return d.Key(), nil
}

func (r *Router) onData(p *pkt.Packet, from pkt.NodeID) {
	d, ok := p.Body.(*pkt.Data)
	if !ok {
		return
	}
	if r.trackRelays && r.cfg.RelayLifetime > 0 && from != r.stack.ID() {
		r.relays[from] = r.sched.Now() + r.cfg.RelayLifetime
	}
	if _, dup := r.seen[d.Key()]; dup {
		r.stats.DataDuplicates++
		return
	}
	r.note(d.Key())

	if r.members[d.Group] {
		r.stats.DataDelivered++
		for _, fn := range r.subs {
			fn(d.Group, d, from)
		}
	}
	if p.TTL <= 1 {
		return
	}
	cp := p.Clone()
	cp.TTL--
	r.stats.DataRebroadcast++
	r.sched.After(r.rng.Duration(r.cfg.RebroadcastJitter), func() {
		r.stack.SendBroadcast(cp)
	})
}

func (r *Router) note(k pkt.SeqKey) {
	if len(r.order) < r.cfg.CacheSize {
		r.order = append(r.order, k)
	} else {
		delete(r.seen, r.order[r.next])
		r.order[r.next] = k
		r.next = (r.next + 1) % r.cfg.CacheSize
	}
	r.seen[k] = struct{}{}
}
