package flood

import (
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

const group pkt.GroupID = 0xE0000001

type fworld struct {
	sched     *sim.Scheduler
	routers   []*Router
	delivered []int
}

// nullRouter satisfies node.UnicastRouter for flooding-only stacks.
type nullRouter struct{}

func (nullRouter) NextHop(pkt.NodeID) (pkt.NodeID, bool) { return 0, false }
func (nullRouter) QueueForRoute(*pkt.Packet)             {}

func buildF(t *testing.T, positions []geom.Point, members []int) *fworld {
	t.Helper()
	w := &fworld{sched: sim.NewScheduler(), delivered: make([]int, len(positions))}
	medium := radio.NewMedium(w.sched, radio.Params{Range: 60})
	rng := sim.NewRNG(5)
	isMember := map[int]bool{}
	for _, m := range members {
		isMember[m] = true
	}
	for i, p := range positions {
		i := i
		id := pkt.NodeID(i + 1)
		st, err := node.New(w.sched, rng.Derive(id.String()), medium, id,
			mobility.Static{P: p}, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		st.SetRouter(nullRouter{})
		r := New(st, rng.Derive("f/"+id.String()), DefaultConfig())
		if isMember[i] {
			r.Join(group)
		}
		r.OnDeliver(func(pkt.GroupID, *pkt.Data, pkt.NodeID) { w.delivered[i]++ })
		w.routers = append(w.routers, r)
	}
	return w
}

func line(n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: float64(i) * 50}
	}
	return out
}

func TestFloodReachesAllMembers(t *testing.T) {
	w := buildF(t, line(5), []int{0, 2, 4})
	w.sched.After(time.Second, func() {
		if _, err := w.routers[0].SendData(group); err != nil {
			t.Errorf("SendData: %v", err)
		}
	})
	w.sched.Run(5 * time.Second)

	if w.delivered[2] != 1 || w.delivered[4] != 1 {
		t.Fatalf("deliveries = %v, want members 3 and 5 to get 1", w.delivered)
	}
	// Non-members relay but do not deliver.
	if w.delivered[1] != 0 || w.delivered[3] != 0 {
		t.Fatalf("non-members delivered: %v", w.delivered)
	}
	if w.routers[1].Stats().DataRebroadcast == 0 {
		t.Fatal("relay never rebroadcast")
	}
}

func TestFloodEveryNodeRebroadcastsOnce(t *testing.T) {
	w := buildF(t, line(4), []int{0, 3})
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	w.sched.Run(5 * time.Second)

	for i := 1; i < 4; i++ {
		if got := w.routers[i].Stats().DataRebroadcast; got != 1 {
			t.Fatalf("node %d rebroadcast %d times, want 1", i+1, got)
		}
	}
}

func TestFloodDuplicateSuppression(t *testing.T) {
	// A triangle: every node hears every other, so each packet arrives
	// twice at each non-source node.
	w := buildF(t, []geom.Point{{X: 0}, {X: 40}, {X: 20, Y: 30}}, []int{0, 1, 2})
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	w.sched.Run(5 * time.Second)

	if w.delivered[1] != 1 || w.delivered[2] != 1 {
		t.Fatalf("deliveries = %v, want exactly 1 each", w.delivered)
	}
	dups := w.routers[1].Stats().DataDuplicates + w.routers[2].Stats().DataDuplicates
	if dups == 0 {
		t.Fatal("no duplicates recorded in a triangle")
	}
}

func TestFloodRequiresMembership(t *testing.T) {
	w := buildF(t, line(1), nil)
	if _, err := w.routers[0].SendData(group); err == nil {
		t.Fatal("non-member SendData succeeded")
	}
}

func TestFloodLeave(t *testing.T) {
	w := buildF(t, line(2), []int{0, 1})
	w.routers[1].Leave(group)
	w.sched.After(time.Second, func() { _, _ = w.routers[0].SendData(group) })
	w.sched.Run(3 * time.Second)
	if w.delivered[1] != 0 {
		t.Fatal("left member still delivered")
	}
	if w.routers[1].IsMember(group) {
		t.Fatal("IsMember true after Leave")
	}
}

func TestFloodCacheBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSize = 4
	sched := sim.NewScheduler()
	medium := radio.NewMedium(sched, radio.Params{Range: 60})
	rng := sim.NewRNG(1)
	st, err := node.New(sched, rng, medium, 1, mobility.Static{}, mac.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st.SetRouter(nullRouter{})
	r := New(st, rng.Derive("f"), cfg)
	r.Join(group)
	sched.After(0, func() {
		for i := 0; i < 20; i++ {
			_, _ = r.SendData(group)
		}
	})
	sched.Run(time.Second)
	if len(r.seen) > 4 || len(r.order) > 4 {
		t.Fatalf("cache grew past bound: %d/%d", len(r.seen), len(r.order))
	}
}
