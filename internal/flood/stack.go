package flood

import (
	"fmt"
	"slices"

	"anongossip/internal/gossip"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/stack"
)

// The "flood" routing axis: plain flooding, the related-work baseline.
// Composing it with a recovery layer (flood+gossip) is the combination
// the old Protocol enum could not express.
func init() { stack.RegisterRouting(stackBuilder{}) }

type stackBuilder struct{}

func (stackBuilder) Name() string { return "flood" }

func (stackBuilder) Build(env stack.Env) stack.RoutingNode {
	cfg := stack.Param(env.Params, "flood", DefaultConfig)
	fr := New(env.Stack, env.RNG.Derive(fmt.Sprintf("flood/%d", env.Index)), cfg)
	// Flooding needs no unicast routing; a recovery layer that does
	// (gossip replies are unicast) installs AODV over this.
	env.Stack.SetRouter(node.NullRouter{})
	return &stackNode{r: fr, payload: cfg.PayloadLen}
}

// stackNode adapts a Router to stack.RoutingNode.
type stackNode struct {
	r       *Router
	payload uint16
}

func (n *stackNode) Join(g pkt.GroupID)                         { n.r.Join(g) }
func (n *stackNode) SendData(g pkt.GroupID) (pkt.SeqKey, error) { return n.r.SendData(g) }
func (n *stackNode) Delivered() uint64                          { return n.r.Stats().DataDelivered }
func (n *stackNode) PayloadLen() uint16                         { return n.payload }
func (n *stackNode) Start()                                     {}

func (n *stackNode) OnDeliver(fn func(g pkt.GroupID, d *pkt.Data)) {
	n.r.OnDeliver(func(g pkt.GroupID, d *pkt.Data, _ pkt.NodeID) { fn(g, d) })
}

// GossipTree exposes the relay table as an AG walk substrate, switching
// relay tracking on for this node.
func (n *stackNode) GossipTree() gossip.Tree {
	n.r.trackRelays = true
	return relayTree{n.r}
}

// relayTree adapts the Router's data-plane relay table to gossip.Tree.
// Flooding has no tree and no nearest-member machinery, so next hops
// advertise unknown distances and the walk degrades to uniform choice
// over recently-heard relays — the same degradation ODMRP's mesh has.
type relayTree struct{ r *Router }

func (t relayTree) NextHops(_ pkt.GroupID) []gossip.NextHop {
	now := t.r.sched.Now()
	ids := make([]pkt.NodeID, 0, len(t.r.relays))
	for id, expiry := range t.r.relays {
		if expiry <= now {
			delete(t.r.relays, id)
			continue
		}
		ids = append(ids, id)
	}
	// Map order is random; the walk draws from this slice with the
	// node's own RNG, so the order must be deterministic.
	slices.Sort(ids)
	out := make([]gossip.NextHop, len(ids))
	for i, id := range ids {
		out[i] = gossip.NextHop{ID: id, Nearest: pkt.NearestUnknown}
	}
	return out
}

func (t relayTree) IsMember(g pkt.GroupID) bool { return t.r.IsMember(g) }
