package flood

import (
	"testing"
	"time"

	"anongossip/internal/pkt"
)

// TestRelayTreeTracksAndExpires exercises the gossip walk substrate the
// flood+gossip stack runs over: nodes heard flooding data become walk
// links (deterministically ordered, unknown distance) and expire
// RelayLifetime after the last frame.
func TestRelayTreeTracksAndExpires(t *testing.T) {
	w := buildF(t, line(3), []int{0, 2})
	for _, r := range w.routers {
		r.trackRelays = true // as GossipTree() would when a recovery layer binds
	}
	w.sched.After(time.Second, func() {
		if _, err := w.routers[0].SendData(group); err != nil {
			t.Errorf("SendData: %v", err)
		}
	})
	w.sched.Run(3 * time.Second)

	tree := relayTree{w.routers[1]}
	hops := tree.NextHops(group)
	if len(hops) == 0 {
		t.Fatal("middle node heard data but exposes no relay links")
	}
	for i, h := range hops {
		if h.Nearest != pkt.NearestUnknown {
			t.Fatalf("relay %v advertises distance %d, want NearestUnknown", h.ID, h.Nearest)
		}
		if i > 0 && hops[i-1].ID >= h.ID {
			t.Fatalf("relay links not sorted by node ID: %v", hops)
		}
	}
	if tree.IsMember(group) {
		t.Fatal("non-member relay claims membership")
	}
	if !(relayTree{w.routers[2]}).IsMember(group) {
		t.Fatal("member denies membership")
	}

	// Links expire RelayLifetime after the last heard frame.
	w.sched.Run(w.sched.Now() + w.routers[1].cfg.RelayLifetime + time.Second)
	if left := tree.NextHops(group); len(left) != 0 {
		t.Fatalf("relay links survived expiry: %v", left)
	}
	if len(w.routers[1].relays) != 0 {
		t.Fatalf("expired relays not pruned: %v", w.routers[1].relays)
	}
}

// TestRelayTrackingDisabled checks the substrate stays off until a
// recovery layer takes it (bare flooding pays nothing on the data hot
// path).
func TestRelayTrackingDisabled(t *testing.T) {
	w := buildF(t, line(3), []int{0, 2})
	w.sched.After(time.Second, func() {
		if _, err := w.routers[0].SendData(group); err != nil {
			t.Errorf("SendData: %v", err)
		}
	})
	w.sched.Run(3 * time.Second)
	for i, r := range w.routers {
		if len(r.relays) != 0 {
			t.Fatalf("node %d tracked relays with tracking disabled: %v", i, r.relays)
		}
	}
}
