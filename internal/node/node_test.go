package node

import (
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

// staticRouter is a fixed next-hop table for tests.
type staticRouter struct {
	table  map[pkt.NodeID]pkt.NodeID
	queued []*pkt.Packet
}

func (r *staticRouter) NextHop(dst pkt.NodeID) (pkt.NodeID, bool) {
	nh, ok := r.table[dst]
	return nh, ok
}

func (r *staticRouter) QueueForRoute(p *pkt.Packet) { r.queued = append(r.queued, p) }

type env struct {
	sched   *sim.Scheduler
	medium  *radio.Medium
	stacks  []*Stack
	routers []*staticRouter
}

// line builds n stacks spaced 50 m apart with 60 m radio range, so each
// node only reaches its immediate neighbours.
func line(t *testing.T, n int) *env {
	t.Helper()
	e := &env{sched: sim.NewScheduler()}
	e.medium = radio.NewMedium(e.sched, radio.Params{Range: 60})
	rng := sim.NewRNG(99)
	for i := 0; i < n; i++ {
		id := pkt.NodeID(i + 1)
		st, err := New(e.sched, rng, e.medium, id,
			mobility.Static{P: geom.Point{X: float64(i) * 50}}, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r := &staticRouter{table: map[pkt.NodeID]pkt.NodeID{}}
		st.SetRouter(r)
		e.stacks = append(e.stacks, st)
		e.routers = append(e.routers, r)
	}
	return e
}

func hello(src, dst pkt.NodeID) *pkt.Packet { return pkt.NewPacket(src, dst, &pkt.Hello{Seq: 5}) }

func TestBroadcastDispatch(t *testing.T) {
	e := line(t, 3)
	var got []pkt.NodeID
	e.stacks[1].Handle(pkt.KindHello, func(p *pkt.Packet, from pkt.NodeID) {
		got = append(got, from)
	})
	e.sched.After(0, func() { e.stacks[0].SendBroadcast(hello(1, pkt.Broadcast)) })
	e.sched.Run(time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("handler calls = %v, want [1]", got)
	}
	// Node 3 is out of range of node 1 and has no handler anyway.
	if e.stacks[2].Stats().Delivered != 0 {
		t.Fatal("out-of-range node delivered a packet")
	}
}

func TestTransparentForwarding(t *testing.T) {
	e := line(t, 3)
	// Routes: everyone reaches node 3 via the line.
	e.routers[0].table[3] = 2
	e.routers[1].table[3] = 3

	var deliveredTTL uint8
	e.stacks[2].Handle(pkt.KindHello, func(p *pkt.Packet, from pkt.NodeID) {
		deliveredTTL = p.TTL
		if from != 2 {
			t.Errorf("previous hop = %v, want 2", from)
		}
	})
	orig := hello(1, 3)
	e.sched.After(0, func() { e.stacks[0].SendUnicast(orig) })
	e.sched.Run(time.Second)

	if deliveredTTL == 0 {
		t.Fatal("packet not delivered")
	}
	if deliveredTTL != pkt.DefaultTTL-1 {
		t.Fatalf("delivered TTL = %d, want %d", deliveredTTL, pkt.DefaultTTL-1)
	}
	if orig.TTL != pkt.DefaultTTL {
		t.Fatal("forwarding mutated the sender's packet (missing clone)")
	}
	if e.stacks[1].Stats().Forwarded != 1 {
		t.Fatalf("middle node Forwarded = %d, want 1", e.stacks[1].Stats().Forwarded)
	}
}

func TestLocalDelivery(t *testing.T) {
	e := line(t, 1)
	got := 0
	e.stacks[0].Handle(pkt.KindHello, func(p *pkt.Packet, from pkt.NodeID) { got++ })
	e.sched.After(0, func() { e.stacks[0].SendUnicast(hello(1, 1)) })
	e.sched.Run(time.Second)
	if got != 1 {
		t.Fatalf("local delivery count = %d, want 1", got)
	}
}

func TestNoRouteQueues(t *testing.T) {
	e := line(t, 2)
	p := hello(1, 9)
	e.sched.After(0, func() { e.stacks[0].SendUnicast(p) })
	e.sched.Run(time.Second)
	if len(e.routers[0].queued) != 1 || e.routers[0].queued[0] != p {
		t.Fatalf("queued = %v, want the unrouted packet", e.routers[0].queued)
	}
}

func TestTTLExpiry(t *testing.T) {
	e := line(t, 3)
	e.routers[0].table[3] = 2
	e.routers[1].table[3] = 3
	e.stacks[2].Handle(pkt.KindHello, func(p *pkt.Packet, from pkt.NodeID) {
		t.Error("TTL-1 packet should not survive a second hop")
	})
	p := hello(1, 3)
	p.TTL = 1
	e.sched.After(0, func() { e.stacks[0].SendUnicast(p) })
	e.sched.Run(time.Second)
	if e.stacks[1].Stats().TTLDrops != 1 {
		t.Fatalf("middle node TTLDrops = %d, want 1", e.stacks[1].Stats().TTLDrops)
	}
}

func TestHeardSubscription(t *testing.T) {
	e := line(t, 2)
	var heard []pkt.NodeID
	e.stacks[1].OnHeard(func(n pkt.NodeID) { heard = append(heard, n) })
	e.sched.After(0, func() { e.stacks[0].SendBroadcast(hello(1, pkt.Broadcast)) })
	e.sched.Run(time.Second)
	if len(heard) != 1 || heard[0] != 1 {
		t.Fatalf("heard = %v, want [1]", heard)
	}
}

func TestLinkFailureSubscription(t *testing.T) {
	e := line(t, 2)
	var failedTo []pkt.NodeID
	e.stacks[0].OnLinkFailure(func(n pkt.NodeID, p *pkt.Packet) {
		failedTo = append(failedTo, n)
	})
	// Node 9 does not exist: MAC retries then fails.
	e.sched.After(0, func() { e.stacks[0].SendDirect(9, hello(1, 9)) })
	e.sched.Run(10 * time.Second)
	if len(failedTo) != 1 || failedTo[0] != 9 {
		t.Fatalf("failure notifications = %v, want [9]", failedTo)
	}
}

func TestBroadcastSendDoneNoFailure(t *testing.T) {
	e := line(t, 1) // no neighbours at all
	e.stacks[0].OnLinkFailure(func(n pkt.NodeID, p *pkt.Packet) {
		t.Error("broadcast must not produce link failures")
	})
	e.sched.After(0, func() { e.stacks[0].SendBroadcast(hello(1, pkt.Broadcast)) })
	e.sched.Run(time.Second)
}

func TestDuplicateHandlerPanics(t *testing.T) {
	e := line(t, 1)
	e.stacks[0].Handle(pkt.KindHello, func(*pkt.Packet, pkt.NodeID) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	e.stacks[0].Handle(pkt.KindHello, func(*pkt.Packet, pkt.NodeID) {})
}

func TestNoHandlerCounted(t *testing.T) {
	e := line(t, 2)
	e.sched.After(0, func() { e.stacks[0].SendBroadcast(hello(1, pkt.Broadcast)) })
	e.sched.Run(time.Second)
	if e.stacks[1].Stats().NoHandler != 1 {
		t.Fatalf("NoHandler = %d, want 1", e.stacks[1].Stats().NoHandler)
	}
}

func TestByteAccountingSplitsControlAndPayload(t *testing.T) {
	e := line(t, 2)
	data := pkt.NewPacket(1, pkt.Broadcast, &pkt.Data{Group: 1, Origin: 1, Seq: 1, PayloadLen: 64})
	ctl := hello(1, pkt.Broadcast)
	e.sched.After(0, func() {
		e.stacks[0].SendBroadcast(data)
		e.stacks[0].SendBroadcast(ctl)
	})
	e.sched.Run(time.Second)
	st := e.stacks[0].Stats()
	if st.PayloadBytes != uint64(data.WireSize()) {
		t.Fatalf("PayloadBytes = %d, want %d", st.PayloadBytes, data.WireSize())
	}
	if st.ControlBytes != uint64(ctl.WireSize()) {
		t.Fatalf("ControlBytes = %d, want %d", st.ControlBytes, ctl.WireSize())
	}
}

func TestSendUnicastBroadcastDst(t *testing.T) {
	e := line(t, 2)
	got := 0
	e.stacks[1].Handle(pkt.KindHello, func(*pkt.Packet, pkt.NodeID) { got++ })
	e.sched.After(0, func() { e.stacks[0].SendUnicast(hello(1, pkt.Broadcast)) })
	e.sched.Run(time.Second)
	if got != 1 {
		t.Fatalf("broadcast-dst unicast deliveries = %d, want 1", got)
	}
}
