// Package node provides the per-node network layer: protocol dispatch by
// packet kind, transparent unicast forwarding through a pluggable routing
// table (AODV in this reproduction), one-hop broadcast, and the
// link-failure / neighbour-activity signals the routing protocols consume.
//
// The layer is runtime-agnostic: it programs against runtime.Runtime
// (clock, timers, one-hop send, identity), so the same stack — and every
// protocol engine above it — runs over the simulated MAC/radio
// (runtime/simrt) and over live transports (runtime/netrt) unchanged.
package node

import (
	"fmt"

	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	rt "anongossip/internal/runtime"
	"anongossip/internal/runtime/simrt"
	"anongossip/internal/sim"
	"anongossip/internal/trace"
)

// Handler processes a packet delivered to this node. from is the previous
// hop (the MAC-level transmitter).
type Handler func(p *pkt.Packet, from pkt.NodeID)

// UnicastRouter supplies next hops for transparently forwarded unicast
// packets and absorbs packets that need route discovery first.
type UnicastRouter interface {
	// NextHop returns the neighbour to forward a packet for dst through.
	NextHop(dst pkt.NodeID) (pkt.NodeID, bool)
	// QueueForRoute takes ownership of a packet that has no route,
	// typically starting a route discovery and re-sending or dropping it
	// later.
	QueueForRoute(p *pkt.Packet)
}

// NullRouter is a UnicastRouter for stacks without unicast routing: it
// never has a next hop and silently drops packets queued for discovery.
type NullRouter struct{}

// NextHop reports no route.
func (NullRouter) NextHop(pkt.NodeID) (pkt.NodeID, bool) { return 0, false }

// QueueForRoute drops the packet.
func (NullRouter) QueueForRoute(*pkt.Packet) {}

// Stats counts network-layer activity at one node.
type Stats struct {
	// Sent counts locally originated packets handed to the MAC.
	Sent uint64
	// Forwarded counts transparently forwarded unicast packets.
	Forwarded uint64
	// Delivered counts packets handed to protocol handlers.
	Delivered uint64
	// TTLDrops counts packets discarded for TTL exhaustion.
	TTLDrops uint64
	// NoHandler counts packets with no registered protocol handler.
	NoHandler uint64
	// MACRejects counts packets the MAC queue refused.
	MACRejects uint64
	// ControlBytes and PayloadBytes split transmitted network-layer bytes
	// into control overhead vs data/gossip-carried payloads (pkt.Kind
	// classification).
	ControlBytes uint64
	PayloadBytes uint64
}

// Stack is one node's network layer. It is assembled over any
// runtime.Runtime — see NewOnRuntime — and never inspects which one.
type Stack struct {
	id pkt.NodeID
	rt rt.Runtime

	router   UnicastRouter
	handlers map[pkt.Kind]Handler

	heardSubs []func(neighbor pkt.NodeID)
	failSubs  []func(neighbor pkt.NodeID, p *pkt.Packet)

	tracer func(trace.Event)

	stats Stats
}

// NewOnRuntime builds a node stack over an assembled runtime, binding
// the stack's receive and send-completion handlers to it. This is the
// constructor both the simulated and the live paths share.
func NewOnRuntime(runtime rt.Runtime) *Stack {
	s := &Stack{
		id:       runtime.ID(),
		rt:       runtime,
		handlers: make(map[pkt.Kind]Handler),
	}
	runtime.Bind(s.onReceive, s.onSendDone)
	return s
}

// New builds a node stack on the simulation kernel, attaching a MAC
// entity on medium for node id (the runtime/simrt path). It fails when
// the medium already has a transceiver for id — a misconfigured
// scenario (duplicate node IDs) must fail loudly rather than silently
// sharing a radio.
func New(sched *sim.Scheduler, rng *sim.RNG, medium *radio.Medium, id pkt.NodeID,
	pos mobility.Model, macCfg mac.Config) (*Stack, error) {
	runtime, err := simrt.New(sched, rng, medium, id, pos, macCfg)
	if err != nil {
		return nil, err
	}
	return NewOnRuntime(runtime), nil
}

// ID returns the node's address.
func (s *Stack) ID() pkt.NodeID { return s.id }

// Clock exposes the runtime's clock and timer surface to protocols.
func (s *Stack) Clock() rt.Clock { return s.rt }

// Stats returns a copy of the network-layer counters.
func (s *Stack) Stats() Stats { return s.stats }

// SetRouter installs the unicast routing protocol. It must be called
// before any SendUnicast.
func (s *Stack) SetRouter(r UnicastRouter) { s.router = r }

// Handle registers the protocol handler for a packet kind. Registering a
// kind twice panics: it indicates mis-wired protocols at construction
// time, never a runtime condition.
func (s *Stack) Handle(kind pkt.Kind, h Handler) {
	if _, dup := s.handlers[kind]; dup {
		panic(fmt.Sprintf("node: duplicate handler for %s", kind))
	}
	s.handlers[kind] = h
}

// OnHeard subscribes to neighbour-activity events: fn runs for every frame
// received from a neighbour (AODV refreshes its hello tracking with this).
func (s *Stack) OnHeard(fn func(neighbor pkt.NodeID)) {
	s.heardSubs = append(s.heardSubs, fn)
}

// OnLinkFailure subscribes to MAC retry-exhaustion events. fn receives the
// unreachable neighbour and the packet that failed.
func (s *Stack) OnLinkFailure(fn func(neighbor pkt.NodeID, p *pkt.Packet)) {
	s.failSubs = append(s.failSubs, fn)
}

// SetTracer installs a packet-event observer (see package trace). A nil
// tracer disables tracing.
func (s *Stack) SetTracer(fn func(trace.Event)) { s.tracer = fn }

func (s *Stack) traceEvent(op trace.Op, p *pkt.Packet, peer pkt.NodeID) {
	if s.tracer == nil {
		return
	}
	s.tracer(trace.Event{
		At:   s.rt.Now(),
		Node: s.id,
		Op:   op,
		Kind: p.Kind,
		Src:  p.Src,
		Dst:  p.Dst,
		Peer: peer,
		Size: p.WireSize(),
	})
}

// SendBroadcast transmits p to all neighbours (one hop). Flooding is a
// protocol concern: handlers rebroadcast explicitly.
func (s *Stack) SendBroadcast(p *pkt.Packet) {
	s.transmit(p, pkt.Broadcast, false)
}

// SendDirect transmits p to a known neighbour with MAC-level
// acknowledgement. Hop-by-hop protocols (RREP relaying, MACT activation,
// gossip walks) use this.
func (s *Stack) SendDirect(neighbor pkt.NodeID, p *pkt.Packet) {
	s.transmit(p, neighbor, false)
}

// SendUnicast routes p toward p.Dst. Packets for this node are delivered
// locally; packets without a route are handed to the router for
// discovery.
func (s *Stack) SendUnicast(p *pkt.Packet) {
	if p.Dst == s.id {
		s.deliver(p, s.id)
		return
	}
	if p.Dst == pkt.Broadcast {
		s.SendBroadcast(p)
		return
	}
	next, ok := s.router.NextHop(p.Dst)
	if !ok {
		s.router.QueueForRoute(p)
		return
	}
	s.transmit(p, next, false)
}

// Forward continues a transiting unicast packet toward its destination,
// decrementing TTL. It is also invoked by the router when a queued packet
// obtains its route.
func (s *Stack) Forward(p *pkt.Packet, forwarded bool) {
	if p.TTL == 0 {
		s.stats.TTLDrops++
		return
	}
	if forwarded {
		p = p.Clone()
		p.TTL--
	}
	if p.TTL == 0 {
		s.stats.TTLDrops++
		return
	}
	next, ok := s.router.NextHop(p.Dst)
	if !ok {
		s.router.QueueForRoute(p)
		return
	}
	s.transmit(p, next, forwarded)
}

func (s *Stack) transmit(p *pkt.Packet, linkDst pkt.NodeID, forwarded bool) {
	if !s.rt.Send(p, linkDst) {
		s.stats.MACRejects++
		return
	}
	if forwarded {
		s.stats.Forwarded++
		s.traceEvent(trace.OpForward, p, linkDst)
	} else {
		s.stats.Sent++
		s.traceEvent(trace.OpSend, p, linkDst)
	}
	size := uint64(p.WireSize())
	if p.Kind.IsControl() {
		s.stats.ControlBytes += size
	} else {
		s.stats.PayloadBytes += size
	}
}

func (s *Stack) onReceive(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
	for _, fn := range s.heardSubs {
		fn(from)
	}
	if broadcast || p.Dst == s.id || p.Dst == pkt.Broadcast {
		s.deliver(p, from)
		return
	}
	// Unicast in transit: forward transparently.
	s.Forward(p, true)
}

func (s *Stack) deliver(p *pkt.Packet, from pkt.NodeID) {
	h, ok := s.handlers[p.Kind]
	if !ok {
		s.stats.NoHandler++
		return
	}
	s.stats.Delivered++
	s.traceEvent(trace.OpDeliver, p, from)
	h(p, from)
}

func (s *Stack) onSendDone(p *pkt.Packet, to pkt.NodeID, ok bool) {
	if ok || to == pkt.Broadcast {
		return
	}
	for _, fn := range s.failSubs {
		fn(to, p)
	}
}
