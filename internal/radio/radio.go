// Package radio models the wireless channel: unit-disc propagation with a
// configurable transmission range (the paper sweeps 45–85 m), physical
// carrier sense, and an overlap-based collision model.
//
// The model captures the loss processes the paper's results depend on:
//
//   - two receptions overlapping in time at a receiver corrupt each other
//     (including the hidden-terminal case, where the two transmitters are
//     out of each other's range);
//   - a half-duplex node cannot receive while transmitting;
//   - a node senses the channel busy while any in-range node transmits.
//
// It deliberately omits SINR/capture effects: any overlap corrupts. This
// is the same granularity as GloMoSim's default no-capture configuration.
//
// Reception bookkeeping is pluggable (see ReceptionModel): the default
// batched model schedules one finish event per transmission and walks a
// per-frame receiver table; the reference model schedules one event per
// receiver. Both produce bit-identical simulations.
package radio

import (
	"errors"
	"fmt"
	"math"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// Params configures the channel.
type Params struct {
	// Range is the transmission (and carrier-sense) radius in metres.
	Range float64
	// Index selects the neighbour lookup strategy (default IndexGrid;
	// see IndexKind). Both strategies produce bit-identical simulations.
	Index IndexKind
	// Model selects the reception bookkeeping implementation (default
	// ModelBatch; see ReceptionModel). Both models produce bit-identical
	// simulations.
	Model ReceptionModel
}

// Stats aggregates channel-level counters for the whole medium.
type Stats struct {
	// Transmissions counts StartTx calls.
	Transmissions uint64
	// Deliveries counts receptions handed up intact.
	Deliveries uint64
	// Collisions counts receptions corrupted by overlap or half-duplex
	// conflicts.
	Collisions uint64
}

// Handler receives the outcome of a reception. frame is the value passed
// to StartTx; ok is false when the reception was corrupted.
type Handler func(frame any, from pkt.NodeID, ok bool)

// CarrierPredictWindow bounds how far ahead CarrierProbe's closure
// bound and CarrierOnset's proven classification remain valid: both
// account for node motion by inflating the carrier-sense radius by
// maxSpeed·CarrierPredictWindow, so a prediction about any instant
// within the window is conservative no matter how the node moves.
// Predictions past the window are unsound and callers must fall back
// to an exact read. 25 ms comfortably covers every MAC countdown (the
// longest is DIFS + CWMax slots ≈ 20.5 ms) while keeping the inflation
// small (25 cm at the experiments' fastest 10 m/s sweep, against a
// 45–85 m radius), so the uncertainty band stays rare.
const CarrierPredictWindow = 25 * time.Millisecond

// CarrierListener receives conservative channel-onset notifications —
// the radio-side half of the MAC's folded contention countdown
// (DESIGN.md §10). The medium invokes it during StartTx processing for
// every listener the new transmission could possibly reach within
// CarrierPredictWindow. proven means the listener is guaranteed to
// sense this carrier at every instant it could query before the window
// expires (the transmitter is at least maxSpeed·window inside the
// sensing radius); onsets from the surrounding uncertainty band arrive
// with proven == false and must invalidate any folded prediction.
// Listeners run inside StartTx — solo context under every scheduler —
// and may only touch their own node's state.
type CarrierListener interface {
	CarrierOnset(end sim.Time, proven bool)
}

// TxDone is the transmitter-side completion hook for StartTxNotify.
// TxDone runs when the transmission's finish processing completes — at
// the tail of the per-frame table walk under ModelBatch, after the
// retire event under ModelRef — which is exactly where a timer the
// transmitter armed for the airtime's end would run: the kernel
// allocates that timer's sequence number immediately after the finish
// events', so nothing can order between them. Folding the timer into
// the hook is therefore schedule-transparent; the MAC uses it to elide
// one event per data/RTS transmission (see mac.Stats.ElidedEvents).
// It is an interface rather than a func so callers can pass a
// long-lived receiver without allocating a closure per transmission.
type TxDone interface {
	TxDone()
}

// transmission is one frame on the air. Records are pooled by the
// medium: a transmission is recycled once its finish processing — the
// table walk under ModelBatch, the RemoveTx event under ModelRef — has
// completed, at which point nothing references it any more.
type transmission struct {
	from   *Transceiver
	frame  any
	start  sim.Time
	end    sim.Time
	origin geom.Point
	// indexID and slot are gridIndex bookkeeping (its txByID key and
	// position in its active slice); unused by the brute-force index.
	indexID int
	slot    int
	// recvs is the batched model's receiver table: one value entry per
	// in-range receiver, in attach order, built at StartTx and walked
	// by the single finish event. Unused by ModelRef, which tracks
	// receptions on the receivers instead. The slice's capacity
	// survives pooling, so steady-state transmissions allocate nothing.
	recvs []recvEntry
	// done is the transmitter's completion hook (StartTxNotify), invoked
	// after finish processing retires the transmission. Nil for plain
	// StartTx.
	done TxDone
}

// recvEntry is one receiver-table row: the receiver by attach index
// (indices, not pointers, keep the table a flat pointer-light value
// slice) plus the corruption verdict already known when the
// transmission started. Interference that happens while the frame is in
// the air is detected at finish time from the receiver's counters.
type recvEntry struct {
	rcv       int32
	corrupted bool
}

// reception tracks one frame arriving at one transceiver (ModelRef
// only; ModelBatch keeps value entries in transmission.recvs instead).
type reception struct {
	tx        *transmission
	corrupted bool
}

// Medium is the shared channel all transceivers attach to.
type Medium struct {
	sched  *sim.Scheduler
	params Params
	nodes  []*Transceiver
	byID   map[pkt.NodeID]*Transceiver
	index  NeighborIndex
	stats  Stats

	// txFree pools transmission records (and their receiver tables).
	txFree []*transmission
	// activeTx counts transmissions currently on the air — incremented
	// at StartTx, decremented when the finish processing retires the
	// record. It is the in-flight gauge the metrics sampler reads; like
	// stats it is only touched from solo-context events.
	activeTx int
	// elided counts the per-receiver finish events the batched model
	// folded into per-frame events; see ElidedEvents.
	elided uint64
	// carrierEps is the largest motion-uncertainty inflation among
	// attached carrier listeners (maxSpeed·CarrierPredictWindow); the
	// StartTx walks widen their candidate radius by it so band onsets
	// reach every listener they might concern.
	carrierEps float64
}

// NewMedium creates a channel managed by sched. Unless Params.Index
// says otherwise, neighbour lookups use the spatial grid; a
// non-positive range (only seen in degenerate test setups) falls back
// to the brute-force scan, which needs no cell size.
func NewMedium(sched *sim.Scheduler, params Params) *Medium {
	m := &Medium{sched: sched, params: params, byID: make(map[pkt.NodeID]*Transceiver)}
	if params.Index == IndexBrute || params.Range <= 0 {
		m.index = newBruteIndex()
	} else {
		m.index = newGridIndex(sched, params.Range)
	}
	return m
}

// Stats returns a copy of the channel counters.
func (m *Medium) Stats() Stats { return m.stats }

// ActiveTx returns the number of transmissions currently on the air.
func (m *Medium) ActiveTx() int { return m.activeTx }

// Range returns the configured transmission radius in metres.
func (m *Medium) Range() float64 { return m.params.Range }

// Model returns the reception model backing the medium.
func (m *Medium) Model() ReceptionModel { return m.params.Model }

// ElidedEvents returns the number of per-receiver reception events the
// batched model folded into per-frame finish events. Adding it to the
// scheduler's processed count yields the logical event total — the
// number of events the reference model executes for the same run —
// which keeps event-count metrics comparable (and golden digests
// stable) across reception models. It is zero under ModelRef.
func (m *Medium) ElidedEvents() uint64 { return m.elided }

// ErrDuplicateNode reports an Attach with a node ID that is already
// attached to the medium. Node IDs key handler dispatch and per-node
// statistics, so a duplicate always indicates a misconfigured scenario.
var ErrDuplicateNode = errors.New("radio: node already attached")

// Attach registers a transceiver for a node. The handler is invoked at
// the end of each reception. Handlers run inside the simulation event
// loop. Attaching the same node ID twice fails with ErrDuplicateNode.
func (m *Medium) Attach(id pkt.NodeID, pos mobility.Model, h Handler) (*Transceiver, error) {
	return m.AttachOn(m.sched, id, pos, h)
}

// AttachOn registers a transceiver whose clock is sched — under the
// sharded scheduler, the node's shard lane, so carrier-sense queries
// made inside a parallel window read the node's own clock rather than
// the coordinator's. With sched equal to the medium's scheduler it is
// identical to Attach.
func (m *Medium) AttachOn(sched *sim.Scheduler, id pkt.NodeID, pos mobility.Model, h Handler) (*Transceiver, error) {
	if _, dup := m.byID[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	t := &Transceiver{
		id: id, medium: m, sched: sched, pos: pos, handler: h,
		idx: int32(len(m.nodes)),
		// lastInterference must predate every possible transmission
		// start; simulation time is never negative.
		lastInterference: -1,
	}
	if spd, ok := mobility.MaxSpeedOf(pos); ok {
		t.maxSpeed, t.speedOK = spd, true
		t.predEps = spd * CarrierPredictWindow.Seconds()
	}
	m.nodes = append(m.nodes, t)
	m.byID[id] = t
	m.index.Attach(t)
	return t, nil
}

// acquireTx pops a pooled transmission record (or allocates the pool's
// first occupants).
func (m *Medium) acquireTx() *transmission {
	n := len(m.txFree)
	if n == 0 {
		return &transmission{}
	}
	tx := m.txFree[n-1]
	m.txFree = m.txFree[:n-1]
	return tx
}

// releaseTx recycles a finished transmission, dropping its references
// so pooled records pin neither frames nor transceivers.
func (m *Medium) releaseTx(tx *transmission) {
	tx.from, tx.frame, tx.done = nil, nil, nil
	tx.recvs = tx.recvs[:0]
	m.txFree = append(m.txFree, tx)
}

// ErrAlreadyTransmitting reports a StartTx while a previous transmission
// from the same transceiver is still on the air. The MAC layer serialises
// transmissions, so hitting this indicates a MAC bug.
var ErrAlreadyTransmitting = errors.New("radio: transceiver already transmitting")

// Transceiver is one node's attachment to the medium.
type Transceiver struct {
	id     pkt.NodeID
	medium *Medium
	// sched is the node's clock: the medium's scheduler under the
	// serial kernel, the node's shard lane under the sharded one (the
	// two agree whenever cross-node state is touched).
	sched   *sim.Scheduler
	pos     mobility.Model
	handler Handler
	// idx is the attach-order position in medium.nodes; receiver tables
	// reference transceivers by this index.
	idx int32

	// carrier, when non-nil, receives conservative channel-onset
	// notifications (see CarrierListener). maxSpeed/speedOK cache the
	// mobility model's Speeder bound at attach time; predEps is the
	// motion-uncertainty inflation maxSpeed·CarrierPredictWindow that
	// the onset classification and CarrierProbe's closure bound use.
	carrier  CarrierListener
	maxSpeed float64
	speedOK  bool
	predEps  float64

	// Probe scratch: CarrierProbe's index walk accumulates into these
	// fields through one reusable closure instead of per-call captures
	// — the probe runs on every folded backoff arm, and boxing the
	// accumulators was a measurable share of run-phase allocations at
	// 100k nodes. Only this node's own probes touch them (cross-node
	// index walks already run serialized under the sharded kernel).
	probeBusy, probeReach sim.Time
	probePos              geom.Point
	probeR2               float64
	probeFn               func(*transmission)

	txEnd sim.Time // end of own in-flight transmission, 0 if idle

	// receptions is the ModelRef live-reception list.
	receptions []*reception

	// ModelBatch collision state. rxInFlight counts receptions whose
	// finish walk has not yet processed them. lastInterference is the
	// time of the most recent interference event at this node — another
	// reception starting, or this node starting to transmit, while
	// receptions were in flight. A reception spanning [start, end] is
	// corrupted iff it was corrupted at start or lastInterference ≥
	// start by the time the finish walk reaches it; both updates are
	// O(1), replacing ModelRef's scans over the live reception list.
	rxInFlight       int32
	lastInterference sim.Time

	// Per-node counters.
	sent      uint64
	delivered uint64
	collided  uint64
}

// ID returns the node ID this transceiver belongs to.
func (t *Transceiver) ID() pkt.NodeID { return t.id }

// Position returns the node's position at the current simulation time.
func (t *Transceiver) Position() geom.Point {
	return t.pos.Position(t.sched.Now())
}

// Transmitting reports whether the transceiver has a frame on the air.
func (t *Transceiver) Transmitting() bool {
	return t.txEnd > t.sched.Now()
}

// Counters returns (frames sent, receptions delivered, receptions
// corrupted) for this transceiver.
func (t *Transceiver) Counters() (sent, delivered, collided uint64) {
	return t.sent, t.delivered, t.collided
}

// CarrierBusyUntil returns the latest end time of any in-range
// transmission (including the node's own). A result <= now means the
// channel is idle at the sensing node. The index enumerates only
// transmissions whose origin is within range, so the cost is O(local
// activity), not O(all active transmissions).
func (t *Transceiver) CarrierBusyUntil() sim.Time {
	m := t.medium
	now := t.sched.Now()
	var until sim.Time
	if t.txEnd > now {
		until = t.txEnd
	}
	if !m.index.HasTx() {
		return until
	}
	p := t.pos.Position(now)
	m.index.ForEachTxInRange(now, p, m.params.Range, func(tx *transmission) {
		if tx.from != t && tx.end > until {
			until = tx.end
		}
	})
	return until
}

// CarrierPredictable reports whether this node's mobility model
// provides the conservative speed bound carrier prediction requires.
// Without one, CarrierProbe's closure bound and onset classification
// would be unsound, so callers must stick to exact reads.
func (t *Transceiver) CarrierPredictable() bool { return t.speedOK }

// SetCarrierListener registers (or clears) the channel-onset hook the
// folded contention countdown listens on. Listeners on nodes without a
// speed bound receive nothing (see CarrierPredictable).
func (t *Transceiver) SetCarrierListener(l CarrierListener) {
	if !t.speedOK {
		return
	}
	t.carrier = l
	if l != nil && t.predEps > t.medium.carrierEps {
		t.medium.carrierEps = t.predEps
	}
}

// CarrierProbe returns the exact CarrierBusyUntil value together with
// a conservative closure bound: reach is the latest end time of any
// transmission already on the air that could contribute carrier at
// this node at any instant within CarrierPredictWindow, accounting for
// the node's own motion (transmission origins are fixed). For any
// target with reach <= target <= now + CarrierPredictWindow, the
// channel is guaranteed idle at target unless a transmission starts
// after now — and every such start the node could sense is reported
// through its CarrierListener. Both values come from one index walk,
// so a probe costs the same as CarrierBusyUntil.
func (t *Transceiver) CarrierProbe() (busy, reach sim.Time) {
	m := t.medium
	now := t.sched.Now()
	if t.txEnd > now {
		busy = t.txEnd
	}
	reach = busy
	if !t.speedOK {
		reach = sim.Time(math.MaxInt64)
	}
	if !m.index.HasTx() {
		return busy, reach
	}
	p := t.pos.Position(now)
	r := m.params.Range
	if !t.speedOK {
		// No speed bound: the closure half is unsound (reach is already
		// saturated); fall back to the exact-read walk.
		r2 := r * r
		m.index.ForEachTxInRange(now, p, r, func(tx *transmission) {
			if tx.from != t && tx.end > busy && p.Dist2(tx.origin) <= r2 {
				busy = tx.end
			}
		})
		return busy, reach
	}
	t.probeBusy, t.probeReach = busy, reach
	t.probePos, t.probeR2 = p, r*r
	if t.probeFn == nil {
		t.probeFn = func(tx *transmission) {
			if tx.from == t {
				return
			}
			if tx.end > t.probeReach {
				t.probeReach = tx.end
			}
			if tx.end > t.probeBusy && t.probePos.Dist2(tx.origin) <= t.probeR2 {
				t.probeBusy = tx.end
			}
		}
	}
	m.index.ForEachTxInRange(now, p, r+t.predEps, t.probeFn)
	return t.probeBusy, t.probeReach
}

// notifyCarrier classifies one onset for an in-band listener: proven
// when the listener sits at least its motion inflation inside the
// sensing radius, band otherwise. d2 is the exact squared distance
// from the transmission origin to the listener's current position.
func notifyCarrier(rcv *Transceiver, d2, r float64, end sim.Time) {
	in := r - rcv.predEps
	rcv.carrier.CarrierOnset(end, in > 0 && d2 <= in*in)
}

// StartTx puts frame on the air for airtime. Receivers are the nodes
// within range at the start of the transmission; each receives the frame
// (or a corruption notice) when the airtime elapses.
func (t *Transceiver) StartTx(frame any, airtime sim.Time) error {
	return t.StartTxNotify(frame, airtime, nil)
}

// StartTxNotify is StartTx with a transmitter-side completion hook:
// done.TxDone() (when done is non-nil) runs after the transmission's
// finish processing, in the exact schedule position of an airtime-end
// timer armed by the caller right after StartTx — see the TxDone doc.
func (t *Transceiver) StartTxNotify(frame any, airtime sim.Time, done TxDone) error {
	m := t.medium
	now := m.sched.Now()
	if t.txEnd > now {
		return fmt.Errorf("%w: node %s", ErrAlreadyTransmitting, t.id)
	}
	if airtime <= 0 {
		return fmt.Errorf("radio: non-positive airtime %v", airtime)
	}

	tx := m.acquireTx()
	tx.from, tx.frame, tx.done = t, frame, done
	tx.start, tx.end = now, now+airtime
	tx.origin = t.pos.Position(now)
	m.index.AddTx(tx)
	m.stats.Transmissions++
	m.activeTx++
	t.sent++
	t.txEnd = tx.end

	if t.carrier != nil {
		// The node's own transmission raises its own carrier (an ACK or
		// CTS sent while a head frame's countdown is pending); distance
		// zero makes it proven by construction.
		t.carrier.CarrierOnset(tx.end, true)
	}
	if m.params.Model == ModelRef {
		t.startTxRef(tx, now)
	} else {
		t.startTxBatch(tx, now)
	}
	return nil
}

// startTxBatch builds the per-frame receiver table and schedules the
// single finish event that will walk it. The index yields a
// position-superset in attach order; the exact unit-disc predicate runs
// here against fresh positions.
func (t *Transceiver) startTxBatch(tx *transmission, now sim.Time) {
	m := t.medium
	// Transmitting corrupts anything this node was in the middle of
	// receiving (half-duplex): record the interference instead of
	// touching each in-flight reception.
	if t.rxInFlight > 0 {
		t.lastInterference = now
	}
	r := m.params.Range
	r2 := r * r
	m.index.ForEachCandidate(now, tx.origin, r+m.carrierEps, func(rcv *Transceiver) {
		if rcv == t {
			return
		}
		d2 := rcv.pos.Position(now).Dist2(tx.origin)
		if d2 > r2 {
			// Out of range for reception, but possibly inside a carrier
			// listener's uncertainty band: an unproven onset.
			if rcv.carrier != nil {
				if out := r + rcv.predEps; d2 <= out*out {
					rcv.carrier.CarrierOnset(tx.end, false)
				}
			}
			return
		}
		if rcv.carrier != nil {
			notifyCarrier(rcv, d2, r, tx.end)
		}
		// A node mid-transmission cannot hear the frame, and any
		// receptions already in flight at the receiver collide with the
		// new one — the former decides this entry now, the latter is
		// recorded as interference for the in-flight entries' walks.
		corrupted := rcv.txEnd > now || rcv.rxInFlight > 0
		if rcv.rxInFlight > 0 {
			rcv.lastInterference = now
		}
		rcv.rxInFlight++
		tx.recvs = append(tx.recvs, recvEntry{rcv: rcv.idx, corrupted: corrupted})
	})
	m.sched.At(tx.end, func() { m.finishTx(tx) })
}

// finishTx is the batched model's single finish event: it walks the
// receiver table in attach order — the exact order the reference model
// fires its per-receiver events in, since those are scheduled
// back-to-back at StartTx and the kernel runs same-instant events in
// insertion order — finalises each entry's outcome, and retires the
// transmission. Handlers may call StartTx re-entrantly; entries not yet
// walked still count as in flight, so a frame transmitted mid-walk
// collides with them exactly as it would under ModelRef.
func (m *Medium) finishTx(tx *transmission) {
	now := m.sched.Now()
	m.elided += uint64(len(tx.recvs))
	for i := range tx.recvs {
		e := tx.recvs[i]
		rcv := m.nodes[e.rcv]
		rcv.rxInFlight--
		// A node still transmitting when the frame ends cannot have
		// heard it; interference at or after the frame's start corrupts
		// (at-start equality arises only when the interferer acted
		// after this frame began within the same instant).
		corrupted := e.corrupted || rcv.lastInterference >= tx.start || rcv.txEnd > now
		if corrupted {
			rcv.collided++
			m.stats.Collisions++
		} else {
			rcv.delivered++
			m.stats.Deliveries++
		}
		if rcv.handler != nil {
			rcv.handler(tx.frame, tx.from.id, !corrupted)
		}
	}
	done := tx.done
	m.index.RemoveTx(tx)
	m.releaseTx(tx)
	m.activeTx--
	if done != nil {
		done.TxDone()
	}
}

// startTxRef is the reference reception path: one reception record and
// one scheduled finish event per in-range receiver, plus a trailing
// event that retires the transmission.
func (t *Transceiver) startTxRef(tx *transmission, now sim.Time) {
	m := t.medium
	// Transmitting corrupts anything this node was in the middle of
	// receiving (half-duplex).
	for _, rec := range t.receptions {
		if !rec.corrupted {
			rec.corrupted = true
		}
	}

	// The index yields a position-superset in attach order; the exact
	// unit-disc predicate runs here against fresh positions.
	r := m.params.Range
	r2 := r * r
	m.index.ForEachCandidate(now, tx.origin, r+m.carrierEps, func(rcv *Transceiver) {
		if rcv == t {
			return
		}
		d2 := rcv.pos.Position(now).Dist2(tx.origin)
		if d2 > r2 {
			if rcv.carrier != nil {
				if out := r + rcv.predEps; d2 <= out*out {
					rcv.carrier.CarrierOnset(tx.end, false)
				}
			}
			return
		}
		if rcv.carrier != nil {
			notifyCarrier(rcv, d2, r, tx.end)
		}
		rec := &reception{tx: tx}
		// A node mid-transmission cannot hear the frame, and any
		// receptions already in progress at the receiver collide with
		// the new one.
		if rcv.txEnd > now {
			rec.corrupted = true
		}
		for _, other := range rcv.receptions {
			other.corrupted = true
			rec.corrupted = true
		}
		rcv.receptions = append(rcv.receptions, rec)
		m.sched.At(tx.end, func() { rcv.finishReception(rec) })
	})

	m.sched.At(tx.end, func() {
		done := tx.done
		m.index.RemoveTx(tx)
		m.releaseTx(tx)
		m.activeTx--
		if done != nil {
			done.TxDone()
		}
	})
}

func (t *Transceiver) finishReception(rec *reception) {
	// Drop rec from the active set.
	for i, r := range t.receptions {
		if r == rec {
			last := len(t.receptions) - 1
			t.receptions[i] = t.receptions[last]
			t.receptions[last] = nil
			t.receptions = t.receptions[:last]
			break
		}
	}
	// A node still transmitting when the frame ends cannot have heard it.
	if t.txEnd > t.medium.sched.Now() {
		rec.corrupted = true
	}
	if rec.corrupted {
		t.collided++
		t.medium.stats.Collisions++
	} else {
		t.delivered++
		t.medium.stats.Deliveries++
	}
	if t.handler != nil {
		t.handler(rec.tx.frame, rec.tx.from.id, !rec.corrupted)
	}
}

// NeighborsOf returns the IDs of all nodes currently within range of node
// id, in attach order. It is used by diagnostics and topology metrics,
// not by protocols (which must discover neighbours through the channel,
// as in the paper).
func (m *Medium) NeighborsOf(id pkt.NodeID) []pkt.NodeID {
	self, ok := m.byID[id]
	if !ok {
		return nil
	}
	now := m.sched.Now()
	p := self.pos.Position(now)
	r2 := m.params.Range * m.params.Range
	var out []pkt.NodeID
	m.index.ForEachCandidate(now, p, m.params.Range, func(t *Transceiver) {
		if t == self {
			return
		}
		if t.pos.Position(now).Dist2(p) <= r2 {
			out = append(out, t.id)
		}
	})
	return out
}

// MeanDegree returns the average neighbour count over all attached nodes
// at the current time. The Fig. 6 experiment uses it to scale range with
// node count. Positions are snapshotted once per call, so the cost is
// N·degree distance checks through the grid (N² with the brute index)
// on top of N position evaluations.
func (m *Medium) MeanDegree() float64 {
	if len(m.nodes) == 0 {
		return 0
	}
	now := m.sched.Now()
	r2 := m.params.Range * m.params.Range
	pts := make(map[*Transceiver]geom.Point, len(m.nodes))
	for _, t := range m.nodes {
		pts[t] = t.pos.Position(now)
	}
	var links int
	for _, self := range m.nodes {
		p := pts[self]
		m.index.ForEachCandidate(now, p, m.params.Range, func(t *Transceiver) {
			if t != self && pts[t].Dist2(p) <= r2 {
				links++
			}
		})
	}
	return float64(links) / float64(len(m.nodes))
}
