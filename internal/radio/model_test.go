package radio

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/sim"
)

// compareFuzzWorlds asserts two completed fuzz worlds observed the
// identical simulation: same logs, channel statistics and per-node
// counters.
func compareFuzzWorlds(t *testing.T, label string, a, b *fuzzWorld, aName, bName string) {
	t.Helper()
	if len(a.log) != len(b.log) {
		t.Fatalf("%s: log lengths differ: %s %d, %s %d", label, aName, len(a.log), bName, len(b.log))
	}
	for i := range a.log {
		if a.log[i] != b.log[i] {
			t.Fatalf("%s: log line %d differs:\n%s: %s\n%s: %s", label, i, aName, a.log[i], bName, b.log[i])
		}
	}
	if as, bs := a.m.Stats(), b.m.Stats(); !reflect.DeepEqual(as, bs) {
		t.Fatalf("%s: stats differ: %s %+v, %s %+v", label, aName, as, bName, bs)
	}
	for i := range a.trs {
		as, ad, ac := a.trs[i].Counters()
		bs, bd, bc := b.trs[i].Counters()
		if as != bs || ad != bd || ac != bc {
			t.Fatalf("%s node %d: counters differ: %s (%d,%d,%d), %s (%d,%d,%d)",
				label, i, aName, as, ad, ac, bName, bs, bd, bc)
		}
	}
}

// runModelDifferential drives all four model × index combinations
// through the same op script and requires identical observations.
func runModelDifferential(t *testing.T, label string, seed int64, n int, area geom.Rect,
	maxSpeed float64, ops []fuzzOp, horizon sim.Time) {
	t.Helper()
	var ref *fuzzWorld
	var refName string
	for _, model := range []ReceptionModel{ModelBatch, ModelRef} {
		for _, kind := range []IndexKind{IndexGrid, IndexBrute} {
			name := model.String() + "/" + kind.String()
			w := newFuzzWorld(kind, model, seed, n, area, maxSpeed)
			w.schedule(ops)
			w.sched.Run(horizon)
			if ref == nil {
				ref, refName = w, name
				continue
			}
			compareFuzzWorlds(t, label, w, ref, name, refName)
		}
	}
}

// TestReceptionModelsMatchUnderRandomTraffic is the reception-model
// differential property test: the batched and reference models (under
// both neighbour indexes) must produce identical reception logs,
// carrier-sense answers, statistics and counters while mobile nodes
// transmit randomly. Op times are quantised to the frame airtime's
// divisors so exact overlaps, exact boundaries and same-instant bursts
// — the cases where the models' bookkeeping differs most — occur
// constantly rather than almost never.
func TestReceptionModelsMatchUnderRandomTraffic(t *testing.T) {
	area := geom.Rect{W: 300, H: 300}
	for _, seed := range []int64{1, 2, 3} {
		opRNG := sim.NewRNG(seed).Derive("model-ops")
		const nNodes = 40
		var ops []fuzzOp
		for i := 0; i < 2500; i++ {
			// Quantised to 1 ms against a 2 ms airtime: frames routinely
			// start at another frame's exact start, midpoint or end.
			at := opRNG.Duration(100 * time.Second).Truncate(time.Millisecond)
			ops = append(ops, fuzzOp{
				at:   at,
				node: opRNG.Intn(nNodes),
				kind: opRNG.Intn(4),
			})
			// Every eighth op is duplicated at the same instant from
			// another node: same-instant transmission bursts.
			if i%8 == 0 {
				ops = append(ops, fuzzOp{at: at, node: opRNG.Intn(nNodes), kind: 0})
			}
		}
		runModelDifferential(t, fmt.Sprintf("seed %d", seed), seed, nNodes, area, 5, ops, 120*time.Second)
	}
}

// FuzzReceptionModelDifferential lets the fuzzer hunt for op schedules
// that split the reception models. Each 4-byte group decodes one op:
// time (quantised to half the airtime), node, and op kind.
func FuzzReceptionModelDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 0, 1, 1, 4, 1, 2, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 1, 0, 0, 1, 2, 0, 0, 2, 3, 0, 0})
	f.Add([]byte{0, 0, 3, 3, 0, 1, 2, 2, 8, 2, 1, 0, 8, 3, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 4*256 {
			t.Skip()
		}
		const nNodes = 12
		var ops []fuzzOp
		for i := 0; i+3 < len(data); i += 4 {
			// Steps of half the 2 ms op airtime keep starts, midpoints
			// and ends of different frames colliding exactly.
			at := time.Duration(int(data[i])|int(data[i+1])<<8) * time.Millisecond
			ops = append(ops, fuzzOp{
				at:   at,
				node: int(data[i+2]) % nNodes,
				kind: int(data[i+3]) % 4,
			})
		}
		runModelDifferential(t, "fuzz", 7, nNodes, geom.Rect{W: 200, H: 200}, 3, ops, time.Hour)
	})
}
