package radio

// ReceptionModel selects the reception bookkeeping implementation
// backing a Medium. Both models simulate the identical channel — the
// same frames are delivered or corrupted at the same times, in the same
// handler order — and differ only in how that outcome is computed.
type ReceptionModel int

const (
	// ModelBatch (the default) keeps a per-frame receiver table: value
	// reception entries in a slice owned by a pooled transmission
	// record, referencing receivers by attach index. A single finish
	// event per transmission walks the table in attach order, so a
	// broadcast costs one timer push instead of one per receiver, and
	// the per-receiver reception allocations of the reference model
	// disappear. Collision and half-duplex state lives in O(1)
	// per-transceiver counters (receptions in flight, time of the last
	// interference) instead of scans over live reception lists.
	ModelBatch ReceptionModel = iota
	// ModelRef is the original implementation: one heap-allocated
	// reception and one scheduled finish event per receiver per frame,
	// with collision state maintained by scanning each receiver's live
	// reception list. It is retained as the reference for differential
	// testing, mirroring the grid/brute neighbour-index and quad/ref
	// event-queue precedents. Both models produce bit-identical
	// simulations for the same seed.
	ModelRef
)

// String names the reception model for benchmarks and logs.
func (m ReceptionModel) String() string {
	switch m {
	case ModelBatch:
		return "batch"
	case ModelRef:
		return "ref"
	default:
		return "ReceptionModel(?)"
	}
}
