package radio

import (
	"math/bits"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/sim"
)

// IndexKind selects the neighbour index implementation backing a Medium.
type IndexKind int

const (
	// IndexGrid (the default) buckets node positions into a uniform
	// spatial hash with cell size equal to the transmission range, so
	// StartTx and carrier sensing touch only nearby nodes: O(local
	// degree) per query instead of O(total nodes).
	IndexGrid IndexKind = iota
	// IndexBrute scans every transceiver and every active transmission
	// on each query — the original O(N) implementation, kept as the
	// reference for differential testing. Both kinds produce
	// bit-identical simulations for the same seed.
	IndexBrute
)

// String names the index kind for benchmarks and logs.
func (k IndexKind) String() string {
	switch k {
	case IndexGrid:
		return "grid"
	case IndexBrute:
		return "brute"
	default:
		return "IndexKind(?)"
	}
}

// NeighborIndex answers the medium's two spatial questions: which
// transceivers might currently be near a point, and which in-flight
// transmissions cover it. Implementations live in this package (see
// IndexKind); the interface exists to keep Medium's hot paths decoupled
// from the lookup strategy and to allow differential testing between
// them.
//
// ForEachCandidate visits, in attach order, a superset of the
// transceivers whose position at time now lies within radius of center;
// callers must apply the exact distance predicate against fresh
// positions themselves. ForEachTxInRange visits exactly the
// transmissions still on the air at now whose origin lies within radius
// of center (origins are fixed, so the index applies the exact
// predicate); visit order is unspecified, so callers must combine
// results order-independently.
type NeighborIndex interface {
	Attach(t *Transceiver)
	ForEachCandidate(now sim.Time, center geom.Point, radius float64, fn func(*Transceiver))
	AddTx(tx *transmission)
	RemoveTx(tx *transmission)
	// HasTx reports whether any transmission is tracked at all — the
	// cheap idle-channel check carrier sensing does before computing
	// the sensing node's position.
	HasTx() bool
	ForEachTxInRange(now sim.Time, center geom.Point, radius float64, fn func(*transmission))
}

// bruteIndex is the original linear scan over all transceivers and all
// active transmissions.
type bruteIndex struct {
	nodes  []*Transceiver
	active []*transmission
}

var _ NeighborIndex = (*bruteIndex)(nil)

func newBruteIndex() *bruteIndex { return &bruteIndex{} }

func (b *bruteIndex) Attach(t *Transceiver) { b.nodes = append(b.nodes, t) }

func (b *bruteIndex) ForEachCandidate(_ sim.Time, _ geom.Point, _ float64, fn func(*Transceiver)) {
	for _, t := range b.nodes {
		fn(t)
	}
}

func (b *bruteIndex) AddTx(tx *transmission) { b.active = append(b.active, tx) }

func (b *bruteIndex) RemoveTx(tx *transmission) {
	for i, a := range b.active {
		if a == tx {
			last := len(b.active) - 1
			b.active[i] = b.active[last]
			b.active[last] = nil
			b.active = b.active[:last]
			return
		}
	}
}

func (b *bruteIndex) HasTx() bool { return len(b.active) > 0 }

func (b *bruteIndex) ForEachTxInRange(now sim.Time, center geom.Point, radius float64, fn func(*transmission)) {
	r2 := radius * radius
	for _, tx := range b.active {
		if tx.end <= now {
			continue
		}
		if center.Dist2(tx.origin) <= r2 {
			fn(tx)
		}
	}
}

// gridIndex backs the medium with two spatial hashes: one over node
// positions (refreshed lazily on a time-epoch basis) and one over
// transmission origins (exact, since origins never move).
//
// Node buckets go stale as nodes move. Each mobility model reports a
// conservative max speed (mobility.Speeder), so a position bucketed at
// time t0 lies within maxSpeed·(now−t0) metres of the node's true
// position. The index re-buckets all nodes only when that drift bound
// would exceed `slack`, and every candidate query inflates its radius
// by `slack`; together these guarantee the candidate set is a superset
// of the true in-range set, which the caller then filters with exact
// positions. Re-bucketing is O(nodes) but runs at most once per
// slack/maxSpeed of simulated time — amortised across the many events
// in between — and moves a node between cells only when it crossed a
// cell boundary.
type gridIndex struct {
	sched *sim.Scheduler

	nodes   []*Transceiver
	grid    *geom.Grid
	slack   float64
	maxSpd  float64 // max over attached nodes' speed bounds
	bounded bool    // false once any model lacks a speed bound

	lastRefresh sim.Time
	refreshed   bool // lastRefresh is meaningful (first refresh happened)

	active []*transmission
	txGrid *geom.Grid
	txByID map[int]*transmission
	nextTx int

	scratch []int
	// seen is a reusable bitset over node ids: candidate ids are marked,
	// then visited word-by-word in ascending id (= attach) order. This
	// replaces a per-query sort with O(candidates + words) work.
	seen []uint64
}

// txScanThreshold is the active-transmission count below which
// ForEachTxInRange scans the plain slice instead of the grid. Carrier
// sensing runs on every MAC backoff step, and with only a handful of
// frames on the air a cache-friendly linear scan beats the grid's cell
// hashing; the grid pays off once spatial reuse puts many concurrent
// frames on a large field. Both paths apply the same exact predicate,
// and CarrierBusyUntil combines results order-independently, so the
// switch cannot change simulation results.
const txScanThreshold = 32

var _ NeighborIndex = (*gridIndex)(nil)

// newGridIndex sizes cells to the transmission range and allows node
// buckets to go stale by a quarter range before re-bucketing: queries
// then span at most a 3–4 cell-wide block while refreshes stay rare
// (e.g. every 93 s of simulated time at the paper's 75 m / 0.2 m/s
// operating point).
func newGridIndex(sched *sim.Scheduler, txRange float64) *gridIndex {
	return &gridIndex{
		sched:   sched,
		grid:    geom.NewGrid(txRange),
		slack:   txRange / 4,
		bounded: true,
		txGrid:  geom.NewGrid(txRange),
		txByID:  make(map[int]*transmission),
	}
}

func (g *gridIndex) Attach(t *Transceiver) {
	now := g.sched.Now()
	id := len(g.nodes)
	g.nodes = append(g.nodes, t)
	for len(g.seen)*64 < len(g.nodes) {
		g.seen = append(g.seen, 0)
	}
	g.grid.Insert(id, t.pos.Position(now))
	spd, ok := mobility.MaxSpeedOf(t.pos)
	if !ok {
		g.bounded = false
	} else if spd > g.maxSpd {
		g.maxSpd = spd
	}
	if !g.refreshed {
		g.refreshed = true
		g.lastRefresh = now
	}
}

// maybeRefresh re-buckets every node when the worst-case drift since
// the last refresh would exceed the query slack. Models without a speed
// bound force a refresh at every new timestamp (positions cannot change
// within one).
func (g *gridIndex) maybeRefresh(now sim.Time) {
	if now <= g.lastRefresh {
		return
	}
	if g.bounded && g.maxSpd*(now-g.lastRefresh).Seconds() <= g.slack {
		return
	}
	for id, t := range g.nodes {
		g.grid.Move(id, t.pos.Position(now))
	}
	g.lastRefresh = now
}

func (g *gridIndex) ForEachCandidate(now sim.Time, center geom.Point, radius float64, fn func(*Transceiver)) {
	g.maybeRefresh(now)
	g.scratch = g.grid.AppendCandidatesInRange(center, radius+g.slack, g.scratch[:0])
	// Visit in attach order (= ascending id), which keeps reception
	// scheduling bit-identical to the brute-force scan: mark candidates
	// in the bitset, then walk its words lowest-id first.
	wlo, whi := len(g.seen), -1
	for _, id := range g.scratch {
		w := id >> 6
		g.seen[w] |= 1 << (uint(id) & 63)
		if w < wlo {
			wlo = w
		}
		if w > whi {
			whi = w
		}
	}
	for w := wlo; w <= whi; w++ {
		word := g.seen[w]
		if word == 0 {
			continue
		}
		g.seen[w] = 0
		base := w << 6
		for word != 0 {
			fn(g.nodes[base+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
}

func (g *gridIndex) AddTx(tx *transmission) {
	id := g.nextTx
	g.nextTx++
	tx.indexID = id
	tx.slot = len(g.active)
	g.active = append(g.active, tx)
	g.txByID[id] = tx
	g.txGrid.Insert(id, tx.origin)
}

func (g *gridIndex) RemoveTx(tx *transmission) {
	if _, ok := g.txByID[tx.indexID]; !ok {
		return
	}
	delete(g.txByID, tx.indexID)
	g.txGrid.Remove(tx.indexID)
	// The recorded slot makes removal O(1) even with many concurrent
	// transmissions on the air.
	last := len(g.active) - 1
	moved := g.active[last]
	g.active[tx.slot] = moved
	moved.slot = tx.slot
	g.active[last] = nil
	g.active = g.active[:last]
}

func (g *gridIndex) HasTx() bool { return len(g.active) > 0 }

func (g *gridIndex) ForEachTxInRange(now sim.Time, center geom.Point, radius float64, fn func(*transmission)) {
	if len(g.active) <= txScanThreshold {
		r2 := radius * radius
		for _, tx := range g.active {
			if tx.end <= now {
				continue
			}
			if center.Dist2(tx.origin) <= r2 {
				fn(tx)
			}
		}
		return
	}
	g.txGrid.ForEachInRange(center, radius, func(id int, _ geom.Point) {
		tx := g.txByID[id]
		if tx.end <= now {
			return
		}
		fn(tx)
	})
}
