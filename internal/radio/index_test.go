package radio

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// unboundedModel hides the Speeder implementation of the wrapped model,
// forcing the grid index down its conservative per-timestamp refresh
// path.
type unboundedModel struct{ m mobility.Model }

func (u unboundedModel) Position(t sim.Time) geom.Point { return u.m.Position(t) }

// fuzzWorld is one medium plus logs of everything observable.
type fuzzWorld struct {
	sched *sim.Scheduler
	m     *Medium
	trs   []*Transceiver
	log   []string
}

func newFuzzWorld(kind IndexKind, model ReceptionModel, seed int64, n int, area geom.Rect, maxSpeed float64) *fuzzWorld {
	w := &fuzzWorld{sched: sim.NewScheduler()}
	w.m = NewMedium(w.sched, Params{Range: 75, Index: kind, Model: model})
	root := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		i := i
		var mob mobility.Model = mobility.NewWaypoint(mobility.WaypointConfig{
			Area: area, MaxSpeed: maxSpeed, MaxPause: 5 * time.Second,
		}, root.Derive(fmt.Sprintf("mob/%d", i)))
		if i%7 == 3 {
			// A few nodes without a speed bound exercise the grid's
			// always-refresh fallback.
			mob = unboundedModel{m: mob}
		}
		id := pkt.NodeID(i + 1)
		tr, err := w.m.Attach(id, mob, func(frame any, from pkt.NodeID, ok bool) {
			w.log = append(w.log, fmt.Sprintf("rx@%v node=%d frame=%v from=%d ok=%v", w.sched.Now(), id, frame, from, ok))
		})
		if err != nil {
			panic(err)
		}
		w.trs = append(w.trs, tr)
	}
	return w
}

// fuzzOp is one scheduled action, applied identically to both worlds.
type fuzzOp struct {
	at   sim.Time
	node int
	kind int // 0 = StartTx, 1 = NeighborsOf, 2 = CarrierBusyUntil, 3 = MeanDegree
}

func (w *fuzzWorld) schedule(ops []fuzzOp) {
	for i, op := range ops {
		i, op := i, op
		w.sched.At(op.at, func() {
			switch op.kind {
			case 0:
				err := w.trs[op.node].StartTx(fmt.Sprintf("f%d", i), 2*time.Millisecond)
				w.log = append(w.log, fmt.Sprintf("tx@%v node=%d err=%v", w.sched.Now(), op.node, err != nil))
			case 1:
				w.log = append(w.log, fmt.Sprintf("nbr@%v node=%d %v", w.sched.Now(), op.node, w.m.NeighborsOf(pkt.NodeID(op.node+1))))
			case 2:
				w.log = append(w.log, fmt.Sprintf("sense@%v node=%d until=%v", w.sched.Now(), op.node, w.trs[op.node].CarrierBusyUntil()))
			case 3:
				w.log = append(w.log, fmt.Sprintf("deg@%v %v", w.sched.Now(), w.m.MeanDegree()))
			}
		})
	}
}

// TestGridMatchesBruteUnderRandomMobility is the radio-level differential
// fuzz test: the grid and brute-force indexes must produce identical
// neighbour sets, carrier-sense answers, degree metrics, reception logs
// and channel statistics while nodes move randomly — including fast
// movers that cross many grid cells and nodes with no declared speed
// bound.
func TestGridMatchesBruteUnderRandomMobility(t *testing.T) {
	area := geom.Rect{W: 400, H: 400}
	for _, seed := range []int64{1, 2, 3} {
		opRNG := sim.NewRNG(seed).Derive("ops")
		const nNodes = 50
		var ops []fuzzOp
		for i := 0; i < 3000; i++ {
			ops = append(ops, fuzzOp{
				at:   opRNG.Duration(200 * time.Second),
				node: opRNG.Intn(nNodes),
				kind: opRNG.Intn(4),
			})
		}

		grid := newFuzzWorld(IndexGrid, ModelBatch, seed, nNodes, area, 10)
		brute := newFuzzWorld(IndexBrute, ModelBatch, seed, nNodes, area, 10)
		grid.schedule(ops)
		brute.schedule(ops)
		grid.sched.Run(250 * time.Second)
		brute.sched.Run(250 * time.Second)

		if len(grid.log) != len(brute.log) {
			t.Fatalf("seed %d: log lengths differ: grid %d, brute %d", seed, len(grid.log), len(brute.log))
		}
		for i := range grid.log {
			if grid.log[i] != brute.log[i] {
				t.Fatalf("seed %d: log line %d differs:\ngrid:  %s\nbrute: %s", seed, i, grid.log[i], brute.log[i])
			}
		}
		if gs, bs := grid.m.Stats(), brute.m.Stats(); !reflect.DeepEqual(gs, bs) {
			t.Fatalf("seed %d: stats differ: grid %+v, brute %+v", seed, gs, bs)
		}
		for i := range grid.trs {
			gs, gd, gc := grid.trs[i].Counters()
			bs, bd, bc := brute.trs[i].Counters()
			if gs != bs || gd != bd || gc != bc {
				t.Fatalf("seed %d node %d: counters differ: grid (%d,%d,%d), brute (%d,%d,%d)",
					seed, i, gs, gd, gc, bs, bd, bc)
			}
		}
	}
}

// TestGridNeighborsMatchBruteStatic pins the simplest invariant: with
// static nodes the two indexes agree on every neighbour query, including
// nodes exactly at range.
func TestGridNeighborsMatchBruteStatic(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 75, Y: 0}, {X: 76, Y: 0}, {X: 0, Y: 74.999}, {X: 300, Y: 300}}
	var mediums []*Medium
	for _, kind := range []IndexKind{IndexGrid, IndexBrute} {
		sched := sim.NewScheduler()
		m := NewMedium(sched, Params{Range: 75, Index: kind})
		for i, p := range positions {
			attach(t, m, pkt.NodeID(i+1), mobility.Static{P: p}, nil)
		}
		mediums = append(mediums, m)
	}
	for i := range positions {
		id := pkt.NodeID(i + 1)
		g, b := mediums[0].NeighborsOf(id), mediums[1].NeighborsOf(id)
		if !reflect.DeepEqual(g, b) {
			t.Fatalf("node %d: grid %v, brute %v", id, g, b)
		}
	}
	if g, b := mediums[0].MeanDegree(), mediums[1].MeanDegree(); g != b {
		t.Fatalf("MeanDegree: grid %v, brute %v", g, b)
	}
}

// benchMedium builds n uniformly placed slow waypoint nodes on a field
// sized for constant density (the large-scale family's regime).
func benchMedium(b *testing.B, kind IndexKind, model ReceptionModel, n int) (*sim.Scheduler, []*Transceiver) {
	b.Helper()
	side := 200 * math.Sqrt(float64(n)/40) // density-preserving: side² ∝ n
	area := geom.Rect{W: side, H: side}
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 75, Index: kind, Model: model})
	root := sim.NewRNG(7)
	trs := make([]*Transceiver, n)
	for i := 0; i < n; i++ {
		mob := mobility.NewWaypoint(mobility.WaypointConfig{
			Area: area, MaxSpeed: 0.2, MaxPause: 80 * time.Second,
		}, root.Derive(fmt.Sprintf("mob/%d", i)))
		trs[i] = attach(b, m, pkt.NodeID(i+1), mob, nil)
	}
	return sched, trs
}

// benchStartTx measures the radio hot path in isolation: repeated
// transmissions from rotating nodes, each scheduling receptions for its
// in-range neighbours, plus the carrier sensing the MAC would do.
func benchStartTx(b *testing.B, kind IndexKind, model ReceptionModel, n int) {
	sched, trs := benchMedium(b, kind, model, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trs[i%n]
		_ = tr.CarrierBusyUntil()
		_ = tr.StartTx(i, 100*time.Microsecond)
		if i%16 == 15 {
			sched.Run(sched.Now() + time.Millisecond)
		}
	}
	sched.Run(sched.Now() + time.Second)
}

func BenchmarkStartTx250Grid(b *testing.B)   { benchStartTx(b, IndexGrid, ModelBatch, 250) }
func BenchmarkStartTx250Brute(b *testing.B)  { benchStartTx(b, IndexBrute, ModelBatch, 250) }
func BenchmarkStartTx1000Grid(b *testing.B)  { benchStartTx(b, IndexGrid, ModelBatch, 1000) }
func BenchmarkStartTx1000Brute(b *testing.B) { benchStartTx(b, IndexBrute, ModelBatch, 1000) }

// The RxRef variants isolate the reception path against the batched
// default on the same grid index.
func BenchmarkStartTx250GridRxRef(b *testing.B)  { benchStartTx(b, IndexGrid, ModelRef, 250) }
func BenchmarkStartTx1000GridRxRef(b *testing.B) { benchStartTx(b, IndexGrid, ModelRef, 1000) }

func benchNeighbors(b *testing.B, kind IndexKind, n int) {
	_, trs := benchMedium(b, kind, ModelBatch, n)
	m := trs[0].medium
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.NeighborsOf(pkt.NodeID(i%n + 1))
	}
}

func BenchmarkNeighborsOf250Grid(b *testing.B)   { benchNeighbors(b, IndexGrid, 250) }
func BenchmarkNeighborsOf250Brute(b *testing.B)  { benchNeighbors(b, IndexBrute, 250) }
func BenchmarkNeighborsOf1000Grid(b *testing.B)  { benchNeighbors(b, IndexGrid, 1000) }
func BenchmarkNeighborsOf1000Brute(b *testing.B) { benchNeighbors(b, IndexBrute, 1000) }
