package radio

import (
	"errors"
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

const testAirtime = 500 * time.Microsecond

type rxRecord struct {
	frame any
	from  pkt.NodeID
	ok    bool
	at    sim.Time
}

type testNode struct {
	tr  *Transceiver
	rxs []rxRecord
}

// build attaches nodes at fixed positions and records every reception.
func build(sched *sim.Scheduler, m *Medium, positions []geom.Point) []*testNode {
	nodes := make([]*testNode, len(positions))
	for i, p := range positions {
		n := &testNode{}
		id := pkt.NodeID(i + 1)
		tr, err := m.Attach(id, mobility.Static{P: p}, func(frame any, from pkt.NodeID, ok bool) {
			n.rxs = append(n.rxs, rxRecord{frame: frame, from: from, ok: ok, at: sched.Now()})
		})
		if err != nil {
			panic(err)
		}
		n.tr = tr
		nodes[i] = n
	}
	return nodes
}

// attach is the error-free Attach for tests with unique IDs.
func attach(t testing.TB, m *Medium, id pkt.NodeID, pos mobility.Model, h Handler) *Transceiver {
	t.Helper()
	tr, err := m.Attach(id, pos, h)
	if err != nil {
		t.Fatalf("Attach(%v): %v", id, err)
	}
	return tr
}

func TestAttachDuplicateNodeID(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	attach(t, m, 7, mobility.Static{}, nil)
	if _, err := m.Attach(7, mobility.Static{}, nil); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate Attach err = %v, want ErrDuplicateNode", err)
	}
	// The failed attach must not have registered a second transceiver.
	if got := m.NeighborsOf(7); len(got) != 0 {
		t.Fatalf("NeighborsOf(7) after failed duplicate attach = %v, want none", got)
	}
}

func TestDeliveryWithinRange(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 200, Y: 0}})

	sched.After(0, func() {
		if err := nodes[0].tr.StartTx("hello", testAirtime); err != nil {
			t.Errorf("StartTx: %v", err)
		}
	})
	sched.Run(time.Second)

	if len(nodes[1].rxs) != 1 {
		t.Fatalf("in-range node got %d receptions, want 1", len(nodes[1].rxs))
	}
	rx := nodes[1].rxs[0]
	if !rx.ok || rx.frame != "hello" || rx.from != 1 {
		t.Fatalf("bad reception: %+v", rx)
	}
	if rx.at != testAirtime {
		t.Fatalf("delivered at %v, want %v", rx.at, testAirtime)
	}
	if len(nodes[2].rxs) != 0 {
		t.Fatalf("out-of-range node received %d frames, want 0", len(nodes[2].rxs))
	}
	if len(nodes[0].rxs) != 0 {
		t.Fatal("transmitter received its own frame")
	}
}

func TestOverlappingTransmissionsCollide(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 60})
	// 1 and 3 are both in range of 2 but not of each other, so exactly two
	// receptions (both at node 2) exist and both must collide.
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 100, Y: 0}})

	sched.After(0, func() { _ = nodes[0].tr.StartTx("a", testAirtime) })
	sched.After(testAirtime/2, func() { _ = nodes[2].tr.StartTx("b", testAirtime) })
	sched.Run(time.Second)

	if len(nodes[1].rxs) != 2 {
		t.Fatalf("middle node got %d receptions, want 2", len(nodes[1].rxs))
	}
	for _, rx := range nodes[1].rxs {
		if rx.ok {
			t.Fatalf("overlapping reception delivered intact: %+v", rx)
		}
	}
	if s := m.Stats(); s.Collisions != 2 {
		t.Fatalf("stats.Collisions = %d, want 2", s.Collisions)
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 60})
	// 1 and 3 are 120 m apart (cannot hear each other); 2 in the middle
	// hears both.
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}})

	sched.After(0, func() { _ = nodes[0].tr.StartTx("a", testAirtime) })
	sched.After(testAirtime/4, func() { _ = nodes[2].tr.StartTx("b", testAirtime) })
	sched.Run(time.Second)

	for _, rx := range nodes[1].rxs {
		if rx.ok {
			t.Fatalf("hidden-terminal overlap delivered intact: %+v", rx)
		}
	}
	if len(nodes[1].rxs) != 2 {
		t.Fatalf("middle node got %d receptions, want 2", len(nodes[1].rxs))
	}
}

func TestNonOverlappingSequentialDeliveries(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})

	sched.After(0, func() { _ = nodes[0].tr.StartTx("a", testAirtime) })
	sched.After(2*testAirtime, func() { _ = nodes[0].tr.StartTx("b", testAirtime) })
	sched.Run(time.Second)

	if len(nodes[1].rxs) != 2 {
		t.Fatalf("got %d receptions, want 2", len(nodes[1].rxs))
	}
	for _, rx := range nodes[1].rxs {
		if !rx.ok {
			t.Fatalf("sequential transmission corrupted: %+v", rx)
		}
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})

	// Node 2 transmits; node 1 transmits while node 2 is still on air.
	sched.After(0, func() { _ = nodes[1].tr.StartTx("mine", testAirtime) })
	sched.After(testAirtime/2, func() { _ = nodes[0].tr.StartTx("other", testAirtime) })
	sched.Run(time.Second)

	// Node 2 must not successfully receive "other".
	for _, rx := range nodes[1].rxs {
		if rx.ok {
			t.Fatalf("transmitting node received intact frame: %+v", rx)
		}
	}
	// Node 1 receives "mine" but corrupted: it started transmitting
	// mid-reception.
	if len(nodes[0].rxs) != 1 || nodes[0].rxs[0].ok {
		t.Fatalf("node 1 receptions: %+v, want 1 corrupted", nodes[0].rxs)
	}
}

func TestStartTxWhileTransmittingFails(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}})

	var second error
	sched.After(0, func() {
		if err := nodes[0].tr.StartTx("a", testAirtime); err != nil {
			t.Errorf("first StartTx: %v", err)
		}
		second = nodes[0].tr.StartTx("b", testAirtime)
	})
	sched.Run(time.Second)
	if !errors.Is(second, ErrAlreadyTransmitting) {
		t.Fatalf("second StartTx err = %v, want ErrAlreadyTransmitting", second)
	}
}

func TestStartTxBadAirtime(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}})
	if err := nodes[0].tr.StartTx("a", 0); err == nil {
		t.Fatal("StartTx with zero airtime succeeded")
	}
}

func TestCarrierSense(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 500, Y: 0}})

	sched.After(0, func() {
		_ = nodes[0].tr.StartTx("a", testAirtime)
		if got := nodes[1].tr.CarrierBusyUntil(); got != testAirtime {
			t.Errorf("in-range CarrierBusyUntil = %v, want %v", got, testAirtime)
		}
		if got := nodes[2].tr.CarrierBusyUntil(); got != 0 {
			t.Errorf("out-of-range CarrierBusyUntil = %v, want 0", got)
		}
		// The transmitter senses its own transmission.
		if got := nodes[0].tr.CarrierBusyUntil(); got != testAirtime {
			t.Errorf("self CarrierBusyUntil = %v, want %v", got, testAirtime)
		}
	})
	sched.After(2*testAirtime, func() {
		if got := nodes[1].tr.CarrierBusyUntil(); got > sched.Now() {
			t.Errorf("channel still busy after transmission end: %v", got)
		}
	})
	sched.Run(time.Second)
}

func TestTransmitting(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}})

	sched.After(0, func() {
		_ = nodes[0].tr.StartTx("a", testAirtime)
		if !nodes[0].tr.Transmitting() {
			t.Error("Transmitting() = false during transmission")
		}
	})
	sched.After(testAirtime+1, func() {
		if nodes[0].tr.Transmitting() {
			t.Error("Transmitting() = true after transmission end")
		}
	})
	sched.Run(time.Second)
}

func TestMobileNodeRangeEvaluatedAtTxStart(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})

	// A node moving along X at 10 m/s starting at (90, 0): inside range of
	// a transmitter at the origin at t=0, outside at t=5s.
	mover := mobility.NewWaypointAt(mobility.WaypointConfig{
		Area: geom.Rect{W: 1000, H: 1}, MinSpeed: 10, MaxSpeed: 10,
	}, sim.NewRNG(1), geom.Point{X: 90, Y: 0})
	_ = mover // trajectory is random; use a deterministic hand-rolled model instead

	lin := linearModel{from: geom.Point{X: 90, Y: 0}, vx: 10}
	var got []rxRecord
	tx := attach(t, m, 1, mobility.Static{P: geom.Point{}}, nil)
	attach(t, m, 2, lin, func(frame any, from pkt.NodeID, ok bool) {
		got = append(got, rxRecord{frame: frame, from: from, ok: ok, at: sched.Now()})
	})

	sched.After(0, func() { _ = tx.StartTx("early", testAirtime) })
	sched.After(5*time.Second, func() { _ = tx.StartTx("late", testAirtime) })
	sched.Run(10 * time.Second)

	if len(got) != 1 || got[0].frame != "early" {
		t.Fatalf("mobile receptions = %+v, want only 'early'", got)
	}
}

// linearModel moves at constant velocity for tests.
type linearModel struct {
	from geom.Point
	vx   float64
}

func (l linearModel) Position(t sim.Time) geom.Point {
	return geom.Point{X: l.from.X + l.vx*t.Seconds(), Y: l.from.Y}
}

func TestNeighborsAndMeanDegree(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 120, Y: 0}})

	got := m.NeighborsOf(2)
	if len(got) != 2 {
		t.Fatalf("NeighborsOf(2) = %v, want both ends", got)
	}
	if got := m.NeighborsOf(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("NeighborsOf(1) = %v, want [2]", got)
	}
	if got := m.NeighborsOf(99); got != nil {
		t.Fatalf("NeighborsOf(unknown) = %v, want nil", got)
	}
	// Links: 1-2 and 2-3 => degree sum 4 over 3 nodes.
	if got, want := m.MeanDegree(), 4.0/3.0; got != want {
		t.Fatalf("MeanDegree = %v, want %v", got, want)
	}
}

func TestPerNodeCounters(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMedium(sched, Params{Range: 100})
	nodes := build(sched, m, []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}})

	sched.After(0, func() { _ = nodes[0].tr.StartTx("a", testAirtime) })
	sched.Run(time.Second)

	if sent, _, _ := nodes[0].tr.Counters(); sent != 1 {
		t.Fatalf("sender counters sent = %d, want 1", sent)
	}
	if _, delivered, collided := nodes[1].tr.Counters(); delivered != 1 || collided != 0 {
		t.Fatalf("receiver counters = (%d, %d), want (1, 0)", delivered, collided)
	}
}
