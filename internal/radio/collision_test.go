package radio

import (
	"reflect"
	"testing"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// mediumConfigs enumerates every reception model × neighbour index
// combination. The collision semantics — hidden terminals, half-duplex
// conflicts, exact overlaps and exact boundaries — must be identical
// across all four.
func mediumConfigs() []Params {
	var out []Params
	for _, model := range []ReceptionModel{ModelBatch, ModelRef} {
		for _, kind := range []IndexKind{IndexGrid, IndexBrute} {
			out = append(out, Params{Index: kind, Model: model})
		}
	}
	return out
}

func configName(p Params) string { return p.Model.String() + "/" + p.Index.String() }

// runMatrix executes script against every model × index combination,
// asserts that per-node reception logs and channel statistics are
// identical across all of them, and returns one run's outcome for
// content assertions.
func runMatrix(t *testing.T, rangeM float64, positions []geom.Point,
	script func(sched *sim.Scheduler, nodes []*testNode)) ([][]rxRecord, Stats) {
	t.Helper()
	var firstRxs [][]rxRecord
	var firstStats Stats
	var firstName string
	for _, p := range mediumConfigs() {
		p.Range = rangeM
		sched := sim.NewScheduler()
		m := NewMedium(sched, p)
		nodes := build(sched, m, positions)
		script(sched, nodes)
		sched.Run(time.Hour)
		rxs := make([][]rxRecord, len(nodes))
		for i, n := range nodes {
			rxs[i] = n.rxs
		}
		if firstName == "" {
			firstRxs, firstStats, firstName = rxs, m.Stats(), configName(p)
			continue
		}
		if !reflect.DeepEqual(rxs, firstRxs) {
			t.Fatalf("%s reception logs diverge from %s:\n%+v\nvs\n%+v",
				configName(p), firstName, rxs, firstRxs)
		}
		if got := m.Stats(); got != firstStats {
			t.Fatalf("%s stats %+v diverge from %s stats %+v", configName(p), got, firstName, firstStats)
		}
	}
	return firstRxs, firstStats
}

// TestMatrixHiddenTerminal: two transmitters out of each other's range
// overlap at the node between them; both receptions must be corrupted
// under every model × index combination.
func TestMatrixHiddenTerminal(t *testing.T) {
	rxs, stats := runMatrix(t, 60, []geom.Point{{X: 0}, {X: 60}, {X: 120}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			sched.After(0, func() { _ = nodes[0].tr.StartTx("a", testAirtime) })
			sched.After(testAirtime/4, func() { _ = nodes[2].tr.StartTx("b", testAirtime) })
		})
	if len(rxs[1]) != 2 {
		t.Fatalf("middle node got %d receptions, want 2", len(rxs[1]))
	}
	for _, rx := range rxs[1] {
		if rx.ok {
			t.Fatalf("hidden-terminal overlap delivered intact: %+v", rx)
		}
	}
	if stats.Collisions != 2 || stats.Deliveries != 0 {
		t.Fatalf("stats = %+v, want 2 collisions, 0 deliveries", stats)
	}
}

// TestMatrixHalfDuplexTxDuringRx: a node that starts transmitting in
// the middle of a reception corrupts that reception.
func TestMatrixHalfDuplexTxDuringRx(t *testing.T) {
	rxs, _ := runMatrix(t, 100, []geom.Point{{X: 0}, {X: 50}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			sched.After(0, func() { _ = nodes[0].tr.StartTx("frame", testAirtime) })
			sched.After(testAirtime/2, func() { _ = nodes[1].tr.StartTx("own", testAirtime/4) })
		})
	if len(rxs[1]) != 1 || rxs[1][0].ok {
		t.Fatalf("receptions at the mid-reception transmitter: %+v, want 1 corrupted", rxs[1])
	}
}

// TestMatrixHalfDuplexRxWhileTx: a frame arriving at a node that is
// already transmitting is corrupted — even when the node's own
// transmission ends before the frame does.
func TestMatrixHalfDuplexRxWhileTx(t *testing.T) {
	rxs, _ := runMatrix(t, 100, []geom.Point{{X: 0}, {X: 50}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			sched.After(0, func() { _ = nodes[1].tr.StartTx("own", testAirtime/4) })
			sched.After(testAirtime/8, func() { _ = nodes[0].tr.StartTx("frame", testAirtime) })
		})
	if len(rxs[1]) != 1 || rxs[1][0].ok {
		t.Fatalf("receptions at the transmitting node: %+v, want 1 corrupted", rxs[1])
	}
	// Node 0's copy of "own" is corrupted too: node 0 began its own
	// transmission ("frame", at airtime/8) while "own" (on the air
	// until airtime/4) was still arriving — half-duplex cuts it off.
	if len(rxs[0]) != 1 || rxs[0][0].ok {
		t.Fatalf("receptions of 'own': %+v, want 1 corrupted (receiver began transmitting mid-frame)", rxs[0])
	}
}

// TestMatrixHalfDuplexStillTxAtFrameEnd: a long own transmission that
// spans a whole incoming frame corrupts it (checked at frame end).
func TestMatrixHalfDuplexStillTxAtFrameEnd(t *testing.T) {
	rxs, _ := runMatrix(t, 100, []geom.Point{{X: 0}, {X: 50}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			sched.After(0, func() { _ = nodes[1].tr.StartTx("long", 4*testAirtime) })
			sched.After(testAirtime, func() { _ = nodes[0].tr.StartTx("frame", testAirtime) })
		})
	if len(rxs[1]) != 1 || rxs[1][0].ok {
		t.Fatalf("receptions under a spanning own transmission: %+v, want 1 corrupted", rxs[1])
	}
}

// TestMatrixExactOverlap: two transmissions starting at the same
// instant with the same airtime corrupt each other at a common
// receiver, and the transmitters (in range of each other here) corrupt
// each other's copy through half-duplex.
func TestMatrixExactOverlap(t *testing.T) {
	rxs, stats := runMatrix(t, 100, []geom.Point{{X: 0}, {X: 50}, {X: 100}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			sched.After(0, func() {
				_ = nodes[0].tr.StartTx("a", testAirtime)
				_ = nodes[2].tr.StartTx("b", testAirtime)
			})
		})
	if len(rxs[1]) != 2 {
		t.Fatalf("middle node got %d receptions, want 2", len(rxs[1]))
	}
	for _, rx := range rxs[1] {
		if rx.ok {
			t.Fatalf("exact-overlap reception delivered intact: %+v", rx)
		}
	}
	// The transmitters hear each other's frame corrupted (half-duplex).
	if len(rxs[0]) != 1 || rxs[0][0].ok || len(rxs[2]) != 1 || rxs[2][0].ok {
		t.Fatalf("transmitter receptions: %+v / %+v, want 1 corrupted each", rxs[0], rxs[2])
	}
	if stats.Deliveries != 0 || stats.Collisions != 4 {
		t.Fatalf("stats = %+v, want 0 deliveries, 4 collisions", stats)
	}
}

// TestMatrixExactBoundarySequentialClean: frame B starting exactly when
// frame A ends is clean when B's transmission was initiated after A
// began — A's finish processing (scheduled at A's start) runs first.
func TestMatrixExactBoundarySequentialClean(t *testing.T) {
	rxs, _ := runMatrix(t, 100, []geom.Point{{X: 0}, {X: 50}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			sched.After(0, func() {
				_ = nodes[0].tr.StartTx("a", testAirtime)
				// Scheduled now (after A's StartTx), so at A's end this
				// event runs after A's finish: a clean back-to-back pair.
				sched.After(testAirtime, func() { _ = nodes[0].tr.StartTx("b", testAirtime) })
			})
		})
	if len(rxs[1]) != 2 || !rxs[1][0].ok || !rxs[1][1].ok {
		t.Fatalf("back-to-back receptions: %+v, want 2 clean", rxs[1])
	}
}

// TestMatrixExactBoundaryEarlyScheduledTxCorrupts pins a deliberate
// wart of the reception semantics, which every model must reproduce: a
// transmission fired at the exact instant another frame ends, from an
// event scheduled before that frame started, runs before the frame's
// finish processing — the frame is still live, so the two corrupt each
// other.
func TestMatrixExactBoundaryEarlyScheduledTxCorrupts(t *testing.T) {
	rxs, _ := runMatrix(t, 100, []geom.Point{{X: 0}, {X: 50}, {X: 100}},
		func(sched *sim.Scheduler, nodes []*testNode) {
			// Scheduled before A starts => lower sequence number than
			// A's finish processing at the same instant.
			sched.After(testAirtime, func() { _ = nodes[2].tr.StartTx("b", testAirtime) })
			sched.After(0, func() { _ = nodes[0].tr.StartTx("a", testAirtime) })
		})
	if len(rxs[1]) != 2 {
		t.Fatalf("middle node got %d receptions, want 2", len(rxs[1]))
	}
	for _, rx := range rxs[1] {
		if rx.ok {
			t.Fatalf("boundary reception delivered intact: %+v (want both corrupted)", rx)
		}
	}
}

// TestMatrixReentrantStartTxDuringFinish covers handlers transmitting
// from inside reception processing (the MAC answers frames this way):
// a response fired while the original frame's other receptions are
// still being finalised must corrupt exactly those receptions, under
// every model — in the batched model this exercises StartTx re-entering
// mid-walk.
func TestMatrixReentrantStartTxDuringFinish(t *testing.T) {
	var firstRxs [][]rxRecord
	var firstName string
	positions := []geom.Point{{X: 0}, {X: 50}, {X: 100}}
	for _, p := range mediumConfigs() {
		p.Range = 100
		sched := sim.NewScheduler()
		m := NewMedium(sched, p)
		nodes := make([]*testNode, len(positions))
		for i, pos := range positions {
			i := i
			n := &testNode{}
			id := pkt.NodeID(i + 1)
			n.tr = attach(t, m, id, mobility.Static{P: pos}, func(frame any, from pkt.NodeID, ok bool) {
				n.rxs = append(n.rxs, rxRecord{frame: frame, from: from, ok: ok, at: sched.Now()})
				// Node 2 (attach order before node 3) answers the
				// original frame immediately, while node 3's reception
				// of it is still unfinalised.
				if i == 1 && frame == "query" {
					_ = n.tr.StartTx("reply", testAirtime)
				}
			})
			nodes[i] = n
		}
		sched.After(0, func() { _ = nodes[0].tr.StartTx("query", testAirtime) })
		sched.Run(time.Hour)

		rxs := make([][]rxRecord, len(nodes))
		for i, n := range nodes {
			rxs[i] = n.rxs
		}
		if firstName == "" {
			firstRxs, firstName = rxs, configName(p)
			continue
		}
		if !reflect.DeepEqual(rxs, firstRxs) {
			t.Fatalf("%s reception logs diverge from %s:\n%+v\nvs\n%+v",
				configName(p), firstName, rxs, firstRxs)
		}
	}
	// Node 2 hears the query cleanly and replies. Node 3's copy of the
	// query is corrupted by the reply starting at the same instant its
	// own copy ends, before its finish is processed; node 3 then hears
	// the reply corrupted too (it started while the query was live
	// there). Node 1 hears the reply cleanly: its own transmission had
	// ended exactly when the reply began.
	if len(firstRxs[1]) != 1 || !firstRxs[1][0].ok {
		t.Fatalf("responder receptions: %+v, want clean query", firstRxs[1])
	}
	if len(firstRxs[0]) != 1 || !firstRxs[0][0].ok || firstRxs[0][0].frame != "reply" {
		t.Fatalf("query sender receptions: %+v, want clean reply", firstRxs[0])
	}
	if len(firstRxs[2]) != 2 || firstRxs[2][0].ok || firstRxs[2][1].ok {
		t.Fatalf("bystander receptions: %+v, want corrupted query then corrupted reply", firstRxs[2])
	}
}
