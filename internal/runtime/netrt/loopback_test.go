package netrt_test

import (
	"testing"
	"time"

	"anongossip/internal/pkt"
	"anongossip/internal/runtime/netrt"
	"anongossip/internal/scenario" // registers every protocol stack
	"anongossip/internal/stack"
)

const testGroup pkt.GroupID = 0xE0000001

// bootCluster starts n live protocol nodes on one in-process transport,
// all joined to testGroup, and returns them with a cleanup.
func bootCluster(t *testing.T, n int, spec stack.Spec, scale float64) []*netrt.ProtocolNode {
	t.Helper()
	tr := netrt.NewChanTransport()
	nodes := make([]*netrt.ProtocolNode, 0, n)
	for i := 0; i < n; i++ {
		pn, err := netrt.NewProtocolNode(netrt.ProtocolConfig{
			Node:  netrt.NodeConfig{ID: pkt.NodeID(i + 1), TimeScale: scale},
			Stack: spec,
			Seed:  42,
		}, tr)
		if err != nil {
			t.Fatalf("NewProtocolNode %d: %v", i+1, err)
		}
		t.Cleanup(func() { pn.Close() })
		nodes = append(nodes, pn)
	}
	for _, pn := range nodes {
		pn.Start()
	}
	for _, pn := range nodes {
		if err := pn.Join(testGroup); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	return nodes
}

// simBaselineRatio runs the simulated scenario on an equivalent
// topology — 3 nodes, all in mutual radio range, same stack — and
// returns its delivery ratio. The loopback cluster must do at least
// this well: a lossless in-process link can't be worse than a
// contended radio.
func simBaselineRatio(t *testing.T, spec stack.Spec) float64 {
	t.Helper()
	cfg := scenario.DefaultConfig()
	cfg.Protocol = 0
	cfg.Stack = spec
	cfg.Nodes = 3
	cfg.MemberFraction = 1
	cfg.Area.W, cfg.Area.H = 20, 20 // everyone inside the 75 m range
	cfg.MaxSpeed = 0.1
	cfg.Duration = 60 * time.Second
	cfg.JoinWindow = 5 * time.Second
	cfg.DataStart = 10 * time.Second
	cfg.DataEnd = 14 * time.Second
	cfg.DataInterval = 200 * time.Millisecond
	res, err := scenario.Run(cfg)
	if err != nil {
		t.Fatalf("sim baseline: %v", err)
	}
	return res.DeliveryRatio()
}

// TestLoopbackCluster is the hermetic end-to-end check the CI loopback
// job runs under -race: three live flood nodes on the in-process
// transport must deliver a multicast stream at least as well as the
// simulator does on the same (all-in-range, 3-node) topology.
func TestLoopbackCluster(t *testing.T) {
	baseline := simBaselineRatio(t, stack.Spec{Routing: "flood"})
	t.Logf("sim baseline delivery ratio: %.3f", baseline)

	// TimeScale 100: flood's 10 ms rebroadcast jitter costs 0.1 ms wall.
	nodes := bootCluster(t, 3, stack.Spec{Routing: "flood"}, 100)

	const packets = 21
	for i := 0; i < packets; i++ {
		if _, err := nodes[0].Publish(testGroup); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for _, pn := range nodes[1:] {
			n, err := pn.Delivered()
			if err != nil {
				t.Fatalf("Delivered: %v", err)
			}
			if n < packets {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	var sum float64
	for _, pn := range nodes[1:] {
		n, err := pn.Delivered()
		if err != nil {
			t.Fatalf("Delivered: %v", err)
		}
		t.Logf("node %v delivered %d/%d", pn.ID(), n, packets)
		sum += float64(n) / packets
	}
	live := sum / float64(len(nodes)-1)
	if live < baseline {
		t.Fatalf("live delivery ratio %.3f below sim baseline %.3f", live, baseline)
	}
	for _, pn := range nodes {
		if drops := pn.Runtime().Stats().InboxDrops.Load(); drops > 0 {
			t.Errorf("node %v dropped %d inbound frames", pn.ID(), drops)
		}
	}
}

// TestLoopbackClusterGossipStack boots the paper's full stack —
// multicast routing under anonymous-gossip recovery — on the live
// runtime and checks the stream flows end to end. A coarse smoke
// check, not a delivery-ratio comparison: tree construction under
// compressed wall-clock time is timing-sensitive, and the flood test
// above carries the strict bound.
func TestLoopbackClusterGossipStack(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live protocol smoke")
	}
	nodes := bootCluster(t, 3, stack.Spec{Routing: "flood", Recovery: "gossip"}, 100)

	const packets = 10
	for i := 0; i < packets; i++ {
		if _, err := nodes[0].Publish(testGroup); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}

	waitDelivered := func(pn *netrt.ProtocolNode, want uint64) uint64 {
		deadline := time.Now().Add(20 * time.Second)
		for {
			n, err := pn.Delivered()
			if err != nil {
				t.Fatalf("Delivered: %v", err)
			}
			if n >= want || time.Now().After(deadline) {
				return n
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, pn := range nodes[1:] {
		if n := waitDelivered(pn, packets); n == 0 {
			t.Errorf("node %v delivered nothing", pn.ID())
		} else {
			t.Logf("node %v delivered %d/%d", pn.ID(), n, packets)
		}
	}
	// The recovery layer must at least be live and queryable.
	if _, err := nodes[1].RecoveryStats(); err != nil {
		t.Errorf("RecoveryStats: %v", err)
	}
}

// TestProtocolNodeDuplicateID pins the join-time duplicate-ID contract
// at the assembled-stack level: the second node with the same identity
// must be rejected before it ever runs.
func TestProtocolNodeDuplicateID(t *testing.T) {
	tr := netrt.NewChanTransport()
	cfg := netrt.ProtocolConfig{
		Node:  netrt.NodeConfig{ID: 5},
		Stack: stack.Spec{Routing: "flood"},
	}
	pn, err := netrt.NewProtocolNode(cfg, tr)
	if err != nil {
		t.Fatalf("first node: %v", err)
	}
	defer pn.Close()
	if _, err := netrt.NewProtocolNode(cfg, tr); err == nil {
		t.Fatal("duplicate-ID join succeeded, want error")
	}
}
