package netrt

import (
	"fmt"

	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
	"anongossip/internal/stack"
)

// newNodeRNG roots a live node's RNG tree: the shared seed derived by
// the node's identity, so two nodes on one seed draw independent
// streams while a restarted node reproduces its own.
func newNodeRNG(seed int64, id pkt.NodeID) *sim.RNG {
	return sim.NewRNG(seed).Derive(fmt.Sprintf("netrt/%d", id))
}

// ProtocolConfig assembles one live protocol node.
type ProtocolConfig struct {
	// Node configures the runtime layer (identity, time scale, inbox).
	Node NodeConfig
	// Stack names the protocol stack to run; the zero Spec means the
	// registry default "flood".
	Stack stack.Spec
	// Seed seeds the node's RNG tree. Live nodes each own an
	// independent tree (unlike a simulation, there is no shared run
	// seed), so per-node seeds only need to differ to decorrelate
	// gossip target choices.
	Seed int64
	// Params carries per-layer configuration blocks, exactly as in a
	// simulated scenario.
	Params stack.Params
	// Registry resolves the stack; nil means stack.Default.
	Registry *stack.Registry
}

// ProtocolNode is one live node running a full protocol stack: the
// runtime Node, the network layer, and the routing (+ optional
// recovery) engines resolved through the stack registry — the same
// assembly the simulated scenario performs, bound to a live transport.
type ProtocolNode struct {
	rt       *Node
	stack    *node.Stack
	routing  stack.RoutingNode
	recovery stack.RecoveryNode
	spec     stack.Spec
}

// NewProtocolNode joins the transport, builds the stack, and wires the
// engines. The node is not started: register OnDeliver subscribers
// first, then call Start.
func NewProtocolNode(cfg ProtocolConfig, tr Transport) (*ProtocolNode, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = stack.Default
	}
	spec := cfg.Stack.Normalize()
	if spec.IsZero() {
		spec = stack.Spec{Routing: "flood"}
	}
	routingB, recoveryB, err := reg.Resolve(spec)
	if err != nil {
		return nil, fmt.Errorf("netrt: %w", err)
	}
	rt, err := NewNode(cfg.Node, tr)
	if err != nil {
		return nil, fmt.Errorf("netrt: join as %v: %w", cfg.Node.ID, err)
	}
	st := node.NewOnRuntime(rt)
	env := stack.Env{
		Stack:  st,
		RNG:    newNodeRNG(cfg.Seed, cfg.Node.ID),
		Index:  int(cfg.Node.ID),
		Params: cfg.Params,
	}
	pn := &ProtocolNode{rt: rt, stack: st, spec: spec}
	pn.routing = routingB.Build(env)
	if recoveryB != nil {
		pn.recovery, err = recoveryB.Build(env, pn.routing)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("netrt: assembling stack %v: %w", spec, err)
		}
	}
	return pn, nil
}

// ID returns the node's address.
func (p *ProtocolNode) ID() pkt.NodeID { return p.rt.id }

// Spec returns the resolved stack spec.
func (p *ProtocolNode) Spec() stack.Spec { return p.spec }

// Runtime exposes the underlying live node (stats, Do).
func (p *ProtocolNode) Runtime() *Node { return p.rt }

// NodeStats returns a copy of the network-layer counters.
func (p *ProtocolNode) NodeStats() (s node.Stats, err error) {
	err = p.rt.Do(func() { s = p.stack.Stats() })
	return s, err
}

// OnDeliver subscribes to application-level data deliveries. recovered
// marks packets obtained through the recovery layer (always false on
// bare-routing stacks). Call before Start.
func (p *ProtocolNode) OnDeliver(fn func(g pkt.GroupID, d *pkt.Data, recovered bool)) {
	if p.recovery != nil {
		p.recovery.OnDeliver(fn)
		return
	}
	p.routing.OnDeliver(func(g pkt.GroupID, d *pkt.Data) { fn(g, d, false) })
}

// Start activates the engines (beacons, hellos, gossip rounds) and then
// launches the event loop. Engine activation happens before the loop
// runs, on the caller's goroutine, matching the simulated assembly
// where Start precedes Scheduler.Run.
func (p *ProtocolNode) Start() {
	p.routing.Start()
	if p.recovery != nil {
		p.recovery.Start()
	}
	p.rt.Start()
}

// Close stops the event loop and leaves the transport.
func (p *ProtocolNode) Close() error { return p.rt.Close() }

// Join registers membership in g on the event loop.
func (p *ProtocolNode) Join(g pkt.GroupID) error {
	return p.rt.Do(func() {
		p.routing.Join(g)
		if p.recovery != nil {
			p.recovery.Attach(g)
		}
	})
}

// Publish multicasts one application payload to g and returns its
// sequence key.
func (p *ProtocolNode) Publish(g pkt.GroupID) (pkt.SeqKey, error) {
	var key pkt.SeqKey
	var sendErr error
	if err := p.rt.Do(func() {
		key, sendErr = p.routing.SendData(g)
		if sendErr == nil && p.recovery != nil {
			p.recovery.OnLocalSend(g, key)
		}
	}); err != nil {
		return pkt.SeqKey{}, err
	}
	return key, sendErr
}

// Delivered reports the count of unique data packets delivered to the
// member application.
func (p *ProtocolNode) Delivered() (n uint64, err error) {
	err = p.rt.Do(func() { n = p.routing.Delivered() })
	return n, err
}

// RecoveryStats returns the member's recovery counters (zero for
// bare-routing stacks).
func (p *ProtocolNode) RecoveryStats() (s stack.RecoveryStats, err error) {
	err = p.rt.Do(func() {
		if p.recovery != nil {
			s = p.recovery.Stats()
		}
	})
	return s, err
}
