// Package netrt implements the runtime boundary over live transports:
// the same protocol engines that run inside the discrete-event
// simulator run here as real-time nodes — wall-clock timers, real UDP
// sockets (or an in-process channel medium for hermetic tests), one
// goroutine event loop per node.
//
// The design deliberately reuses the simulation kernel's timer wheel:
// each Node owns a private sim.Scheduler and advances it to "scaled
// wall time since boot" whenever a timer is due or a frame arrives.
// Engine code therefore executes exactly as it does under the
// simulator — single-threaded per node, timers as pooled value handles
// — and the only new machinery is the loop that maps wall time onto
// the scheduler clock and frames onto the receive path.
package netrt

import (
	"fmt"
	"sync/atomic"
	"time"

	"anongossip/internal/pkt"
	rt "anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// NodeConfig configures one live node.
type NodeConfig struct {
	// ID is the node's address on the transport.
	ID pkt.NodeID
	// TimeScale maps wall time onto the node's clock: sim-seconds per
	// wall-second. 1 (and 0, the zero value) runs protocol timers in
	// real time; tests compress multi-second protocol cycles (hello
	// beacons, gossip rounds) with scales of 10–100.
	TimeScale float64
	// InboxSize bounds frames queued between the transport and the
	// event loop; excess frames are dropped and counted, like any
	// overrun link. 0 means DefaultInboxSize.
	InboxSize int
}

// DefaultInboxSize is the frame queue bound when NodeConfig leaves it 0.
const DefaultInboxSize = 4096

// Stats counts link-runtime activity at one node. All fields are
// atomics: the transport goroutine and the event loop update them
// concurrently and anyone may read a consistent-enough snapshot.
type Stats struct {
	// FramesIn / FramesOut count frames delivered up the stack and
	// accepted for transmission.
	FramesIn, FramesOut atomic.Uint64
	// BytesIn / BytesOut count the wire bytes of those frames.
	BytesIn, BytesOut atomic.Uint64
	// Malformed counts inbound datagrams DecodeFrame rejected.
	Malformed atomic.Uint64
	// Filtered counts well-formed frames link-addressed to some other
	// node (a broadcast-medium transport delivers everything; the
	// runtime filters like a MAC would).
	Filtered atomic.Uint64
	// SendErrors counts frames the transport refused.
	SendErrors atomic.Uint64
	// InboxDrops counts frames dropped because the event loop's inbox
	// was full.
	InboxDrops atomic.Uint64
}

// call is one closure posted onto the event loop.
type call struct {
	fn   func()
	done chan struct{}
}

// Node is one live node: a runtime.Runtime whose clock is scaled wall
// time and whose link is a Transport. All engine code — timer
// callbacks, receive handlers, closures posted with Do — executes on
// the node's single event-loop goroutine, so the engines need no
// locking, exactly as under the simulator.
type Node struct {
	id    pkt.NodeID
	scale float64
	sched *sim.Scheduler
	conn  Conn

	inbox chan []byte
	calls chan call
	quit  chan struct{}
	done  chan struct{}

	start   time.Time
	started bool

	onRecv rt.ReceiveFunc
	onDone rt.SendDoneFunc

	stats Stats
}

var _ rt.Runtime = (*Node)(nil)

// NewNode joins the transport as cfg.ID and returns the (not yet
// started) node. Frames arriving before Start buffer in the inbox and
// are delivered once the loop runs. Joining a duplicate ID fails with
// ErrDuplicateID.
func NewNode(cfg NodeConfig, tr Transport) (*Node, error) {
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	size := cfg.InboxSize
	if size <= 0 {
		size = DefaultInboxSize
	}
	n := &Node{
		id:    cfg.ID,
		scale: scale,
		sched: sim.NewScheduler(),
		inbox: make(chan []byte, size),
		calls: make(chan call),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	conn, err := tr.Join(cfg.ID, n.enqueue)
	if err != nil {
		return nil, err
	}
	n.conn = conn
	return n, nil
}

// enqueue is the transport's receive sink: non-blocking, counting
// drops, callable from any goroutine.
func (n *Node) enqueue(frame []byte) {
	select {
	case n.inbox <- frame:
	default:
		n.stats.InboxDrops.Add(1)
	}
}

// ID implements runtime.Runtime.
func (n *Node) ID() pkt.NodeID { return n.id }

// Stats returns the node's link-runtime counters.
func (n *Node) Stats() *Stats { return &n.stats }

// InboxCap returns the effective inbox capacity (NodeConfig.InboxSize,
// or DefaultInboxSize when that was left zero) — the bound
// Stats.InboxDrops counts against.
func (n *Node) InboxCap() int { return cap(n.inbox) }

// Now implements runtime.Clock. Like every Clock method it must only
// be called from the node's event loop (engine callbacks, Do
// closures) or before Start.
func (n *Node) Now() sim.Time { return n.sched.Now() }

// After implements runtime.Clock.
func (n *Node) After(d sim.Time, fn func()) sim.Timer { return n.sched.After(d, fn) }

// At implements runtime.Clock.
func (n *Node) At(t sim.Time, fn func()) sim.Timer { return n.sched.At(t, fn) }

// Send implements runtime.Runtime: encode the frame and hand it to the
// transport.
func (n *Node) Send(p *pkt.Packet, linkDst pkt.NodeID) bool {
	frame := pkt.EncodeFrame(&pkt.Frame{From: n.id, LinkDst: linkDst, Packet: p})
	if err := n.conn.Send(frame, linkDst); err != nil {
		n.stats.SendErrors.Add(1)
		return false
	}
	n.stats.FramesOut.Add(1)
	n.stats.BytesOut.Add(uint64(len(frame)))
	return true
}

// Bind implements runtime.Runtime.
func (n *Node) Bind(onReceive rt.ReceiveFunc, onSendDone rt.SendDoneFunc) {
	n.onRecv, n.onDone = onReceive, onSendDone
}

// Start launches the event loop. The node's clock starts at zero now.
func (n *Node) Start() {
	if n.started {
		panic("netrt: Node started twice")
	}
	n.started = true
	n.start = time.Now()
	go n.loop()
}

// Close stops the event loop and detaches from the transport. Pending
// timers are abandoned; in-flight Do calls return ErrClosed.
func (n *Node) Close() error {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
	if n.started {
		<-n.done
	} else {
		close(n.done)
	}
	return n.conn.Close()
}

// Do runs fn on the event loop and waits for it to finish — the only
// safe way for other goroutines (client APIs, tests) to touch engine
// state. It fails with ErrClosed once the node is closing.
func (n *Node) Do(fn func()) error {
	c := call{fn: fn, done: make(chan struct{})}
	select {
	case n.calls <- c:
	case <-n.quit:
		return ErrClosed
	}
	select {
	case <-c.done:
		return nil
	case <-n.done:
		select {
		case <-c.done:
			return nil
		default:
			return ErrClosed
		}
	}
}

// simNow maps the wall clock onto the node's timeline.
func (n *Node) simNow() sim.Time {
	return sim.Time(float64(time.Since(n.start)) * n.scale)
}

// wallDelay converts a node-timeline delay into wall time.
func (n *Node) wallDelay(d sim.Time) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / n.scale)
}

// loop is the node's event loop: advance the timer wheel to wall time,
// sleep until the next timer or an external stimulus, repeat.
func (n *Node) loop() {
	defer close(n.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func(armed bool) {
		if armed && !timer.Stop() {
			<-timer.C
		}
	}
	for {
		n.sched.Run(n.simNow())
		var wake <-chan time.Time
		armed := false
		if at, ok := n.sched.NextAt(); ok {
			timer.Reset(n.wallDelay(at - n.sched.Now()))
			wake, armed = timer.C, true
		}
		select {
		case <-n.quit:
			stopTimer(armed)
			return
		case c := <-n.calls:
			stopTimer(armed)
			n.sched.Run(n.simNow())
			c.fn()
			close(c.done)
		case frame := <-n.inbox:
			stopTimer(armed)
			n.sched.Run(n.simNow())
			n.deliver(frame)
		case <-wake:
		}
	}
}

// deliver decodes one inbound frame on the event loop and hands it up
// the stack. Malformed or misaddressed frames are counted and dropped
// — on a live socket they are routine, never fatal.
func (n *Node) deliver(frame []byte) {
	f, err := pkt.DecodeFrame(frame)
	if err != nil {
		n.stats.Malformed.Add(1)
		return
	}
	if f.From == n.id {
		// A broadcast-medium transport may echo our own frames back.
		return
	}
	broadcast := f.LinkDst == pkt.Broadcast
	if !broadcast && f.LinkDst != n.id {
		n.stats.Filtered.Add(1)
		return
	}
	n.stats.FramesIn.Add(1)
	n.stats.BytesIn.Add(uint64(len(frame)))
	if n.onRecv != nil {
		n.onRecv(f.Packet, f.From, broadcast)
	}
}

// String identifies the node in logs.
func (n *Node) String() string { return fmt.Sprintf("netrt(%v)", n.id) }
