package netrt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// waitFor polls cond until it holds or the deadline passes. Live-node
// tests are wall-clock driven, so assertions poll rather than sleep a
// fixed (and therefore flaky) amount.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestNodeTimersFire(t *testing.T) {
	tr := NewChanTransport()
	n, err := NewNode(NodeConfig{ID: 1, TimeScale: 1000}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	var fired atomic.Int32
	var order []int
	// Arm before Start: the clock starts at zero when the loop does.
	n.After(2*time.Second, func() { order = append(order, 2); fired.Add(1) })
	n.After(1*time.Second, func() { order = append(order, 1); fired.Add(1) })
	cancelled := n.After(1500*time.Millisecond, func() { t.Error("cancelled timer fired") })
	cancelled.Cancel()

	n.Start()
	// 2 sim-seconds at scale 1000 is 2 ms wall time.
	waitFor(t, 5*time.Second, func() bool { return fired.Load() == 2 }, "both timers")

	if err := n.Do(func() {
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Errorf("timers fired in order %v, want [1 2]", order)
		}
		if now := n.Now(); now < 2*time.Second {
			t.Errorf("Now() = %v after both timers, want >= 2s", now)
		}
		// Timers armed from the loop fire too.
		n.After(10*time.Millisecond, func() { fired.Add(1) })
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return fired.Load() == 3 }, "loop-armed timer")
}

func TestNodeDoAfterClose(t *testing.T) {
	tr := NewChanTransport()
	n, err := NewNode(NodeConfig{ID: 1}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	n.Start()
	if err := n.Do(func() {}); err != nil {
		t.Fatalf("Do on live node: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := n.Do(func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close err = %v, want ErrClosed", err)
	}
}

func TestNodeDeliveryFiltering(t *testing.T) {
	tr := NewChanTransport()
	n, err := NewNode(NodeConfig{ID: 1, TimeScale: 100}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	type rx struct {
		from      pkt.NodeID
		broadcast bool
	}
	var got atomic.Pointer[[]rx]
	got.Store(&[]rx{})
	n.Bind(func(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
		next := append(*got.Load(), rx{from, broadcast})
		got.Store(&next)
	}, nil)
	n.Start()

	// A raw peer on the same medium injects frames directly.
	peer, err := tr.Join(2, func([]byte) {})
	if err != nil {
		t.Fatalf("peer Join: %v", err)
	}
	data := &pkt.Packet{Kind: pkt.KindData, Src: 2, Dst: pkt.Broadcast, TTL: 4,
		Body: &pkt.Data{Origin: 2, Seq: 7}}
	frame := func(from, linkDst pkt.NodeID) []byte {
		return pkt.EncodeFrame(&pkt.Frame{From: from, LinkDst: linkDst, Packet: data})
	}

	peer.Send([]byte{0xde, 0xad}, 1)      // malformed: dropped, counted
	peer.Send(frame(2, 3), 1)             // unicast to node 3: filtered
	peer.Send(frame(1, pkt.Broadcast), 1) // echo of "our own" frame: dropped
	peer.Send(frame(2, pkt.Broadcast), 1) // delivered as broadcast
	peer.Send(frame(2, 1), 1)             // delivered as unicast

	waitFor(t, 5*time.Second, func() bool { return len(*got.Load()) == 2 }, "two deliveries")
	rxs := *got.Load()
	if rxs[0].from != 2 || !rxs[0].broadcast {
		t.Errorf("first delivery = %+v, want broadcast from 2", rxs[0])
	}
	if rxs[1].from != 2 || rxs[1].broadcast {
		t.Errorf("second delivery = %+v, want unicast from 2", rxs[1])
	}
	if m := n.Stats().Malformed.Load(); m != 1 {
		t.Errorf("Malformed = %d, want 1", m)
	}
	if f := n.Stats().Filtered.Load(); f != 1 {
		t.Errorf("Filtered = %d, want 1", f)
	}
	if in := n.Stats().FramesIn.Load(); in != 2 {
		t.Errorf("FramesIn = %d, want 2", in)
	}
}

func TestNodeSendEncodesFrames(t *testing.T) {
	tr := NewChanTransport()
	n, err := NewNode(NodeConfig{ID: 7}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	frames := make(chan []byte, 1)
	if _, err := tr.Join(9, func(f []byte) { frames <- f }); err != nil {
		t.Fatalf("listener Join: %v", err)
	}

	p := &pkt.Packet{Kind: pkt.KindData, Src: 7, Dst: pkt.Broadcast, TTL: 8,
		Body: &pkt.Data{Origin: 7, Seq: 3, PayloadLen: 64}}
	if !n.Send(p, pkt.Broadcast) {
		t.Fatal("Send returned false")
	}
	select {
	case raw := <-frames:
		f, err := pkt.DecodeFrame(raw)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if f.From != 7 || f.LinkDst != pkt.Broadcast {
			t.Errorf("frame addressing = from %v to %v, want from 7 broadcast", f.From, f.LinkDst)
		}
		if d, ok := f.Packet.Body.(*pkt.Data); !ok || d.Seq != 3 {
			t.Errorf("frame payload = %#v, want Data seq 3", f.Packet.Body)
		}
	case <-time.After(time.Second):
		t.Fatal("frame never arrived")
	}
	if out := n.Stats().FramesOut.Load(); out != 1 {
		t.Errorf("FramesOut = %d, want 1", out)
	}
}

// TestNodeClockInterface pins that both runtimes expose the same timer
// semantics: a netrt Node is a runtime.Clock backed by the same pooled
// sim.Timer values the simulator hands out.
func TestNodeClockTimerHandles(t *testing.T) {
	tr := NewChanTransport()
	n, err := NewNode(NodeConfig{ID: 1, TimeScale: 1000}, tr)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer n.Close()

	var tm sim.Timer
	if !tm.IsZero() {
		t.Error("zero Timer should report IsZero")
	}
	tm = n.After(time.Second, func() {})
	if tm.IsZero() {
		t.Error("armed timer reports IsZero")
	}
	tm.Cancel()
	if !tm.Done() {
		t.Error("cancelled timer should be Done")
	}
}
