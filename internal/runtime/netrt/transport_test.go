package netrt

import (
	"errors"
	"testing"
	"time"

	"anongossip/internal/pkt"
)

func TestChanTransportDuplicateJoin(t *testing.T) {
	tr := NewChanTransport()
	c1, err := tr.Join(1, func([]byte) {})
	if err != nil {
		t.Fatalf("first Join: %v", err)
	}
	if _, err := tr.Join(1, func([]byte) {}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate Join err = %v, want ErrDuplicateID", err)
	}
	// Leaving frees the ID for a rejoin (a restarted node).
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := tr.Join(1, func([]byte) {}); err != nil {
		t.Fatalf("rejoin after Close: %v", err)
	}
}

func TestChanTransportAddressing(t *testing.T) {
	tr := NewChanTransport()
	got := make(map[pkt.NodeID][][]byte)
	var conns [4]Conn
	for id := pkt.NodeID(1); id <= 3; id++ {
		id := id
		c, err := tr.Join(id, func(frame []byte) { got[id] = append(got[id], frame) })
		if err != nil {
			t.Fatalf("Join %v: %v", id, err)
		}
		conns[id] = c
	}

	if err := conns[1].Send([]byte("bcast"), pkt.Broadcast); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if err := conns[1].Send([]byte("uni"), 3); err != nil {
		t.Fatalf("unicast: %v", err)
	}

	if n := len(got[1]); n != 0 {
		t.Errorf("sender heard %d of its own frames", n)
	}
	if n := len(got[2]); n != 1 {
		t.Errorf("node 2 got %d frames, want 1 (broadcast only)", n)
	}
	if n := len(got[3]); n != 2 {
		t.Errorf("node 3 got %d frames, want 2 (broadcast + unicast)", n)
	}

	if err := conns[2].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := conns[2].Send([]byte("late"), pkt.Broadcast); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed conn err = %v, want ErrClosed", err)
	}
}

func TestUDPTransportDuplicateChecks(t *testing.T) {
	tr, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	if err := tr.AddPeer(2, "127.0.0.1:9001"); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	// Same ID, same address: idempotent.
	if err := tr.AddPeer(2, "127.0.0.1:9001"); err != nil {
		t.Errorf("re-AddPeer same addr: %v", err)
	}
	// Same ID, different address: rejected.
	if err := tr.AddPeer(2, "127.0.0.1:9002"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("AddPeer conflicting addr err = %v, want ErrDuplicateID", err)
	}
	// Joining an ID that is already a peer: rejected.
	if _, err := tr.Join(2, func([]byte) {}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("Join as registered peer err = %v, want ErrDuplicateID", err)
	}
	conn, err := tr.Join(1, func([]byte) {})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// One node per transport.
	if _, err := tr.Join(3, func([]byte) {}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("second Join err = %v, want ErrDuplicateID", err)
	}
	// Registering the node's own ID as a peer: rejected.
	if err := tr.AddPeer(1, "127.0.0.1:9003"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("AddPeer own id err = %v, want ErrDuplicateID", err)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	ta, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewUDP a: %v", err)
	}
	tb, err := NewUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewUDP b: %v", err)
	}
	if err := ta.AddPeer(2, tb.Addr()); err != nil {
		t.Fatalf("a.AddPeer: %v", err)
	}
	if err := tb.AddPeer(1, ta.Addr()); err != nil {
		t.Fatalf("b.AddPeer: %v", err)
	}

	gotA, gotB := make(chan []byte, 8), make(chan []byte, 8)
	ca, err := ta.Join(1, func(f []byte) { gotA <- f })
	if err != nil {
		t.Fatalf("a.Join: %v", err)
	}
	cb, err := tb.Join(2, func(f []byte) { gotB <- f })
	if err != nil {
		t.Fatalf("b.Join: %v", err)
	}
	defer ca.Close()
	defer cb.Close()

	if err := ca.Send([]byte("ping"), pkt.Broadcast); err != nil {
		t.Fatalf("a broadcast: %v", err)
	}
	select {
	case f := <-gotB:
		if string(f) != "ping" {
			t.Fatalf("b received %q, want %q", f, "ping")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b never received the broadcast")
	}
	if err := cb.Send([]byte("pong"), 1); err != nil {
		t.Fatalf("b unicast: %v", err)
	}
	select {
	case f := <-gotA:
		if string(f) != "pong" {
			t.Fatalf("a received %q, want %q", f, "pong")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("a never received the unicast")
	}

	// Unicast to an unknown peer fails loudly.
	if err := ca.Send([]byte("x"), 42); err == nil {
		t.Error("Send to unknown peer succeeded, want error")
	}
}
