package netrt

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"anongossip/internal/pkt"
)

// ErrDuplicateID reports a Join (or peer registration) with a node ID
// the transport already has — the live-transport mirror of the radio
// medium's Attach contract (radio.ErrDuplicateNode): a misconfigured
// cluster must fail loudly at join time rather than silently splitting
// one identity across two processes.
var ErrDuplicateID = errors.New("netrt: node id already joined")

// ErrClosed reports an operation on a closed transport or node.
var ErrClosed = errors.New("netrt: closed")

// Transport admits nodes onto a shared link-level medium. Join hands
// the transport the node's receive sink (called from a transport
// goroutine with the raw frame bytes; the sink must not block and must
// not retain or mutate the slice) and returns the node's send side.
type Transport interface {
	Join(id pkt.NodeID, recv func(frame []byte)) (Conn, error)
}

// Conn is one joined node's send side of a transport.
type Conn interface {
	// Send transmits one encoded frame to linkDst (pkt.Broadcast for
	// every peer). Delivery is best-effort, like the radio it stands in
	// for; an error means the frame certainly did not leave this node.
	Send(frame []byte, linkDst pkt.NodeID) error
	// Close detaches the node from the transport.
	Close() error
}

// --- in-process channel transport ---

// ChanTransport is a hermetic in-process medium: every joined node
// hears every broadcast, unicasts go to the addressed node only.
// It exists so clusters of live nodes can run inside one test process
// with no sockets, deterministically enough for -race CI jobs.
type ChanTransport struct {
	mu    sync.Mutex
	conns map[pkt.NodeID]*chanConn
}

// NewChanTransport returns an empty in-process medium.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{conns: make(map[pkt.NodeID]*chanConn)}
}

// Join implements Transport. Joining an ID that is already on the
// medium fails with ErrDuplicateID.
func (t *ChanTransport) Join(id pkt.NodeID, recv func(frame []byte)) (Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.conns[id]; dup {
		return nil, fmt.Errorf("%w: %v", ErrDuplicateID, id)
	}
	c := &chanConn{t: t, id: id, recv: recv}
	t.conns[id] = c
	return c, nil
}

type chanConn struct {
	t    *ChanTransport
	id   pkt.NodeID
	recv func(frame []byte)

	mu     sync.Mutex
	closed bool
}

// Send implements Conn. The sender never hears its own broadcasts,
// matching the radio medium's half-duplex behaviour.
func (c *chanConn) Send(frame []byte, linkDst pkt.NodeID) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	c.t.mu.Lock()
	var targets []*chanConn
	if linkDst == pkt.Broadcast {
		targets = make([]*chanConn, 0, len(c.t.conns)-1)
		for id, peer := range c.t.conns {
			if id != c.id {
				targets = append(targets, peer)
			}
		}
	} else if peer, ok := c.t.conns[linkDst]; ok {
		targets = []*chanConn{peer}
	}
	c.t.mu.Unlock()
	// Sinks run outside the lock: they only enqueue (never block), but
	// a sink that re-enters the transport must not deadlock.
	for _, peer := range targets {
		peer.recv(frame)
	}
	return nil
}

// Close implements Conn.
func (c *chanConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.t.mu.Lock()
	delete(c.t.conns, c.id)
	c.t.mu.Unlock()
	return nil
}

// --- UDP transport ---

// UDPTransport carries frames over a real UDP socket with a static
// peer table: one socket, one joined node per transport value. A
// broadcast frame is written once per known peer (UDP has no useful
// portable broadcast on loopback and testbeds, and the peer table is
// exactly the neighbour set anyway).
type UDPTransport struct {
	conn *net.UDPConn

	mu     sync.Mutex
	peers  map[pkt.NodeID]*net.UDPAddr
	joined bool
	self   pkt.NodeID
	closed bool

	readerDone chan struct{}
}

// NewUDP binds a UDP socket on listen (e.g. "127.0.0.1:7001", or
// ":0" for an ephemeral port).
func NewUDP(listen string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("netrt: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrt: listen %q: %w", listen, err)
	}
	return &UDPTransport{
		conn:       conn,
		peers:      make(map[pkt.NodeID]*net.UDPAddr),
		readerDone: make(chan struct{}),
	}, nil
}

// Addr returns the bound socket address (useful with ":0").
func (t *UDPTransport) Addr() string { return t.conn.LocalAddr().String() }

// AddPeer registers a remote node's address. Registering the same ID
// twice with a different address fails with ErrDuplicateID — two
// processes claiming one identity is the same misconfiguration the
// radio medium rejects at Attach.
func (t *UDPTransport) AddPeer(id pkt.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("netrt: resolve peer %v at %q: %w", id, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, dup := t.peers[id]; dup && prev.String() != ua.String() {
		return fmt.Errorf("%w: peer %v at both %v and %v", ErrDuplicateID, id, prev, ua)
	}
	if t.joined && id == t.self {
		return fmt.Errorf("%w: peer %v is this node's own id", ErrDuplicateID, id)
	}
	t.peers[id] = ua
	return nil
}

// Join implements Transport. The joining ID must not collide with a
// registered peer, and a UDPTransport carries exactly one node.
func (t *UDPTransport) Join(id pkt.NodeID, recv func(frame []byte)) (Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.joined {
		return nil, fmt.Errorf("%w: transport already carries %v", ErrDuplicateID, t.self)
	}
	if _, dup := t.peers[id]; dup {
		return nil, fmt.Errorf("%w: %v is already a registered peer", ErrDuplicateID, id)
	}
	t.joined, t.self = true, id
	go t.readLoop(recv)
	return (*udpConn)(t), nil
}

// readLoop pumps datagrams into the node's sink until the socket
// closes.
func (t *UDPTransport) readLoop(recv func(frame []byte)) {
	defer close(t.readerDone)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed socket (or fatal error): the node is done
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		recv(frame)
	}
}

// udpConn is the send side of a joined UDPTransport.
type udpConn UDPTransport

// Send implements Conn.
func (c *udpConn) Send(frame []byte, linkDst pkt.NodeID) error {
	t := (*UDPTransport)(c)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	var dsts []*net.UDPAddr
	if linkDst == pkt.Broadcast {
		dsts = make([]*net.UDPAddr, 0, len(t.peers))
		for _, a := range t.peers {
			dsts = append(dsts, a)
		}
	} else if a, ok := t.peers[linkDst]; ok {
		dsts = []*net.UDPAddr{a}
	} else {
		t.mu.Unlock()
		return fmt.Errorf("netrt: no peer %v in the peer table", linkDst)
	}
	t.mu.Unlock()
	var firstErr error
	for _, a := range dsts {
		if _, err := t.conn.WriteToUDP(frame, a); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Conn: it closes the socket and waits for the reader
// to drain.
func (c *udpConn) Close() error {
	t := (*UDPTransport)(c)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.readerDone
	return err
}
