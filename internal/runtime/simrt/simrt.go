// Package simrt implements the runtime boundary over the simulation
// kernel: timers go straight to the node's sim.Scheduler (its shard
// lane under the sharded kernel), and packets go through the 802.11
// MAC onto the shared radio medium.
//
// The adapter is deliberately nothing but indirection — the event
// sequence it produces is bit-identical to the pre-runtime wiring, and
// the golden digests in internal/scenario/testdata pin that.
package simrt

import (
	"fmt"

	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	rt "anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// Runtime is one simulated node's kernel surface: the scheduler for
// clock and timers, a MAC entity on the shared medium for frames.
type Runtime struct {
	id    pkt.NodeID
	sched *sim.Scheduler
	dcf   *mac.DCF

	onRecv rt.ReceiveFunc
	onDone rt.SendDoneFunc
}

var _ rt.Runtime = (*Runtime)(nil)

// New attaches a MAC entity for node id to the medium and wraps it,
// together with sched, as a Runtime. The MAC draws its backoff stream
// from rng by the same "mac/<id>" label the pre-runtime node layer
// used, so existing seeds reproduce identical runs. It fails when the
// medium already has a transceiver for id (radio.ErrDuplicateNode).
func New(sched *sim.Scheduler, rng *sim.RNG, medium *radio.Medium, id pkt.NodeID,
	pos mobility.Model, cfg mac.Config) (*Runtime, error) {
	r := &Runtime{id: id, sched: sched}
	dcf, err := mac.New(sched, rng.Derive(fmt.Sprintf("mac/%d", id)), medium, id, pos, cfg, mac.Callbacks{
		OnReceive: func(p *pkt.Packet, from pkt.NodeID, broadcast bool) {
			if r.onRecv != nil {
				r.onRecv(p, from, broadcast)
			}
		},
		OnSendDone: func(p *pkt.Packet, to pkt.NodeID, ok bool) {
			if r.onDone != nil {
				r.onDone(p, to, ok)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	r.dcf = dcf
	return r, nil
}

// ID implements runtime.Runtime.
func (r *Runtime) ID() pkt.NodeID { return r.id }

// Now implements runtime.Clock.
func (r *Runtime) Now() sim.Time { return r.sched.Now() }

// After implements runtime.Clock.
func (r *Runtime) After(d sim.Time, fn func()) sim.Timer { return r.sched.After(d, fn) }

// At implements runtime.Clock.
func (r *Runtime) At(t sim.Time, fn func()) sim.Timer { return r.sched.At(t, fn) }

// Send implements runtime.Runtime: the frame enters the MAC queue.
func (r *Runtime) Send(p *pkt.Packet, linkDst pkt.NodeID) bool {
	return r.dcf.Send(p, linkDst)
}

// Bind implements runtime.Runtime.
func (r *Runtime) Bind(onReceive rt.ReceiveFunc, onSendDone rt.SendDoneFunc) {
	r.onRecv, r.onDone = onReceive, onSendDone
}

// Scheduler exposes the node's scheduler lane (tests drive it).
func (r *Runtime) Scheduler() *sim.Scheduler { return r.sched }

// MAC exposes the MAC entity for horizon wiring and statistics.
func (r *Runtime) MAC() *mac.DCF { return r.dcf }
