// Package runtime defines the boundary between the protocol engines and
// whatever executes them. Everything an engine historically took from
// the simulation kernel — a monotonic clock, timer arm/cancel with the
// kernel's pooled value handles, one-hop packet transmission, and the
// node's own identity — is captured by the Runtime interface, with two
// implementations:
//
//   - runtime/simrt adapts the discrete-event kernel (sim.Scheduler,
//     radio.Medium, the 802.11 MAC). It is the path every scenario and
//     golden digest runs through, bit-identical to the pre-refactor
//     wiring.
//   - runtime/netrt runs a node in real time: wall-clock timers over the
//     same pooled timer wheel, and frames over a live transport (UDP
//     sockets, or an in-process channel hub for hermetic tests).
//
// The engines themselves (aodv, maodv, odmrp, flood, gossip) depend
// only on this package's Clock plus the node.Stack network layer, so
// one protocol codebase is both simulatable and deployable — the
// "reproduction to system" step of the ROADMAP.
package runtime

import (
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// Clock is the time and timer surface the protocol engines program
// against. Timestamps are sim.Time: nanoseconds since the start of the
// run under both runtimes (the simulator's virtual clock, or scaled
// wall time since boot under netrt). Timers are the kernel's pooled
// value handles — Cancel/Done/Fired work identically everywhere.
//
// *sim.Scheduler satisfies Clock natively; the real-time runtime
// embeds one as its timer wheel and advances it to the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() sim.Time
	// After schedules fn to run d after the current time. A negative d
	// fires at the current time; callbacks run on the node's event
	// loop, never concurrently with other callbacks of the same node.
	After(d sim.Time, fn func()) sim.Timer
	// At schedules fn at an absolute time; times in the past are
	// clamped to the present.
	At(t sim.Time, fn func()) sim.Timer
}

// *sim.Scheduler is the canonical Clock; both runtimes route timers
// through one.
var _ Clock = (*sim.Scheduler)(nil)

// ReceiveFunc handles a packet arriving over the link layer. from is
// the link-level transmitter (the previous hop); broadcast reports
// whether the frame was link-addressed to everyone rather than to this
// node specifically.
type ReceiveFunc func(p *pkt.Packet, from pkt.NodeID, broadcast bool)

// SendDoneFunc reports the fate of an accepted link transmission. ok is
// false when the link gave up on the frame (MAC retry exhaustion); the
// routing protocols turn that into link-failure handling. Runtimes
// without delivery feedback (plain UDP) simply never report failures.
type SendDoneFunc func(p *pkt.Packet, to pkt.NodeID, ok bool)

// Runtime is everything one node's network layer takes from the
// machinery beneath it. Implementations are single-node: each simulated
// or live node owns one Runtime value.
type Runtime interface {
	Clock

	// ID returns this node's address.
	ID() pkt.NodeID

	// Send hands one packet to the link for transmission to linkDst
	// (pkt.Broadcast for one-hop broadcast). It reports whether the
	// link accepted the frame — a full MAC queue or a closed transport
	// refuses, and the caller accounts the reject.
	Send(p *pkt.Packet, linkDst pkt.NodeID) bool

	// Bind installs the network layer's receive and send-completion
	// handlers. It must be called exactly once, before any traffic
	// flows; the constructor of node.Stack does it.
	Bind(onReceive ReceiveFunc, onSendDone SendDoneFunc)
}
