package maodv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anongossip/internal/pkt"
)

// The nearest-member field (paper §4.2) is a distributed minimum: the
// value a node advertises to next hop X is 1 + min(own membership as 0,
// min over other branches). These tests drive the advertisement formula
// (nearestValueFor) over synthetic trees until fixpoint and compare
// against ground-truth BFS distances.

// synthTree is an adjacency-list tree with a member set.
type synthTree struct {
	n      int
	adj    [][]int
	member []bool
}

// randomTree builds a uniformly random labelled tree of n nodes with
// each node independently a member with probability pMember (at least
// one member forced).
func randomTree(r *rand.Rand, n int, pMember float64) synthTree {
	t := synthTree{n: n, adj: make([][]int, n), member: make([]bool, n)}
	for i := 1; i < n; i++ {
		p := r.Intn(i)
		t.adj[i] = append(t.adj[i], p)
		t.adj[p] = append(t.adj[p], i)
	}
	anyMember := false
	for i := range t.member {
		if r.Float64() < pMember {
			t.member[i] = true
			anyMember = true
		}
	}
	if !anyMember {
		t.member[r.Intn(n)] = true
	}
	return t
}

// refDistance returns the hop count from `via` to the nearest member in
// the subtree reached by following the edge u->via (never crossing back
// through u), or pkt.NearestUnknown if that subtree has no member.
func (t synthTree) refDistance(u, via int) uint8 {
	type qe struct {
		node, dist int
	}
	queue := []qe{{via, 1}}
	visited := make([]bool, t.n)
	visited[u] = true
	visited[via] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if t.member[cur.node] {
			return uint8(cur.dist)
		}
		for _, nb := range t.adj[cur.node] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, qe{nb, cur.dist + 1})
			}
		}
	}
	return pkt.NearestUnknown
}

// buildGroups constructs per-node group states mirroring the tree.
func (t synthTree) buildGroups() []*group {
	groups := make([]*group, t.n)
	for i := 0; i < t.n; i++ {
		g := &group{
			id:     1,
			member: t.member[i],
			inTree: true,
			next:   make(map[pkt.NodeID]*nextHop),
		}
		for _, nb := range t.adj[i] {
			g.next[pkt.NodeID(nb+1)] = &nextHop{enabled: true, nearest: pkt.NearestUnknown}
		}
		groups[i] = g
	}
	return groups
}

// iterate runs synchronous advertisement rounds until fixpoint and
// reports the number of rounds.
func iterate(t synthTree, groups []*group) int {
	r := &Router{} // nearestValueFor depends only on group state
	for round := 1; ; round++ {
		changed := false
		for u := 0; u < t.n; u++ {
			for _, v := range t.adj[u] {
				val := r.nearestValueFor(groups[u], pkt.NodeID(v+1))
				e := groups[v].next[pkt.NodeID(u+1)]
				if e.nearest != val {
					e.nearest = val
					changed = true
				}
			}
		}
		if !changed {
			return round
		}
		if round > 4*t.n {
			return round // livelock guard; assertions will fail
		}
	}
}

func TestNearestMemberConvergesToBFSDistances(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(18)
		tree := randomTree(r, n, 0.35)
		groups := tree.buildGroups()
		iterate(tree, groups)

		for u := 0; u < n; u++ {
			for _, v := range tree.adj[u] {
				got := groups[u].next[pkt.NodeID(v+1)].nearest
				want := tree.refDistance(u, v)
				if got != want {
					t.Fatalf("trial %d: node %d via %d nearest = %d, want %d\nmembers=%v adj=%v",
						trial, u, v, got, want, tree.member, tree.adj)
				}
			}
		}
	}
}

func TestNearestMemberConvergesWithinDiameterRounds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(15)
		tree := randomTree(r, n, 0.3)
		groups := tree.buildGroups()
		rounds := iterate(tree, groups)
		// Convergence is bounded by the tree diameter (< n) plus one
		// verification round.
		if rounds > n+1 {
			t.Fatalf("trial %d: %d rounds for %d nodes", trial, rounds, n)
		}
	}
}

// Property: after convergence, a member's advertised value toward any
// neighbour is at least 1, and every finite value is achievable (there
// is some member in the corresponding subtree).
func TestNearestMemberSoundnessProperty(t *testing.T) {
	f := func(seed int64, sizeRaw, pRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(sizeRaw%14)
		tree := randomTree(r, n, float64(pRaw%100)/100)
		groups := tree.buildGroups()
		iterate(tree, groups)
		for u := 0; u < n; u++ {
			for _, v := range tree.adj[u] {
				got := groups[u].next[pkt.NodeID(v+1)].nearest
				if got == 0 {
					return false // distances through a link are >= 1
				}
				want := tree.refDistance(u, v)
				if (got == pkt.NearestUnknown) != (want == pkt.NearestUnknown) {
					return false // finite iff a member exists that way
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
