package maodv

import (
	"testing"
	"time"

	"anongossip/internal/aodv"
	"anongossip/internal/geom"
	"anongossip/internal/mac"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

const testGroup pkt.GroupID = 0xE0000001

// movable is a mobility model whose node jumps far away when *moved is
// set.
type movable struct {
	p     geom.Point
	moved *bool
}

func (m movable) Position(sim.Time) geom.Point {
	if m.moved != nil && *m.moved {
		return geom.Point{X: 1e6, Y: 1e6}
	}
	return m.p
}

type mworld struct {
	sched     *sim.Scheduler
	medium    *radio.Medium
	stacks    []*node.Stack
	unis      []*aodv.Router
	routers   []*Router
	delivered []map[pkt.SeqKey]int // per node: data key -> count
	moved     []bool
}

// fastConfig shortens join timers so leader bootstrap happens quickly in
// tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.JoinReplyWait = 200 * time.Millisecond
	cfg.JoinRetries = 2
	cfg.RepairRetries = 2
	return cfg
}

func buildM(t *testing.T, rangeM float64, positions []geom.Point) *mworld {
	t.Helper()
	w := &mworld{sched: sim.NewScheduler(), moved: make([]bool, len(positions))}
	w.medium = radio.NewMedium(w.sched, radio.Params{Range: rangeM})
	rng := sim.NewRNG(321)
	for i := range positions {
		i := i
		id := pkt.NodeID(i + 1)
		st, err := node.New(w.sched, rng.Derive("n/"+id.String()), w.medium, id,
			movable{p: positions[i], moved: &w.moved[i]}, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		uni := aodv.New(st, rng.Derive("a/"+id.String()), aodv.DefaultConfig())
		mr := New(st, uni, rng.Derive("m/"+id.String()), fastConfig())
		w.delivered = append(w.delivered, map[pkt.SeqKey]int{})
		mr.OnDeliver(func(_ pkt.GroupID, d *pkt.Data, _ pkt.NodeID) {
			w.delivered[i][d.Key()]++
		})
		uni.Start()
		w.stacks = append(w.stacks, st)
		w.unis = append(w.unis, uni)
		w.routers = append(w.routers, mr)
	}
	return w
}

func (w *mworld) joinAt(t sim.Time, idx int) {
	w.sched.At(t, func() { w.routers[idx].Join(testGroup) })
}

func (w *mworld) sendAt(t sim.Time, idx int) {
	w.sched.At(t, func() {
		if _, err := w.routers[idx].SendData(testGroup); err != nil {
			panic(err)
		}
	})
}

func linePos(n int, spacing float64) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: float64(i) * spacing}
	}
	return out
}

func TestLoneMemberBecomesLeader(t *testing.T) {
	w := buildM(t, 60, []geom.Point{{X: 0}})
	w.joinAt(0, 0)
	w.sched.Run(10 * time.Second)

	if leader, ok := w.routers[0].Leader(testGroup); !ok || leader != 1 {
		t.Fatalf("leader = (%v, %v), want (1, true)", leader, ok)
	}
	if !w.routers[0].InTree(testGroup) || !w.routers[0].IsMember(testGroup) {
		t.Fatal("lone member not in tree or not member")
	}
	if w.routers[0].Stats().LeaderElections != 1 {
		t.Fatalf("LeaderElections = %d, want 1", w.routers[0].Stats().LeaderElections)
	}
	if w.routers[0].Stats().GRPHsSent == 0 {
		t.Fatal("leader never sent a group hello")
	}
}

func TestTwoAdjacentMembersFormTree(t *testing.T) {
	w := buildM(t, 60, linePos(2, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 1)
	w.sched.Run(10 * time.Second)

	for i := 0; i < 2; i++ {
		if !w.routers[i].InTree(testGroup) {
			t.Fatalf("node %d not in tree", i+1)
		}
	}
	// Data flows both ways.
	w.sendAt(11*time.Second, 0)
	w.sendAt(12*time.Second, 1)
	w.sched.Run(15 * time.Second)
	if len(w.delivered[1]) != 1 {
		t.Fatalf("member 2 delivered %d packets, want 1", len(w.delivered[1]))
	}
	if len(w.delivered[0]) != 1 {
		t.Fatalf("member 1 delivered %d packets, want 1", len(w.delivered[0]))
	}
}

func TestLineTreeFormationAndDataDelivery(t *testing.T) {
	w := buildM(t, 60, linePos(4, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 3)
	w.sched.Run(10 * time.Second)

	// All four nodes are tree participants (1, 4 members; 2, 3 routers).
	for i := 0; i < 4; i++ {
		if !w.routers[i].InTree(testGroup) {
			t.Fatalf("node %d not in tree", i+1)
		}
	}
	if w.routers[1].IsMember(testGroup) || w.routers[2].IsMember(testGroup) {
		t.Fatal("pure routers are reported as members")
	}
	// 20 packets from the leader side.
	for i := 0; i < 20; i++ {
		w.sendAt(10*time.Second+sim.Time(i)*250*time.Millisecond, 0)
	}
	w.sched.Run(20 * time.Second)
	if got := len(w.delivered[3]); got != 20 {
		t.Fatalf("member 4 delivered %d packets, want 20", got)
	}
	// Routers forward but do not deliver.
	if len(w.delivered[1]) != 0 || len(w.delivered[2]) != 0 {
		t.Fatal("non-members delivered data")
	}
	if w.routers[1].Stats().DataForwarded == 0 {
		t.Fatal("interior router never forwarded data")
	}
}

func TestNearestMemberConvergesOnLine(t *testing.T) {
	w := buildM(t, 60, linePos(4, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 3)
	w.sched.Run(15 * time.Second)

	// Expected nearest-member values (paper §4.2 semantics):
	// node1: via 2 -> member 4 at 3 hops
	// node2: via 1 -> 1 hop, via 3 -> 2 hops
	// node3: via 2 -> 2 hops, via 4 -> 1 hop
	// node4: via 3 -> member 1 at 3 hops
	want := []map[pkt.NodeID]uint8{
		{2: 3},
		{1: 1, 3: 2},
		{2: 2, 4: 1},
		{3: 3},
	}
	for i, m := range want {
		got := map[pkt.NodeID]uint8{}
		for _, nh := range w.routers[i].TreeNextHops(testGroup) {
			got[nh.ID] = nh.Nearest
		}
		if len(got) != len(m) {
			t.Fatalf("node %d next hops = %v, want %v", i+1, got, m)
		}
		for id, v := range m {
			if got[id] != v {
				t.Errorf("node %d nearest via %v = %d, want %d", i+1, got[id], got[id], v)
			}
		}
	}
}

func TestUpstreamDownstreamDirections(t *testing.T) {
	w := buildM(t, 60, linePos(3, 50))
	w.joinAt(0, 0) // leader
	w.joinAt(3*time.Second, 2)
	w.sched.Run(10 * time.Second)

	// Node 3 joined the leader's tree: its link to 2 is upstream.
	for _, nh := range w.routers[2].TreeNextHops(testGroup) {
		if nh.ID == 2 && !nh.Upstream {
			t.Fatal("joiner's selected branch not marked upstream")
		}
	}
	// The leader's link to 2 is downstream.
	for _, nh := range w.routers[0].TreeNextHops(testGroup) {
		if nh.ID == 2 && nh.Upstream {
			t.Fatal("leader's branch marked upstream")
		}
	}
}

func TestDuplicateDataSuppressed(t *testing.T) {
	w := buildM(t, 60, linePos(2, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 1)
	w.sendAt(10*time.Second, 0)
	w.sched.Run(12 * time.Second)

	for k, n := range w.delivered[1] {
		if n != 1 {
			t.Fatalf("packet %v delivered %d times", k, n)
		}
	}
}

func TestOffTreeDataIgnored(t *testing.T) {
	// Node 3 is within radio range of member 2 but never joins.
	w := buildM(t, 60, linePos(3, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 1)
	w.sendAt(10*time.Second, 1) // member 2 transmits; node 3 overhears
	w.sched.Run(12 * time.Second)

	if len(w.delivered[2]) != 0 {
		t.Fatal("non-member delivered data")
	}
	if w.routers[2].InTree(testGroup) {
		t.Fatal("bystander ended up in tree")
	}
}

func TestLeaveCascadesPrune(t *testing.T) {
	w := buildM(t, 60, linePos(4, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 3)
	w.sched.Run(10 * time.Second)
	if !w.routers[1].InTree(testGroup) || !w.routers[2].InTree(testGroup) {
		t.Fatal("precondition: interior routers not in tree")
	}

	w.sched.After(0, func() { w.routers[3].Leave(testGroup) })
	w.sched.Run(15 * time.Second)

	if w.routers[3].InTree(testGroup) {
		t.Fatal("left member still in tree")
	}
	if w.routers[2].InTree(testGroup) || w.routers[1].InTree(testGroup) {
		t.Fatal("prune did not cascade through non-member leaf routers")
	}
	if !w.routers[0].InTree(testGroup) {
		t.Fatal("leader should remain in (degenerate) tree")
	}
}

func TestRepairAfterLinkBreak(t *testing.T) {
	// Diamond: members 1 (0,0) and 4 (100,0); routers 2 (50,40) and
	// 3 (50,-40); range 70 connects only the diamond edges.
	w := buildM(t, 70, []geom.Point{
		{X: 0, Y: 0}, {X: 50, Y: 40}, {X: 50, Y: -40}, {X: 100, Y: 0},
	})
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 3)
	// The diamond's two routers are hidden terminals to each other, so
	// join floods can collide; allow time for retries before sending.
	w.sendAt(15*time.Second, 0)
	w.sched.Run(18 * time.Second)
	if len(w.delivered[3]) != 1 {
		t.Fatal("precondition: initial delivery failed")
	}

	// Remove whichever router carries the tree.
	w.sched.After(0, func() {
		switch {
		case w.routers[1].InTree(testGroup):
			w.moved[1] = true
		case w.routers[2].InTree(testGroup):
			w.moved[2] = true
		default:
			t.Error("neither router is in the tree")
		}
	})
	// Wait out hello-loss detection (2.4 s) plus repair, then send again.
	w.sched.After(15*time.Second, func() {
		if _, err := w.routers[0].SendData(testGroup); err != nil {
			t.Errorf("SendData: %v", err)
		}
	})
	w.sched.Run(40 * time.Second)

	if got := len(w.delivered[3]); got != 2 {
		t.Fatalf("member 4 delivered %d packets, want 2 (repair failed)", got)
	}
	if w.routers[3].Stats().RepairsStarted == 0 && w.routers[0].Stats().RepairsStarted == 0 {
		t.Fatal("no repair was started")
	}
}

func TestPartitionElectsNewLeaderAndMergesBack(t *testing.T) {
	// Line 1-2-3: members 1 and 3, router 2. Node 2 leaves; 3 becomes a
	// partition leader; when 2 returns, the leaders merge (lower ID
	// wins).
	w := buildM(t, 60, linePos(3, 50))
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 2)
	w.sched.Run(10 * time.Second)
	if !w.routers[2].InTree(testGroup) {
		t.Fatal("precondition: member 3 not attached")
	}

	w.sched.After(0, func() { w.moved[1] = true })
	w.sched.Run(40 * time.Second) // hello loss + failed repair + election

	if leader, ok := w.routers[2].Leader(testGroup); !ok || leader != 3 {
		t.Fatalf("partitioned member's leader = (%v, %v), want itself (3)", leader, ok)
	}

	w.sched.After(0, func() { w.moved[1] = false })
	w.sched.Run(90 * time.Second) // GRPH exchange + stepdown + rejoin

	if leader, ok := w.routers[2].Leader(testGroup); !ok || leader != 1 {
		t.Fatalf("after merge, member 3 leader = (%v, %v), want (1, true)", leader, ok)
	}
	if w.routers[2].Stats().LeaderStepdowns == 0 {
		t.Fatal("losing leader never stepped down")
	}
	// Data flows across the merged tree again.
	w.sendAt(w.sched.Now()+time.Second, 0)
	w.sched.Run(w.sched.Now() + 10*time.Second)
	if len(w.delivered[2]) == 0 {
		t.Fatal("no delivery after merge")
	}
}

func TestSendDataRequiresMembership(t *testing.T) {
	w := buildM(t, 60, linePos(1, 50))
	if _, err := w.routers[0].SendData(testGroup); err == nil {
		t.Fatal("SendData from non-member succeeded")
	}
}

func TestMemberEvidenceFromJoinReplies(t *testing.T) {
	w := buildM(t, 60, linePos(3, 50))
	var evidence []pkt.NodeID
	w.routers[2].OnMemberEvidence(func(_ pkt.GroupID, m pkt.NodeID, _ uint8) {
		evidence = append(evidence, m)
	})
	w.joinAt(0, 0)
	w.joinAt(3*time.Second, 2)
	w.sched.Run(10 * time.Second)

	found := false
	for _, m := range evidence {
		if m == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("joiner collected no member evidence about the leader: %v", evidence)
	}
}

func TestDataCacheBounded(t *testing.T) {
	cfg := fastConfig()
	cfg.DataCacheSize = 8
	r := &Router{cfg: cfg}
	g := &group{
		next:     map[pkt.NodeID]*nextHop{},
		dataSeen: map[pkt.SeqKey]struct{}{},
	}
	for i := 0; i < 100; i++ {
		r.noteData(g, pkt.SeqKey{Origin: 1, Seq: uint32(i)})
	}
	if len(g.dataSeen) != 8 || len(g.dataOrder) != 8 {
		t.Fatalf("cache size = %d/%d, want 8", len(g.dataSeen), len(g.dataOrder))
	}
	// Most recent entries survive.
	for i := 92; i < 100; i++ {
		if !r.seenData(g, pkt.SeqKey{Origin: 1, Seq: uint32(i)}) {
			t.Fatalf("recent key %d evicted", i)
		}
	}
	if r.seenData(g, pkt.SeqKey{Origin: 1, Seq: 0}) {
		t.Fatal("oldest key still cached")
	}
}

func TestSatAdd8(t *testing.T) {
	tests := []struct {
		a, b, want uint8
	}{
		{1, 2, 3},
		{0, 0, 0},
		{pkt.LeaderHopsUnset, 1, pkt.LeaderHopsUnset},
		{1, pkt.LeaderHopsUnset, pkt.LeaderHopsUnset},
		{200, 100, pkt.LeaderHopsUnset - 1},
		{254, 0, pkt.LeaderHopsUnset - 1},
	}
	for _, tt := range tests {
		if got := satAdd8(tt.a, tt.b); got != tt.want {
			t.Errorf("satAdd8(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}
