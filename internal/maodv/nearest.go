package maodv

import (
	"anongossip/internal/pkt"
)

// Nearest-member maintenance (paper §4.2).
//
// Each tree router keeps, per next hop, the hop distance to the nearest
// group member reachable through that next hop. The value a node reports
// to next hop X is
//
//	1 + min( 0 if the node is itself a member,
//	         min over next hops Y != X of nearest[Y] )
//
// and a "modify message" (pkt.Nearest) is sent to X only when the value
// changes — the min-propagation the paper argues stays local. The values
// bias the anonymous gossip walk toward close members.

// nearestValueFor computes the distance-to-nearest-member this node
// advertises to next hop x.
func (r *Router) nearestValueFor(g *group, x pkt.NodeID) uint8 {
	best := pkt.NearestUnknown
	if g.member {
		best = 0
	}
	for id, e := range g.next {
		if id == x || !e.enabled {
			continue
		}
		if e.nearest < best {
			best = e.nearest
		}
	}
	return satAdd8(best, 1)
}

// nearestRecompute advertises changed values to all enabled next hops.
// lastSent is tracked per link in the nextHop entry to suppress
// unchanged updates.
func (r *Router) nearestRecompute(g *group) {
	for _, id := range g.sortedNextIDs() {
		e := g.next[id]
		if !e.enabled {
			continue
		}
		v := r.nearestValueFor(g, id)
		if e.lastAdvertised == v && e.advertised {
			continue
		}
		e.lastAdvertised = v
		e.advertised = true
		r.stats.NearestSent++
		msg := &pkt.Nearest{Group: g.id, Dist: v}
		r.stack.SendDirect(id, pkt.NewPacket(r.stack.ID(), id, msg))
	}
}

// onNearest records a neighbour's advertised distance and propagates any
// resulting changes.
func (r *Router) onNearest(p *pkt.Packet, from pkt.NodeID) {
	n, ok := p.Body.(*pkt.Nearest)
	if !ok {
		return
	}
	g, have := r.groups[n.Group]
	if !have {
		return
	}
	e, linked := g.next[from]
	if !linked || !e.enabled {
		return
	}
	if e.nearest == n.Dist {
		return
	}
	e.nearest = n.Dist
	r.nearestRecompute(g)
}
