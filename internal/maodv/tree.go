package maodv

import (
	"slices"

	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// --- MACT handling ---

func (r *Router) onMACT(p *pkt.Packet, from pkt.NodeID) {
	m, ok := p.Body.(*pkt.MACT)
	if !ok {
		return
	}
	g, have := r.groups[m.Group]
	if !have {
		return
	}
	switch {
	case m.Join():
		r.onMACTJoin(g, m, from)
	case m.Prune():
		r.onMACTPrune(g, from)
	case m.GroupLeader():
		r.onMACTGroupLeader(g, from)
	}
}

// onMACTJoin activates the branch toward the sender and climbs toward the
// tree along the recorded reply path if this node is not attached yet.
func (r *Router) onMACTJoin(g *group, m *pkt.MACT, from pkt.NodeID) {
	wasInTree := g.inTree

	if !wasInTree {
		// We must attach ourselves upstream before accepting downstream
		// branches; otherwise reject the activation so the joiner retries.
		path, ok := g.rrepPaths[m.RREQID]
		if !ok || path.expires <= r.sched.Now() {
			r.sendPrune(g, from)
			return
		}
		delete(g.rrepPaths, m.RREQID)
		up, have := g.next[path.upstream]
		if !have {
			up = &nextHop{nearest: pkt.NearestUnknown}
			g.next[path.upstream] = up
		}
		up.enabled = true
		up.upstream = true
		g.inTree = true

		fwd := m.CloneBody()
		fm, okBody := fwd.(*pkt.MACT)
		if !okBody {
			return
		}
		fm.HopsFromOrigin = satAdd8(m.HopsFromOrigin, 1)
		r.stats.MACTsSent++
		r.stack.SendDirect(path.upstream, pkt.NewPacket(r.stack.ID(), path.upstream, fm))
	}

	e, have := g.next[from]
	if !have {
		e = &nextHop{nearest: pkt.NearestUnknown}
		g.next[from] = e
	}
	e.enabled = true
	e.upstream = false
	if m.MemberOrigin() {
		d := satAdd8(m.HopsFromOrigin, 1)
		if d < e.nearest {
			e.nearest = d
		}
	}
	r.nearestRecompute(g)
}

// onMACTPrune removes the sender's branch. Losing the upstream branch is
// equivalent to an upstream link break: the node repairs toward the tree
// (paper §3's downstream-repairs rule). A non-member leaf cascades out.
func (r *Router) onMACTPrune(g *group, from pkt.NodeID) {
	e, have := g.next[from]
	if !have {
		return
	}
	wasUpstream := e.enabled && e.upstream
	delete(g.next, from)
	r.nearestRecompute(g)

	if wasUpstream && g.inTree {
		// A pruned upstream usually means the branch head dissolved in a
		// merge; the old hop count is meaningless, so rejoin permissively.
		g.hopsToLeader = pkt.LeaderHopsUnset
		if g.join == nil {
			r.startJoin(g, true)
		}
		return
	}
	r.maybePrune(g)
	if g.member && g.inTree && g.enabledCount() == 0 && !r.isLeader(g) {
		g.inTree = false
		g.hopsToLeader = pkt.LeaderHopsUnset
		if g.join == nil {
			r.startJoin(g, false)
		}
	}
}

// onMACTGroupLeader handles delegated leader selection after a failed
// repair upstream: members take leadership, routers pass it downstream.
func (r *Router) onMACTGroupLeader(g *group, from pkt.NodeID) {
	if g.member {
		r.becomeLeader(g)
		return
	}
	r.delegateLeadershipExcept(g, from)
}

// sendPrune emits MACT(P) to a neighbour.
func (r *Router) sendPrune(g *group, to pkt.NodeID) {
	r.stats.Prunes++
	r.stats.MACTsSent++
	m := &pkt.MACT{Group: g.id, Src: r.stack.ID(), Flags: pkt.MACTPrune}
	r.stack.SendDirect(to, pkt.NewPacket(r.stack.ID(), to, m))
}

// maybePrune removes this node from the tree if it is a non-member leaf
// (paper §3: leaf routers cascade out of the tree).
func (r *Router) maybePrune(g *group) {
	if g.member || !g.inTree {
		return
	}
	enabled := make([]pkt.NodeID, 0, len(g.next))
	for _, id := range g.sortedNextIDs() {
		if g.next[id].enabled {
			enabled = append(enabled, id)
		}
	}
	switch len(enabled) {
	case 0:
		r.detachFromTree(g)
	case 1:
		r.sendPrune(g, enabled[0])
		delete(g.next, enabled[0])
		r.detachFromTree(g)
	}
}

// detachFromTree clears tree participation (membership is unaffected).
func (r *Router) detachFromTree(g *group) {
	g.inTree = false
	g.hopsToLeader = pkt.LeaderHopsUnset
	for id := range g.next {
		delete(g.next, id)
	}
	if r.isLeader(g) {
		r.stopLeading(g)
	}
}

// --- leadership ---

func (r *Router) becomeLeader(g *group) {
	if r.isLeader(g) {
		return
	}
	g.leader = r.stack.ID()
	g.leaderValid = true
	g.hopsToLeader = 0
	g.inTree = true
	g.groupSeq++
	g.seqValid = true
	r.stats.LeaderElections++
	if g.grphTimer.IsZero() {
		r.scheduleGRPH(g)
	}
	r.nearestRecompute(g)
}

func (r *Router) stopLeading(g *group) {
	g.grphTimer.Cancel()
	g.grphTimer = sim.Timer{}
}

// delegateLeadership sends MACT(GL) down an arbitrary enabled branch.
func (r *Router) delegateLeadership(g *group) {
	r.delegateLeadershipExcept(g, r.stack.ID())
}

func (r *Router) delegateLeadershipExcept(g *group, except pkt.NodeID) {
	for _, id := range g.sortedNextIDs() {
		if e := g.next[id]; !e.enabled || id == except {
			continue
		}
		m := &pkt.MACT{Group: g.id, Src: r.stack.ID(), Flags: pkt.MACTGroupLeader}
		r.stats.MACTsSent++
		r.stack.SendDirect(id, pkt.NewPacket(r.stack.ID(), id, m))
		return
	}
	// Nowhere to delegate: the fragment dissolves.
	r.detachFromTree(g)
}

// scheduleGRPH runs the leader's periodic group hello.
func (r *Router) scheduleGRPH(g *group) {
	jitter := r.rng.Duration(r.cfg.GroupHelloJitter)
	g.grphTimer = r.sched.After(r.cfg.GroupHelloInterval+jitter, func() {
		if !r.isLeader(g) {
			g.grphTimer = sim.Timer{}
			return
		}
		g.groupSeq++
		g.grphSeen[r.stack.ID()] = g.groupSeq
		r.stats.GRPHsSent++
		grph := &pkt.GRPH{Group: g.id, Leader: r.stack.ID(), GroupSeq: g.groupSeq, HopCount: 0}
		r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, grph))
		r.scheduleGRPH(g)
	})
}

// onGRPH processes and refloods group hellos (network-wide flood with
// per-leader sequence-number duplicate suppression).
func (r *Router) onGRPH(p *pkt.Packet, from pkt.NodeID) {
	h, ok := p.Body.(*pkt.GRPH)
	if !ok {
		return
	}
	g := r.groupState(h.Group)
	if last, seen := g.grphSeen[h.Leader]; seen && !newerSeq(h.GroupSeq, last) {
		return // duplicate or stale flood from this leader
	}
	g.grphSeen[h.Leader] = h.GroupSeq

	r.adoptGroupInfo(g, h, from)

	// Reflood, jittered against hidden-terminal synchronisation.
	if p.TTL > 1 {
		cp := p.Clone()
		cp.TTL--
		body, okBody := cp.Body.(*pkt.GRPH)
		if !okBody {
			return
		}
		body.HopCount = satAdd8(h.HopCount, 1)
		r.sched.After(r.rng.Duration(r.cfg.FloodJitter), func() {
			r.stack.SendBroadcast(cp)
		})
	}
}

// adoptGroupInfo merges GRPH contents into local state. Leader conflicts
// after partition merges resolve deterministically: the lower node ID
// keeps the group everywhere; sequence numbers only order floods of the
// same leader (different leaders count independently, so comparing their
// sequences is meaningless).
func (r *Router) adoptGroupInfo(g *group, h *pkt.GRPH, from pkt.NodeID) {
	me := r.stack.ID()
	if r.isLeader(g) && h.Leader != me {
		if h.Leader < me {
			r.stepDown(g, h)
		}
		return
	}

	switch {
	case !g.leaderValid:
		g.leader = h.Leader
		g.leaderValid = true
		g.groupSeq = h.GroupSeq
		g.seqValid = true
	case h.Leader == g.leader:
		if newerSeq(h.GroupSeq, g.groupSeq) || !g.seqValid {
			g.groupSeq = h.GroupSeq
			g.seqValid = true
		}
	case h.Leader < g.leader:
		// A better (lower-ID) leader exists: adopt it wholesale.
		g.leader = h.Leader
		g.leaderValid = true
		g.groupSeq = h.GroupSeq
		g.seqValid = true
	default:
		return // flood from a leader that will lose the merge: ignore
	}

	// Distance estimate: exact when heard over the upstream tree link,
	// an optimistic bound otherwise.
	if g.inTree {
		d := satAdd8(h.HopCount, 1)
		if e, okNext := g.next[from]; okNext && e.enabled && e.upstream {
			g.hopsToLeader = d
		} else if d < g.hopsToLeader {
			g.hopsToLeader = d
		}
	}
}

// stepDown dissolves this node's leadership in favour of a lower-ID
// leader: downstream branches are pruned (their heads re-attach to the
// winner's tree through their own repairs, which cannot re-graft onto
// this node's dissolved fragment), and this node rejoins as an ordinary
// member. Keeping the subtree intact instead is tempting but creates
// tree loops when a descendant answers the ex-leader's rejoin flood.
func (r *Router) stepDown(g *group, h *pkt.GRPH) {
	r.stats.LeaderStepdowns++
	r.stopLeading(g)
	for _, id := range g.sortedNextIDs() {
		if g.next[id].enabled {
			r.sendPrune(g, id)
		}
		delete(g.next, id)
	}
	g.inTree = false
	g.leader = h.Leader
	g.leaderValid = true
	g.groupSeq = h.GroupSeq
	g.seqValid = true
	g.hopsToLeader = pkt.LeaderHopsUnset
	if g.member && g.join == nil {
		r.startJoin(g, false)
	}
}

// --- link breakage and repair ---

// onLinkBreak reacts to a lost neighbour: downstream nodes repair their
// upstream link; upstream nodes drop the branch (and prune if they become
// non-member leaves). Paper §3: "only the downstream node D attempts to
// repair this link".
func (r *Router) onLinkBreak(n pkt.NodeID) {
	gids := make([]pkt.GroupID, 0, len(r.groups))
	for gid := range r.groups {
		gids = append(gids, gid)
	}
	slices.Sort(gids)
	for _, gid := range gids {
		g := r.groups[gid]
		e, have := g.next[n]
		if !have || !e.enabled {
			continue
		}
		wasUpstream := e.upstream
		delete(g.next, n)
		r.nearestRecompute(g)

		if wasUpstream {
			if g.join == nil {
				r.startJoin(g, true)
			}
			continue
		}
		// Lost a downstream branch.
		r.maybePrune(g)
		if g.member && g.inTree && g.enabledCount() == 0 && !r.isLeader(g) {
			// Isolated member: try to re-attach from scratch.
			g.inTree = false
			g.hopsToLeader = pkt.LeaderHopsUnset
			if g.join == nil {
				r.startJoin(g, false)
			}
		}
	}
}

// repairFailed handles a partition: a member becomes the new leader of
// the downstream fragment; a router delegates leadership downstream.
func (r *Router) repairFailed(g *group) {
	r.stats.RepairsFailed++
	if g.member {
		r.becomeLeader(g)
		return
	}
	if g.enabledCount() == 0 {
		r.detachFromTree(g)
		return
	}
	r.delegateLeadership(g)
	// The router keeps serving its remaining branches; the delegated
	// member announces leadership via GRPH.
}
