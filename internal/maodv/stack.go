package maodv

import (
	"fmt"

	"anongossip/internal/aodv"
	"anongossip/internal/gossip"
	"anongossip/internal/pkt"
	"anongossip/internal/stack"
)

// The "maodv" routing axis: MAODV over its AODV unicast substrate, the
// paper's baseline multicast protocol.
func init() { stack.RegisterRouting(stackBuilder{}) }

type stackBuilder struct{}

func (stackBuilder) Name() string { return "maodv" }

func (stackBuilder) Build(env stack.Env) stack.RoutingNode {
	uni := aodv.New(env.Stack, env.RNG.Derive(fmt.Sprintf("aodv/%d", env.Index)),
		stack.Param(env.Params, "aodv", aodv.DefaultConfig))
	cfg := stack.Param(env.Params, "maodv", DefaultConfig)
	mr := New(env.Stack, uni, env.RNG.Derive(fmt.Sprintf("maodv/%d", env.Index)), cfg)
	return &stackNode{uni: uni, r: mr, payload: cfg.PayloadLen}
}

// stackNode adapts a Router (plus its AODV substrate) to
// stack.RoutingNode.
type stackNode struct {
	uni     *aodv.Router
	r       *Router
	payload uint16
}

func (n *stackNode) Join(g pkt.GroupID)                         { n.r.Join(g) }
func (n *stackNode) SendData(g pkt.GroupID) (pkt.SeqKey, error) { return n.r.SendData(g) }
func (n *stackNode) Delivered() uint64                          { return n.r.Stats().DataDelivered }
func (n *stackNode) PayloadLen() uint16                         { return n.payload }
func (n *stackNode) Start()                                     { n.uni.Start() }

func (n *stackNode) OnDeliver(fn func(g pkt.GroupID, d *pkt.Data)) {
	n.r.OnDeliver(func(g pkt.GroupID, d *pkt.Data, _ pkt.NodeID) { fn(g, d) })
}

// Unicast exposes the AODV substrate so recovery layers can reuse it
// for reply routing and hop estimates instead of building their own.
func (n *stackNode) Unicast() *aodv.Router { return n.uni }

// GossipTree exposes the multicast tree as an AG walk substrate.
func (n *stackNode) GossipTree() gossip.Tree { return treeAdapter{n.r} }

// OnMemberEvidence forwards MAODV's incidental membership knowledge
// (paper §4.2) to a recovery layer's member cache.
func (n *stackNode) OnMemberEvidence(fn func(g pkt.GroupID, member pkt.NodeID, hops uint8)) {
	n.r.OnMemberEvidence(fn)
}

// treeAdapter exposes a Router through the gossip.Tree interface.
type treeAdapter struct{ r *Router }

func (t treeAdapter) NextHops(g pkt.GroupID) []gossip.NextHop {
	hops := t.r.TreeNextHops(g)
	out := make([]gossip.NextHop, len(hops))
	for i, h := range hops {
		out[i] = gossip.NextHop{ID: h.ID, Nearest: h.Nearest}
	}
	return out
}

func (t treeAdapter) IsMember(g pkt.GroupID) bool { return t.r.IsMember(g) }
