// Package maodv implements the multicast operation of AODV (MAODV, paper
// reference [2], IETF draft v5 era) — the unreliable multicast routing
// protocol Anonymous Gossip runs over.
//
// Implemented behaviours (paper §3):
//
//   - per-group multicast route table: group leader, group sequence
//     number, hop count to leader, and the next-hop set with enabled
//     flags;
//   - joining via RREQ(J) floods answered by tree nodes, branch selection
//     ("shortest among the freshest"), and MACT activation;
//   - leaf pruning with cascade;
//   - link-break repair initiated by the downstream node only, using the
//     hop-count-to-leader RREQ extension so only closer nodes answer;
//   - partition handling: failed repairs elect a new leader (members) or
//     delegate leadership downstream via MACT(GL);
//   - group hello (GRPH) floods from the leader every 5 s, refreshing
//     group sequence numbers and resolving leader conflicts after merges;
//   - data forwarding along tree edges with duplicate suppression.
//
// The nearest-member field of paper §4.2 (AG's locality optimisation) is
// maintained in nearest.go.
//
// Known simplification (documented in DESIGN.md): tree merges after long
// partitions use a lower-ID-wins leader rule with a repair-style rejoin
// that keeps the loser's subtree intact. Transient tree loops that can
// arise during merges are rendered harmless by the data duplicate cache.
package maodv

import (
	"slices"
	"time"

	"anongossip/internal/aodv"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// Config holds the MAODV parameters.
type Config struct {
	// GroupHelloInterval is the leader's GRPH flood period (5 s in the
	// paper).
	GroupHelloInterval time.Duration
	// GroupHelloJitter randomises GRPH phase.
	GroupHelloJitter time.Duration
	// JoinReplyWait is how long a joiner collects RREPs before selecting
	// a branch; it doubles per retry.
	JoinReplyWait time.Duration
	// JoinRetries bounds join RREQ floods before declaring no tree
	// reachable.
	JoinRetries int
	// RepairRetries bounds repair RREQ floods before declaring a
	// partition.
	RepairRetries int
	// RREPPathLifetime is how long recorded reply paths stay usable for
	// MACT activation.
	RREPPathLifetime time.Duration
	// DataCacheSize bounds the per-group duplicate-suppression cache.
	DataCacheSize int
	// PayloadLen is the synthetic application payload size (64 bytes in
	// the paper).
	PayloadLen uint16
	// FloodJitter delays GRPH reflooding to break hidden-terminal
	// synchronisation (see aodv.Config.BroadcastJitter).
	FloodJitter time.Duration
	// ForwardJitter delays tree data re-broadcasts for the same reason;
	// it is kept smaller to limit per-hop latency.
	ForwardJitter time.Duration
}

// DefaultConfig returns the paper's MAODV configuration.
func DefaultConfig() Config {
	return Config{
		GroupHelloInterval: 5 * time.Second,
		GroupHelloJitter:   500 * time.Millisecond,
		JoinReplyWait:      400 * time.Millisecond,
		JoinRetries:        3,
		RepairRetries:      2,
		RREPPathLifetime:   3 * time.Second,
		DataCacheSize:      1024,
		PayloadLen:         64,
		FloodJitter:        10 * time.Millisecond,
		ForwardJitter:      3 * time.Millisecond,
	}
}

// NextHopInfo describes one enabled tree link, as exposed to the gossip
// layer (paper §4.2: the walk needs next hops and their nearest-member
// values, nothing else).
type NextHopInfo struct {
	ID pkt.NodeID
	// Nearest is the hop distance to the closest group member through
	// this link (pkt.NearestUnknown when not yet learned).
	Nearest uint8
	// Upstream marks the link toward the group leader.
	Upstream bool
}

// DeliverFunc consumes multicast data delivered to a member application.
type DeliverFunc func(group pkt.GroupID, d *pkt.Data, from pkt.NodeID)

// MemberEvidenceFunc consumes incidental knowledge that a node is a group
// member at the given hop distance (pkt.NearestUnknown when unknown); the
// gossip member cache is fed from this (paper §4.3: "this information
// itself is collected at no extra cost").
type MemberEvidenceFunc func(group pkt.GroupID, member pkt.NodeID, hops uint8)

// Stats counts MAODV protocol activity at one node.
type Stats struct {
	JoinsStarted    uint64
	JoinsActivated  uint64
	RepairsStarted  uint64
	RepairsFailed   uint64
	LeaderElections uint64
	LeaderStepdowns uint64
	MACTsSent       uint64
	GRPHsSent       uint64
	DataSent        uint64
	DataDelivered   uint64
	DataForwarded   uint64
	DataDuplicates  uint64
	DataOffTree     uint64
	Prunes          uint64
	NearestSent     uint64
}

// nextHop is one entry of the multicast route table's next-hop list.
type nextHop struct {
	enabled  bool
	upstream bool
	// nearest is the learned distance to the closest member through this
	// link (paper §4.2).
	nearest uint8
	// lastAdvertised/advertised suppress unchanged Nearest updates.
	lastAdvertised uint8
	advertised     bool
}

// rrepPath remembers where a multicast RREP came from so a following
// MACT can climb toward the replier.
type rrepPath struct {
	upstream pkt.NodeID
	expires  sim.Time
}

// candidate is one join reply under consideration.
type candidate struct {
	from       pkt.NodeID
	groupSeq   uint32
	hops       uint8
	leaderHops uint8
	leader     pkt.NodeID
}

// joinState tracks an in-progress join or repair.
type joinState struct {
	rreqID   uint32
	repair   bool
	prevHops uint8
	retries  int
	timer    sim.Timer
	best     *candidate
}

// group is the per-group state (multicast route table entry plus
// protocol machinery).
type group struct {
	id     pkt.GroupID
	member bool
	inTree bool

	leader       pkt.NodeID
	leaderValid  bool
	groupSeq     uint32
	seqValid     bool
	hopsToLeader uint8

	next      map[pkt.NodeID]*nextHop
	rrepPaths map[uint32]rrepPath
	join      *joinState
	grphTimer sim.Timer
	// grphSeen deduplicates GRPH floods per originating leader; a shared
	// counter would let a rogue high-sequence leader suppress the real
	// leader's floods during merges.
	grphSeen map[pkt.NodeID]uint32

	dataSeen  map[pkt.SeqKey]struct{}
	dataOrder []pkt.SeqKey
	dataNext  int

	nextDataSeq uint32
}

// enabledCount returns the number of enabled next hops.
func (g *group) enabledCount() int {
	n := 0
	for _, e := range g.next {
		if e.enabled {
			n++
		}
	}
	return n
}

// sortedNextIDs returns the next-hop node IDs in ascending order.
// Protocol decisions must never depend on Go map iteration order, or
// same-seed runs diverge.
func (g *group) sortedNextIDs() []pkt.NodeID {
	ids := make([]pkt.NodeID, 0, len(g.next))
	for id := range g.next {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Router is one node's MAODV entity.
type Router struct {
	cfg   Config
	stack *node.Stack
	sched runtime.Clock
	rng   *sim.RNG
	uni   *aodv.Router

	groups map[pkt.GroupID]*group

	deliverSubs  []DeliverFunc
	evidenceSubs []MemberEvidenceFunc

	stats Stats
}

var _ aodv.MulticastHooks = (*Router)(nil)

// New builds a MAODV router on top of the node stack and its AODV
// unicast router, registering all multicast packet handlers.
func New(st *node.Stack, uni *aodv.Router, rng *sim.RNG, cfg Config) *Router {
	r := &Router{
		cfg:    cfg,
		stack:  st,
		sched:  st.Clock(),
		rng:    rng,
		uni:    uni,
		groups: make(map[pkt.GroupID]*group),
	}
	uni.SetMulticastHooks(r)
	uni.OnLinkBreak(r.onLinkBreak)
	st.Handle(pkt.KindMACT, r.onMACT)
	st.Handle(pkt.KindGRPH, r.onGRPH)
	st.Handle(pkt.KindData, r.onData)
	st.Handle(pkt.KindNearest, r.onNearest)
	return r
}

// ID returns the owning node's address.
func (r *Router) ID() pkt.NodeID { return r.stack.ID() }

// Stats returns a copy of the protocol counters.
func (r *Router) Stats() Stats { return r.stats }

// OnDeliver subscribes to multicast data deliveries at this member.
func (r *Router) OnDeliver(fn DeliverFunc) { r.deliverSubs = append(r.deliverSubs, fn) }

// OnMemberEvidence subscribes to incidental member sightings.
func (r *Router) OnMemberEvidence(fn MemberEvidenceFunc) {
	r.evidenceSubs = append(r.evidenceSubs, fn)
}

// IsMember reports group membership of this node.
func (r *Router) IsMember(gid pkt.GroupID) bool {
	g, ok := r.groups[gid]
	return ok && g.member
}

// InTree reports whether this node is currently part of the group's
// multicast tree (as member or router).
func (r *Router) InTree(gid pkt.GroupID) bool {
	g, ok := r.groups[gid]
	return ok && g.inTree
}

// Leader returns the current group leader, if known.
func (r *Router) Leader(gid pkt.GroupID) (pkt.NodeID, bool) {
	g, ok := r.groups[gid]
	if !ok || !g.leaderValid {
		return 0, false
	}
	return g.leader, true
}

// TreeNextHops returns the enabled tree links and their nearest-member
// values — the interface the Anonymous Gossip walk runs on. The result
// is sorted by node ID so downstream random choices are reproducible.
func (r *Router) TreeNextHops(gid pkt.GroupID) []NextHopInfo {
	g, ok := r.groups[gid]
	if !ok {
		return nil
	}
	out := make([]NextHopInfo, 0, len(g.next))
	for _, id := range g.sortedNextIDs() {
		e := g.next[id]
		if !e.enabled {
			continue
		}
		out = append(out, NextHopInfo{ID: id, Nearest: e.nearest, Upstream: e.upstream})
	}
	return out
}

// group returns existing state or creates a passive shell (used by nodes
// that merely relay GRPH floods or record RREP paths).
func (r *Router) groupState(gid pkt.GroupID) *group {
	g, ok := r.groups[gid]
	if !ok {
		g = &group{
			id:           gid,
			hopsToLeader: pkt.LeaderHopsUnset,
			next:         make(map[pkt.NodeID]*nextHop),
			rrepPaths:    make(map[uint32]rrepPath),
			grphSeen:     make(map[pkt.NodeID]uint32),
			dataSeen:     make(map[pkt.SeqKey]struct{}),
		}
		r.groups[gid] = g
	}
	return g
}

// Join makes this node a member of the group and begins tree attachment.
func (r *Router) Join(gid pkt.GroupID) {
	g := r.groupState(gid)
	if g.member {
		return
	}
	g.member = true
	r.nearestRecompute(g)
	if !g.inTree {
		r.startJoin(g, false)
	}
}

// Leave revokes membership. Leaf nodes prune themselves; interior nodes
// remain as pure routers (paper §3).
func (r *Router) Leave(gid pkt.GroupID) {
	g, ok := r.groups[gid]
	if !ok || !g.member {
		return
	}
	g.member = false
	if g.join != nil {
		g.join.timer.Cancel()
		g.join = nil
	}
	if r.isLeader(g) {
		// Leadership requires membership; delegate before leaving.
		r.stopLeading(g)
		r.delegateLeadership(g)
	}
	r.maybePrune(g)
	r.nearestRecompute(g)
}

func (r *Router) isLeader(g *group) bool {
	return g.leaderValid && g.leader == r.stack.ID()
}

// --- join / repair ---

func (r *Router) startJoin(g *group, repair bool) {
	if g.join != nil {
		return // already in progress
	}
	js := &joinState{
		rreqID:   r.uni.AllocRREQID(),
		repair:   repair,
		prevHops: g.hopsToLeader,
	}
	g.join = js
	if repair {
		r.stats.RepairsStarted++
	} else {
		r.stats.JoinsStarted++
	}
	r.sendJoinRREQ(g, js)
}

func (r *Router) sendJoinRREQ(g *group, js *joinState) {
	r.uni.NoteOwnRREQ(js.rreqID)
	req := &pkt.RREQ{
		Flags:      pkt.RREQJoin,
		ID:         js.rreqID,
		Dst:        uint32(g.id),
		Orig:       r.stack.ID(),
		OrigSeq:    r.uni.NextSeq(),
		LeaderHops: pkt.LeaderHopsUnset,
	}
	if g.seqValid {
		req.DstSeq = g.groupSeq
	} else {
		req.Flags |= pkt.RREQUnknownSeq
	}
	if js.repair {
		req.Flags |= pkt.RREQRepair
		req.LeaderHops = js.prevHops
		if req.LeaderHops == pkt.LeaderHopsUnset {
			req.LeaderHops = pkt.LeaderHopsUnset - 1 // permissive when unknown
		}
	}
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, req))

	wait := r.cfg.JoinReplyWait << uint(js.retries)
	js.timer = r.sched.After(wait, func() { r.onJoinWaitOver(g, js) })
}

// onJoinWaitOver selects the best reply (or retries/fails).
func (r *Router) onJoinWaitOver(g *group, js *joinState) {
	if g.join != js {
		return
	}
	if js.best != nil {
		r.activateBranch(g, js)
		return
	}
	if js.retries < r.retryBudget(js) {
		js.retries++
		js.rreqID = r.uni.AllocRREQID()
		r.sendJoinRREQ(g, js)
		return
	}
	// No tree reachable.
	g.join = nil
	if js.repair {
		r.repairFailed(g)
		return
	}
	if g.member {
		r.becomeLeader(g)
	}
}

func (r *Router) retryBudget(js *joinState) int {
	if js.repair {
		return r.cfg.RepairRetries
	}
	return r.cfg.JoinRetries
}

// activateBranch sends MACT(J) along the selected reply path.
func (r *Router) activateBranch(g *group, js *joinState) {
	best := js.best
	g.join = nil
	e, ok := g.next[best.from]
	if !ok {
		e = &nextHop{nearest: pkt.NearestUnknown}
		g.next[best.from] = e
	}
	e.enabled = true
	e.upstream = true
	g.inTree = true
	g.leader = best.leader
	g.leaderValid = true
	if !g.seqValid || newerSeq(best.groupSeq, g.groupSeq) {
		g.groupSeq = best.groupSeq
		g.seqValid = true
	}
	// Depth = path to the replier (HopCount counts relays, so +1) plus
	// the replier's own distance to the leader.
	g.hopsToLeader = satAdd8(satAdd8(best.hops, 1), best.leaderHops)
	r.stats.JoinsActivated++

	flags := pkt.MACTJoin
	if g.member {
		flags |= pkt.MACTMemberOrigin
	}
	mact := &pkt.MACT{
		Group:          g.id,
		Src:            r.stack.ID(),
		Flags:          flags,
		HopsFromOrigin: 0,
		RREQID:         js.rreqID,
	}
	r.stats.MACTsSent++
	r.stack.SendDirect(best.from, pkt.NewPacket(r.stack.ID(), best.from, mact))
	r.nearestRecompute(g)
}

// satAdd8 adds with saturation below the unset sentinel.
func satAdd8(a, b uint8) uint8 {
	if a == pkt.LeaderHopsUnset || b == pkt.LeaderHopsUnset {
		return pkt.LeaderHopsUnset
	}
	s := uint16(a) + uint16(b)
	if s >= uint16(pkt.LeaderHopsUnset) {
		return pkt.LeaderHopsUnset - 1
	}
	return uint8(s)
}

func newerSeq(a, b uint32) bool { return int32(a-b) > 0 }

// --- aodv.MulticastHooks ---

// HandleJoinRREQ implements aodv.MulticastHooks: tree nodes answer join
// and repair requests with multicast RREPs.
func (r *Router) HandleJoinRREQ(req *pkt.RREQ, from pkt.NodeID) bool {
	g, ok := r.groups[pkt.GroupID(req.Dst)]
	if !ok || !g.inTree {
		return false
	}
	// Never answer a requester's flood from inside its own subtree: that
	// would graft a loop during partition merges.
	if g.leaderValid && g.leader == req.Orig {
		return false
	}
	// Freshness: our group sequence must be at least the requested one.
	if req.Flags&pkt.RREQUnknownSeq == 0 && g.seqValid && newerSeq(req.DstSeq, g.groupSeq) {
		return false
	}
	// Repair extension: only nodes strictly closer to the leader answer.
	if req.Repair() && !(g.hopsToLeader < req.LeaderHops) {
		return false
	}
	flags := pkt.RREPMulticast
	if g.member {
		flags |= pkt.RREPMember
	}
	rep := &pkt.RREP{
		Flags:      flags,
		HopCount:   0,
		Dst:        req.Dst,
		DstSeq:     g.groupSeq,
		Orig:       req.Orig,
		LifetimeMS: uint32(r.cfg.RREPPathLifetime / time.Millisecond),
		Leader:     g.leader,
		Replier:    r.stack.ID(),
		LeaderHops: g.hopsToLeader,
		RREQID:     req.ID,
	}
	return r.uni.RelayRREP(rep)
}

// ObserveMulticastRREP implements aodv.MulticastHooks: intermediate nodes
// record the activation path; the join originator collects candidates.
func (r *Router) ObserveMulticastRREP(rep *pkt.RREP, from pkt.NodeID, atOrigin bool) {
	g := r.groupState(pkt.GroupID(rep.Dst))
	if !atOrigin {
		g.rrepPaths[rep.RREQID] = rrepPath{
			upstream: from,
			expires:  r.sched.Now() + r.cfg.RREPPathLifetime,
		}
		return
	}
	js := g.join
	if js == nil || rep.RREQID != js.rreqID {
		return
	}
	cand := &candidate{
		from:       from,
		groupSeq:   rep.DstSeq,
		hops:       rep.HopCount,
		leaderHops: rep.LeaderHops,
		leader:     rep.Leader,
	}
	if betterCandidate(cand, js.best) {
		js.best = cand
	}
	if rep.Member() {
		r.fireEvidence(g.id, rep.Replier, satAdd8(rep.HopCount, 1))
	}
}

// betterCandidate prefers the freshest group sequence, then the shortest
// path to the tree ("the shortest among the freshest routes", paper §3).
func betterCandidate(c, best *candidate) bool {
	if best == nil {
		return true
	}
	if c.groupSeq != best.groupSeq {
		return newerSeq(c.groupSeq, best.groupSeq)
	}
	return c.hops < best.hops
}

func (r *Router) fireEvidence(gid pkt.GroupID, member pkt.NodeID, hops uint8) {
	if member == r.stack.ID() {
		return
	}
	for _, fn := range r.evidenceSubs {
		fn(gid, member, hops)
	}
}
