package maodv

import (
	"errors"

	"anongossip/internal/pkt"
)

// ErrNotMember reports a SendData call from a non-member node.
var ErrNotMember = errors.New("maodv: node is not a member of the group")

// SendData multicasts one application payload to the group and returns
// its sequence identity. The packet is transmitted as a link-layer
// broadcast accepted and re-forwarded only by tree neighbours, as in
// MAODV. Delivery is unreliable by design — Anonymous Gossip recovers the
// losses.
func (r *Router) SendData(gid pkt.GroupID) (pkt.SeqKey, error) {
	g, ok := r.groups[gid]
	if !ok || !g.member {
		return pkt.SeqKey{}, ErrNotMember
	}
	g.nextDataSeq++
	d := &pkt.Data{
		Group:      gid,
		Origin:     r.stack.ID(),
		Seq:        g.nextDataSeq,
		PayloadLen: r.cfg.PayloadLen,
	}
	key := d.Key()
	r.noteData(g, key)
	r.stats.DataSent++
	r.stack.SendBroadcast(pkt.NewPacket(r.stack.ID(), pkt.Broadcast, d))
	return key, nil
}

// onData accepts multicast data arriving over a tree link, delivers it to
// a member application, and re-broadcasts it down the remaining branches.
func (r *Router) onData(p *pkt.Packet, from pkt.NodeID) {
	d, ok := p.Body.(*pkt.Data)
	if !ok {
		return
	}
	g, have := r.groups[d.Group]
	if !have || !g.inTree {
		return
	}
	// Tree discipline: accept only from an enabled next hop; anything
	// else is an off-tree copy of the broadcast.
	e, linked := g.next[from]
	if !linked || !e.enabled {
		r.stats.DataOffTree++
		return
	}
	if r.seenData(g, d.Key()) {
		r.stats.DataDuplicates++
		return
	}
	r.noteData(g, d.Key())

	if g.member {
		r.stats.DataDelivered++
		for _, fn := range r.deliverSubs {
			fn(d.Group, d, from)
		}
		// The origin is a member: incidental evidence for the member
		// cache, with the unicast route's hop count when available.
		hops := pkt.NearestUnknown
		if h, okHops := r.uni.RouteHops(d.Origin); okHops {
			hops = h
		}
		r.fireEvidence(d.Group, d.Origin, hops)
	}

	// Forward along the tree unless this node is a leaf on this branch.
	if p.TTL <= 1 {
		return
	}
	if g.enabledCount() <= 1 {
		return // only the link the packet came from
	}
	cp := p.Clone()
	cp.TTL--
	r.stats.DataForwarded++
	r.sched.After(r.rng.Duration(r.cfg.ForwardJitter), func() {
		r.stack.SendBroadcast(cp)
	})
}

// seenData reports whether the key is in the duplicate cache.
func (r *Router) seenData(g *group, k pkt.SeqKey) bool {
	_, dup := g.dataSeen[k]
	return dup
}

// noteData inserts the key into the bounded duplicate cache (FIFO
// eviction).
func (r *Router) noteData(g *group, k pkt.SeqKey) {
	if _, dup := g.dataSeen[k]; dup {
		return
	}
	if len(g.dataOrder) < r.cfg.DataCacheSize {
		g.dataOrder = append(g.dataOrder, k)
	} else {
		old := g.dataOrder[g.dataNext]
		delete(g.dataSeen, old)
		g.dataOrder[g.dataNext] = k
		g.dataNext = (g.dataNext + 1) % r.cfg.DataCacheSize
	}
	g.dataSeen[k] = struct{}{}
}
