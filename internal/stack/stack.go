// Package stack defines the composable protocol-stack API: a two-axis
// model where a stack is a multicast *routing* protocol (maodv, odmrp,
// flood, ...) optionally layered under a loss-*recovery* protocol
// (gossip, ...), mirroring the paper's claim (§1, §7) that Anonymous
// Gossip is a generic reliability layer usable over any multicast
// routing protocol.
//
// Protocol packages register themselves into the name-keyed registry at
// init time (see Registry); the scenario runner resolves a Spec such as
// {Routing: "flood", Recovery: "gossip"} through the registry and asks
// the builders to assemble one instance per simulated node. Adding a
// stack therefore means registering a builder in one package — no
// scenario edits, no enum, no switch.
package stack

import (
	"fmt"

	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// Params carries per-layer configuration blocks keyed by layer name
// ("aodv", "maodv", "flood", "odmrp", "gossip", ...). The scenario
// fills it from its Config; builders look their block up and fall back
// to their package defaults when it is absent. The indirection keeps
// the registry free of imports of the protocol packages it names —
// builders depend on this package, never the reverse.
type Params map[string]any

// Param fetches a typed configuration block from p, falling back to
// def() when the key is absent. A key that is present but holds the
// wrong type is a mis-wired assembly, never a runtime condition, and
// panics rather than silently running the experiment on defaults.
func Param[T any](p Params, key string, def func() T) T {
	v, ok := p[key]
	if !ok {
		return def()
	}
	t, ok := v.(T)
	if !ok {
		panic(fmt.Sprintf("stack: params[%q] holds %T, want %T", key, v, *new(T)))
	}
	return t
}

// Env is the per-node build context handed to builders.
type Env struct {
	// Stack is the node's network layer.
	Stack *node.Stack
	// RNG is the run's root generator. Builders derive their component
	// streams by stable labels ("aodv/<index>", "gossip/<index>", ...)
	// so results are reproducible and independent across layers.
	RNG *sim.RNG
	// Index is the node's position in the build order, used in RNG
	// derivation labels.
	Index int
	// Params holds the per-layer configuration blocks.
	Params Params
}

// RoutingNode is one node's instance of a multicast routing protocol.
type RoutingNode interface {
	// Join registers group membership and starts whatever tree/mesh
	// maintenance the protocol needs.
	Join(g pkt.GroupID)
	// SendData multicasts one application payload to the group,
	// returning its sequence key.
	SendData(g pkt.GroupID) (pkt.SeqKey, error)
	// OnDeliver subscribes to application-level data deliveries at this
	// member.
	OnDeliver(fn func(g pkt.GroupID, d *pkt.Data))
	// Delivered reports the count of unique data packets delivered to
	// the member application.
	Delivered() uint64
	// PayloadLen is the synthetic application payload size, needed by
	// recovery layers that re-advertise locally originated packets.
	PayloadLen() uint16
	// Start activates background behaviour (beacons, hellos). It runs
	// once per node, after the recovery layer (if any) has been wired,
	// so no events are scheduled mid-assembly.
	Start()
}

// Routing builds one node's routing instance. Implementations register
// themselves with RegisterRouting.
type Routing interface {
	// Name is the registry key ("maodv", "odmrp", "flood", ...).
	Name() string
	// Build assembles the per-node instance and registers its packet
	// handlers. It must not schedule events or draw from derived RNGs
	// beyond construction needs — activation belongs in Start.
	Build(env Env) RoutingNode
}

// RecoveryStats is the per-member outcome of a recovery layer.
type RecoveryStats struct {
	// Delivered counts unique data packets obtained (routing + recovery).
	Delivered uint64
	// Recovered counts packets obtained through the recovery layer.
	Recovered uint64
	// ReplyNew/ReplyDup split recovery reply traffic into useful and
	// redundant messages (the goodput numerator components, paper §5.5).
	ReplyNew, ReplyDup uint64
	// Goodput is the percentage of useful recovery traffic.
	Goodput float64
}

// RecoveryNode is one node's instance of a loss-recovery protocol
// layered over a RoutingNode.
type RecoveryNode interface {
	// Attach starts recovery rounds for a group the node has joined.
	Attach(g pkt.GroupID)
	// OnLocalSend records a packet this member originated, so the
	// recovery layer can serve repairs for it.
	OnLocalSend(g pkt.GroupID, key pkt.SeqKey)
	// OnDeliver subscribes to unique data deliveries; recovered marks
	// packets that arrived through the recovery layer rather than the
	// routing protocol.
	OnDeliver(fn func(g pkt.GroupID, d *pkt.Data, recovered bool))
	// Stats returns the member's recovery counters.
	Stats() RecoveryStats
	// Start activates background behaviour the recovery layer owns
	// (e.g. a unicast routing substrate it had to create itself).
	Start()
}

// Recovery builds one node's recovery instance over an already-built
// routing node. Implementations register themselves with
// RegisterRecovery.
type Recovery interface {
	// Name is the registry key ("gossip", ...).
	Name() string
	// Build wires the recovery layer over routing. It reports an error
	// when the routing node cannot support this recovery layer (e.g. it
	// exposes no walkable substrate).
	Build(env Env, routing RoutingNode) (RecoveryNode, error)
}
