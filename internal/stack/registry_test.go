package stack

import (
	"strings"
	"testing"
)

type fakeRouting string

func (f fakeRouting) Name() string          { return string(f) }
func (f fakeRouting) Build(Env) RoutingNode { return nil }

type fakeRecovery string

func (f fakeRecovery) Name() string { return string(f) }
func (f fakeRecovery) Build(Env, RoutingNode) (RecoveryNode, error) {
	return nil, nil
}

func testRegistry() *Registry {
	r := &Registry{}
	r.RegisterRouting(fakeRouting("tree"))
	r.RegisterRouting(fakeRouting("mesh"))
	r.RegisterRecovery(fakeRecovery("repair"))
	r.RegisterAlias("classic", Spec{Routing: "tree", Recovery: "repair"})
	return r
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterDuplicatePanics(t *testing.T) {
	r := testRegistry()
	mustPanic(t, "duplicate routing", func() { r.RegisterRouting(fakeRouting("tree")) })
	mustPanic(t, "duplicate routing (case)", func() { r.RegisterRouting(fakeRouting("TREE")) })
	mustPanic(t, "duplicate recovery", func() { r.RegisterRecovery(fakeRecovery("repair")) })
	mustPanic(t, "empty routing name", func() { r.RegisterRouting(fakeRouting("")) })
	mustPanic(t, "reserved routing name", func() { r.RegisterRouting(fakeRouting("none")) })
	mustPanic(t, "reserved recovery name", func() { r.RegisterRecovery(fakeRecovery("none")) })
	mustPanic(t, "conflicting alias", func() { r.RegisterAlias("classic", Spec{Routing: "mesh"}) })
	// Re-registering an alias with the same target is tolerated.
	r.RegisterAlias("classic", Spec{Routing: "tree", Recovery: "repair"})
}

func TestStacksCrossProduct(t *testing.T) {
	r := testRegistry()
	want := []Spec{
		{Routing: "tree"},
		{Routing: "tree", Recovery: "repair"},
		{Routing: "mesh"},
		{Routing: "mesh", Recovery: "repair"},
	}
	got := r.Stacks()
	if len(got) != len(want) {
		t.Fatalf("stacks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stacks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestByNameAndRoundTrip(t *testing.T) {
	r := testRegistry()
	for _, s := range r.Stacks() {
		got, err := r.ByName(s.String())
		if err != nil {
			t.Fatalf("ByName(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round-trip %q: got %v, want %v", s.String(), got, s)
		}
	}
	cases := map[string]Spec{
		"tree":          {Routing: "tree"},
		"Tree":          {Routing: "tree"},
		"tree+none":     {Routing: "tree"},
		" mesh+repair ": {Routing: "mesh", Recovery: "repair"},
		"MESH+REPAIR":   {Routing: "mesh", Recovery: "repair"},
		"classic":       {Routing: "tree", Recovery: "repair"},
		"CLASSIC":       {Routing: "tree", Recovery: "repair"},
	}
	for name, want := range cases {
		got, err := r.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ByName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestByNameUnknownListsRegistered(t *testing.T) {
	r := testRegistry()
	for _, bad := range []string{"carrier-pigeon", "tree+carrier", "bogus+repair", ""} {
		_, err := r.ByName(bad)
		if err == nil {
			t.Fatalf("ByName(%q) accepted", bad)
		}
		for _, name := range r.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error for %q does not list registered stack %q: %v", bad, name, err)
			}
		}
	}
}

func TestResolve(t *testing.T) {
	r := testRegistry()
	rt, rec, err := r.Resolve(Spec{Routing: "tree", Recovery: "repair"})
	if err != nil || rt == nil || rec == nil {
		t.Fatalf("resolve full stack: rt=%v rec=%v err=%v", rt, rec, err)
	}
	rt, rec, err = r.Resolve(Spec{Routing: "mesh"})
	if err != nil || rt == nil || rec != nil {
		t.Fatalf("resolve bare routing: rt=%v rec=%v err=%v", rt, rec, err)
	}
	if _, _, err := r.Resolve(Spec{}); err == nil {
		t.Fatal("zero spec resolved")
	}
	if _, _, err := r.Resolve(Spec{Routing: "bogus"}); err == nil {
		t.Fatal("unknown routing resolved")
	}
	if _, _, err := r.Resolve(Spec{Routing: "tree", Recovery: "bogus"}); err == nil {
		t.Fatal("unknown recovery resolved")
	}
}

func TestSpecNormalizeAndString(t *testing.T) {
	if got := (Spec{Routing: "Tree", Recovery: "None"}).String(); got != "tree" {
		t.Fatalf("String() = %q, want %q", got, "tree")
	}
	if got := (Spec{Routing: "a", Recovery: "b"}).String(); got != "a+b" {
		t.Fatalf("String() = %q, want %q", got, "a+b")
	}
	if !(Spec{}).IsZero() {
		t.Fatal("zero spec not IsZero")
	}
	if (Spec{Routing: "x"}).IsZero() {
		t.Fatal("non-zero spec IsZero")
	}
}

func TestParam(t *testing.T) {
	p := Params{"a": 7, "b": "not-an-int"}
	if got := Param(p, "a", func() int { return -1 }); got != 7 {
		t.Fatalf("Param present = %d, want 7", got)
	}
	if got := Param(p, "c", func() int { return -1 }); got != -1 {
		t.Fatalf("Param absent = %d, want fallback -1", got)
	}
	// A present key of the wrong type is a mis-wired assembly, not a
	// condition to paper over with defaults.
	mustPanic(t, "wrong-typed param", func() { Param(p, "b", func() int { return -1 }) })
}
