package stack

import (
	"fmt"
	"strings"
)

// Spec names one protocol stack: a routing axis and an optional
// recovery axis. The zero value is "no stack selected".
type Spec struct {
	// Routing is the registered routing protocol name.
	Routing string
	// Recovery is the registered recovery protocol name; empty (or the
	// explicit "none") means bare routing.
	Recovery string
}

// IsZero reports whether no stack was selected.
func (s Spec) IsZero() bool { return s.Routing == "" && s.Recovery == "" }

// Normalize folds the explicit "none" recovery into the empty string
// and lower-cases both axes.
func (s Spec) Normalize() Spec {
	s.Routing = strings.ToLower(s.Routing)
	s.Recovery = strings.ToLower(s.Recovery)
	if s.Recovery == "none" {
		s.Recovery = ""
	}
	return s
}

// String returns the canonical registry name: "routing" for bare
// routing, "routing+recovery" otherwise. The name round-trips through
// ByName.
func (s Spec) String() string {
	s = s.Normalize()
	if s.Recovery == "" {
		return s.Routing
	}
	return s.Routing + "+" + s.Recovery
}

// Registry holds named Routing and Recovery builders plus name aliases.
// The zero value is ready to use. Protocol packages register into the
// package-level default registry from init; tests build their own.
type Registry struct {
	routings      map[string]Routing
	recoveries    map[string]Recovery
	aliases       map[string]Spec
	routingOrder  []string
	recoveryOrder []string
}

// RegisterRouting adds a routing builder under its Name. Registering an
// empty or duplicate name panics: it indicates mis-wired protocol
// packages at init time, never a runtime condition.
func (r *Registry) RegisterRouting(b Routing) {
	name := strings.ToLower(b.Name())
	if name == "" || name == "none" {
		panic(fmt.Sprintf("stack: invalid routing name %q", b.Name()))
	}
	if r.routings == nil {
		r.routings = make(map[string]Routing)
	}
	if _, dup := r.routings[name]; dup {
		panic(fmt.Sprintf("stack: duplicate routing %q", name))
	}
	r.routings[name] = b
	r.routingOrder = append(r.routingOrder, name)
}

// RegisterRecovery adds a recovery builder under its Name; same rules
// as RegisterRouting.
func (r *Registry) RegisterRecovery(b Recovery) {
	name := strings.ToLower(b.Name())
	if name == "" || name == "none" {
		panic(fmt.Sprintf("stack: invalid recovery name %q", b.Name()))
	}
	if r.recoveries == nil {
		r.recoveries = make(map[string]Recovery)
	}
	if _, dup := r.recoveries[name]; dup {
		panic(fmt.Sprintf("stack: duplicate recovery %q", name))
	}
	r.recoveries[name] = b
	r.recoveryOrder = append(r.recoveryOrder, name)
}

// RegisterAlias maps an alternative name (legacy CLI spellings, paper
// figure labels) onto a spec. Aliases are matched case-insensitively by
// ByName and never shadow canonical names.
func (r *Registry) RegisterAlias(name string, s Spec) {
	key := strings.ToLower(name)
	if key == "" {
		panic("stack: empty alias")
	}
	if r.aliases == nil {
		r.aliases = make(map[string]Spec)
	}
	if prev, dup := r.aliases[key]; dup && prev != s.Normalize() {
		panic(fmt.Sprintf("stack: alias %q already maps to %v", name, prev))
	}
	r.aliases[key] = s.Normalize()
}

// Routings lists the registered routing names in registration order.
func (r *Registry) Routings() []string {
	return append([]string(nil), r.routingOrder...)
}

// Recoveries lists the registered recovery names in registration order.
func (r *Registry) Recoveries() []string {
	return append([]string(nil), r.recoveryOrder...)
}

// Stacks lists every composable stack — the cross product of the two
// axes — in deterministic order: for each routing (registration order),
// bare first, then each recovery.
func (r *Registry) Stacks() []Spec {
	out := make([]Spec, 0, len(r.routingOrder)*(1+len(r.recoveryOrder)))
	for _, rt := range r.routingOrder {
		out = append(out, Spec{Routing: rt})
		for _, rec := range r.recoveryOrder {
			out = append(out, Spec{Routing: rt, Recovery: rec})
		}
	}
	return out
}

// Names lists the canonical name of every registered stack.
func (r *Registry) Names() []string {
	specs := r.Stacks()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.String()
	}
	return out
}

// ByName resolves a stack name — canonical ("odmrp+gossip", "flood") or
// a registered alias — to its Spec. Matching is case-insensitive. The
// error of an unknown name lists every registered stack.
func (r *Registry) ByName(name string) (Spec, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	routing, recovery, found := strings.Cut(key, "+")
	s := Spec{Routing: routing}
	if found {
		s.Recovery = recovery
	}
	s = s.Normalize()
	if _, _, err := r.Resolve(s); err == nil {
		return s, nil
	}
	if alias, ok := r.aliases[key]; ok {
		if _, _, err := r.Resolve(alias); err == nil {
			return alias, nil
		}
	}
	return Spec{}, fmt.Errorf("stack: unknown stack %q (registered: %s)",
		name, strings.Join(r.Names(), ", "))
}

// Resolve validates s against the registry and returns its builders.
// The recovery builder is nil for bare-routing stacks.
func (r *Registry) Resolve(s Spec) (Routing, Recovery, error) {
	s = s.Normalize()
	if s.IsZero() {
		return nil, nil, fmt.Errorf("stack: no stack selected (registered: %s)",
			strings.Join(r.Names(), ", "))
	}
	rt, ok := r.routings[s.Routing]
	if !ok {
		return nil, nil, fmt.Errorf("stack: unknown routing %q in stack %q (registered: %s)",
			s.Routing, s, strings.Join(r.Names(), ", "))
	}
	if s.Recovery == "" {
		return rt, nil, nil
	}
	rec, ok := r.recoveries[s.Recovery]
	if !ok {
		return nil, nil, fmt.Errorf("stack: unknown recovery %q in stack %q (registered: %s)",
			s.Recovery, s, strings.Join(r.Names(), ", "))
	}
	return rt, rec, nil
}

// Default is the process-wide registry the protocol packages populate
// at init time.
var Default = &Registry{}

// RegisterRouting adds a routing builder to the default registry.
func RegisterRouting(b Routing) { Default.RegisterRouting(b) }

// RegisterRecovery adds a recovery builder to the default registry.
func RegisterRecovery(b Recovery) { Default.RegisterRecovery(b) }

// RegisterAlias adds a name alias to the default registry.
func RegisterAlias(name string, s Spec) { Default.RegisterAlias(name, s) }

// Stacks lists every stack composable from the default registry.
func Stacks() []Spec { return Default.Stacks() }

// Names lists the canonical stack names of the default registry.
func Names() []string { return Default.Names() }

// ByName resolves a name or alias against the default registry.
func ByName(name string) (Spec, error) { return Default.ByName(name) }

// Resolve validates s against the default registry.
func Resolve(s Spec) (Routing, Recovery, error) { return Default.Resolve(s) }
