package gossip

import (
	"testing"
	"time"

	"anongossip/internal/pkt"
)

const secondGroup pkt.GroupID = 0xE0000002

// multiTree reports membership/hops for two groups with different
// shapes.
type multiTree struct {
	groups map[pkt.GroupID]*fakeTree
}

func (m *multiTree) NextHops(g pkt.GroupID) []NextHop {
	if t, ok := m.groups[g]; ok {
		return t.hops
	}
	return nil
}

func (m *multiTree) IsMember(g pkt.GroupID) bool {
	t, ok := m.groups[g]
	return ok && t.member
}

func TestEngineHandlesMultipleGroupsIndependently(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	w := buildLine(t, 4, []int{0, 3}, cfg)

	// Rewire nodes 1 and 4 to belong to two groups over the same line.
	for _, i := range []int{0, 3} {
		w.engines[i].tree = &multiTree{groups: map[pkt.GroupID]*fakeTree{
			testGroup:   {member: true, hops: w.trees[i].hops},
			secondGroup: {member: true, hops: w.trees[i].hops},
		}}
		w.engines[i].Attach(secondGroup)
	}

	w.sched.After(0, func() {
		// Group 1: node 4 has data node 1 lacks.
		feed(w.engines[3], 9, 1, 10)
		feed(w.engines[0], 9, 1, 10, 3, 4)
		// Group 2: the same nodes, different stream, opposite direction.
		for s := uint32(1); s <= 6; s++ {
			d := pkt.Data{Group: secondGroup, Origin: 8, Seq: s, PayloadLen: 64}
			w.engines[0].OnTreeData(secondGroup, &d, 0)
			if s <= 3 {
				w.engines[3].OnTreeData(secondGroup, &d, 0)
			}
		}
	})
	w.sched.Run(30 * time.Second)

	// Group 1 recovery at node 1.
	gs1 := w.engines[0].groups[testGroup]
	if gs1.lost.Len() != 0 {
		t.Fatalf("group 1 lost table not drained: %d", gs1.lost.Len())
	}
	// Group 2 recovery at node 4.
	gs2 := w.engines[3].groups[secondGroup]
	if got := gs2.expected[8]; got != 7 {
		t.Fatalf("group 2 expected = %d, want 7", got)
	}
	// Streams must not leak across groups: node 1's group-2 state knows
	// nothing about origin 9.
	if _, crossed := w.engines[0].groups[secondGroup].expected[9]; crossed {
		t.Fatal("group 1 origin leaked into group 2 state")
	}
}

func TestWalkAcceptProbabilitySplitsAcceptAndForward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	cfg.AcceptProb = 0.5
	// Line of 5, members at 0, 2, 4: the middle member sees walks it can
	// either accept or pass on.
	w := buildLine(t, 5, []int{0, 2, 4}, cfg)
	w.sched.After(0, func() {
		feed(w.engines[0], 9, 1, 30, 5)
		feed(w.engines[2], 9, 1, 30)
		feed(w.engines[4], 9, 1, 30)
	})
	w.sched.Run(120 * time.Second)

	mid := w.engines[2].Stats()
	if mid.WalksAccepted == 0 {
		t.Fatalf("middle member never accepted: %+v", mid)
	}
	if mid.WalksForwarded == 0 {
		t.Fatalf("middle member never propagated: %+v", mid)
	}
}

func TestWalkNeverAcceptedByInitiator(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	cfg.AcceptProb = 1 // members accept at first opportunity
	w := buildLine(t, 3, []int{0}, cfg)
	w.sched.After(0, func() { feed(w.engines[0], 9, 1, 5, 2) })
	w.sched.Run(15 * time.Second)

	if got := w.engines[0].Stats().WalksAccepted; got != 0 {
		t.Fatalf("initiator accepted its own walk %d times", got)
	}
}
