package gossip

import (
	"testing"
	"time"

	"anongossip/internal/aodv"
	"anongossip/internal/geom"
	"anongossip/internal/mac"
	"anongossip/internal/mobility"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/radio"
	"anongossip/internal/sim"
)

const testGroup pkt.GroupID = 0xE0000001

// fakeTree is a static per-node tree view, demonstrating that the engine
// only needs the Tree interface (protocol independence, paper §5.5).
type fakeTree struct {
	member bool
	hops   []NextHop
}

func (f *fakeTree) NextHops(pkt.GroupID) []NextHop { return f.hops }
func (f *fakeTree) IsMember(pkt.GroupID) bool      { return f.member }

type gworld struct {
	sched   *sim.Scheduler
	stacks  []*node.Stack
	trees   []*fakeTree
	engines []*Engine
}

// buildLine wires n nodes 50 m apart (range 60) with real stacks, MAC and
// AODV, a synthetic line tree, and a gossip engine everywhere. members
// lists node indices that are group members.
func buildLine(t *testing.T, n int, members []int, cfg Config) *gworld {
	t.Helper()
	w := &gworld{sched: sim.NewScheduler()}
	medium := radio.NewMedium(w.sched, radio.Params{Range: 60})
	rng := sim.NewRNG(2024)
	isMember := map[int]bool{}
	for _, m := range members {
		isMember[m] = true
	}
	for i := 0; i < n; i++ {
		id := pkt.NodeID(i + 1)
		st, err := node.New(w.sched, rng.Derive("n/"+id.String()), medium, id,
			mobility.Static{P: geom.Point{X: float64(i) * 50}}, mac.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		uni := aodv.New(st, rng.Derive("a/"+id.String()), aodv.DefaultConfig())
		uni.Start()

		ft := &fakeTree{member: isMember[i]}
		if i > 0 {
			ft.hops = append(ft.hops, NextHop{ID: pkt.NodeID(i), Nearest: pkt.NearestUnknown})
		}
		if i < n-1 {
			ft.hops = append(ft.hops, NextHop{ID: pkt.NodeID(i + 2), Nearest: pkt.NearestUnknown})
		}
		eng := New(st, ft, rng.Derive("g/"+id.String()), cfg)
		eng.SetHopEstimator(uni.RouteHops)
		if isMember[i] {
			eng.Attach(testGroup)
		}
		w.stacks = append(w.stacks, st)
		w.trees = append(w.trees, ft)
		w.engines = append(w.engines, eng)
	}
	return w
}

// feed ingests a contiguous range of tree-delivered packets, skipping
// the listed sequence numbers.
func feed(e *Engine, origin pkt.NodeID, from, to uint32, skip ...uint32) {
	skipSet := map[uint32]bool{}
	for _, s := range skip {
		skipSet[s] = true
	}
	for s := from; s <= to; s++ {
		if skipSet[s] {
			continue
		}
		d := pkt.Data{Group: testGroup, Origin: origin, Seq: s, PayloadLen: 64}
		e.OnTreeData(testGroup, &d, 0)
	}
}

func TestWalkRecoversLostPackets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1 // anonymous walks only
	w := buildLine(t, 4, []int{0, 3}, cfg)

	// Member 4 (index 3) has the full stream; member 1 missed 5..8.
	w.sched.After(0, func() {
		feed(w.engines[3], 9, 1, 20)
		feed(w.engines[0], 9, 1, 20, 5, 6, 7, 8)
	})
	w.sched.Run(30 * time.Second)

	st := w.engines[0].Stats()
	if st.ReplyMsgsNew != 4 {
		t.Fatalf("recovered %d packets, want 4 (stats %+v)", st.ReplyMsgsNew, st)
	}
	// The lost table must be clean again.
	gs := w.engines[0].groups[testGroup]
	if gs.lost.Len() != 0 {
		t.Fatalf("lost table still has %d entries", gs.lost.Len())
	}
	if st.RoundsAnon == 0 {
		t.Fatal("no anonymous rounds ran")
	}
	// Routers forwarded walks.
	if w.engines[1].Stats().WalksForwarded == 0 {
		t.Fatal("interior router never forwarded a walk")
	}
}

func TestExpectedSequenceRecoversUnknownLosses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	w := buildLine(t, 4, []int{0, 3}, cfg)

	// Member 1 received only 1..10 and does not know 11..20 exist.
	w.sched.After(0, func() {
		feed(w.engines[3], 9, 1, 20)
		feed(w.engines[0], 9, 1, 10)
	})
	w.sched.Run(40 * time.Second)

	gs := w.engines[0].groups[testGroup]
	if exp := gs.expected[9]; exp != 21 {
		t.Fatalf("expected seq = %d, want 21 (stats %+v)", exp, w.engines[0].Stats())
	}
	if got := w.engines[0].Stats().ReplyMsgsNew; got != 10 {
		t.Fatalf("recovered %d, want 10", got)
	}
}

func TestEmptyRequestBootstrapsNewMember(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	w := buildLine(t, 4, []int{0, 3}, cfg)

	// Member 1 has nothing at all; member 4 holds 11..20 in history.
	w.sched.After(0, func() { feed(w.engines[3], 9, 11, 20) })
	w.sched.Run(30 * time.Second)

	st := w.engines[0].Stats()
	if st.ReplyMsgsNew == 0 {
		t.Fatalf("bootstrap recovered nothing: %+v", st)
	}
	gs := w.engines[0].groups[testGroup]
	if gs.history.Len() == 0 {
		t.Fatal("history still empty after bootstrap")
	}
}

func TestCachedGossip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 0 // cached gossip whenever possible
	w := buildLine(t, 4, []int{0, 3}, cfg)

	w.sched.After(0, func() {
		feed(w.engines[3], 9, 1, 20)
		feed(w.engines[0], 9, 1, 20, 5, 6)
		// Seed member 1's cache with member 4 (as join replies would).
		w.engines[0].OnMemberEvidence(testGroup, 4, 3)
	})
	w.sched.Run(30 * time.Second)

	st := w.engines[0].Stats()
	if st.RoundsCached == 0 {
		t.Fatalf("no cached rounds despite seeded cache: %+v", st)
	}
	if st.ReplyMsgsNew != 2 {
		t.Fatalf("recovered %d, want 2", st.ReplyMsgsNew)
	}
}

func TestCachedGossipFallsBackToWalk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 0 // always prefer cached — but the cache stays empty
	// A single member: no replies ever arrive, so the cache never fills
	// and every round must fall back to an anonymous walk.
	w := buildLine(t, 3, []int{0}, cfg)
	w.sched.After(0, func() { feed(w.engines[0], 9, 1, 10, 4) })
	w.sched.Run(20 * time.Second)

	st := w.engines[0].Stats()
	if st.RoundsAnon == 0 {
		t.Fatalf("empty cache did not fall back to anonymous walk: %+v", st)
	}
	if st.RoundsCached != 0 {
		t.Fatalf("cached rounds with an empty cache: %+v", st)
	}
}

func TestReplyUpdatesMemberCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	w := buildLine(t, 4, []int{0, 3}, cfg)
	w.sched.After(0, func() {
		feed(w.engines[3], 9, 1, 10)
		feed(w.engines[0], 9, 1, 10, 4)
	})
	w.sched.Run(20 * time.Second)

	found := false
	for _, m := range w.engines[0].CachedMembers(testGroup) {
		if m == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("responder not cached: %v", w.engines[0].CachedMembers(testGroup))
	}
	// And symmetrically, the responder learned the initiator.
	found = false
	for _, m := range w.engines[3].CachedMembers(testGroup) {
		if m == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("initiator not cached by responder: %v", w.engines[3].CachedMembers(testGroup))
	}
}

func TestWalkDropsAtTTL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	cfg.WalkTTL = 2
	// Only one member: walks have nowhere to be accepted and must die at
	// the TTL, not run forever.
	w := buildLine(t, 5, []int{0}, cfg)
	w.sched.After(0, func() { feed(w.engines[0], 9, 1, 5, 3) })
	w.sched.Run(10 * time.Second)

	dropped := uint64(0)
	for _, e := range w.engines {
		dropped += e.Stats().WalksDropped
	}
	if dropped == 0 {
		t.Fatal("no walk was dropped at TTL")
	}
	total := uint64(0)
	for _, e := range w.engines {
		total += e.Stats().WalksForwarded
	}
	rounds := w.engines[0].Stats().RoundsAnon
	if total > rounds*uint64(cfg.WalkTTL) {
		t.Fatalf("forwards %d exceed rounds %d * TTL %d", total, rounds, cfg.WalkTTL)
	}
}

func TestGoodputAccounting(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 2, []int{0}, cfg)
	e := w.engines[0]
	w.sched.After(0, func() { feed(e, 9, 1, 10) })
	w.sched.Run(time.Second)

	// Craft a reply containing 2 new + 3 duplicate messages.
	rep := &pkt.GossipRep{Group: testGroup, Responder: 2, WalkHops: 1}
	for _, s := range []uint32{8, 9, 10, 11, 12} {
		rep.Msgs = append(rep.Msgs, pkt.Data{Group: testGroup, Origin: 9, Seq: s, PayloadLen: 64})
	}
	e.onReply(pkt.NewPacket(2, 1, rep), 2)

	st := e.Stats()
	if st.ReplyMsgsNew != 2 || st.ReplyMsgsDup != 3 {
		t.Fatalf("new/dup = %d/%d, want 2/3", st.ReplyMsgsNew, st.ReplyMsgsDup)
	}
	if g := st.Goodput(); g != 40 {
		t.Fatalf("Goodput = %v, want 40", g)
	}
}

func TestGoodputDefaultsTo100(t *testing.T) {
	var s Stats
	if s.Goodput() != 100 {
		t.Fatalf("zero-traffic goodput = %v, want 100", s.Goodput())
	}
}

func TestIngestOutOfOrder(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 1, []int{0}, cfg)
	e := w.engines[0]
	gs := e.groups[testGroup]

	d3 := pkt.Data{Group: testGroup, Origin: 9, Seq: 3}
	d1 := pkt.Data{Group: testGroup, Origin: 9, Seq: 1}
	d2 := pkt.Data{Group: testGroup, Origin: 9, Seq: 2}

	if !e.ingest(gs, d3, false) {
		t.Fatal("first packet rejected")
	}
	if gs.lost.Len() != 2 {
		t.Fatalf("lost entries = %d, want 2", gs.lost.Len())
	}
	if !e.ingest(gs, d1, false) || !e.ingest(gs, d2, false) {
		t.Fatal("recovery of known-lost packets rejected")
	}
	if gs.lost.Len() != 0 {
		t.Fatal("lost table not drained")
	}
	if e.ingest(gs, d2, false) {
		t.Fatal("duplicate accepted")
	}
	if gs.expected[9] != 4 {
		t.Fatalf("expected = %d, want 4", gs.expected[9])
	}
}

func TestIsDuplicate(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 1, []int{0}, cfg)
	e := w.engines[0]
	gs := e.groups[testGroup]
	feed(e, 9, 1, 10, 5)

	if !e.isDuplicate(gs, pkt.SeqKey{Origin: 9, Seq: 3}) {
		t.Fatal("received packet not flagged duplicate")
	}
	if e.isDuplicate(gs, pkt.SeqKey{Origin: 9, Seq: 5}) {
		t.Fatal("known-lost packet flagged duplicate")
	}
	if e.isDuplicate(gs, pkt.SeqKey{Origin: 9, Seq: 11}) {
		t.Fatal("future packet flagged duplicate")
	}
	if e.isDuplicate(gs, pkt.SeqKey{Origin: 8, Seq: 1}) {
		t.Fatal("unknown-origin packet flagged duplicate")
	}
}

func TestPickNextHopLocalityBias(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 1, []int{0}, cfg)
	e := w.engines[0]
	w.trees[0].hops = []NextHop{
		{ID: 10, Nearest: 1},
		{ID: 20, Nearest: 7},
	}
	counts := map[pkt.NodeID]int{}
	for i := 0; i < 20000; i++ {
		id, ok := e.pickNextHop(testGroup, 0)
		if !ok {
			t.Fatal("pickNextHop failed")
		}
		counts[id]++
	}
	// Weights 1/(1+d): 1/2 vs 1/8 -> ratio 4:1.
	ratio := float64(counts[10]) / float64(counts[20])
	if ratio < 3.2 || ratio > 5 {
		t.Fatalf("close/far ratio = %.1f (counts %v), want ~4", ratio, counts)
	}
}

func TestPickNextHopUniformWithoutBias(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalityBias = false
	w := buildLine(t, 1, []int{0}, cfg)
	e := w.engines[0]
	w.trees[0].hops = []NextHop{
		{ID: 10, Nearest: 1},
		{ID: 20, Nearest: 7},
	}
	counts := map[pkt.NodeID]int{}
	for i := 0; i < 20000; i++ {
		id, _ := e.pickNextHop(testGroup, 0)
		counts[id]++
	}
	ratio := float64(counts[10]) / float64(counts[20])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unbiased ratio = %.2f, want ~1", ratio)
	}
}

func TestPickNextHopExcludes(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 1, []int{0}, cfg)
	e := w.engines[0]
	w.trees[0].hops = []NextHop{{ID: 10, Nearest: 1}}
	if _, ok := e.pickNextHop(testGroup, 10); ok {
		t.Fatal("pickNextHop returned the excluded hop")
	}
}

func TestDetachStopsRounds(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 2, []int{0, 1}, cfg)
	w.sched.Run(5 * time.Second)
	before := w.engines[0].Stats()
	w.engines[0].Detach(testGroup)
	w.sched.Run(15 * time.Second)
	after := w.engines[0].Stats()
	if after.RoundsAnon+after.RoundsCached+after.RoundsSkipped !=
		before.RoundsAnon+before.RoundsCached+before.RoundsSkipped {
		t.Fatal("rounds continued after Detach")
	}
}

func TestRoundSkippedWhenNotMember(t *testing.T) {
	cfg := DefaultConfig()
	w := buildLine(t, 2, []int{0}, cfg)
	// Attach the engine but revoke tree membership: rounds must skip.
	w.trees[0].member = false
	w.sched.Run(5 * time.Second)
	st := w.engines[0].Stats()
	if st.RoundsSkipped == 0 || st.RoundsAnon != 0 {
		t.Fatalf("non-member rounds = %+v, want only skips", st)
	}
}

func TestOnLocalDataServesRepairs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	w := buildLine(t, 3, []int{0, 2}, cfg)

	// Member 1 is the source: it records its own sends; member 3 missed
	// everything and recovers from the source's history via walks.
	w.sched.After(0, func() {
		for s := uint32(1); s <= 5; s++ {
			w.engines[0].OnLocalData(testGroup, pkt.Data{Group: testGroup, Origin: 1, Seq: s, PayloadLen: 64})
		}
	})
	w.sched.Run(30 * time.Second)

	if got := w.engines[2].Stats().ReplyMsgsNew; got != 5 {
		t.Fatalf("member 3 recovered %d own-source packets, want 5", got)
	}
}
