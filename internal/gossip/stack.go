package gossip

import (
	"fmt"

	"anongossip/internal/aodv"
	"anongossip/internal/pkt"
	"anongossip/internal/stack"
)

// The "gossip" recovery axis: Anonymous Gossip layered over any routing
// protocol that exposes a walk substrate — the paper's central claim.
func init() { stack.RegisterRecovery(recoveryBuilder{}) }

type recoveryBuilder struct{}

func (recoveryBuilder) Name() string { return "gossip" }

func (recoveryBuilder) Build(env stack.Env, routing stack.RoutingNode) (stack.RecoveryNode, error) {
	tp, ok := routing.(interface{ GossipTree() Tree })
	if !ok {
		return nil, fmt.Errorf("gossip: routing %T exposes no walk substrate (wants GossipTree() gossip.Tree)", routing)
	}
	// Gossip requests walk the substrate hop by hop, but replies are
	// unicast: reuse the routing protocol's unicast substrate when it
	// has one (MAODV runs over AODV anyway), else install AODV here.
	var uni *aodv.Router
	ownUni := false
	if up, ok := routing.(interface{ Unicast() *aodv.Router }); ok {
		uni = up.Unicast()
	} else {
		uni = aodv.New(env.Stack, env.RNG.Derive(fmt.Sprintf("aodv/%d", env.Index)),
			stack.Param(env.Params, "aodv", aodv.DefaultConfig))
		ownUni = true
	}
	eng := New(env.Stack, tp.GossipTree(), env.RNG.Derive(fmt.Sprintf("gossip/%d", env.Index)),
		stack.Param(env.Params, "gossip", DefaultConfig))
	eng.SetHopEstimator(uni.RouteHops)
	routing.OnDeliver(func(g pkt.GroupID, d *pkt.Data) { eng.OnTreeData(g, d, 0) })
	if me, ok := routing.(interface {
		OnMemberEvidence(fn func(g pkt.GroupID, member pkt.NodeID, hops uint8))
	}); ok {
		me.OnMemberEvidence(eng.OnMemberEvidence)
	}
	return &recoveryNode{eng: eng, uni: uni, ownUni: ownUni, payload: routing.PayloadLen()}, nil
}

// recoveryNode adapts an Engine (plus an AODV substrate it may own) to
// stack.RecoveryNode.
type recoveryNode struct {
	eng     *Engine
	uni     *aodv.Router
	ownUni  bool
	payload uint16
}

func (n *recoveryNode) Attach(g pkt.GroupID) { n.eng.Attach(g) }

func (n *recoveryNode) OnLocalSend(g pkt.GroupID, key pkt.SeqKey) {
	n.eng.OnLocalData(g, pkt.Data{
		Group: g, Origin: key.Origin, Seq: key.Seq, PayloadLen: n.payload,
	})
}

func (n *recoveryNode) OnDeliver(fn func(g pkt.GroupID, d *pkt.Data, recovered bool)) {
	n.eng.OnDeliver(fn)
}

func (n *recoveryNode) Stats() stack.RecoveryStats {
	s := n.eng.Stats()
	return stack.RecoveryStats{
		Delivered: s.Delivered,
		Recovered: s.ReplyMsgsNew,
		ReplyNew:  s.ReplyMsgsNew,
		ReplyDup:  s.ReplyMsgsDup,
		Goodput:   s.Goodput(),
	}
}

// RoundStats exposes the engine's cumulative round and reply counters.
// The telemetry sampler type-asserts for this method to build its
// gossip-activity time series without the stack API growing a
// recovery-protocol-specific surface.
func (n *recoveryNode) RoundStats() (rounds, replies uint64) {
	s := n.eng.Stats()
	return s.RoundsAnon + s.RoundsCached, s.RepliesReceived
}

func (n *recoveryNode) Start() {
	if n.ownUni {
		n.uni.Start()
	}
}
