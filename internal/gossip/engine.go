// Package gossip implements Anonymous Gossip (AG), the paper's core
// contribution: a reliability layer that recovers multicast losses
// through gossip rounds without any knowledge of group membership.
//
// Each member runs a periodic round (one per second in the paper). A
// round either starts an anonymous walk — a gossip request that travels
// hop-by-hop along the multicast tree, biased toward branches whose
// nearest-member distance is small (paper §4.2), until some member
// accepts it — or, with probability 1-PAnon, unicasts the request
// directly to a member from the bounded member cache (paper §4.3). The
// accepting member looks up the requested sequence numbers in its
// bounded history table and unicasts the found packets back (pull
// exchange, paper §4.4).
//
// The engine's only coupling to the underlying multicast protocol is the
// Tree interface (enabled next hops + nearest-member values), mirroring
// the paper's claim that AG layers over any tree- or mesh-based
// multicast protocol.
package gossip

import (
	"slices"
	"time"

	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/runtime"
	"anongossip/internal/sim"
)

// NextHop is one walkable tree link.
type NextHop struct {
	ID pkt.NodeID
	// Nearest is the advertised hop distance to the closest member
	// through this link (pkt.NearestUnknown if not yet known).
	Nearest uint8
}

// Tree is the multicast-protocol interface AG walks over. package maodv
// satisfies it through a thin adapter, package odmrp directly (mesh
// links instead of tree branches), and tests use synthetic topologies —
// the protocol independence the paper claims in §5.5.
type Tree interface {
	// NextHops returns the enabled tree links at this node for a group.
	NextHops(group pkt.GroupID) []NextHop
	// IsMember reports whether this node is an application-level member.
	IsMember(group pkt.GroupID) bool
}

// HopEstimator optionally supplies unicast route hop counts for member
// cache bookkeeping (AODV provides this for free).
type HopEstimator func(dst pkt.NodeID) (uint8, bool)

// Mode selects the direction of information exchange (paper §4.4).
type Mode int

// Exchange modes.
const (
	// ModePull is the paper's protocol: requests carry lost/expected
	// sequence numbers and the acceptor unicasts the data back.
	ModePull Mode = iota + 1
	// ModePush is the rejected alternative, kept for ablations: rounds
	// push the initiator's recent history into the walk; the acceptor
	// ingests it and sends nothing back.
	ModePush
)

// Config holds the AG parameters; defaults follow paper §5.1.
type Config struct {
	// Interval is the gossip round period (1 s in the paper).
	Interval time.Duration
	// IntervalJitter randomises round phase across members.
	IntervalJitter time.Duration
	// PAnon is the probability a round uses an anonymous walk rather
	// than cached gossip (paper §4.3; the paper leaves the value open).
	PAnon float64
	// AcceptProb is the probability a member receiving a walk accepts it
	// instead of propagating (paper §4.1 "randomly decides").
	AcceptProb float64
	// LostBufferCap bounds lost-sequence numbers per gossip message
	// (10 in the paper).
	LostBufferCap int
	// LostTableCap bounds the lost table (200 in the paper).
	LostTableCap int
	// HistoryCap bounds the history table (100 in the paper).
	HistoryCap int
	// CacheCap bounds the member cache (10 in the paper).
	CacheCap int
	// ExpectedCap bounds per-origin expected entries in a request.
	ExpectedCap int
	// MaxReplyMsgs bounds data packets per gossip reply.
	MaxReplyMsgs int
	// WalkTTL bounds anonymous walk length in hops.
	WalkTTL int
	// LocalityBias disables the nearest-member weighting when false
	// (uniform next-hop choice); used by the ablation benchmarks.
	LocalityBias bool
	// Mode selects pull (the paper's choice) or push exchange.
	Mode Mode
}

// DefaultConfig returns the paper's gossip configuration.
func DefaultConfig() Config {
	return Config{
		Interval:       time.Second,
		IntervalJitter: 200 * time.Millisecond,
		PAnon:          0.7,
		AcceptProb:     0.5,
		LostBufferCap:  10,
		LostTableCap:   200,
		HistoryCap:     100,
		CacheCap:       10,
		ExpectedCap:    4,
		MaxReplyMsgs:   10,
		WalkTTL:        16,
		LocalityBias:   true,
		Mode:           ModePull,
	}
}

// Stats counts gossip activity at one node. Goodput (paper §5.5) is
// ReplyMsgsNew / (ReplyMsgsNew + ReplyMsgsDup).
type Stats struct {
	RoundsAnon      uint64
	RoundsCached    uint64
	RoundsSkipped   uint64
	WalksForwarded  uint64
	WalksAccepted   uint64
	WalksDropped    uint64
	RepliesSent     uint64
	ReplyMsgsSent   uint64
	RepliesReceived uint64
	// ReplyMsgsNew counts non-duplicate messages received through gossip
	// replies; ReplyMsgsDup counts duplicates (redundant traffic).
	ReplyMsgsNew uint64
	ReplyMsgsDup uint64
	// Delivered counts unique data packets seen (tree + gossip).
	Delivered uint64
}

// Goodput returns the percentage of useful gossip-reply messages, or 100
// when no reply traffic arrived (matching the paper's definition, where
// goodput is only plotted for members that received replies).
func (s Stats) Goodput() float64 {
	total := s.ReplyMsgsNew + s.ReplyMsgsDup
	if total == 0 {
		return 100
	}
	return 100 * float64(s.ReplyMsgsNew) / float64(total)
}

// DeliverFunc observes every unique data packet the member obtains;
// recovered marks packets that arrived through gossip replies rather
// than the multicast tree.
type DeliverFunc func(group pkt.GroupID, d *pkt.Data, recovered bool)

// groupState is the per-group gossip machinery of one member.
type groupState struct {
	id       pkt.GroupID
	expected map[pkt.NodeID]uint32
	lost     *lostTable
	history  *historyTable
	cache    *memberCache
	timer    sim.Timer
}

// Engine is one node's AG entity.
type Engine struct {
	cfg   Config
	stack *node.Stack
	sched runtime.Clock
	rng   *sim.RNG
	tree  Tree
	hops  HopEstimator

	groups map[pkt.GroupID]*groupState
	subs   []DeliverFunc

	stats Stats
}

// New builds a gossip engine bound to the node stack and a multicast
// tree provider, registering the gossip packet handlers.
func New(st *node.Stack, tree Tree, rng *sim.RNG, cfg Config) *Engine {
	e := &Engine{
		cfg:    cfg,
		stack:  st,
		sched:  st.Clock(),
		rng:    rng,
		tree:   tree,
		groups: make(map[pkt.GroupID]*groupState),
	}
	st.Handle(pkt.KindGossipReq, e.onRequest)
	st.Handle(pkt.KindGossipRep, e.onReply)
	return e
}

// SetHopEstimator wires an optional unicast-route hop source.
func (e *Engine) SetHopEstimator(h HopEstimator) { e.hops = h }

// OnDeliver subscribes to unique data deliveries (tree and recovered).
func (e *Engine) OnDeliver(fn DeliverFunc) { e.subs = append(e.subs, fn) }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// CachedMembers exposes the member cache contents for a group
// (diagnostics and tests).
func (e *Engine) CachedMembers(g pkt.GroupID) []pkt.NodeID {
	gs, ok := e.groups[g]
	if !ok {
		return nil
	}
	return gs.cache.Members()
}

// Attach starts gossip rounds for a group this node is a member of.
func (e *Engine) Attach(g pkt.GroupID) {
	if _, ok := e.groups[g]; ok {
		return
	}
	gs := &groupState{
		id:       g,
		expected: make(map[pkt.NodeID]uint32),
		lost:     newLostTable(e.cfg.LostTableCap),
		history:  newHistoryTable(e.cfg.HistoryCap),
		cache:    newMemberCache(e.cfg.CacheCap),
	}
	e.groups[g] = gs
	phase := e.cfg.Interval + e.rng.Duration(e.cfg.IntervalJitter)
	gs.timer = e.sched.After(phase, func() { e.round(gs) })
}

// Detach stops gossip rounds for a group.
func (e *Engine) Detach(g pkt.GroupID) {
	gs, ok := e.groups[g]
	if !ok {
		return
	}
	gs.timer.Cancel()
	delete(e.groups, g)
}

// OnTreeData ingests a data packet delivered by the multicast protocol.
// Wire it to maodv.Router.OnDeliver.
func (e *Engine) OnTreeData(group pkt.GroupID, d *pkt.Data, _ pkt.NodeID) {
	gs, ok := e.groups[group]
	if !ok {
		return
	}
	e.ingest(gs, *d, false)
}

// OnLocalData records a packet this member originated, so its history
// table can serve repairs for it.
func (e *Engine) OnLocalData(group pkt.GroupID, d pkt.Data) {
	gs, ok := e.groups[group]
	if !ok {
		return
	}
	gs.history.Add(d)
	if next := d.Seq + 1; next > gs.expected[d.Origin] {
		gs.expected[d.Origin] = next
	}
}

// OnMemberEvidence feeds incidental member sightings into the member
// cache. Wire it to maodv.Router.OnMemberEvidence.
func (e *Engine) OnMemberEvidence(group pkt.GroupID, member pkt.NodeID, hops uint8) {
	gs, ok := e.groups[group]
	if !ok || member == e.stack.ID() {
		return
	}
	gs.cache.Update(member, hops, e.sched.Now(), false)
}

// ingest is the single entry point for new data knowledge. It maintains
// expected sequence numbers and the lost table exactly as paper §4.4
// describes, and reports whether the packet was new.
func (e *Engine) ingest(gs *groupState, d pkt.Data, recovered bool) bool {
	key := d.Key()
	exp, seen := gs.expected[d.Origin]
	if !seen {
		exp = 1 // sequence numbers start at 1; earlier packets were missed
	}
	switch {
	case d.Seq >= exp:
		// Everything between the expectation and this packet is now
		// known-lost.
		for s := exp; s < d.Seq; s++ {
			gs.lost.Add(pkt.SeqKey{Origin: d.Origin, Seq: s})
		}
		gs.expected[d.Origin] = d.Seq + 1
	case gs.lost.Contains(key):
		gs.lost.Remove(key)
	default:
		return false // duplicate
	}
	gs.history.Add(d)
	e.stats.Delivered++
	for _, fn := range e.subs {
		fn(gs.id, &d, recovered)
	}
	return true
}

// isDuplicate reports whether the member already holds the packet.
func (e *Engine) isDuplicate(gs *groupState, key pkt.SeqKey) bool {
	exp, seen := gs.expected[key.Origin]
	if !seen {
		return false
	}
	return key.Seq < exp && !gs.lost.Contains(key)
}

// --- rounds ---

func (e *Engine) round(gs *groupState) {
	defer func() {
		gs.timer = e.sched.After(e.cfg.Interval, func() { e.round(gs) })
	}()
	if !e.tree.IsMember(gs.id) {
		e.stats.RoundsSkipped++
		return
	}
	req := e.buildRequest(gs)

	// Paper §4.3: anonymous gossip with probability PAnon, cached gossip
	// otherwise (falling back to anonymous when the cache is empty).
	if !e.rng.Bool(e.cfg.PAnon) {
		if m, ok := gs.cache.Pick(e.rng); ok {
			req.Flags |= pkt.GossipCached
			gs.cache.MarkGossiped(m.addr, e.sched.Now())
			e.stats.RoundsCached++
			p := pkt.NewPacket(e.stack.ID(), m.addr, req)
			e.stack.SendUnicast(p)
			return
		}
	}
	// Anonymous walk: start at a weighted random tree neighbour.
	next, ok := e.pickNextHop(gs.id, 0)
	if !ok {
		e.stats.RoundsSkipped++ // not attached to the tree right now
		return
	}
	e.stats.RoundsAnon++
	p := pkt.NewPacket(e.stack.ID(), next, req)
	e.stack.SendDirect(next, p)
}

// buildRequest assembles the gossip message of paper §4.1: lost buffer
// plus expected sequence numbers (pull), or the recent history (push
// ablation).
func (e *Engine) buildRequest(gs *groupState) *pkt.GossipReq {
	if e.cfg.Mode == ModePush {
		return &pkt.GossipReq{
			Group:     gs.id,
			Initiator: e.stack.ID(),
			Flags:     pkt.GossipNoReply,
			Pushed:    gs.history.Latest(e.cfg.MaxReplyMsgs),
		}
	}
	req := &pkt.GossipReq{
		Group:     gs.id,
		Initiator: e.stack.ID(),
		Lost:      gs.lost.Recent(e.cfg.LostBufferCap),
	}
	origins := make([]pkt.NodeID, 0, len(gs.expected))
	for origin := range gs.expected {
		origins = append(origins, origin)
	}
	slices.Sort(origins) // map order must not leak into the wire
	for _, origin := range origins {
		if len(req.Expected) >= e.cfg.ExpectedCap {
			break
		}
		if origin == e.stack.ID() {
			continue // nobody repairs our own transmissions to us
		}
		req.Expected = append(req.Expected, pkt.Expect{Origin: origin, NextSeq: gs.expected[origin]})
	}
	return req
}

// pickNextHop chooses a tree link, excluding a node, weighted toward
// small nearest-member distances (paper §4.2). exclude 0 means none.
func (e *Engine) pickNextHop(g pkt.GroupID, exclude pkt.NodeID) (pkt.NodeID, bool) {
	hops := e.tree.NextHops(g)
	cands := hops[:0:0]
	for _, h := range hops {
		if h.ID != exclude {
			cands = append(cands, h)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	if !e.cfg.LocalityBias {
		return cands[e.rng.Intn(len(cands))].ID, true
	}
	// Weight 1/(1+d): branches with nearer members are preferred, but
	// distant branches stay reachable — the paper wants gossip "locally
	// with a very high probability and with distant nodes occasionally".
	// Steeper weightings shorten walks further but over-concentrate
	// recovery on members that share loss correlation with the
	// initiator (see BenchmarkAblationLocality).
	weights := make([]float64, len(cands))
	for i, h := range cands {
		d := float64(h.Nearest)
		if h.Nearest == pkt.NearestUnknown {
			d = 64 // effectively distant, still reachable
		}
		weights[i] = 1.0 / (1 + d)
	}
	idx := e.rng.WeightedIndex(weights)
	if idx < 0 {
		return 0, false
	}
	return cands[idx].ID, true
}

// --- request handling (walk + cached) ---

func (e *Engine) onRequest(p *pkt.Packet, from pkt.NodeID) {
	req, ok := p.Body.(*pkt.GossipReq)
	if !ok {
		return
	}
	if req.Cached() {
		// Unicast straight to us: we are the cached member; always
		// accept (paper §4.3).
		e.accept(req)
		return
	}
	// Anonymous walk (paper §4.1): members randomly accept or propagate;
	// pure routers always propagate.
	isMember := e.tree.IsMember(req.Group) && req.Initiator != e.stack.ID()
	ttlExpired := int(req.HopsTraveled) >= e.cfg.WalkTTL
	next, haveNext := e.pickNextHop(req.Group, from)

	if isMember && (ttlExpired || !haveNext || e.rng.Bool(e.cfg.AcceptProb)) {
		e.stats.WalksAccepted++
		e.accept(req)
		return
	}
	if !haveNext || ttlExpired {
		e.stats.WalksDropped++
		return
	}
	cp, okBody := req.CloneBody().(*pkt.GossipReq)
	if !okBody {
		return
	}
	cp.HopsTraveled++
	e.stats.WalksForwarded++
	e.stack.SendDirect(next, pkt.NewPacket(e.stack.ID(), next, cp))
}

// accept consumes an accepted gossip. Pull mode (the paper's §4.4)
// builds and unicasts the reply: history lookups for the lost buffer,
// then packets at or past the initiator's expectations, then (for empty
// requests) the newest history as a bootstrap. Push mode just ingests
// whatever the initiator sent along.
func (e *Engine) accept(req *pkt.GossipReq) {
	gs, ok := e.groups[req.Group]
	if !ok {
		return // not a member (e.g. stale cached-gossip target)
	}
	if len(req.Pushed) > 0 {
		for i := range req.Pushed {
			d := req.Pushed[i]
			if e.isDuplicate(gs, d.Key()) {
				e.stats.ReplyMsgsDup++
				continue
			}
			if e.ingest(gs, d, true) {
				e.stats.ReplyMsgsNew++
			} else {
				e.stats.ReplyMsgsDup++
			}
		}
	}
	// The initiator is a member we now know about (paper §4.3).
	hops := req.HopsTraveled
	if e.hops != nil {
		if h, have := e.hops(req.Initiator); have {
			hops = h
		}
	}
	gs.cache.Update(req.Initiator, hops, e.sched.Now(), true)
	if req.NoReply() {
		return
	}
	rep := &pkt.GossipRep{
		Group:     req.Group,
		Responder: e.stack.ID(),
		WalkHops:  req.HopsTraveled,
	}
	seen := make(map[pkt.SeqKey]struct{}, e.cfg.MaxReplyMsgs)
	add := func(d pkt.Data) bool {
		if len(rep.Msgs) >= e.cfg.MaxReplyMsgs {
			return false
		}
		if _, dup := seen[d.Key()]; dup {
			return true
		}
		seen[d.Key()] = struct{}{}
		rep.Msgs = append(rep.Msgs, d)
		return true
	}
	for _, k := range req.Lost {
		if d, have := gs.history.Get(k); have {
			if !add(d) {
				break
			}
		}
	}
	for _, ex := range req.Expected {
		for _, d := range gs.history.Since(ex.Origin, ex.NextSeq, e.cfg.MaxReplyMsgs) {
			if !add(d) {
				break
			}
		}
	}
	if len(req.Lost) == 0 && len(req.Expected) == 0 {
		for _, d := range gs.history.Latest(e.cfg.MaxReplyMsgs) {
			if !add(d) {
				break
			}
		}
	}

	e.stats.RepliesSent++
	e.stats.ReplyMsgsSent += uint64(len(rep.Msgs))
	e.stack.SendUnicast(pkt.NewPacket(e.stack.ID(), req.Initiator, rep))
}

// --- reply handling ---

func (e *Engine) onReply(p *pkt.Packet, from pkt.NodeID) {
	rep, ok := p.Body.(*pkt.GossipRep)
	if !ok {
		return
	}
	gs, have := e.groups[rep.Group]
	if !have {
		return
	}
	e.stats.RepliesReceived++
	for i := range rep.Msgs {
		d := rep.Msgs[i]
		if e.isDuplicate(gs, d.Key()) {
			e.stats.ReplyMsgsDup++
			continue
		}
		if e.ingest(gs, d, true) {
			e.stats.ReplyMsgsNew++
		} else {
			e.stats.ReplyMsgsDup++
		}
	}
	// Responder is a member: refresh the cache (paper §4.3).
	hops := rep.WalkHops
	if e.hops != nil {
		if h, have := e.hops(rep.Responder); have {
			hops = h
		}
	}
	gs.cache.Update(rep.Responder, hops, e.sched.Now(), true)
}
