package gossip

import (
	"testing"
	"testing/quick"
	"time"

	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

func key(seq uint32) pkt.SeqKey { return pkt.SeqKey{Origin: 1, Seq: seq} }

func TestLostTableBasics(t *testing.T) {
	lt := newLostTable(5)
	for s := uint32(1); s <= 3; s++ {
		lt.Add(key(s))
	}
	if lt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", lt.Len())
	}
	if !lt.Contains(key(2)) {
		t.Fatal("Contains(2) = false")
	}
	lt.Remove(key(2))
	if lt.Contains(key(2)) || lt.Len() != 2 {
		t.Fatal("Remove failed")
	}
	lt.Remove(key(99)) // absent: no-op
	lt.Add(key(1))     // duplicate: no-op
	if lt.Len() != 2 {
		t.Fatalf("Len after dup add = %d, want 2", lt.Len())
	}
}

func TestLostTableEvictsOldest(t *testing.T) {
	lt := newLostTable(3)
	for s := uint32(1); s <= 5; s++ {
		lt.Add(key(s))
	}
	if lt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", lt.Len())
	}
	for _, s := range []uint32{1, 2} {
		if lt.Contains(key(s)) {
			t.Fatalf("old entry %d not evicted", s)
		}
	}
	for _, s := range []uint32{3, 4, 5} {
		if !lt.Contains(key(s)) {
			t.Fatalf("recent entry %d evicted", s)
		}
	}
}

func TestLostTableRecentNewestFirst(t *testing.T) {
	lt := newLostTable(10)
	for s := uint32(1); s <= 6; s++ {
		lt.Add(key(s))
	}
	got := lt.Recent(3)
	want := []uint32{6, 5, 4}
	if len(got) != 3 {
		t.Fatalf("Recent(3) len = %d", len(got))
	}
	for i, k := range got {
		if k.Seq != want[i] {
			t.Fatalf("Recent order = %v", got)
		}
	}
	if n := len(lt.Recent(100)); n != 6 {
		t.Fatalf("Recent(100) len = %d, want 6", n)
	}
}

// Property: the lost table never exceeds its capacity and never reports
// removed keys, for any interleaving of adds and removes.
func TestLostTableBoundedProperty(t *testing.T) {
	f := func(ops []uint16, removes []bool) bool {
		lt := newLostTable(20)
		for i, op := range ops {
			k := key(uint32(op % 50))
			if i < len(removes) && removes[i] {
				lt.Remove(k)
				if lt.Contains(k) {
					return false
				}
			} else {
				lt.Add(k)
				if !lt.Contains(k) {
					return false
				}
			}
			if lt.Len() > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func dataMsg(origin pkt.NodeID, seq uint32) pkt.Data {
	return pkt.Data{Group: 1, Origin: origin, Seq: seq, PayloadLen: 64}
}

func TestHistoryTableAddGet(t *testing.T) {
	h := newHistoryTable(4)
	for s := uint32(1); s <= 4; s++ {
		h.Add(dataMsg(1, s))
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	d, ok := h.Get(key(2))
	if !ok || d.Seq != 2 {
		t.Fatalf("Get(2) = (%v, %v)", d, ok)
	}
	// Re-adding an existing key must not grow the table.
	h.Add(dataMsg(1, 2))
	if h.Len() != 4 {
		t.Fatal("duplicate Add grew the table")
	}
}

func TestHistoryTableFIFOEviction(t *testing.T) {
	h := newHistoryTable(3)
	for s := uint32(1); s <= 5; s++ {
		h.Add(dataMsg(1, s))
	}
	if _, ok := h.Get(key(1)); ok {
		t.Fatal("oldest entry survived")
	}
	if _, ok := h.Get(key(2)); ok {
		t.Fatal("second-oldest entry survived")
	}
	for s := uint32(3); s <= 5; s++ {
		if _, ok := h.Get(key(s)); !ok {
			t.Fatalf("recent entry %d evicted", s)
		}
	}
}

func TestHistoryTableSince(t *testing.T) {
	h := newHistoryTable(10)
	for s := uint32(1); s <= 8; s++ {
		h.Add(dataMsg(1, s))
	}
	h.Add(dataMsg(2, 100)) // different origin must not appear

	got := h.Since(1, 5, 10)
	if len(got) != 4 {
		t.Fatalf("Since(5) returned %d messages, want 4", len(got))
	}
	for i, d := range got {
		if d.Seq != uint32(5+i) {
			t.Fatalf("Since order = %v", got)
		}
	}
	if got := h.Since(1, 5, 2); len(got) != 2 || got[0].Seq != 5 {
		t.Fatalf("Since with cap = %v", got)
	}
	if got := h.Since(3, 0, 5); len(got) != 0 {
		t.Fatalf("Since(unknown origin) = %v", got)
	}
}

func TestHistoryTableLatest(t *testing.T) {
	h := newHistoryTable(5)
	for s := uint32(1); s <= 7; s++ {
		h.Add(dataMsg(1, s))
	}
	got := h.Latest(3)
	if len(got) != 3 {
		t.Fatalf("Latest(3) len = %d", len(got))
	}
	want := []uint32{5, 6, 7}
	for i, d := range got {
		if d.Seq != want[i] {
			t.Fatalf("Latest = %v, want seqs %v", got, want)
		}
	}
	if got := h.Latest(100); len(got) != 5 {
		t.Fatalf("Latest(100) len = %d, want 5", len(got))
	}
}

// Property: history table is always bounded and Get finds exactly the
// most recent cap insertions.
func TestHistoryTableBoundedProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		h := newHistoryTable(10)
		unique := map[uint32]bool{}
		var order []uint32
		for _, s := range seqs {
			seq := uint32(s % 100)
			h.Add(dataMsg(1, seq))
			if !unique[seq] {
				unique[seq] = true
				order = append(order, seq)
			}
		}
		return h.Len() <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMemberCacheUpdateAndEviction(t *testing.T) {
	c := newMemberCache(3)
	now := sim.Time(0)
	c.Update(1, 2, now, false)
	c.Update(2, 5, now, false)
	c.Update(3, 3, now, false)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}

	// Rule 1: new member with hops 4 replaces the hops-5 entry.
	c.Update(4, 4, now+time.Second, false)
	members := map[pkt.NodeID]bool{}
	for _, m := range c.Members() {
		members[m] = true
	}
	if members[2] || !members[4] {
		t.Fatalf("eviction rule 1 violated: %v", c.Members())
	}

	// Rule 2: when no entry has greater numhops than the newcomer, the
	// most recently gossiped entry goes.
	c.MarkGossiped(3, now+10*time.Second)
	c.MarkGossiped(1, now+5*time.Second)
	c.Update(5, 9, now+11*time.Second, false) // hops 9 > all existing
	members = map[pkt.NodeID]bool{}
	for _, m := range c.Members() {
		members[m] = true
	}
	if members[3] {
		t.Fatalf("most recently gossiped entry (3) not evicted: %v", c.Members())
	}
	if !members[5] {
		t.Fatalf("new entry missing: %v", c.Members())
	}
}

func TestMemberCacheUpdateExisting(t *testing.T) {
	c := newMemberCache(3)
	c.Update(1, 5, 0, false)
	// Known distance overwrites.
	c.Update(1, 2, time.Second, false)
	if c.entries[0].numHops != 2 {
		t.Fatalf("numHops = %d, want 2", c.entries[0].numHops)
	}
	// Unknown distance must not clobber a known one.
	c.Update(1, pkt.NearestUnknown, 2*time.Second, false)
	if c.entries[0].numHops != 2 {
		t.Fatalf("unknown hops overwrote known: %d", c.entries[0].numHops)
	}
	if c.Len() != 1 {
		t.Fatalf("Update duplicated the entry: %d", c.Len())
	}
}

func TestMemberCachePick(t *testing.T) {
	c := newMemberCache(5)
	rng := sim.NewRNG(9)
	if _, ok := c.Pick(rng); ok {
		t.Fatal("Pick on empty cache succeeded")
	}
	c.Update(7, 1, 0, false)
	got, ok := c.Pick(rng)
	if !ok || got.addr != 7 {
		t.Fatalf("Pick = (%v, %v)", got, ok)
	}
}

// Property: cache never exceeds capacity and Update is idempotent on
// membership.
func TestMemberCacheBoundedProperty(t *testing.T) {
	f := func(addrs []uint8, hops []uint8) bool {
		c := newMemberCache(10)
		for i, a := range addrs {
			h := uint8(3)
			if i < len(hops) {
				h = hops[i] % 16
			}
			c.Update(pkt.NodeID(a), h, sim.Time(i)*time.Second, i%3 == 0)
			if c.Len() > 10 {
				return false
			}
		}
		// No duplicate addresses.
		seen := map[pkt.NodeID]bool{}
		for _, m := range c.Members() {
			if seen[m] {
				return false
			}
			seen[m] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCapacityTables(t *testing.T) {
	lt := newLostTable(0)
	lt.Add(key(1))
	if lt.Len() != 0 {
		t.Fatal("zero-cap lost table stored an entry")
	}
	h := newHistoryTable(0)
	h.Add(dataMsg(1, 1))
	if h.Len() != 0 {
		t.Fatal("zero-cap history stored an entry")
	}
	c := newMemberCache(0)
	c.Update(1, 1, 0, false)
	if c.Len() != 0 {
		t.Fatal("zero-cap cache stored an entry")
	}
}
