package gossip

import (
	"anongossip/internal/pkt"
	"anongossip/internal/sim"
)

// lostTable holds the sequence numbers of messages a member believes it
// has lost (paper §4.4), bounded in size with oldest-first eviction.
// Insertion order is preserved so the most recent entries can populate
// the gossip message's lost buffer.
type lostTable struct {
	cap   int
	keys  []pkt.SeqKey
	index map[pkt.SeqKey]struct{}
}

func newLostTable(capacity int) *lostTable {
	return &lostTable{cap: capacity, index: make(map[pkt.SeqKey]struct{}, capacity)}
}

func (t *lostTable) Len() int { return len(t.keys) }

func (t *lostTable) Contains(k pkt.SeqKey) bool {
	_, ok := t.index[k]
	return ok
}

// Add records a missing message. When full, the oldest entry is evicted:
// old losses are the least likely to still be recoverable from bounded
// history tables.
func (t *lostTable) Add(k pkt.SeqKey) {
	if t.cap <= 0 || t.Contains(k) {
		return
	}
	if len(t.keys) >= t.cap {
		old := t.keys[0]
		t.keys = t.keys[1:]
		delete(t.index, old)
	}
	t.keys = append(t.keys, k)
	t.index[k] = struct{}{}
}

// Remove drops a recovered message.
func (t *lostTable) Remove(k pkt.SeqKey) {
	if !t.Contains(k) {
		return
	}
	delete(t.index, k)
	for i := range t.keys {
		if t.keys[i] == k {
			t.keys = append(t.keys[:i], t.keys[i+1:]...)
			return
		}
	}
}

// Recent returns up to n of the most recently added entries, newest
// first (paper §4.4: "the most recent entries of the lost table are
// placed in a lost buffer").
func (t *lostTable) Recent(n int) []pkt.SeqKey {
	if n > len(t.keys) {
		n = len(t.keys)
	}
	out := make([]pkt.SeqKey, 0, n)
	for i := len(t.keys) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, t.keys[i])
	}
	return out
}

// historyTable is the bounded FIFO buffer of the most recent messages
// received (paper §4.4), used to answer gossip requests.
type historyTable struct {
	cap   int
	ring  []pkt.Data
	next  int
	index map[pkt.SeqKey]int // key -> ring position
}

func newHistoryTable(capacity int) *historyTable {
	return &historyTable{cap: capacity, index: make(map[pkt.SeqKey]int, capacity)}
}

func (h *historyTable) Len() int { return len(h.ring) }

// Add stores a received message, evicting the oldest when full.
func (h *historyTable) Add(d pkt.Data) {
	k := d.Key()
	if h.cap <= 0 {
		return
	}
	if pos, dup := h.index[k]; dup {
		h.ring[pos] = d
		return
	}
	if len(h.ring) < h.cap {
		h.index[k] = len(h.ring)
		h.ring = append(h.ring, d)
		return
	}
	old := h.ring[h.next].Key()
	delete(h.index, old)
	h.ring[h.next] = d
	h.index[k] = h.next
	h.next = (h.next + 1) % h.cap
}

// Get looks a message up by identity.
func (h *historyTable) Get(k pkt.SeqKey) (pkt.Data, bool) {
	pos, ok := h.index[k]
	if !ok {
		return pkt.Data{}, false
	}
	return h.ring[pos], true
}

// Since returns up to max messages from origin with sequence >= from,
// in ascending sequence order. It serves the "expected sequence number"
// part of a gossip request: packets the initiator does not yet know it
// missed.
func (h *historyTable) Since(origin pkt.NodeID, from uint32, max int) []pkt.Data {
	var out []pkt.Data
	for i := range h.ring {
		d := h.ring[i]
		if d.Origin == origin && d.Seq >= from {
			out = append(out, d)
		}
	}
	sortDataBySeq(out)
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// Latest returns up to max of the most recently added messages (newest
// last). It serves empty gossip requests from members that have not yet
// received anything.
func (h *historyTable) Latest(max int) []pkt.Data {
	n := len(h.ring)
	if max > n {
		max = n
	}
	out := make([]pkt.Data, 0, max)
	// Ring order: h.next is the oldest slot once the ring is full.
	start := 0
	if n == h.cap {
		start = h.next
	}
	for i := n - max; i < n; i++ {
		out = append(out, h.ring[(start+i)%n])
	}
	return out
}

func sortDataBySeq(ds []pkt.Data) {
	// Insertion sort: slices are at most MaxReplyMsgs + history scans.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Seq < ds[j-1].Seq; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// cacheEntry is one member cache row: (node_addr, numhops, last_gossip)
// per paper §4.3.
type cacheEntry struct {
	addr       pkt.NodeID
	numHops    uint8
	lastGossip sim.Time
	hasGossip  bool
}

// memberCache is the bounded cache of known group members used for
// cached gossip (paper §4.3). Eviction follows the paper: replace an
// entry with strictly greater hop distance; otherwise replace the entry
// with the most recent last_gossip time, "to avoid frequent gossips with
// the same members".
type memberCache struct {
	cap     int
	entries []cacheEntry
}

func newMemberCache(capacity int) *memberCache {
	return &memberCache{cap: capacity}
}

func (c *memberCache) Len() int { return len(c.entries) }

// Members returns the cached member addresses (for diagnostics/tests).
func (c *memberCache) Members() []pkt.NodeID {
	out := make([]pkt.NodeID, len(c.entries))
	for i, e := range c.entries {
		out[i] = e.addr
	}
	return out
}

// Update inserts or refreshes knowledge about a member. numHops may be
// pkt.NearestUnknown when the distance is not known; known distances
// overwrite unknown ones. gossiped marks an actual gossip exchange,
// updating last_gossip.
func (c *memberCache) Update(addr pkt.NodeID, numHops uint8, now sim.Time, gossiped bool) {
	for i := range c.entries {
		if c.entries[i].addr != addr {
			continue
		}
		if numHops != pkt.NearestUnknown {
			c.entries[i].numHops = numHops
		}
		if gossiped {
			c.entries[i].lastGossip = now
			c.entries[i].hasGossip = true
		}
		return
	}
	e := cacheEntry{addr: addr, numHops: numHops, lastGossip: now, hasGossip: gossiped}
	if len(c.entries) < c.cap {
		c.entries = append(c.entries, e)
		return
	}
	if c.cap == 0 {
		return
	}
	// Eviction rule 1: any member with strictly greater numhops.
	worst, worstHops := -1, numHops
	for i := range c.entries {
		if c.entries[i].numHops > worstHops {
			worst, worstHops = i, c.entries[i].numHops
		}
	}
	if worst >= 0 {
		c.entries[worst] = e
		return
	}
	// Eviction rule 2: the most recently gossiped entry.
	recent := 0
	for i := 1; i < len(c.entries); i++ {
		if c.entries[i].lastGossip > c.entries[recent].lastGossip {
			recent = i
		}
	}
	c.entries[recent] = e
}

// MarkGossiped refreshes last_gossip for addr.
func (c *memberCache) MarkGossiped(addr pkt.NodeID, now sim.Time) {
	for i := range c.entries {
		if c.entries[i].addr == addr {
			c.entries[i].lastGossip = now
			c.entries[i].hasGossip = true
			return
		}
	}
}

// Pick returns a uniformly random cached member.
func (c *memberCache) Pick(rng *sim.RNG) (cacheEntry, bool) {
	if len(c.entries) == 0 {
		return cacheEntry{}, false
	}
	return c.entries[rng.Intn(len(c.entries))], true
}
