package gossip

import (
	"testing"
	"time"
)

// Push-mode tests: the §4.4 alternative the paper rejects, kept for the
// ablation benchmarks.

func TestPushModeDisseminates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	cfg.Mode = ModePush
	w := buildLine(t, 4, []int{0, 3}, cfg)

	// Member 1 holds the stream; member 4 has nothing. In push mode the
	// holder's rounds spray its history toward whoever accepts the walk.
	w.sched.After(0, func() { feed(w.engines[0], 9, 1, 10) })
	w.sched.Run(30 * time.Second)

	// Member 4 accepted pushes and ingested the data.
	if got := w.engines[3].Stats().ReplyMsgsNew; got == 0 {
		t.Fatalf("push mode delivered nothing: %+v", w.engines[3].Stats())
	}
	// Nobody sent pull replies.
	if w.engines[0].Stats().RepliesSent+w.engines[3].Stats().RepliesSent != 0 {
		t.Fatal("push-mode round triggered a pull reply")
	}
}

func TestPushModeRedundancy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1
	cfg.Mode = ModePush
	w := buildLine(t, 4, []int{0, 3}, cfg)

	// Both members already hold the full stream: every pushed message is
	// redundant, so goodput collapses — the paper's §4.4 argument for
	// pull in one number.
	w.sched.After(0, func() {
		feed(w.engines[0], 9, 1, 10)
		feed(w.engines[3], 9, 1, 10)
	})
	w.sched.Run(30 * time.Second)

	dups := w.engines[0].Stats().ReplyMsgsDup + w.engines[3].Stats().ReplyMsgsDup
	if dups == 0 {
		t.Fatal("no redundant pushes recorded between synchronised members")
	}
	news := w.engines[0].Stats().ReplyMsgsNew + w.engines[3].Stats().ReplyMsgsNew
	if news != 0 {
		t.Fatalf("synchronised members recovered %d 'new' messages", news)
	}
}

func TestPullModeSuppressesRedundancy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PAnon = 1 // pull (default mode)
	w := buildLine(t, 4, []int{0, 3}, cfg)

	w.sched.After(0, func() {
		feed(w.engines[0], 9, 1, 10)
		feed(w.engines[3], 9, 1, 10)
	})
	w.sched.Run(30 * time.Second)

	// Synchronised members have empty lost buffers and matching
	// expectations: pull replies stay empty, so no duplicates flow.
	dups := w.engines[0].Stats().ReplyMsgsDup + w.engines[3].Stats().ReplyMsgsDup
	if dups != 0 {
		t.Fatalf("pull mode shipped %d redundant messages", dups)
	}
}
