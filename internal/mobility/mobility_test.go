package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/sim"
)

func testConfig() WaypointConfig {
	return WaypointConfig{
		Area:     geom.Rect{W: 200, H: 200},
		MinSpeed: 0,
		MaxSpeed: 2,
		MaxPause: 80 * time.Second,
	}
}

func TestStatic(t *testing.T) {
	s := Static{P: geom.Point{X: 5, Y: 7}}
	for _, tm := range []sim.Time{0, time.Second, time.Hour} {
		if got := s.Position(tm); got != s.P {
			t.Fatalf("Static.Position(%v) = %v, want %v", tm, got, s.P)
		}
	}
}

func TestWaypointStaysInArea(t *testing.T) {
	cfg := testConfig()
	w := NewWaypoint(cfg, sim.NewRNG(1))
	for ts := sim.Time(0); ts <= 600*time.Second; ts += 500 * time.Millisecond {
		p := w.Position(ts)
		if !cfg.Area.Contains(p) {
			t.Fatalf("position %v at t=%v outside area", p, ts)
		}
	}
}

func TestWaypointDeterministic(t *testing.T) {
	cfg := testConfig()
	a := NewWaypoint(cfg, sim.NewRNG(42))
	b := NewWaypoint(cfg, sim.NewRNG(42))
	for ts := sim.Time(0); ts <= 300*time.Second; ts += 7 * time.Second {
		if a.Position(ts) != b.Position(ts) {
			t.Fatalf("same-seed trajectories diverged at t=%v", ts)
		}
	}
}

func TestWaypointRandomAccessMatchesSequential(t *testing.T) {
	cfg := testConfig()
	a := NewWaypoint(cfg, sim.NewRNG(9))
	b := NewWaypoint(cfg, sim.NewRNG(9))

	// a queried sequentially, b queried at the same times out of order.
	times := []sim.Time{0, 400 * time.Second, 10 * time.Second, 599 * time.Second, 100 * time.Second}
	seq := make(map[sim.Time]geom.Point)
	for ts := sim.Time(0); ts <= 600*time.Second; ts += time.Second {
		seq[ts] = a.Position(ts)
	}
	for _, ts := range times {
		if got := b.Position(ts); got != seq[ts] {
			t.Fatalf("random access Position(%v) = %v, want %v", ts, got, seq[ts])
		}
	}
}

func TestWaypointSpeedBounded(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSpeed = 2
	w := NewWaypoint(cfg, sim.NewRNG(3))
	const dt = 100 * time.Millisecond
	prev := w.Position(0)
	for ts := dt; ts <= 600*time.Second; ts += dt {
		cur := w.Position(ts)
		dist := prev.Dist(cur)
		speed := dist / dt.Seconds()
		// Allow slack for a leg boundary inside the step (two directions).
		if speed > 2*cfg.MaxSpeed+1e-9 {
			t.Fatalf("apparent speed %.3f m/s at t=%v exceeds bound", speed, ts)
		}
		prev = cur
	}
}

func TestWaypointNegativeTimeClamps(t *testing.T) {
	w := NewWaypoint(testConfig(), sim.NewRNG(5))
	if got, want := w.Position(-time.Second), w.Position(0); got != want {
		t.Fatalf("Position(-1s) = %v, want Position(0) = %v", got, want)
	}
}

func TestWaypointZeroMaxSpeedIsStatic(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSpeed = 0
	w := NewWaypoint(cfg, sim.NewRNG(6))
	p0 := w.Position(0)
	for _, ts := range []sim.Time{time.Second, time.Hour, 100 * time.Hour} {
		if got := w.Position(ts); got != p0 {
			t.Fatalf("zero-speed node moved: %v -> %v", p0, got)
		}
	}
}

func TestWaypointFixedStart(t *testing.T) {
	start := geom.Point{X: 50, Y: 60}
	w := NewWaypointAt(testConfig(), sim.NewRNG(7), start)
	if got := w.Position(0); got != start {
		t.Fatalf("Position(0) = %v, want %v", got, start)
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSpeed = 10
	cfg.MaxPause = time.Second
	w := NewWaypoint(cfg, sim.NewRNG(8))
	p0 := w.Position(0)
	moved := false
	for ts := sim.Time(0); ts <= 120*time.Second; ts += time.Second {
		if w.Position(ts).Dist(p0) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fast node with short pauses never moved more than 1 m in 120 s")
	}
}

func TestWaypointLegsGrowLazily(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSpeed = 10
	cfg.MaxPause = time.Second
	w := NewWaypoint(cfg, sim.NewRNG(10))
	initial := w.Legs()
	w.Position(0)
	if w.Legs() != initial {
		t.Fatal("Position(0) should not generate extra legs")
	}
	w.Position(600 * time.Second)
	if w.Legs() <= initial {
		t.Fatal("querying far future should extend the trajectory")
	}
}

// Property: for random seeds and speeds, positions over a long horizon stay
// within the area and repeated queries agree.
func TestWaypointProperty(t *testing.T) {
	cfg := testConfig()
	f := func(seed int64, speedTenths uint8) bool {
		c := cfg
		c.MaxSpeed = float64(speedTenths%100) / 10 // 0 .. 9.9 m/s
		w := NewWaypoint(c, sim.NewRNG(seed))
		for ts := sim.Time(0); ts <= 200*time.Second; ts += 5 * time.Second {
			p := w.Position(ts)
			if !c.Area.Contains(p) {
				return false
			}
			if q := w.Position(ts); q != p {
				return false
			}
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSpeedBounds(t *testing.T) {
	if got := (Static{}).MaxSpeed(); got != 0 {
		t.Fatalf("Static.MaxSpeed = %v, want 0", got)
	}
	w := NewWaypoint(testConfig(), sim.NewRNG(1))
	if got := w.MaxSpeed(); got != 2 {
		t.Fatalf("Waypoint.MaxSpeed = %v, want configured 2", got)
	}
	// Sub-floor configured speeds are raised to floorSpeed per leg, so
	// the bound must report the floor, not the configuration.
	slow := testConfig()
	slow.MaxSpeed = 0.001
	if got := NewWaypoint(slow, sim.NewRNG(1)).MaxSpeed(); got != floorSpeed {
		t.Fatalf("sub-floor MaxSpeed = %v, want floorSpeed %v", got, floorSpeed)
	}
	// A non-positive max speed degenerates to a static trajectory.
	still := testConfig()
	still.MaxSpeed = 0
	if got := NewWaypoint(still, sim.NewRNG(1)).MaxSpeed(); got != 0 {
		t.Fatalf("degenerate MaxSpeed = %v, want 0", got)
	}
	// Inverted bounds: Uniform(lo, hi) returns lo when hi <= lo, so legs
	// actually travel at MinSpeed — the bound must cover it.
	inv := testConfig()
	inv.MinSpeed, inv.MaxSpeed = 2, 0.5
	if got := NewWaypoint(inv, sim.NewRNG(1)).MaxSpeed(); got != 2 {
		t.Fatalf("inverted-bounds MaxSpeed = %v, want MinSpeed 2", got)
	}
}

func TestMaxSpeedOf(t *testing.T) {
	if v, ok := MaxSpeedOf(Static{}); !ok || v != 0 {
		t.Fatalf("MaxSpeedOf(Static) = %v,%v, want 0,true", v, ok)
	}
	if v, ok := MaxSpeedOf(boundlessModel{}); ok || !math.IsInf(v, 1) {
		t.Fatalf("MaxSpeedOf(no Speeder) = %v,%v, want +Inf,false", v, ok)
	}
}

// boundlessModel implements Model but not Speeder.
type boundlessModel struct{}

func (boundlessModel) Position(sim.Time) geom.Point { return geom.Point{} }

// TestWaypointRespectsMaxSpeed is the contract the radio grid depends
// on: sampled displacement between any two instants never exceeds the
// reported bound times the elapsed time (plus float slack).
func TestWaypointRespectsMaxSpeed(t *testing.T) {
	f := func(seed int64, speedTenths uint8) bool {
		c := testConfig()
		c.MaxSpeed = float64(speedTenths%100) / 10
		w := NewWaypoint(c, sim.NewRNG(seed))
		bound := w.MaxSpeed()
		const step = 500 * time.Millisecond
		prev := w.Position(0)
		for ts := step; ts <= 120*time.Second; ts += step {
			p := w.Position(ts)
			if dist := p.Dist(prev); dist > bound*step.Seconds()*(1+1e-9)+1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
