// Package mobility implements node movement models. The paper's evaluation
// uses the Random Waypoint model: each node repeatedly picks a uniformly
// random destination in the terrain, travels to it in a straight line at a
// speed drawn uniformly from [MinSpeed, MaxSpeed], then rests for a pause
// drawn uniformly from [0, MaxPause] (80 s in the paper) before repeating.
//
// Trajectories are generated lazily and deterministically from a sim.RNG
// sub-stream, so a node's position is computable at any simulation time
// without stepping the model.
package mobility

import (
	"math"
	"time"

	"anongossip/internal/geom"
	"anongossip/internal/sim"
)

// Model yields a node's position at any simulation time. Implementations
// must be deterministic: repeated calls with the same t return the same
// point, and queries at earlier times after later ones are allowed.
type Model interface {
	Position(t sim.Time) geom.Point
}

// Speeder is implemented by models that can bound how fast they move.
// MaxSpeed returns a conservative upper bound in m/s on the node's
// speed at any simulation time; 0 means the node never moves. The
// radio layer's spatial grid uses the bound to decide how long a
// bucketed position stays valid (a node cannot drift more than
// MaxSpeed·Δt metres from where it was last bucketed), so returning a
// value that the trajectory can exceed breaks neighbour queries.
// Models that cannot bound their speed simply do not implement
// Speeder; the grid then treats them as always stale (see
// mobility.MaxSpeedOf).
type Speeder interface {
	MaxSpeed() float64
}

// MaxSpeedOf returns the conservative speed bound for m, and whether
// the model provided one. Models without a bound force the caller to
// re-validate positions at every query epoch.
func MaxSpeedOf(m Model) (float64, bool) {
	s, ok := m.(Speeder)
	if !ok {
		return math.Inf(1), false
	}
	return s.MaxSpeed(), true
}

// Static is a node that never moves.
type Static struct {
	P geom.Point
}

// Position implements Model.
func (s Static) Position(sim.Time) geom.Point { return s.P }

// MaxSpeed implements Speeder: a static node never moves.
func (s Static) MaxSpeed() float64 { return 0 }

// WaypointConfig parameterises the Random Waypoint model.
type WaypointConfig struct {
	// Area is the terrain; destinations are drawn uniformly inside it.
	Area geom.Rect
	// MinSpeed and MaxSpeed bound the per-leg speed in m/s. The paper sets
	// MinSpeed = 0 for all runs; speeds below floorSpeed are raised to
	// floorSpeed so that every leg terminates.
	MinSpeed, MaxSpeed float64
	// MaxPause bounds the uniform rest period at each destination.
	MaxPause time.Duration
}

// floorSpeed prevents zero-speed legs that would never arrive. 1 cm/s is
// far below any speed the experiments sweep (0.1 .. 10 m/s).
const floorSpeed = 0.01

// leg is one travel-then-pause segment of a waypoint trajectory, covering
// simulation times [start, start+travel+pause).
type leg struct {
	start    sim.Time
	from, to geom.Point
	travel   sim.Time
	pause    sim.Time
}

func (l leg) end() sim.Time { return l.start + l.travel + l.pause }

// positionAt interpolates within the leg. t must satisfy start <= t < end.
func (l leg) positionAt(t sim.Time) geom.Point {
	if t >= l.start+l.travel {
		return l.to
	}
	if l.travel == 0 {
		return l.to
	}
	frac := float64(t-l.start) / float64(l.travel)
	return l.from.Lerp(l.to, frac)
}

// Waypoint is a lazily-generated Random Waypoint trajectory.
type Waypoint struct {
	cfg  WaypointConfig
	rng  *sim.RNG
	legs []leg
	// Position memo: queries cluster tightly around the advancing
	// simulation clock (a carrier probe reads every candidate's
	// position at the same instant, and consecutive events sit
	// microseconds apart), so the last result answers repeats verbatim
	// and the last covering leg seeds the next search.
	memoT   sim.Time
	memoP   geom.Point
	memoLeg int
	memoOK  bool
}

var (
	_ Model   = (*Waypoint)(nil)
	_ Speeder = (*Waypoint)(nil)
	_ Speeder = Static{}
)

// NewWaypoint creates a trajectory starting at a uniformly random point in
// the configured area. rng must be a dedicated sub-stream: the model
// consumes from it as legs are generated.
func NewWaypoint(cfg WaypointConfig, rng *sim.RNG) *Waypoint {
	start := randomPoint(cfg.Area, rng)
	return NewWaypointAt(cfg, rng, start)
}

// NewWaypointAt creates a trajectory with a fixed starting position.
func NewWaypointAt(cfg WaypointConfig, rng *sim.RNG, start geom.Point) *Waypoint {
	w := &Waypoint{cfg: cfg, rng: rng}
	w.legs = append(w.legs, w.nextLeg(0, start))
	return w
}

func randomPoint(r geom.Rect, rng *sim.RNG) geom.Point {
	return geom.Point{X: rng.Uniform(0, r.W), Y: rng.Uniform(0, r.H)}
}

func (w *Waypoint) nextLeg(start sim.Time, from geom.Point) leg {
	if w.cfg.MaxSpeed <= 0 {
		// Degenerate configuration: the node is effectively static. Emit a
		// very long pause leg; more are appended if the horizon is exceeded.
		return leg{start: start, from: from, to: from, travel: 0, pause: 1 << 50}
	}
	to := randomPoint(w.cfg.Area, w.rng)
	speed := w.rng.Uniform(w.cfg.MinSpeed, w.cfg.MaxSpeed)
	if speed < floorSpeed {
		speed = floorSpeed
	}
	dist := from.Dist(to)
	travel := sim.Time(float64(time.Second) * dist / speed)
	pause := w.rng.Duration(w.cfg.MaxPause)
	return leg{start: start, from: from, to: to, travel: travel, pause: pause}
}

// extendTo appends legs until the trajectory covers time t.
func (w *Waypoint) extendTo(t sim.Time) {
	last := w.legs[len(w.legs)-1]
	for last.end() <= t {
		last = w.nextLeg(last.end(), last.to)
		w.legs = append(w.legs, last)
	}
}

// Position implements Model.
func (w *Waypoint) Position(t sim.Time) geom.Point {
	if t < 0 {
		t = 0
	}
	if w.memoOK && t == w.memoT {
		return w.memoP
	}
	w.extendTo(t)
	// Binary search for the covering leg, seeded from the memoised leg:
	// the covering leg for a nearby query is almost always the same leg
	// or its successor.
	lo, hi := 0, len(w.legs)-1
	if w.memoOK {
		if l := w.legs[w.memoLeg]; l.start <= t {
			if t < l.end() {
				lo, hi = w.memoLeg, w.memoLeg
			} else {
				lo = w.memoLeg + 1
			}
		} else {
			hi = w.memoLeg
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if w.legs[mid].end() <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.memoT, w.memoP, w.memoLeg, w.memoOK = t, w.legs[lo].positionAt(t), lo, true
	return w.memoP
}

// Legs returns the number of trajectory segments generated so far. It is
// exported for tests and diagnostics.
func (w *Waypoint) Legs() int { return len(w.legs) }

// MaxSpeed implements Speeder. Per-leg speeds are drawn with
// rng.Uniform(MinSpeed, MaxSpeed) — which returns MinSpeed when the
// bounds are inverted — and raised to floorSpeed when below it, so the
// conservative bound is the largest of the three. A non-positive
// configured MaxSpeed degenerates to an eternally pausing (static)
// trajectory regardless of MinSpeed.
func (w *Waypoint) MaxSpeed() float64 {
	if w.cfg.MaxSpeed <= 0 {
		return 0
	}
	return math.Max(math.Max(w.cfg.MinSpeed, w.cfg.MaxSpeed), floorSpeed)
}
