module anongossip

go 1.24
