package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeAgbenchRecord builds an agbench -json record with the given
// sweep-wide throughput and allocation rate.
func fakeAgbenchRecord(events uint64, wallSeconds, mallocsPerEvent float64) string {
	return fmt.Sprintf(`{
		"go_version": "go-test",
		"protocol": "maodv+gossip",
		"index": "grid", "queue": "quad", "rxmodel": "batch",
		"scheduler": "serial", "workers": 0,
		"seeds": 1, "duration": "75s",
		"figures": [{"figure": "dense", "points": [
			{"x": 20, "events": %d, "wall_seconds": %g}
		]}],
		"total_events": %d,
		"mallocs_per_event": %g
	}`, events, wallSeconds, events, mallocsPerEvent)
}

func writeFile(t *testing.T, name, data string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// wrapBaseline embeds an agbench record the way -record does.
func wrapBaseline(t *testing.T, smoke string) string {
	t.Helper()
	b := baseline{GoVersion: "go-test", CPUs: 1, Smoke: json.RawMessage(smoke)}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGatePassesOnEqualPerf(t *testing.T) {
	smoke := fakeAgbenchRecord(1_000_000, 2.0, 40)
	base := writeFile(t, "base.json", wrapBaseline(t, smoke))
	cand := writeFile(t, "cand.json", smoke)
	if err := run([]string{"-baseline", base, "-candidate", cand}); err != nil {
		t.Fatalf("identical records failed the gate: %v", err)
	}
}

func TestGateFailsOnThroughputRegression(t *testing.T) {
	base := writeFile(t, "base.json",
		wrapBaseline(t, fakeAgbenchRecord(1_000_000, 2.0, 40)))
	// Same events, 3x the wall time: 0.33x throughput, under the 0.5 floor.
	cand := writeFile(t, "cand.json", fakeAgbenchRecord(1_000_000, 6.0, 40))
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("3x slowdown passed the gate: %v", err)
	}
	// A looser floor lets the same record through.
	if err := run([]string{"-baseline", base, "-candidate", cand,
		"-min-speed-ratio", "0.25"}); err != nil {
		t.Fatalf("loosened floor still failed: %v", err)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	base := writeFile(t, "base.json",
		wrapBaseline(t, fakeAgbenchRecord(1_000_000, 2.0, 40)))
	// Same speed, double the allocation rate: over the 1.5x ceiling.
	cand := writeFile(t, "cand.json", fakeAgbenchRecord(1_000_000, 2.0, 80))
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("2x allocation rate passed the gate: %v", err)
	}
	if err := run([]string{"-baseline", base, "-candidate", cand,
		"-max-allocs-ratio", "2.5"}); err != nil {
		t.Fatalf("loosened ceiling still failed: %v", err)
	}
}

func TestGateRejectsMismatchedWorkloads(t *testing.T) {
	base := writeFile(t, "base.json",
		wrapBaseline(t, fakeAgbenchRecord(1_000_000, 2.0, 40)))
	other := strings.Replace(fakeAgbenchRecord(1_000_000, 2.0, 40),
		`"duration": "75s"`, `"duration": "600s"`, 1)
	cand := writeFile(t, "cand.json", other)
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("mismatched workloads compared: %v", err)
	}
}

func TestGateRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no flags accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-baseline", "no-such.json", "-candidate", "no-such.json"}); err == nil {
		t.Fatal("missing files accepted")
	}
	garbage := writeFile(t, "bad.json", "{not json")
	if err := run([]string{"-baseline", garbage, "-candidate", garbage}); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	// A baseline without an embedded smoke record cannot gate.
	empty := writeFile(t, "empty.json", `{"go_version": "go-test", "cpus": 1}`)
	cand := writeFile(t, "cand.json", fakeAgbenchRecord(1, 1, 1))
	if err := run([]string{"-baseline", empty, "-candidate", cand}); err == nil {
		t.Fatal("baseline without smoke record accepted")
	}
	if err := run([]string{"-record", "out.json", "-matrix-nodes", "zero"}); err == nil {
		t.Fatal("bad matrix-nodes accepted")
	}
	if err := run([]string{"-record", "out.json", "-workers", "-2"}); err == nil {
		t.Fatal("bad workers accepted")
	}
	if err := run([]string{"-record", "out.json", "-queue", "bogus"}); err == nil {
		t.Fatal("bad queue kind accepted")
	}
	if err := run([]string{"-record", filepath.Join(t.TempDir(), "out.json"),
		"-smoke", "no-such.json"}); err == nil {
		t.Fatal("missing smoke record accepted")
	}
}

// TestGateRawBaseline pins the same-run comparison mode used by the CI
// metrics-overhead gate: two raw agbench records gate directly against
// each other, no committed baseline wrapper, with the custom speed
// floor applied.
func TestGateRawBaseline(t *testing.T) {
	plain := writeFile(t, "plain.json", fakeAgbenchRecord(1_000_000, 2.0, 40))
	// 5% slower than plain: passes a 0.9 floor, fails a 0.99 floor.
	sampled := writeFile(t, "sampled.json", fakeAgbenchRecord(1_000_000, 2.1, 40))
	if err := run([]string{"-raw-baseline", plain, "-candidate", sampled,
		"-min-speed-ratio", "0.9"}); err != nil {
		t.Fatalf("5%% overhead failed the 0.9x floor: %v", err)
	}
	err := run([]string{"-raw-baseline", plain, "-candidate", sampled,
		"-min-speed-ratio", "0.99"})
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("5%% overhead passed the 0.99x floor: %v", err)
	}
	// The two baseline flags cannot be combined.
	err = run([]string{"-baseline", plain, "-raw-baseline", plain, "-candidate", sampled})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-baseline + -raw-baseline accepted: %v", err)
	}
}

// TestGateRejectsCrossQueue pins the like-for-like rule: a candidate
// recorded under one queue kind must not gate against a baseline that
// only carries another kind's smoke record.
func TestGateRejectsCrossQueue(t *testing.T) {
	base := writeFile(t, "base.json",
		wrapBaseline(t, fakeAgbenchRecord(1_000_000, 2.0, 40)))
	calCand := strings.Replace(fakeAgbenchRecord(1_000_000, 2.0, 40),
		`"queue": "quad"`, `"queue": "cal"`, 1)
	cand := writeFile(t, "cand.json", calCand)
	err := run([]string{"-baseline", base, "-candidate", cand})
	if err == nil || !strings.Contains(err.Error(), "no smoke record for queue") {
		t.Fatalf("cal candidate gated against quad-only baseline: %v", err)
	}
}

// TestRecordSmallMatrix runs record mode on a tiny matrix and checks the
// written baseline parses, carries per-queue serial + sharded rows with
// matching event counts, and embeds the smoke record. The cal-speedup
// floor is disabled: a 100-node matrix is far below the scale where the
// calendar queue's claim applies.
func TestRecordSmallMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	smoke := writeFile(t, "smoke.json", fakeAgbenchRecord(1_000_000, 2.0, 40))
	out := filepath.Join(t.TempDir(), "baseline.json")
	err := run([]string{"-record", out, "-smoke", smoke,
		"-matrix-nodes", "100", "-queue", "quad,cal", "-workers", "1,2",
		"-duration", "20s", "-min-cal-speedup", "0", "-note", "test host"})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline does not parse: %v", err)
	}
	if b.CPUs < 1 || b.Note != "test host" || len(b.Smokes) != 1 {
		t.Fatalf("baseline metadata incomplete: %+v", b)
	}
	if len(b.SchedulerMatrix) != 6 { // 2 queues x (serial + workers 1,2)
		t.Fatalf("matrix rows = %d, want 6", len(b.SchedulerMatrix))
	}
	serial := b.SchedulerMatrix[0]
	if serial.Scheduler != "serial" || serial.Events == 0 || serial.EventsPerSec <= 0 {
		t.Fatalf("serial row incomplete: %+v", serial)
	}
	for i, row := range b.SchedulerMatrix {
		wantQueue := "quad"
		if i >= 3 {
			wantQueue = "cal"
		}
		if row.Queue != wantQueue {
			t.Fatalf("row %d queue = %q, want %q: %+v", i, row.Queue, wantQueue, row)
		}
		if row.Events != serial.Events {
			t.Fatalf("row %d events %d diverge from serial %d", i, row.Events, serial.Events)
		}
		if i%3 != 0 && (row.Scheduler != "sharded" || row.SpeedupVsSerial <= 0) {
			t.Fatalf("sharded row inconsistent with serial: %+v", row)
		}
		if row.SpeedupVsQuad <= 0 {
			t.Fatalf("row %d missing like-for-like queue ratio: %+v", i, row)
		}
	}
	// The freshly recorded baseline must gate its own smoke record.
	cand := writeFile(t, "cand.json", fakeAgbenchRecord(1_000_000, 2.0, 40))
	if err := run([]string{"-baseline", out, "-candidate", cand}); err != nil {
		t.Fatalf("self-gate failed: %v", err)
	}
}

// TestRecordRefusesLowCalSpeedup checks the record-time enforcement: a
// floor no real host can reach makes -record refuse to write, so a
// committed baseline can never contradict the speedup it claims.
func TestRecordRefusesLowCalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := filepath.Join(t.TempDir(), "baseline.json")
	err := run([]string{"-record", out,
		"-matrix-nodes", "100", "-queue", "quad,cal", "-workers", "1",
		"-duration", "20s", "-min-cal-speedup", "100"})
	if err == nil || !strings.Contains(err.Error(), "below the 100.00x floor") {
		t.Fatalf("unreachable cal-speedup floor did not refuse recording: %v", err)
	}
	if _, statErr := os.Stat(out); statErr == nil {
		t.Fatal("baseline written despite failed speedup floor")
	}
}
