// Command benchgate is the bench regression gate and the generator of
// the repo's committed perf baselines (the BENCH_*.json files).
//
// Gate mode (the CI path) compares a fresh `agbench -json` record
// against the committed baseline and fails on a throughput or
// allocation-rate regression:
//
//	agbench -fig dense -dense-nodes 100 -dense-max 20 -seeds 1 \
//	        -duration 75s -json fresh.json
//	benchgate -baseline BENCH_PR6.json -candidate fresh.json
//
// The gate compares sweep-wide events/sec (candidate must reach
// -min-speed-ratio of baseline, default 0.5 — wide enough for shared
// CI runners, tight enough to catch an accidental O(n) slip) and
// mallocs/event (candidate must stay under -max-allocs-ratio of
// baseline, default 1.5). It refuses to compare records from different
// workloads: protocol, figure set, seeds and duration must match.
//
// Record mode regenerates the committed baseline: it runs the
// serial-vs-sharded scheduler matrix (every -workers count at every
// -matrix-nodes count, constant-density large-scale configs) and
// embeds the smoke record written by agbench:
//
//	benchgate -record BENCH_PR6.json -smoke fresh.json \
//	          -matrix-nodes 1000,10000 -workers 1,2,4,8 -duration 20s
//
// Matrix rows at the same node count execute bit-identical schedules
// (asserted by the scenario differential tests), so their wall-clock
// ratios isolate the sharded kernel's scaling. The record carries the
// host's CPU count: scaling numbers are only meaningful relative to
// the cores that produced them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"anongossip/internal/scenario"
	"anongossip/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// smokeRecord is the slice of agbench's -json report the gate reads.
// Field names must stay in lockstep with cmd/agbench's jsonReport.
type smokeRecord struct {
	GoVersion       string          `json:"go_version"`
	Protocol        string          `json:"protocol"`
	Index           string          `json:"index"`
	Queue           string          `json:"queue"`
	RxModel         string          `json:"rxmodel"`
	Scheduler       string          `json:"scheduler"`
	Workers         int             `json:"workers"`
	Seeds           int             `json:"seeds"`
	Duration        string          `json:"duration"`
	Figures         json.RawMessage `json:"figures"`
	TotalEvents     uint64          `json:"total_events"`
	MallocsPerEvent float64         `json:"mallocs_per_event"`

	// Derived from Figures at load time.
	figureIDs    []string
	events       uint64
	wallSeconds  float64
	eventsPerSec float64
}

// matrixRow is one serial-vs-sharded measurement.
type matrixRow struct {
	Nodes        int     `json:"nodes"`
	Scheduler    string  `json:"scheduler"`
	Workers      int     `json:"workers"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SpeedupVsSerial is serial wall time over this row's wall time at
	// the same node count (1.0 for the serial row itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// baseline is the committed BENCH_*.json schema.
type baseline struct {
	GoVersion string `json:"go_version"`
	// CPUs is the core count of the recording host. Scheduler-matrix
	// speedups cannot exceed it.
	CPUs            int         `json:"cpus"`
	Note            string      `json:"note,omitempty"`
	SimDuration     string      `json:"sim_duration"`
	SchedulerMatrix []matrixRow `json:"scheduler_matrix"`
	// Smoke is the agbench -json record the CI gate compares against.
	Smoke json.RawMessage `json:"smoke_baseline"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "committed baseline (BENCH_*.json) to gate against")
		candidate    = fs.String("candidate", "", "fresh agbench -json record to check")
		minSpeed     = fs.Float64("min-speed-ratio", 0.5, "fail if candidate events/sec falls below this fraction of baseline")
		maxAllocs    = fs.Float64("max-allocs-ratio", 1.5, "fail if candidate mallocs/event exceeds this multiple of baseline")
		record       = fs.String("record", "", "write a new baseline to this file instead of gating")
		smokePath    = fs.String("smoke", "", "agbench -json record to embed in the -record baseline")
		matrixNodes  = fs.String("matrix-nodes", "1000,10000", "comma-separated node counts for the -record scheduler matrix")
		workerList   = fs.String("workers", "1,2,4,8", "comma-separated worker counts for the -record scheduler matrix")
		duration     = fs.Duration("duration", 20*time.Second, "simulated time per -record matrix run")
		note         = fs.String("note", "", "free-form host note stored in the -record baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *record != "" {
		return runRecord(*record, *smokePath, *matrixNodes, *workerList, *duration, *note)
	}
	if *baselinePath == "" || *candidate == "" {
		return fmt.Errorf("need -baseline and -candidate (or -record); see -help")
	}
	return runGate(*baselinePath, *candidate, *minSpeed, *maxAllocs)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// --- record mode ---

func runRecord(outPath, smokePath, matrixNodes, workerList string, duration time.Duration, note string) error {
	nodes, err := parseInts(matrixNodes)
	if err != nil {
		return fmt.Errorf("-matrix-nodes: %w", err)
	}
	workers, err := parseInts(workerList)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}

	b := baseline{
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		Note:        note,
		SimDuration: duration.String(),
	}
	if smokePath != "" {
		data, err := os.ReadFile(smokePath)
		if err != nil {
			return fmt.Errorf("smoke record: %w", err)
		}
		var probe smokeRecord
		if err := json.Unmarshal(data, &probe); err != nil {
			return fmt.Errorf("smoke record does not parse: %w", err)
		}
		b.Smoke = json.RawMessage(data)
	}

	measure := func(n int, kind sim.SchedulerKind, w int) (matrixRow, error) {
		cfg := scenario.ShortenedData(scenario.LargeScaleConfig(n), duration)
		cfg.Scheduler = kind
		cfg.Workers = w
		cfg.Seed = 1
		start := time.Now()
		res, err := scenario.Run(cfg)
		if err != nil {
			return matrixRow{}, err
		}
		wall := time.Since(start).Seconds()
		row := matrixRow{Nodes: n, Scheduler: kind.String(), Workers: w,
			Events: res.Events, WallSeconds: wall}
		if wall > 0 {
			row.EventsPerSec = float64(res.Events) / wall
		}
		return row, nil
	}

	for _, n := range nodes {
		serial, err := measure(n, sim.SchedulerSerial, 1)
		if err != nil {
			return fmt.Errorf("%d nodes serial: %w", n, err)
		}
		serial.SpeedupVsSerial = 1
		fmt.Printf("%6d nodes  serial        %10.0f events/sec\n", n, serial.EventsPerSec)
		b.SchedulerMatrix = append(b.SchedulerMatrix, serial)
		for _, w := range workers {
			row, err := measure(n, sim.SchedulerSharded, w)
			if err != nil {
				return fmt.Errorf("%d nodes sharded workers=%d: %w", n, w, err)
			}
			if row.Events != serial.Events {
				return fmt.Errorf("%d nodes sharded workers=%d executed %d events, serial %d — bit-identity broken",
					n, w, row.Events, serial.Events)
			}
			if row.WallSeconds > 0 {
				row.SpeedupVsSerial = serial.WallSeconds / row.WallSeconds
			}
			fmt.Printf("%6d nodes  sharded w=%-3d %10.0f events/sec  (%.2fx serial)\n",
				n, w, row.EventsPerSec, row.SpeedupVsSerial)
			b.SchedulerMatrix = append(b.SchedulerMatrix, row)
		}
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// --- gate mode ---

func loadSmoke(path string, embedded bool) (*smokeRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if embedded {
		var b baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s does not parse as a baseline: %w", path, err)
		}
		if len(b.Smoke) == 0 {
			return nil, fmt.Errorf("%s has no smoke_baseline record", path)
		}
		data = b.Smoke
	}
	var rec smokeRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s does not parse as an agbench record: %w", path, err)
	}
	// Pull the per-figure perf numbers out of the raw figure list.
	var figs []struct {
		Figure string `json:"figure"`
		Points []struct {
			Events      uint64  `json:"events"`
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"points"`
	}
	if len(rec.Figures) > 0 {
		if err := json.Unmarshal(rec.Figures, &figs); err != nil {
			return nil, fmt.Errorf("%s: figures do not parse: %w", path, err)
		}
	}
	for _, f := range figs {
		rec.figureIDs = append(rec.figureIDs, f.Figure)
		for _, p := range f.Points {
			rec.events += p.Events
			rec.wallSeconds += p.WallSeconds
		}
	}
	if rec.wallSeconds > 0 {
		rec.eventsPerSec = float64(rec.events) / rec.wallSeconds
	}
	return &rec, nil
}

func runGate(baselinePath, candidatePath string, minSpeed, maxAllocs float64) error {
	base, err := loadSmoke(baselinePath, true)
	if err != nil {
		return err
	}
	cand, err := loadSmoke(candidatePath, false)
	if err != nil {
		return err
	}

	// Perf numbers are only comparable on the same workload.
	for _, axis := range []struct{ name, b, c string }{
		{"protocol", base.Protocol, cand.Protocol},
		{"figures", strings.Join(base.figureIDs, "+"), strings.Join(cand.figureIDs, "+")},
		{"duration", base.Duration, cand.Duration},
		{"seeds", strconv.Itoa(base.Seeds), strconv.Itoa(cand.Seeds)},
	} {
		if axis.b != axis.c {
			return fmt.Errorf("workloads differ on %s: baseline %q, candidate %q — not comparable",
				axis.name, axis.b, axis.c)
		}
	}
	if base.events == 0 || cand.events == 0 {
		return fmt.Errorf("empty record: baseline %d events, candidate %d", base.events, cand.events)
	}
	if cand.events != base.events {
		// Event totals are deterministic per config+seed; a mismatch
		// means the schedule changed (an intentional behaviour change
		// regenerates the baseline). Still gate on throughput — that is
		// the number this gate exists to protect.
		fmt.Printf("note: event totals differ (baseline %d, candidate %d); schedule changed since the baseline was recorded\n",
			base.events, cand.events)
	}

	speedRatio := cand.eventsPerSec / base.eventsPerSec
	fmt.Printf("events/sec: baseline %.0f, candidate %.0f (%.2fx, floor %.2fx)\n",
		base.eventsPerSec, cand.eventsPerSec, speedRatio, minSpeed)
	failed := false
	if speedRatio < minSpeed {
		fmt.Printf("FAIL: throughput regression below the %.2fx floor\n", minSpeed)
		failed = true
	}
	if base.MallocsPerEvent > 0 && cand.MallocsPerEvent > 0 {
		allocRatio := cand.MallocsPerEvent / base.MallocsPerEvent
		fmt.Printf("mallocs/event: baseline %.2f, candidate %.2f (%.2fx, ceiling %.2fx)\n",
			base.MallocsPerEvent, cand.MallocsPerEvent, allocRatio, maxAllocs)
		if allocRatio > maxAllocs {
			fmt.Printf("FAIL: allocation-rate regression above the %.2fx ceiling\n", maxAllocs)
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("bench regression gate failed against %s", baselinePath)
	}
	fmt.Println("bench gate passed")
	return nil
}
