// Command benchgate is the bench regression gate and the generator of
// the repo's committed perf baselines (the BENCH_*.json files).
//
// Gate mode (the CI path) compares a fresh `agbench -json` record
// against the committed baseline and fails on a throughput or
// allocation-rate regression:
//
//	agbench -fig dense -dense-nodes 100 -dense-max 20 -seeds 1 \
//	        -duration 75s -json fresh.json
//	benchgate -baseline BENCH_PR7.json -candidate fresh.json
//
// The gate compares sweep-wide events/sec (candidate must reach
// -min-speed-ratio of baseline, default 0.5 — wide enough for shared
// CI runners, tight enough to catch an accidental O(n) slip) and
// mallocs/event (candidate must stay under -max-allocs-ratio of
// baseline, default 1.5). It refuses to compare records from different
// workloads: protocol, figure set, seeds, duration and event-queue
// kind must match — the baseline may embed one smoke record per queue
// kind, and the gate picks the one matching the candidate so quad and
// cal numbers are only ever compared like for like.
//
// Raw-baseline mode gates two agbench -json records produced in the
// same run against each other — no committed BENCH_*.json involved.
// CI uses it as the metrics-overhead gate: one dense sweep without
// sampling, one with `-metrics`, and the sampled run must keep at
// least -min-speed-ratio of the plain run's events/sec:
//
//	benchgate -raw-baseline plain.json -candidate sampled.json \
//	          -min-speed-ratio 0.9
//
// Record mode regenerates the committed baseline: it runs the
// serial-vs-sharded scheduler matrix (every -queue kind × every
// -workers count at every -matrix-nodes count, constant-density
// large-scale configs) and embeds the smoke record(s) written by
// agbench:
//
//	benchgate -record BENCH_PR7.json -smoke quad.json,cal.json \
//	          -matrix-nodes 1000,10000 -queue quad,cal \
//	          -workers 1,2,4,8 -duration 20s
//
// Matrix rows at the same node count execute bit-identical schedules
// (asserted by the scenario differential tests), so their wall-clock
// ratios isolate the engine under test: SpeedupVsSerial compares
// sharded lanes against the serial kernel on the same queue, and
// SpeedupVsQuad compares queue kinds on the same engine. Recording
// fails if the calendar queue does not reach -min-cal-speedup of the
// quad baseline at the largest node count, so the committed baseline
// always witnesses the speedup it claims. The record carries the
// host's CPU count: scaling numbers are only meaningful relative to
// the cores that produced them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"anongossip/internal/scenario"
	"anongossip/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// smokeRecord is the slice of agbench's -json report the gate reads.
// Field names must stay in lockstep with cmd/agbench's jsonReport.
type smokeRecord struct {
	GoVersion       string          `json:"go_version"`
	Protocol        string          `json:"protocol"`
	Index           string          `json:"index"`
	Queue           string          `json:"queue"`
	RxModel         string          `json:"rxmodel"`
	Scheduler       string          `json:"scheduler"`
	Workers         int             `json:"workers"`
	Seeds           int             `json:"seeds"`
	Duration        string          `json:"duration"`
	Figures         json.RawMessage `json:"figures"`
	TotalEvents     uint64          `json:"total_events"`
	MallocsPerEvent float64         `json:"mallocs_per_event"`
	// PeakHeapBytes / HeapBytesPerNode are present on heap-measured
	// records (agbench -fig huge); the gate's memory ceilings compare
	// them like for like.
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	HeapBytesPerNode float64 `json:"heap_bytes_per_node"`

	// Derived from Figures at load time.
	figureIDs    []string
	events       uint64
	wallSeconds  float64
	eventsPerSec float64
}

// matrixRow is one queue-kind × scheduler measurement.
type matrixRow struct {
	Nodes        int     `json:"nodes"`
	Queue        string  `json:"queue"`
	Scheduler    string  `json:"scheduler"`
	Workers      int     `json:"workers"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SpeedupVsSerial is same-queue serial wall time over this row's
	// wall time at the same node count (1.0 for the serial row itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// SpeedupVsQuad is the quad-queue row's wall time over this row's
	// wall time at the same node count, scheduler and worker count —
	// the like-for-like queue comparison (1.0 for quad rows).
	SpeedupVsQuad float64 `json:"speedup_vs_quad,omitempty"`
}

// baseline is the committed BENCH_*.json schema.
type baseline struct {
	GoVersion string `json:"go_version"`
	// CPUs is the core count of the recording host. Scheduler-matrix
	// speedups cannot exceed it.
	CPUs            int         `json:"cpus"`
	Note            string      `json:"note,omitempty"`
	SimDuration     string      `json:"sim_duration"`
	SchedulerMatrix []matrixRow `json:"scheduler_matrix"`
	// Smoke is the agbench -json record the CI gate compares against
	// (historical single-record schema, kept readable for old files).
	Smoke json.RawMessage `json:"smoke_baseline,omitempty"`
	// Smokes holds one agbench -json record per event-queue kind; the
	// gate picks the record whose queue matches the candidate's.
	Smokes []json.RawMessage `json:"smoke_baselines,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "committed baseline (BENCH_*.json) to gate against")
		rawBaseline  = fs.String("raw-baseline", "", "raw agbench -json record to gate against (same-run comparison, e.g. the metrics-overhead gate)")
		candidate    = fs.String("candidate", "", "fresh agbench -json record to check")
		minSpeed     = fs.Float64("min-speed-ratio", 0.5, "fail if candidate events/sec falls below this fraction of baseline")
		maxAllocs    = fs.Float64("max-allocs-ratio", 1.5, "fail if candidate mallocs/event exceeds this multiple of baseline")
		maxHeap      = fs.Float64("max-heap-ratio", 1.3, "fail if candidate heap bytes/node exceeds this multiple of baseline (heap-measured records only)")
		record       = fs.String("record", "", "write a new baseline to this file instead of gating")
		smokePath    = fs.String("smoke", "", "comma-separated agbench -json records to embed in the -record baseline (one per queue kind)")
		matrixNodes  = fs.String("matrix-nodes", "1000,10000", "comma-separated node counts for the -record scheduler matrix")
		queueList    = fs.String("queue", "quad,cal", "comma-separated event-queue kinds for the -record scheduler matrix: "+sim.QueueNames())
		workerList   = fs.String("workers", "1,2,4,8", "comma-separated worker counts for the -record scheduler matrix")
		duration     = fs.Duration("duration", 20*time.Second, "simulated time per -record matrix run")
		minCalSpeed  = fs.Float64("min-cal-speedup", 1.2, "fail -record if the cal queue's serial events/sec at the largest node count falls below this multiple of the quad reference (the -prev baseline's quad serial row, or this run's when no -prev is given)")
		prevPath     = fs.String("prev", "", "previous committed baseline whose quad serial row anchors the -min-cal-speedup check")
		note         = fs.String("note", "", "free-form host note stored in the -record baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *record != "" {
		return runRecord(*record, *smokePath, *matrixNodes, *queueList, *workerList, *duration, *minCalSpeed, *prevPath, *note)
	}
	if *baselinePath != "" && *rawBaseline != "" {
		return fmt.Errorf("-baseline and -raw-baseline are mutually exclusive")
	}
	base, embedded := *baselinePath, true
	if *rawBaseline != "" {
		base, embedded = *rawBaseline, false
	}
	if base == "" || *candidate == "" {
		return fmt.Errorf("need -baseline or -raw-baseline, and -candidate (or -record); see -help")
	}
	return runGate(base, embedded, *candidate, *minSpeed, *maxAllocs, *maxHeap)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseQueues(csv string) ([]sim.QueueKind, error) {
	var out []sim.QueueKind
	for _, f := range strings.Split(csv, ",") {
		k, err := sim.ParseQueueKind(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// --- record mode ---

// quadSerialAnchor pulls the quad serial events/sec at the given node
// count out of a previous committed baseline. Rows recorded before the
// queue axis existed carry an empty queue name; those were quad.
func quadSerialAnchor(path string, nodes int) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var prev baseline
	if err := json.Unmarshal(data, &prev); err != nil {
		return 0, fmt.Errorf("%s does not parse as a baseline: %w", path, err)
	}
	for _, r := range prev.SchedulerMatrix {
		if r.Nodes == nodes && r.Scheduler == sim.SchedulerSerial.String() &&
			(r.Queue == sim.QueueQuad.String() || r.Queue == "") {
			return r.EventsPerSec, nil
		}
	}
	return 0, fmt.Errorf("%s has no quad serial row at %d nodes", path, nodes)
}

func runRecord(outPath, smokePaths, matrixNodes, queueList, workerList string, duration time.Duration, minCalSpeed float64, prevPath, note string) error {
	nodes, err := parseInts(matrixNodes)
	if err != nil {
		return fmt.Errorf("-matrix-nodes: %w", err)
	}
	queues, err := parseQueues(queueList)
	if err != nil {
		return fmt.Errorf("-queue: %w", err)
	}
	workers, err := parseInts(workerList)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}

	b := baseline{
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		Note:        note,
		SimDuration: duration.String(),
	}
	if smokePaths != "" {
		for _, p := range strings.Split(smokePaths, ",") {
			p = strings.TrimSpace(p)
			data, err := os.ReadFile(p)
			if err != nil {
				return fmt.Errorf("smoke record: %w", err)
			}
			var probe smokeRecord
			if err := json.Unmarshal(data, &probe); err != nil {
				return fmt.Errorf("smoke record %s does not parse: %w", p, err)
			}
			b.Smokes = append(b.Smokes, json.RawMessage(data))
		}
	}

	measure := func(n int, queue sim.QueueKind, kind sim.SchedulerKind, w int) (matrixRow, error) {
		cfg := scenario.ShortenedData(scenario.LargeScaleConfig(n), duration)
		cfg.EventQueue = queue
		cfg.Scheduler = kind
		cfg.Workers = w
		cfg.Seed = 1
		start := time.Now()
		res, err := scenario.Run(cfg)
		if err != nil {
			return matrixRow{}, err
		}
		wall := time.Since(start).Seconds()
		row := matrixRow{Nodes: n, Queue: queue.String(), Scheduler: kind.String(),
			Workers: w, Events: res.Events, WallSeconds: wall}
		if wall > 0 {
			row.EventsPerSec = float64(res.Events) / wall
		}
		return row, nil
	}

	// quadWall maps "nodes/scheduler/workers" to the quad row's wall
	// time, so every other queue's rows get a like-for-like ratio.
	quadWall := make(map[string]float64)
	rowKey := func(r matrixRow) string {
		return fmt.Sprintf("%d/%s/%d", r.Nodes, r.Scheduler, r.Workers)
	}
	// Serial events/sec per node count for the headline queue kinds;
	// the largest node count's cal rate is the gated claim.
	quadSerialRate := make(map[int]float64)
	calSerialRate := make(map[int]float64)

	for _, n := range nodes {
		var events uint64
		for _, queue := range queues {
			serial, err := measure(n, queue, sim.SchedulerSerial, 1)
			if err != nil {
				return fmt.Errorf("%d nodes %s serial: %w", n, queue, err)
			}
			if events == 0 {
				events = serial.Events
			} else if serial.Events != events {
				return fmt.Errorf("%d nodes %s serial executed %d events, first queue %d — bit-identity broken",
					n, queue, serial.Events, events)
			}
			serial.SpeedupVsSerial = 1
			switch queue {
			case sim.QueueQuad:
				quadWall[rowKey(serial)] = serial.WallSeconds
				quadSerialRate[n] = serial.EventsPerSec
			case sim.QueueCal:
				calSerialRate[n] = serial.EventsPerSec
			}
			if w, ok := quadWall[rowKey(serial)]; ok && serial.WallSeconds > 0 {
				serial.SpeedupVsQuad = w / serial.WallSeconds
			}
			fmt.Printf("%6d nodes  %-4s serial        %10.0f events/sec  (%.2fx quad)\n",
				n, queue, serial.EventsPerSec, serial.SpeedupVsQuad)
			b.SchedulerMatrix = append(b.SchedulerMatrix, serial)
			for _, w := range workers {
				row, err := measure(n, queue, sim.SchedulerSharded, w)
				if err != nil {
					return fmt.Errorf("%d nodes %s sharded workers=%d: %w", n, queue, w, err)
				}
				if row.Events != serial.Events {
					return fmt.Errorf("%d nodes %s sharded workers=%d executed %d events, serial %d — bit-identity broken",
						n, queue, w, row.Events, serial.Events)
				}
				if row.WallSeconds > 0 {
					row.SpeedupVsSerial = serial.WallSeconds / row.WallSeconds
				}
				if queue == sim.QueueQuad {
					quadWall[rowKey(row)] = row.WallSeconds
				}
				if qw, ok := quadWall[rowKey(row)]; ok && row.WallSeconds > 0 {
					row.SpeedupVsQuad = qw / row.WallSeconds
				}
				fmt.Printf("%6d nodes  %-4s sharded w=%-3d %10.0f events/sec  (%.2fx serial, %.2fx quad)\n",
					n, queue, w, row.EventsPerSec, row.SpeedupVsSerial, row.SpeedupVsQuad)
				b.SchedulerMatrix = append(b.SchedulerMatrix, row)
			}
		}
	}

	// The headline claim the baseline exists to witness: at the largest
	// node count, the calendar queue's serial events/sec must reach
	// -min-cal-speedup of the quad reference — the previous committed
	// baseline's quad serial row when -prev names one (the cross-PR
	// acceptance), this run's otherwise — or the recording is refused.
	if len(nodes) > 0 && minCalSpeed > 0 {
		maxN := nodes[0]
		for _, n := range nodes[1:] {
			if n > maxN {
				maxN = n
			}
		}
		if calRate, ok := calSerialRate[maxN]; ok {
			anchor, anchorName := quadSerialRate[maxN], "this run's quad serial"
			if prevPath != "" {
				a, err := quadSerialAnchor(prevPath, maxN)
				if err != nil {
					return fmt.Errorf("-prev: %w", err)
				}
				anchor, anchorName = a, prevPath+" quad serial"
			}
			if anchor > 0 {
				speedup := calRate / anchor
				fmt.Printf("cal serial at %d nodes: %.2fx vs %s (floor %.2fx)\n",
					maxN, speedup, anchorName, minCalSpeed)
				if speedup < minCalSpeed {
					return fmt.Errorf("cal queue reached only %.2fx of %s at %d nodes, below the %.2fx floor — not recording a baseline that contradicts its own claim",
						speedup, anchorName, maxN, minCalSpeed)
				}
			}
		}
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// --- gate mode ---

// loadSmoke parses one agbench -json record. When embedded is true the
// path names a committed baseline, and wantQueue/wantFigs select the
// embedded smoke record recorded under that event-queue kind and
// figure set — quad candidates gate against the quad baseline, cal
// against cal, dense against dense, huge against huge, never across.
func loadSmoke(path string, embedded bool, wantQueue, wantFigs string) (*smokeRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if embedded {
		var b baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s does not parse as a baseline: %w", path, err)
		}
		candidates := b.Smokes
		if len(candidates) == 0 && len(b.Smoke) > 0 {
			candidates = []json.RawMessage{b.Smoke}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("%s has no smoke baseline record", path)
		}
		data = nil
		var have []string
		for _, raw := range candidates {
			var probe smokeRecord
			if err := json.Unmarshal(raw, &probe); err != nil {
				return nil, fmt.Errorf("%s: embedded smoke record does not parse: %w", path, err)
			}
			if err := parseFigures(&probe, path); err != nil {
				return nil, err
			}
			figs := strings.Join(probe.figureIDs, "+")
			have = append(have, probe.Queue+"/"+figs)
			if probe.Queue == wantQueue && figs == wantFigs {
				data = raw
				break
			}
		}
		if data == nil {
			return nil, fmt.Errorf("%s has no smoke record for queue %q figures %q (recorded: %s) — not comparable across queue kinds or figure sets",
				path, wantQueue, wantFigs, strings.Join(have, ", "))
		}
	}
	var rec smokeRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s does not parse as an agbench record: %w", path, err)
	}
	// A record from an unknown kernel is not comparable to anything
	// this binary can run (legacy records omit the field).
	if rec.Scheduler != "" {
		if _, err := sim.ParseSchedulerKind(rec.Scheduler); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	if err := parseFigures(&rec, path); err != nil {
		return nil, err
	}
	if rec.wallSeconds > 0 {
		rec.eventsPerSec = float64(rec.events) / rec.wallSeconds
	}
	return &rec, nil
}

// parseFigures pulls the per-figure ids and perf numbers out of a
// record's raw figure list into the derived fields.
func parseFigures(rec *smokeRecord, path string) error {
	if rec.figureIDs != nil {
		return nil
	}
	var figs []struct {
		Figure string `json:"figure"`
		Points []struct {
			Events      uint64  `json:"events"`
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"points"`
	}
	if len(rec.Figures) > 0 {
		if err := json.Unmarshal(rec.Figures, &figs); err != nil {
			return fmt.Errorf("%s: figures do not parse: %w", path, err)
		}
	}
	for _, f := range figs {
		rec.figureIDs = append(rec.figureIDs, f.Figure)
		for _, p := range f.Points {
			rec.events += p.Events
			rec.wallSeconds += p.WallSeconds
		}
	}
	return nil
}

func runGate(baselinePath string, embedded bool, candidatePath string, minSpeed, maxAllocs, maxHeap float64) error {
	cand, err := loadSmoke(candidatePath, false, "", "")
	if err != nil {
		return err
	}
	base, err := loadSmoke(baselinePath, embedded, cand.Queue, strings.Join(cand.figureIDs, "+"))
	if err != nil {
		return err
	}

	// Perf numbers are only comparable on the same workload.
	for _, axis := range []struct{ name, b, c string }{
		{"protocol", base.Protocol, cand.Protocol},
		{"figures", strings.Join(base.figureIDs, "+"), strings.Join(cand.figureIDs, "+")},
		{"duration", base.Duration, cand.Duration},
		{"seeds", strconv.Itoa(base.Seeds), strconv.Itoa(cand.Seeds)},
		{"queue", base.Queue, cand.Queue},
	} {
		if axis.b != axis.c {
			return fmt.Errorf("workloads differ on %s: baseline %q, candidate %q — not comparable",
				axis.name, axis.b, axis.c)
		}
	}
	if base.events == 0 || cand.events == 0 {
		return fmt.Errorf("empty record: baseline %d events, candidate %d", base.events, cand.events)
	}
	if cand.events != base.events {
		// Event totals are deterministic per config+seed; a mismatch
		// means the schedule changed (an intentional behaviour change
		// regenerates the baseline). Still gate on throughput — that is
		// the number this gate exists to protect.
		fmt.Printf("note: event totals differ (baseline %d, candidate %d); schedule changed since the baseline was recorded\n",
			base.events, cand.events)
	}

	speedRatio := cand.eventsPerSec / base.eventsPerSec
	fmt.Printf("events/sec: baseline %.0f, candidate %.0f (%.2fx, floor %.2fx)\n",
		base.eventsPerSec, cand.eventsPerSec, speedRatio, minSpeed)
	failed := false
	if speedRatio < minSpeed {
		fmt.Printf("FAIL: throughput regression below the %.2fx floor\n", minSpeed)
		failed = true
	}
	if base.MallocsPerEvent > 0 && cand.MallocsPerEvent > 0 {
		allocRatio := cand.MallocsPerEvent / base.MallocsPerEvent
		fmt.Printf("mallocs/event: baseline %.2f, candidate %.2f (%.2fx, ceiling %.2fx)\n",
			base.MallocsPerEvent, cand.MallocsPerEvent, allocRatio, maxAllocs)
		if allocRatio > maxAllocs {
			fmt.Printf("FAIL: allocation-rate regression above the %.2fx ceiling\n", maxAllocs)
			failed = true
		}
	}
	// Memory ceiling: only when both records carry heap measurements
	// (the huge family); a baseline without them gates throughput only.
	if base.HeapBytesPerNode > 0 && cand.HeapBytesPerNode > 0 {
		heapRatio := cand.HeapBytesPerNode / base.HeapBytesPerNode
		fmt.Printf("heap bytes/node: baseline %.0f, candidate %.0f (%.2fx, ceiling %.2fx)\n",
			base.HeapBytesPerNode, cand.HeapBytesPerNode, heapRatio, maxHeap)
		if heapRatio > maxHeap {
			fmt.Printf("FAIL: per-node memory regression above the %.2fx ceiling\n", maxHeap)
			failed = true
		}
	} else if base.HeapBytesPerNode > 0 {
		fmt.Println("note: baseline carries heap measurements but candidate does not; memory ceiling skipped")
	}
	if failed {
		return fmt.Errorf("bench regression gate failed against %s", baselinePath)
	}
	fmt.Println("bench gate passed")
	return nil
}
