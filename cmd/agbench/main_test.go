package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunQuickFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A shrunken Fig. 8 run exercises the full path quickly.
	err := run([]string{"-fig", "8", "-seeds", "1", "-duration", "90s"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunQuickLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Capped at the smallest family member so the sweep stays quick;
	// brute index doubles as coverage of the -index flag.
	err := run([]string{"-fig", "large", "-large-max", "100", "-seeds", "1", "-duration", "75s", "-index", "brute"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunStackProtocolFlag drives the registry-name -protocol flag: a
// composed stack is measured against its bare routing baseline.
func TestRunStackProtocolFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-fig", "8", "-seeds", "1", "-duration", "90s", "-protocol", "flood+gossip"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunDenseAndJSON drives the dense-traffic sweep with the reference
// reception model and the -json record: the sweep must complete and the
// record must parse with the configuration axes and per-point perf
// numbers filled in.
func TestRunDenseAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-fig", "dense", "-dense-nodes", "100", "-dense-max", "20",
		"-seeds", "1", "-duration", "75s", "-rxmodel", "ref", "-json", path})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("json record not written: %v", err)
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("json record does not parse: %v", err)
	}
	if rep.RxModel != "ref" || rep.Index != "grid" || rep.Seeds != 1 {
		t.Fatalf("record axes wrong: %+v", rep)
	}
	if len(rep.Figures) != 1 || rep.Figures[0].Figure != "dense" || len(rep.Figures[0].Points) != 1 {
		t.Fatalf("record figures wrong: %+v", rep.Figures)
	}
	p := rep.Figures[0].Points[0]
	if p.X != 20 || p.Treatment.Sent == 0 || p.Baseline.Sent == 0 ||
		p.Events == 0 || p.WallSeconds <= 0 || p.EventsPerSec <= 0 {
		t.Fatalf("record point incomplete: %+v", p)
	}
	if rep.TotalWallSeconds <= 0 {
		t.Fatalf("total wall time missing: %+v", rep)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-fig", "1"}); err == nil {
		t.Fatal("figure 1 accepted (paper has no such experiment)")
	}
	if err := run([]string{"-fig", "nine"}); err == nil {
		t.Fatal("non-numeric figure accepted")
	}
	if err := run([]string{"-duration", "10s"}); err == nil {
		t.Fatal("too-short duration accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-index", "octree"}); err == nil {
		t.Fatal("unknown index kind accepted")
	}
	if err := run([]string{"-queue", "fibonacci"}); err == nil {
		t.Fatal("unknown queue kind accepted")
	}
	if err := run([]string{"-rxmodel", "psychic"}); err == nil {
		t.Fatal("unknown reception model accepted")
	}
	if err := run([]string{"-scheduler", "quantum"}); err == nil {
		t.Fatal("unknown scheduler kind accepted")
	}
	if err := run([]string{"-workers", "-3"}); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if err := run([]string{"-fig", "large", "-large-max", "50"}); err == nil {
		t.Fatal("empty large sweep accepted")
	}
	if err := run([]string{"-fig", "dense", "-dense-max", "10"}); err == nil {
		t.Fatal("empty dense sweep accepted")
	}
	if err := run([]string{"-protocol", "carrier-pigeon"}); err == nil {
		t.Fatal("unknown stack accepted")
	}
	if err := run([]string{"-protocol", "maodv"}); err == nil {
		t.Fatal("recovery-less stack accepted as treatment")
	}
}

// TestRunQueueRefAndProfiles covers the -queue selector and the
// profiling flags on a shrunken sweep: the run must succeed with the
// reference queue and leave non-empty profile files behind.
func TestRunQueueRefAndProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{"-fig", "8", "-seeds", "1", "-duration", "90s",
		"-queue", "ref", "-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunShardedJSON drives the -scheduler/-workers flags through a
// shrunken sweep and checks the JSON record carries the new axes.
func TestRunShardedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-fig", "large", "-large-max", "100", "-seeds", "1", "-duration", "75s",
		"-scheduler", "sharded", "-workers", "2", "-json", path})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("json record not written: %v", err)
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("json record does not parse: %v", err)
	}
	if rep.Scheduler != "sharded" || rep.Workers != 2 {
		t.Fatalf("record scheduler axes wrong: %+v", rep)
	}
}

func TestFigureDefinitionsComplete(t *testing.T) {
	figs := figures()
	if len(figs) != 6 {
		t.Fatalf("line figures = %d, want 6 (2..7; fig 8 is special-cased)", len(figs))
	}
	seen := map[int]bool{}
	for _, f := range figs {
		if f.apply == nil || len(f.xs) == 0 || f.title == "" {
			t.Fatalf("figure %d incomplete: %+v", f.id, f)
		}
		if seen[f.id] {
			t.Fatalf("figure %d duplicated", f.id)
		}
		seen[f.id] = true
	}
	for id := 2; id <= 7; id++ {
		if !seen[id] {
			t.Fatalf("figure %d missing", id)
		}
	}
}
