// Command agbench regenerates the paper's figures as text tables.
//
// Usage:
//
//	agbench -fig 2          # one figure
//	agbench -fig all        # everything
//	agbench -fig 4 -seeds 10 -parallel 4
//	agbench -fig large -duration 120s -large-max 500
//	agbench -fig dense -dense-nodes 500 -json bench.json
//
// Each table prints one row per x-axis point with the Gossip and MAODV
// mean delivery and [min, max] error bars across all members and seeds,
// the same series the paper plots. Figure 8 prints per-case goodput.
// With the paper's full 10-seed sweeps (-seeds 10) a figure takes a few
// minutes; the default 3 seeds preserve the shapes at a third of the
// cost.
//
// Beyond the paper, -fig large sweeps the large-scale family (100 to
// 1000 nodes at constant density; see EXPERIMENTS.md §L), -fig dense
// the dense-traffic family (mean degree 20–60 with multiple concurrent
// senders at -dense-nodes nodes; EXPERIMENTS.md §D), and -fig huge the
// huge-scale family (10k to 100k nodes at constant density;
// EXPERIMENTS.md §H) — a perf-and-memory sweep that runs a short
// -huge-duration data window and records peak_heap_bytes /
// heap_bytes_per_node in the -json record. At full duration the
// 1000-node points take tens of minutes — shrink with -duration and
// cap the sweeps with -large-max / -dense-max / -huge-max for
// previews.
//
// Four flags switch simulator internals on bit-identical workloads —
// only wall time changes: -index (radio neighbour index: spatial grid
// vs brute-force scan), -queue (kernel event queue: pooled 4-ary heap
// vs container/heap reference), -rxmodel (radio reception path:
// batched per-frame receiver tables vs the per-receiver reference)
// and -scheduler (execution engine: serial vs the sharded parallel
// kernel running conservative lookahead windows on -workers
// goroutines).
// -cpuprofile/-memprofile write pprof profiles for bottleneck hunts
// (see EXPERIMENTS.md, "Profiling workflow").
//
// -json writes the machine-readable run record — per-point delivery
// stats, logical events, wall time and events/sec — used to track the
// perf trajectory across PRs (the BENCH_*.json files at the repo root).
//
// The -protocol flag picks the stack under test by registry name (e.g.
// -protocol flood+gossip); its bare routing protocol becomes the
// comparison baseline, so the tables generalise the paper's
// Gossip-vs-Maodv pairing to any registered stack. -help lists the
// registered stacks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"anongossip/internal/metrics"
	"anongossip/internal/radio"
	"anongossip/internal/scenario"
	"anongossip/internal/sim"
	"anongossip/internal/stack"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agbench:", err)
		os.Exit(1)
	}
}

type figure struct {
	id    int
	title string
	xName string
	xs    []float64
	apply func(scenario.Config, float64) scenario.Config
}

func figures() []figure {
	return []figure{
		{2, "Packet Delivery vs Transmission Range (speed 0.2 m/s)", "range(m)", scenario.Fig2Xs(), scenario.ApplyFig2},
		{3, "Packet Delivery vs Transmission Range (speed 2 m/s)", "range(m)", scenario.Fig3Xs(), scenario.ApplyFig3},
		{4, "Packet Delivery vs Maximum Speed 0.1-1.0 m/s (range 75 m)", "speed(m/s)", scenario.Fig4Xs(), scenario.ApplyFig4And5},
		{5, "Packet Delivery vs Maximum Speed 1-10 m/s (range 75 m)", "speed(m/s)", scenario.Fig5Xs(), scenario.ApplyFig4And5},
		{6, "Packet Delivery vs Number of Nodes (constant mean degree)", "nodes", scenario.Fig6Xs(), scenario.ApplyFig6},
		{7, "Packet Delivery vs Number of Nodes (range 55 m)", "nodes", scenario.Fig7Xs(), scenario.ApplyFig7},
	}
}

// --- machine-readable run record (-json) ---

// jsonAgg is one stack's aggregate at one sweep point. Sent is
// per-stack: under overload source sends fail stack-dependently, so
// each stack's delivery ratio needs its own denominator.
type jsonAgg struct {
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Std     float64 `json:"std"`
	Goodput float64 `json:"goodput"`
	Sent    int     `json:"sent"`
}

// jsonPoint is one x-axis point of one figure.
type jsonPoint struct {
	X            float64 `json:"x"`
	Treatment    jsonAgg `json:"treatment"`
	Baseline     jsonAgg `json:"baseline"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakHeapBytes and HeapBytesPerNode carry the post-run live-heap
	// sample of heap-measured sweeps (the huge family, whose x axis is
	// the node count); zero elsewhere.
	PeakHeapBytes    uint64  `json:"peak_heap_bytes,omitempty"`
	HeapBytesPerNode float64 `json:"heap_bytes_per_node,omitempty"`
	// Metrics carries the point's channel-utilization time series when
	// -metrics is set: one representative single-seed run per point with
	// the telemetry sampler on (the sampler is observe-only, so the run
	// is bit-identical to the sweep's same-seed run).
	Metrics []metrics.Window `json:"metrics,omitempty"`
}

// jsonFigure is one completed sweep.
type jsonFigure struct {
	Figure string      `json:"figure"`
	Title  string      `json:"title"`
	XName  string      `json:"x_name"`
	Points []jsonPoint `json:"points"`
}

// jsonGoodput is one Fig. 8 goodput case.
type jsonGoodput struct {
	RangeM      float64 `json:"range_m"`
	SpeedMS     float64 `json:"speed_ms"`
	Mean        float64 `json:"mean"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	WallSeconds float64 `json:"wall_seconds"`
}

// jsonReport is the full -json record: configuration axes first, so
// perf numbers are never compared across different workloads.
type jsonReport struct {
	GoVersion        string        `json:"go_version"`
	Protocol         string        `json:"protocol"`
	Baseline         string        `json:"baseline"`
	Index            string        `json:"index"`
	Queue            string        `json:"queue"`
	RxModel          string        `json:"rxmodel"`
	Scheduler        string        `json:"scheduler"`
	Workers          int           `json:"workers"`
	Seeds            int           `json:"seeds"`
	Duration         string        `json:"duration"`
	Figures          []jsonFigure  `json:"figures,omitempty"`
	Goodput          []jsonGoodput `json:"goodput_cases,omitempty"`
	TotalWallSeconds float64       `json:"total_wall_seconds"`
	// TotalEvents sums logical events over every figure point, and
	// MallocsPerEvent divides the process's heap allocation count over
	// the same span — the coarse allocation-rate metric the bench
	// regression gate (cmd/benchgate) tracks alongside events/sec.
	TotalEvents     uint64  `json:"total_events"`
	MallocsPerEvent float64 `json:"mallocs_per_event"`
	// PeakHeapBytes is the largest post-run live heap across the
	// record's heap-measured runs, and HeapBytesPerNode the largest
	// per-node footprint (live heap over node count at that point) —
	// the numbers cmd/benchgate's memory gate tracks. Zero unless a
	// heap-measured family (huge) ran.
	PeakHeapBytes    uint64  `json:"peak_heap_bytes,omitempty"`
	HeapBytesPerNode float64 `json:"heap_bytes_per_node,omitempty"`
}

// addFigure converts a sweep's rows into the report's point records.
func (r *jsonReport) addFigure(id, title, xName string, rows []scenario.ComparisonRow) {
	fig := jsonFigure{Figure: id, Title: title, XName: xName}
	for _, row := range rows {
		events := row.Gossip.Events + row.Maodv.Events
		secs := row.Elapsed.Seconds()
		p := jsonPoint{
			X: row.X,
			Treatment: jsonAgg{Mean: row.Gossip.Received.Mean, Min: row.Gossip.Received.Min,
				Max: row.Gossip.Received.Max, Std: row.Gossip.Received.Std,
				Goodput: row.Gossip.Goodput, Sent: row.Gossip.Sent},
			Baseline: jsonAgg{Mean: row.Maodv.Received.Mean, Min: row.Maodv.Received.Min,
				Max: row.Maodv.Received.Max, Std: row.Maodv.Received.Std,
				Goodput: row.Maodv.Goodput, Sent: row.Maodv.Sent},
			Events:      events,
			WallSeconds: secs,
		}
		if secs > 0 {
			p.EventsPerSec = float64(events) / secs
		}
		if hb := max(row.Gossip.HeapLiveBytes, row.Maodv.HeapLiveBytes); hb > 0 {
			p.PeakHeapBytes = hb
			if row.X > 0 {
				p.HeapBytesPerNode = float64(hb) / row.X
			}
			if hb > r.PeakHeapBytes {
				r.PeakHeapBytes = hb
			}
			if p.HeapBytesPerNode > r.HeapBytesPerNode {
				r.HeapBytesPerNode = p.HeapBytesPerNode
			}
		}
		fig.Points = append(fig.Points, p)
	}
	r.Figures = append(r.Figures, fig)
}

func run(args []string) error {
	fs := flag.NewFlagSet("agbench", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "figure to regenerate: 2..8, large, dense, or all")
		proto = fs.String("protocol", "maodv+gossip",
			"stack under test by registry name ("+strings.Join(stack.Names(), " | ")+
				"); its bare routing is the comparison baseline")
		seeds      = fs.Int("seeds", 3, "seeds per point (paper: 10)")
		parallel   = fs.Int("parallel", 0, "concurrent runs (0 = NumCPU)")
		duration   = fs.Duration("duration", 600*time.Second, "simulated time per run (shrink for quick previews)")
		index      = fs.String("index", "grid", "radio neighbour index: grid | brute")
		queue      = fs.String("queue", "quad", "scheduler event queue: "+sim.QueueNames())
		rxmodel    = fs.String("rxmodel", "batch", "radio reception model: batch | ref")
		schedStr   = fs.String("scheduler", "serial", "simulation kernel: "+sim.SchedulerNames())
		workers    = fs.Int("workers", 0, "worker goroutines for -scheduler sharded (0 = NumCPU)")
		largeMax   = fs.Int("large-max", 1000, "largest node count of the -fig large sweep")
		hugeMax    = fs.Int("huge-max", 100000, "largest node count of the -fig huge sweep")
		hugeMin    = fs.Int("huge-min", 0, "smallest node count of the -fig huge sweep (profiling workflows isolate the 100k point with -huge-min 100000)")
		hugeDur    = fs.Duration("huge-duration", 10*time.Second, "simulated time per -fig huge run (the family measures perf and memory, not delivery, so short data windows are expected)")
		denseNodes = fs.Int("dense-nodes", scenario.DenseNodes, "node count of the -fig dense sweep")
		denseMax   = fs.Int("dense-max", 60, "largest target degree of the -fig dense sweep")
		jsonPath   = fs.String("json", "", "write a machine-readable result record to this file")
		metricsOn  = fs.Bool("metrics", false,
			"collect a channel-utilization time series per sweep point (one extra single-seed sampler run per point; printed, added to -json, and written to -metrics-csv). Also arms the sampler on the timed sweep runs themselves — results stay bit-identical (observe-only contract) and the recorded wall times honestly include sampling overhead, which is what the CI overhead gate measures")
		metricsWin = fs.Duration("metrics-window", 10*time.Second, "sampling cadence for -metrics")
		metricsCSV = fs.String("metrics-csv", "", "write the -metrics series as CSV to this file")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	treatment, err := stack.ByName(*proto)
	if err != nil {
		return err
	}
	if treatment.Recovery == "" {
		return fmt.Errorf("-protocol %q has no recovery layer to measure; pick a composed stack (e.g. %s+gossip)",
			*proto, treatment.Routing)
	}
	baseline := stack.Spec{Routing: treatment.Routing}
	treatCol := fmt.Sprintf("%v mean [min,max] (std)", treatment)
	baseCol := fmt.Sprintf("%v mean [min,max] (std)", baseline)

	var radioIndex radio.IndexKind
	switch *index {
	case "grid":
		radioIndex = radio.IndexGrid
	case "brute":
		radioIndex = radio.IndexBrute
	default:
		return fmt.Errorf("invalid -index %q (want grid or brute)", *index)
	}

	queueKind, err := sim.ParseQueueKind(*queue)
	if err != nil {
		return fmt.Errorf("invalid -queue: %w", err)
	}

	var rxModel radio.ReceptionModel
	switch *rxmodel {
	case "batch":
		rxModel = radio.ModelBatch
	case "ref":
		rxModel = radio.ModelRef
	default:
		return fmt.Errorf("invalid -rxmodel %q (want batch or ref)", *rxmodel)
	}

	schedKind, err := sim.ParseSchedulerKind(*schedStr)
	if err != nil {
		return fmt.Errorf("invalid -scheduler: %w", err)
	}
	if *workers < 0 {
		return fmt.Errorf("invalid -workers %d", *workers)
	}
	effWorkers := *workers
	if schedKind == sim.SchedulerSharded && effWorkers == 0 {
		effWorkers = runtime.NumCPU()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "agbench: memprofile:", err)
			}
		}()
	}

	want := map[int]bool{}
	wantLarge, wantDense, wantHuge := false, false, false
	switch *fig {
	case "all":
		for i := 2; i <= 8; i++ {
			want[i] = true
		}
	case "large":
		wantLarge = true
	case "dense":
		wantDense = true
	case "huge":
		wantHuge = true
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil || n < 2 || n > 8 {
			return fmt.Errorf("invalid -fig %q (want 2..8, large, dense, huge, or all)", *fig)
		}
		want[n] = true
	}

	base := scenario.DefaultConfig()
	base.Stack = treatment // Fig. 8 goodput follows the stack under test
	base.RadioIndex = radioIndex
	base.EventQueue = queueKind
	base.RxModel = rxModel
	base.Scheduler = schedKind
	base.Workers = effWorkers
	if *duration != base.Duration {
		// Below ~a minute the paper's warm-up/cool-down proportions are
		// gone and any table would be noise.
		if *duration <= 60*time.Second {
			return fmt.Errorf("duration %v too short for a data window (need > 60s)", *duration)
		}
		base = scenario.ShortenedData(base, *duration)
	}
	seedList := scenario.Seeds(*seeds)
	start := time.Now()
	var memStart runtime.MemStats
	runtime.ReadMemStats(&memStart)

	report := &jsonReport{
		GoVersion: runtime.Version(),
		Protocol:  treatment.String(),
		Baseline:  baseline.String(),
		Index:     radioIndex.String(),
		Queue:     queueKind.String(),
		RxModel:   rxModel.String(),
		Scheduler: schedKind.String(),
		Workers:   effWorkers,
		Seeds:     *seeds,
		Duration:  base.Duration.String(),
	}

	var metricsCSVBuf strings.Builder

	// runMetrics collects each sweep point's channel-utilization series:
	// one representative run (first seed, treatment stack) per point with
	// the sampler on. Sampling is observe-only, so the run reproduces the
	// sweep's same-seed run bit for bit; only the telemetry is new.
	runMetrics := func(id, xName string, xs []float64, cfg scenario.Config,
		apply func(scenario.Config, float64) scenario.Config) ([][]metrics.Window, error) {
		out := make([][]metrics.Window, len(xs))
		for i, x := range xs {
			c := apply(cfg, x)
			c.Seed = seedList[0]
			c.MetricsWindow = *metricsWin
			res, err := scenario.Run(c)
			if err != nil {
				return nil, fmt.Errorf("metrics run %s=%v: %w", xName, x, err)
			}
			out[i] = res.Metrics.Windows
			fmt.Printf("-- channel utilization at %s=%.0f (seed %d, %v windows) --\n",
				xName, x, c.Seed, *metricsWin)
			fmt.Printf("%7s %6s | %5s %5s %5s %5s | %7s %7s %7s %6s\n",
				"t(s)", "busy", "mac", "route", "data", "gossip", "rounds", "deliv", "retry", "queue")
			for _, w := range res.Metrics.Windows {
				fmt.Printf("%7.0f %5.1f%% | %4.0f%% %4.0f%% %4.0f%% %4.0f%% | %7d %7d %7d %6d\n",
					w.End.Seconds(), 100*w.BusyFraction(),
					100*w.AirtimeShare(metrics.LayerMAC),
					100*w.AirtimeShare(metrics.LayerRouting),
					100*w.AirtimeShare(metrics.LayerData),
					100*w.AirtimeShare(metrics.LayerGossip),
					w.GossipRounds, w.DataDelivered, w.MACRetries, w.QueueDepth)
			}
			if *metricsCSV != "" {
				fmt.Fprintf(&metricsCSVBuf, "# figure=%s %s=%v seed=%d\n", id, xName, x, c.Seed)
				if err := res.Metrics.WriteCSV(&metricsCSVBuf); err != nil {
					return nil, err
				}
			}
		}
		fmt.Println()
		return out, nil
	}

	// runSweep executes one x-axis sweep: print the table, record the
	// JSON figure. Every family (paper figures, large, dense) funnels
	// through it so the format and the record stay in lockstep.
	runSweep := func(id, title, xName, xFmt, note string, xs []float64, cfg scenario.Config,
		apply func(scenario.Config, float64) scenario.Config) error {
		fmt.Printf("=== %s ===\n", title)
		fmt.Printf("(%d seeds, %d packets sent %s)\n", len(seedList), cfg.ExpectedPackets(), note)
		fmt.Printf("%-10s | %28s | %28s\n", xName, treatCol, baseCol)
		if *metricsOn {
			// Sample the timed runs too: observe-only, so every number in
			// the table is bit-identical to an unsampled run, but the wall
			// times now carry the sampler's true overhead.
			cfg.MetricsWindow = *metricsWin
		}
		rows, err := scenario.RunComparisonStacks(cfg, xs, apply, seedList, *parallel, nil,
			treatment, baseline)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf(xFmt+" | %8.1f [%5.0f,%5.0f] (%5.1f) | %8.1f [%5.0f,%5.0f] (%5.1f)\n",
				r.X,
				r.Gossip.Received.Mean, r.Gossip.Received.Min, r.Gossip.Received.Max, r.Gossip.Received.Std,
				r.Maodv.Received.Mean, r.Maodv.Received.Min, r.Maodv.Received.Max, r.Maodv.Received.Std)
		}
		fmt.Println()
		report.addFigure(id, title, xName, rows)
		if *metricsOn {
			series, err := runMetrics(id, xName, xs, cfg, apply)
			if err != nil {
				return err
			}
			fig := &report.Figures[len(report.Figures)-1]
			for i := range fig.Points {
				fig.Points[i].Metrics = series[i]
			}
		}
		return nil
	}
	internals := fmt.Sprintf("%s index, %s rxmodel, %s kernel", *index, *rxmodel, *schedStr)

	for _, f := range figures() {
		if !want[f.id] {
			continue
		}
		if err := runSweep(strconv.Itoa(f.id), fmt.Sprintf("Figure %d: %s", f.id, f.title),
			f.xName, "%-10.1f", "per run", f.xs, base, f.apply); err != nil {
			return err
		}
	}

	if wantLarge {
		var xs []float64
		for _, x := range scenario.LargeScaleXs() {
			if int(x) <= *largeMax {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return fmt.Errorf("-large-max %d excludes every sweep point", *largeMax)
		}
		if err := runSweep("large",
			"Large scale: Packet Delivery vs Number of Nodes (constant density, 75 m range)",
			"nodes", "%-10.0f", "per run, "+internals, xs, base, scenario.ApplyLargeScale); err != nil {
			return err
		}
	}

	if wantHuge {
		var xs []float64
		for _, x := range scenario.HugeScaleXs() {
			if int(x) <= *hugeMax && int(x) >= *hugeMin {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return fmt.Errorf("-huge-min %d / -huge-max %d exclude every sweep point", *hugeMin, *hugeMax)
		}
		// The huge family runs its own short data window (heap and
		// events/sec are its results, not delivery) and reports that
		// duration so gate comparisons stay like for like.
		hbase := scenario.ShortenedData(base, *hugeDur)
		report.Duration = hbase.Duration.String()
		title := fmt.Sprintf("Huge scale: perf and memory vs Number of Nodes (constant density, 75 m range, %v window)", *hugeDur)
		if err := runSweep("huge", title, "nodes", "%-10.0f",
			"per run, "+internals, xs, hbase, scenario.ApplyHugeScale); err != nil {
			return err
		}
		for _, f := range report.Figures {
			if f.Figure != "huge" {
				continue
			}
			fmt.Println("huge-scale memory:")
			for _, p := range f.Points {
				fmt.Printf("%8.0f nodes  %12d peak heap bytes  %8.0f bytes/node  %10.0f events/sec\n",
					p.X, p.PeakHeapBytes, p.HeapBytesPerNode, p.EventsPerSec)
			}
			fmt.Println()
		}
	}

	if wantDense {
		var xs []float64
		for _, x := range scenario.DenseXs() {
			if x <= float64(*denseMax) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return fmt.Errorf("-dense-max %d excludes every sweep point", *denseMax)
		}
		dbase := base
		dbase.Nodes = *denseNodes
		dbase.NumSources = scenario.DenseSources
		title := fmt.Sprintf("Dense traffic: Packet Delivery vs Mean Degree (%d nodes, %d sources, 75 m range)",
			*denseNodes, scenario.DenseSources)
		if err := runSweep("dense", title, "degree", "%-10.0f",
			"per source per run, "+internals, xs, dbase, scenario.ApplyDense); err != nil {
			return err
		}
	}

	if want[8] {
		fmt.Println("=== Figure 8: Goodput at group members ===")
		fmt.Printf("%-18s | %10s %8s %8s\n", "case", "mean", "min", "max")
		for _, gc := range scenario.Fig8Cases() {
			caseStart := time.Now()
			row, err := scenario.RunGoodput(base, gc, seedList, *parallel)
			if err != nil {
				return err
			}
			fmt.Printf("%4.0fm, %3.1fm/s      | %9.2f%% %7.2f%% %7.2f%%\n",
				gc.TxRange, gc.MaxSpeed, row.Summary.Mean, row.Summary.Min, row.Summary.Max)
			report.Goodput = append(report.Goodput, jsonGoodput{
				RangeM: gc.TxRange, SpeedMS: gc.MaxSpeed,
				Mean: row.Summary.Mean, Min: row.Summary.Min, Max: row.Summary.Max,
				WallSeconds: time.Since(caseStart).Seconds(),
			})
		}
		fmt.Println()
	}

	total := time.Since(start)
	fmt.Printf("total wall time: %v\n", total.Round(time.Second))

	if *metricsCSV != "" && metricsCSVBuf.Len() > 0 {
		if err := os.WriteFile(*metricsCSV, []byte(metricsCSVBuf.String()), 0o644); err != nil {
			return fmt.Errorf("metrics-csv: %w", err)
		}
		fmt.Printf("wrote %s\n", *metricsCSV)
	}

	if *jsonPath != "" {
		report.TotalWallSeconds = total.Seconds()
		var memEnd runtime.MemStats
		runtime.ReadMemStats(&memEnd)
		for _, f := range report.Figures {
			for _, p := range f.Points {
				report.TotalEvents += p.Events
			}
		}
		if report.TotalEvents > 0 {
			report.MallocsPerEvent = float64(memEnd.Mallocs-memStart.Mallocs) / float64(report.TotalEvents)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("json: %w", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
