// Command agbench regenerates the paper's figures as text tables.
//
// Usage:
//
//	agbench -fig 2          # one figure
//	agbench -fig all        # everything
//	agbench -fig 4 -seeds 10 -parallel 4
//	agbench -fig large -duration 120s -large-max 500
//
// Each table prints one row per x-axis point with the Gossip and MAODV
// mean delivery and [min, max] error bars across all members and seeds,
// the same series the paper plots. Figure 8 prints per-case goodput.
// With the paper's full 10-seed sweeps (-seeds 10) a figure takes a few
// minutes; the default 3 seeds preserve the shapes at a third of the
// cost.
//
// Beyond the paper, -fig large sweeps the large-scale family (100 to
// 1000 nodes at constant density; see EXPERIMENTS.md §L). At full
// duration the 1000-node points take tens of minutes — shrink with
// -duration and cap the sweep with -large-max for previews. The -index
// flag switches the radio's neighbour index between the spatial grid
// and the brute-force scan, and -queue switches the kernel's event
// queue between the pooled 4-ary heap and the container/heap
// reference; results are bit-identical either way, only wall time
// changes. -cpuprofile/-memprofile write pprof profiles for bottleneck
// hunts (see EXPERIMENTS.md, "Profiling workflow").
//
// The -protocol flag picks the stack under test by registry name (e.g.
// -protocol flood+gossip); its bare routing protocol becomes the
// comparison baseline, so the tables generalise the paper's
// Gossip-vs-Maodv pairing to any registered stack. -help lists the
// registered stacks.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"anongossip/internal/radio"
	"anongossip/internal/scenario"
	"anongossip/internal/sim"
	"anongossip/internal/stack"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agbench:", err)
		os.Exit(1)
	}
}

type figure struct {
	id    int
	title string
	xName string
	xs    []float64
	apply func(scenario.Config, float64) scenario.Config
}

func figures() []figure {
	return []figure{
		{2, "Packet Delivery vs Transmission Range (speed 0.2 m/s)", "range(m)", scenario.Fig2Xs(), scenario.ApplyFig2},
		{3, "Packet Delivery vs Transmission Range (speed 2 m/s)", "range(m)", scenario.Fig3Xs(), scenario.ApplyFig3},
		{4, "Packet Delivery vs Maximum Speed 0.1-1.0 m/s (range 75 m)", "speed(m/s)", scenario.Fig4Xs(), scenario.ApplyFig4And5},
		{5, "Packet Delivery vs Maximum Speed 1-10 m/s (range 75 m)", "speed(m/s)", scenario.Fig5Xs(), scenario.ApplyFig4And5},
		{6, "Packet Delivery vs Number of Nodes (constant mean degree)", "nodes", scenario.Fig6Xs(), scenario.ApplyFig6},
		{7, "Packet Delivery vs Number of Nodes (range 55 m)", "nodes", scenario.Fig7Xs(), scenario.ApplyFig7},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agbench", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "figure to regenerate: 2..8, large, or all")
		proto = fs.String("protocol", "maodv+gossip",
			"stack under test by registry name ("+strings.Join(stack.Names(), " | ")+
				"); its bare routing is the comparison baseline")
		seeds    = fs.Int("seeds", 3, "seeds per point (paper: 10)")
		parallel = fs.Int("parallel", 0, "concurrent runs (0 = NumCPU)")
		duration = fs.Duration("duration", 600*time.Second, "simulated time per run (shrink for quick previews)")
		index    = fs.String("index", "grid", "radio neighbour index: grid | brute")
		queue    = fs.String("queue", "quad", "scheduler event queue: quad | ref")
		largeMax = fs.Int("large-max", 1000, "largest node count of the -fig large sweep")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	treatment, err := stack.ByName(*proto)
	if err != nil {
		return err
	}
	if treatment.Recovery == "" {
		return fmt.Errorf("-protocol %q has no recovery layer to measure; pick a composed stack (e.g. %s+gossip)",
			*proto, treatment.Routing)
	}
	baseline := stack.Spec{Routing: treatment.Routing}
	treatCol := fmt.Sprintf("%v mean [min,max] (std)", treatment)
	baseCol := fmt.Sprintf("%v mean [min,max] (std)", baseline)

	var radioIndex radio.IndexKind
	switch *index {
	case "grid":
		radioIndex = radio.IndexGrid
	case "brute":
		radioIndex = radio.IndexBrute
	default:
		return fmt.Errorf("invalid -index %q (want grid or brute)", *index)
	}

	var queueKind sim.QueueKind
	switch *queue {
	case "quad":
		queueKind = sim.QueueQuad
	case "ref":
		queueKind = sim.QueueRef
	default:
		return fmt.Errorf("invalid -queue %q (want quad or ref)", *queue)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "agbench: memprofile:", err)
			}
		}()
	}

	want := map[int]bool{}
	wantLarge := false
	switch *fig {
	case "all":
		for i := 2; i <= 8; i++ {
			want[i] = true
		}
	case "large":
		wantLarge = true
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil || n < 2 || n > 8 {
			return fmt.Errorf("invalid -fig %q (want 2..8, large, or all)", *fig)
		}
		want[n] = true
	}

	base := scenario.DefaultConfig()
	base.Stack = treatment // Fig. 8 goodput follows the stack under test
	base.RadioIndex = radioIndex
	base.EventQueue = queueKind
	if *duration != base.Duration {
		// Below ~a minute the paper's warm-up/cool-down proportions are
		// gone and any table would be noise.
		if *duration <= 60*time.Second {
			return fmt.Errorf("duration %v too short for a data window (need > 60s)", *duration)
		}
		base = scenario.ShortenedData(base, *duration)
	}
	seedList := scenario.Seeds(*seeds)
	start := time.Now()

	for _, f := range figures() {
		if !want[f.id] {
			continue
		}
		fmt.Printf("=== Figure %d: %s ===\n", f.id, f.title)
		fmt.Printf("(%d seeds, %d packets sent per run)\n", len(seedList), base.ExpectedPackets())
		fmt.Printf("%-10s | %28s | %28s\n", f.xName, treatCol, baseCol)
		rows, err := scenario.RunComparisonStacks(base, f.xs, f.apply, seedList, *parallel, nil,
			treatment, baseline)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-10.1f | %8.1f [%5.0f,%5.0f] (%5.1f) | %8.1f [%5.0f,%5.0f] (%5.1f)\n",
				r.X,
				r.Gossip.Received.Mean, r.Gossip.Received.Min, r.Gossip.Received.Max, r.Gossip.Received.Std,
				r.Maodv.Received.Mean, r.Maodv.Received.Min, r.Maodv.Received.Max, r.Maodv.Received.Std)
		}
		fmt.Println()
	}

	if wantLarge {
		var xs []float64
		for _, x := range scenario.LargeScaleXs() {
			if int(x) <= *largeMax {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return fmt.Errorf("-large-max %d excludes every sweep point", *largeMax)
		}
		fmt.Println("=== Large scale: Packet Delivery vs Number of Nodes (constant density, 75 m range) ===")
		fmt.Printf("(%d seeds, %d packets sent per run, %s index)\n", len(seedList), base.ExpectedPackets(), *index)
		fmt.Printf("%-10s | %28s | %28s\n", "nodes", treatCol, baseCol)
		rows, err := scenario.RunComparisonStacks(base, xs, scenario.ApplyLargeScale, seedList, *parallel, nil,
			treatment, baseline)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-10.0f | %8.1f [%5.0f,%5.0f] (%5.1f) | %8.1f [%5.0f,%5.0f] (%5.1f)\n",
				r.X,
				r.Gossip.Received.Mean, r.Gossip.Received.Min, r.Gossip.Received.Max, r.Gossip.Received.Std,
				r.Maodv.Received.Mean, r.Maodv.Received.Min, r.Maodv.Received.Max, r.Maodv.Received.Std)
		}
		fmt.Println()
	}

	if want[8] {
		fmt.Println("=== Figure 8: Goodput at group members ===")
		fmt.Printf("%-18s | %10s %8s %8s\n", "case", "mean", "min", "max")
		for _, gc := range scenario.Fig8Cases() {
			row, err := scenario.RunGoodput(base, gc, seedList, *parallel)
			if err != nil {
				return err
			}
			fmt.Printf("%4.0fm, %3.1fm/s      | %9.2f%% %7.2f%% %7.2f%%\n",
				gc.TxRange, gc.MaxSpeed, row.Summary.Mean, row.Summary.Min, row.Summary.Max)
		}
		fmt.Println()
	}

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Second))
	return nil
}
