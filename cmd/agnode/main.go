// Command agnode runs one live protocol node: the same multicast
// routing and anonymous-gossip engines the simulator drives, bound to
// a real UDP socket through the runtime/netrt runtime.
//
// A three-node loopback cluster (see examples/loopback3 for the
// in-process equivalent):
//
//	agnode -id 1 -listen 127.0.0.1:7001 -peer 2=127.0.0.1:7002 -peer 3=127.0.0.1:7003 -api 127.0.0.1:8001 &
//	agnode -id 2 -listen 127.0.0.1:7002 -peer 1=127.0.0.1:7001 -peer 3=127.0.0.1:7003 -api 127.0.0.1:8002 &
//	agnode -id 3 -listen 127.0.0.1:7003 -peer 1=127.0.0.1:7001 -peer 2=127.0.0.1:7002 -api 127.0.0.1:8003 &
//	curl -X POST http://127.0.0.1:8001/publish
//	curl http://127.0.0.1:8002/stats
//	curl -N http://127.0.0.1:8003/subscribe   # SSE delivery stream
//
// -stack accepts any stack the protocol registry knows ("flood",
// "maodv", "odmrp+gossip", ...). Every node of a cluster must run the
// same stack. Peer tables are static: each -peer names one remote node
// and duplicate IDs — in the peer table or joining the transport — are
// rejected at startup, exactly as the simulated radio rejects duplicate
// attachments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"anongossip/internal/metrics"
	"anongossip/internal/node"
	"anongossip/internal/pkt"
	"anongossip/internal/runtime/netrt"
	"anongossip/internal/stack"
	"anongossip/internal/stats"

	// Protocol packages register their stacks at init time.
	_ "anongossip/internal/flood"
	_ "anongossip/internal/gossip"
	_ "anongossip/internal/maodv"
	_ "anongossip/internal/odmrp"
)

// defaultGroup matches the simulator's single experiment group.
const defaultGroup = 0xE0000001

// peerFlag is one "-peer id=host:port" argument.
type peerFlag struct {
	id   pkt.NodeID
	addr string
}

// daemonConfig is everything a daemon needs besides its transport.
type daemonConfig struct {
	ID        pkt.NodeID
	Stack     stack.Spec
	Group     pkt.GroupID
	Seed      int64
	TimeScale float64
	// InboxSize bounds the frame queue between the transport and the
	// event loop (0 = netrt.DefaultInboxSize); /stats reports the
	// effective capacity alongside the drop counter.
	InboxSize int
}

// delivery is one application-level data arrival, as reported on
// /subscribe and counted into /stats.
type delivery struct {
	Group     pkt.GroupID `json:"group"`
	Origin    pkt.NodeID  `json:"origin"`
	Seq       uint32      `json:"seq"`
	Recovered bool        `json:"recovered"`
}

// daemon is one running agnode: a live protocol node plus the client
// API state. It is transport-agnostic so tests boot whole clusters on
// the in-process channel transport.
type daemon struct {
	cfg daemonConfig
	pn  *netrt.ProtocolNode
	reg *metrics.Registry

	mu       sync.Mutex
	arrivals []time.Time // wall-clock delivery instants
	count    uint64
	subs     map[chan delivery]struct{}
}

// newDaemon assembles the stack on tr and joins the group. The node is
// live when newDaemon returns.
func newDaemon(cfg daemonConfig, tr netrt.Transport) (*daemon, error) {
	if cfg.Group == 0 {
		cfg.Group = defaultGroup
	}
	pn, err := netrt.NewProtocolNode(netrt.ProtocolConfig{
		Node:  netrt.NodeConfig{ID: cfg.ID, TimeScale: cfg.TimeScale, InboxSize: cfg.InboxSize},
		Stack: cfg.Stack,
		Seed:  cfg.Seed,
	}, tr)
	if err != nil {
		return nil, err
	}
	d := &daemon{cfg: cfg, pn: pn, subs: make(map[chan delivery]struct{})}
	// Registered before Start: deliveries run on the node's event loop
	// and must never block it, so subscribers get non-blocking sends.
	pn.OnDeliver(func(g pkt.GroupID, data *pkt.Data, recovered bool) {
		ev := delivery{Group: g, Origin: data.Origin, Seq: data.Seq, Recovered: recovered}
		d.mu.Lock()
		d.count++
		d.arrivals = append(d.arrivals, time.Now())
		for ch := range d.subs {
			select {
			case ch <- ev:
			default:
			}
		}
		d.mu.Unlock()
	})
	pn.Start()
	if err := pn.Join(cfg.Group); err != nil {
		pn.Close()
		return nil, err
	}
	d.reg = d.buildRegistry()
	return d, nil
}

// buildRegistry wires the Prometheus /metrics families. Collection is
// pull-based: link counters read the runtime's atomics directly, while
// engine counters round-trip through the node's Do serializer at scrape
// time (the same path /stats uses), so the event loop stays the only
// goroutine touching protocol state.
func (d *daemon) buildRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("agnode_delivered_total",
		"Unique data packets delivered to the application (routing + recovery).",
		func(emit func(metrics.Sample)) {
			d.mu.Lock()
			v := float64(d.count)
			d.mu.Unlock()
			emit(metrics.Sample{Value: v})
		})
	reg.Gauge("agnode_subscribers",
		"Active /subscribe delivery streams.",
		func(emit func(metrics.Sample)) {
			d.mu.Lock()
			v := float64(len(d.subs))
			d.mu.Unlock()
			emit(metrics.Sample{Value: v})
		})
	reg.Counter("agnode_link_frames_total",
		"Link frames by direction.",
		func(emit func(metrics.Sample)) {
			ls := d.pn.Runtime().Stats()
			emit(metrics.Sample{Labels: []metrics.Label{{Name: "direction", Value: "in"}}, Value: float64(ls.FramesIn.Load())})
			emit(metrics.Sample{Labels: []metrics.Label{{Name: "direction", Value: "out"}}, Value: float64(ls.FramesOut.Load())})
		})
	reg.Counter("agnode_link_bytes_total",
		"Link bytes by direction.",
		func(emit func(metrics.Sample)) {
			ls := d.pn.Runtime().Stats()
			emit(metrics.Sample{Labels: []metrics.Label{{Name: "direction", Value: "in"}}, Value: float64(ls.BytesIn.Load())})
			emit(metrics.Sample{Labels: []metrics.Label{{Name: "direction", Value: "out"}}, Value: float64(ls.BytesOut.Load())})
		})
	reg.Counter("agnode_link_errors_total",
		"Dropped or failed frames by cause.",
		func(emit func(metrics.Sample)) {
			ls := d.pn.Runtime().Stats()
			for _, e := range []struct {
				kind string
				v    uint64
			}{
				{"malformed", ls.Malformed.Load()},
				{"filtered", ls.Filtered.Load()},
				{"send", ls.SendErrors.Load()},
				{"inbox_drop", ls.InboxDrops.Load()},
			} {
				emit(metrics.Sample{Labels: []metrics.Label{{Name: "kind", Value: e.kind}}, Value: float64(e.v)})
			}
		})
	reg.Gauge("agnode_inbox_capacity",
		"Configured frame-queue bound between socket and event loop.",
		func(emit func(metrics.Sample)) {
			emit(metrics.Sample{Value: float64(d.pn.Runtime().InboxCap())})
		})
	reg.Counter("agnode_node_packets_total",
		"Network-layer packet counts by operation.",
		func(emit func(metrics.Sample)) {
			ns, err := d.pn.NodeStats()
			if err != nil {
				return
			}
			for _, e := range []struct {
				op string
				v  uint64
			}{
				{"sent", ns.Sent},
				{"forwarded", ns.Forwarded},
				{"delivered", ns.Delivered},
				{"ttl_drop", ns.TTLDrops},
				{"no_handler", ns.NoHandler},
				{"mac_reject", ns.MACRejects},
			} {
				emit(metrics.Sample{Labels: []metrics.Label{{Name: "op", Value: e.op}}, Value: float64(e.v)})
			}
		})
	reg.Counter("agnode_node_bytes_total",
		"Network-layer transmitted bytes by class.",
		func(emit func(metrics.Sample)) {
			ns, err := d.pn.NodeStats()
			if err != nil {
				return
			}
			emit(metrics.Sample{Labels: []metrics.Label{{Name: "class", Value: "control"}}, Value: float64(ns.ControlBytes)})
			emit(metrics.Sample{Labels: []metrics.Label{{Name: "class", Value: "payload"}}, Value: float64(ns.PayloadBytes)})
		})
	reg.Counter("agnode_recovery_packets_total",
		"Recovery-layer outcomes (gossip stacks).",
		func(emit func(metrics.Sample)) {
			rs, err := d.pn.RecoveryStats()
			if err != nil {
				return
			}
			for _, e := range []struct {
				op string
				v  uint64
			}{
				{"delivered", rs.Delivered},
				{"recovered", rs.Recovered},
				{"reply_new", rs.ReplyNew},
				{"reply_dup", rs.ReplyDup},
			} {
				emit(metrics.Sample{Labels: []metrics.Label{{Name: "op", Value: e.op}}, Value: float64(e.v)})
			}
		})
	reg.Gauge("agnode_recovery_goodput_percent",
		"Percentage of useful recovery-reply traffic (paper §5.5).",
		func(emit func(metrics.Sample)) {
			rs, err := d.pn.RecoveryStats()
			if err != nil {
				return
			}
			emit(metrics.Sample{Value: rs.Goodput})
		})
	return reg
}

// Close stops the node.
func (d *daemon) Close() error { return d.pn.Close() }

// subscribe registers a delivery listener; the returned cancel func
// removes it.
func (d *daemon) subscribe() (<-chan delivery, func()) {
	ch := make(chan delivery, 64)
	d.mu.Lock()
	d.subs[ch] = struct{}{}
	d.mu.Unlock()
	return ch, func() {
		d.mu.Lock()
		delete(d.subs, ch)
		d.mu.Unlock()
	}
}

// statsReport is the /stats response document.
type statsReport struct {
	ID        pkt.NodeID  `json:"id"`
	Stack     string      `json:"stack"`
	Group     pkt.GroupID `json:"group"`
	Delivered uint64      `json:"delivered"`
	// GapMS summarises wall-clock inter-arrival gaps of delivered
	// packets in milliseconds (the live analogue of the simulator's
	// delivery distributions, via internal/stats).
	GapMS    stats.Summary       `json:"gap_ms"`
	Node     node.Stats          `json:"node"`
	Recovery stack.RecoveryStats `json:"recovery"`
	Link     linkStats           `json:"link"`
}

// linkStats is the JSON shape of the runtime's atomic frame counters.
type linkStats struct {
	FramesIn   uint64 `json:"frames_in"`
	FramesOut  uint64 `json:"frames_out"`
	BytesIn    uint64 `json:"bytes_in"`
	BytesOut   uint64 `json:"bytes_out"`
	Malformed  uint64 `json:"malformed"`
	Filtered   uint64 `json:"filtered"`
	SendErrors uint64 `json:"send_errors"`
	InboxDrops uint64 `json:"inbox_drops"`
	// InboxCapacity is the configured frame-queue bound the drops are
	// measured against (-inbox flag; netrt.DefaultInboxSize when unset).
	InboxCapacity int `json:"inbox_capacity"`
}

// report gathers the full stats document.
func (d *daemon) report() (*statsReport, error) {
	ns, err := d.pn.NodeStats()
	if err != nil {
		return nil, err
	}
	rs, err := d.pn.RecoveryStats()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	count := d.count
	gaps := make([]float64, 0, len(d.arrivals))
	for i := 1; i < len(d.arrivals); i++ {
		gaps = append(gaps, float64(d.arrivals[i].Sub(d.arrivals[i-1]))/float64(time.Millisecond))
	}
	d.mu.Unlock()
	ls := d.pn.Runtime().Stats()
	return &statsReport{
		ID:        d.cfg.ID,
		Stack:     d.pn.Spec().String(),
		Group:     d.cfg.Group,
		Delivered: count,
		GapMS:     stats.Summarize(gaps),
		Node:      ns,
		Recovery:  rs,
		Link: linkStats{
			FramesIn:      ls.FramesIn.Load(),
			FramesOut:     ls.FramesOut.Load(),
			BytesIn:       ls.BytesIn.Load(),
			BytesOut:      ls.BytesOut.Load(),
			Malformed:     ls.Malformed.Load(),
			Filtered:      ls.Filtered.Load(),
			SendErrors:    ls.SendErrors.Load(),
			InboxDrops:    ls.InboxDrops.Load(),
			InboxCapacity: d.pn.Runtime().InboxCap(),
		},
	}, nil
}

// handler builds the client API: POST /publish, GET /subscribe (SSE),
// GET /stats, GET /metrics (Prometheus text format), and the pprof
// endpoints under /debug/pprof/.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := d.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("POST /publish", func(w http.ResponseWriter, r *http.Request) {
		key, err := d.pn.Publish(d.cfg.Group)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"origin": key.Origin, "seq": key.Seq})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		rep, err := d.report()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("GET /subscribe", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		ch, cancel := d.subscribe()
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case ev := <-ch:
				payload, err := json.Marshal(ev)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "data: %s\n\n", payload)
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	return mux
}

// parsePeer splits one -peer value.
func parsePeer(v string) (peerFlag, error) {
	idStr, addr, ok := strings.Cut(v, "=")
	if !ok {
		return peerFlag{}, fmt.Errorf("want id=host:port, got %q", v)
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		return peerFlag{}, fmt.Errorf("bad peer id %q: %v", idStr, err)
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return peerFlag{}, fmt.Errorf("bad peer address %q: %v", addr, err)
	}
	return peerFlag{id: pkt.NodeID(id), addr: addr}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("agnode", flag.ContinueOnError)
	var (
		id        = fs.Uint("id", 0, "this node's id (required, unique across the cluster)")
		stackName = fs.String("stack", "flood", "protocol stack: "+strings.Join(stack.Names(), ", "))
		group     = fs.Uint("group", defaultGroup, "multicast group address")
		listen    = fs.String("listen", "127.0.0.1:0", "UDP address for protocol frames")
		api       = fs.String("api", "127.0.0.1:0", "HTTP address for the client API (publish/subscribe/stats)")
		seed      = fs.Int64("seed", time.Now().UnixNano(), "rng seed for protocol choices")
		timeScale = fs.Float64("timescale", 1, "protocol seconds per wall second (>1 compresses timers; tests only)")
		inbox     = fs.Int("inbox", 0, "frame-queue capacity between socket and event loop (0 = netrt default); overruns drop frames, counted in /stats inbox_drops")
	)
	var peers []peerFlag
	fs.Func("peer", "peer as id=host:port (repeatable)", func(v string) error {
		p, err := parsePeer(v)
		if err != nil {
			return err
		}
		peers = append(peers, p)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == 0 {
		return fmt.Errorf("agnode: -id is required and must be nonzero")
	}
	spec, err := stack.ByName(*stackName)
	if err != nil {
		return fmt.Errorf("agnode: invalid -stack: %w", err)
	}

	tr, err := netrt.NewUDP(*listen)
	if err != nil {
		return fmt.Errorf("agnode: %w", err)
	}
	for _, p := range peers {
		if err := tr.AddPeer(p.id, p.addr); err != nil {
			return fmt.Errorf("agnode: %w", err)
		}
	}
	d, err := newDaemon(daemonConfig{
		ID:        pkt.NodeID(*id),
		Stack:     spec,
		Group:     pkt.GroupID(*group),
		Seed:      *seed,
		TimeScale: *timeScale,
		InboxSize: *inbox,
	}, tr)
	if err != nil {
		return fmt.Errorf("agnode: %w", err)
	}
	defer d.Close()

	ln, err := net.Listen("tcp", *api)
	if err != nil {
		return fmt.Errorf("agnode: api listen: %w", err)
	}
	fmt.Printf("agnode %d: stack %v, udp %s, api http://%s\n",
		*id, spec, tr.Addr(), ln.Addr())

	srv := &http.Server{Handler: d.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("agnode %d: %v, shutting down\n", *id, s)
		srv.Close()
		return nil
	case err := <-errc:
		return err
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
