package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anongossip/internal/pkt"
	"anongossip/internal/runtime/netrt"
	"anongossip/internal/stack"
)

func TestParsePeer(t *testing.T) {
	p, err := parsePeer("3=127.0.0.1:7003")
	if err != nil {
		t.Fatalf("parsePeer: %v", err)
	}
	if p.id != 3 || p.addr != "127.0.0.1:7003" {
		t.Fatalf("parsePeer = %+v", p)
	}
	for _, bad := range []string{"", "3", "x=127.0.0.1:7003", "3=no-port", "3=127.0.0.1"} {
		if _, err := parsePeer(bad); err == nil {
			t.Errorf("parsePeer(%q) accepted", bad)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-stack", "flood"}); err == nil || !strings.Contains(err.Error(), "-id") {
		t.Errorf("missing -id err = %v", err)
	}
	if err := run([]string{"-id", "1", "-stack", "tarot"}); err == nil ||
		!strings.Contains(err.Error(), "unknown stack") {
		t.Errorf("unknown stack err = %v", err)
	}
	if err := run([]string{"-id", "1", "-peer", "nonsense"}); err == nil {
		t.Error("malformed -peer accepted")
	}
}

// bootDaemons starts n agnode daemons on one in-process transport with
// httptest servers in front of their APIs.
func bootDaemons(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	tr := netrt.NewChanTransport()
	apis := make([]*httptest.Server, 0, n)
	for i := 0; i < n; i++ {
		d, err := newDaemon(daemonConfig{
			ID:        pkt.NodeID(i + 1),
			Stack:     stack.Spec{Routing: "flood"},
			Seed:      7,
			TimeScale: 100,
		}, tr)
		if err != nil {
			t.Fatalf("newDaemon %d: %v", i+1, err)
		}
		t.Cleanup(func() { d.Close() })
		srv := httptest.NewServer(d.handler())
		t.Cleanup(srv.Close)
		apis = append(apis, srv)
	}
	return apis
}

func getStats(t *testing.T, srv *httptest.Server) statsReport {
	t.Helper()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats status %d", resp.StatusCode)
	}
	var rep statsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return rep
}

// TestDaemonClusterEndToEnd boots a 3-daemon loopback cluster and
// drives the whole client API: subscribe on one node, publish from
// another, watch the delivery arrive over SSE and in /stats.
func TestDaemonClusterEndToEnd(t *testing.T) {
	apis := bootDaemons(t, 3)

	// SSE subscriber on node 3, attached before publishing.
	req, err := http.NewRequest("GET", apis[2].URL+"/subscribe", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /subscribe: %v", err)
	}
	defer resp.Body.Close()

	const packets = 5
	for i := 0; i < packets; i++ {
		pr, err := http.Post(apis[0].URL+"/publish", "", nil)
		if err != nil {
			t.Fatalf("POST /publish: %v", err)
		}
		var key struct {
			Origin pkt.NodeID `json:"origin"`
			Seq    uint32     `json:"seq"`
		}
		if err := json.NewDecoder(pr.Body).Decode(&key); err != nil {
			t.Fatalf("publish decode: %v", err)
		}
		pr.Body.Close()
		if key.Origin != 1 {
			t.Fatalf("publish origin = %v, want 1", key.Origin)
		}
	}

	// The SSE stream carries each delivery as one data: line.
	sse := bufio.NewScanner(resp.Body)
	seen := 0
	deadline := time.AfterFunc(20*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sse.Scan() && seen < packets {
		line := sse.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev delivery
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("SSE event does not parse: %v (%q)", err, line)
		}
		if ev.Origin != 1 {
			t.Errorf("delivery origin = %v, want 1", ev.Origin)
		}
		seen++
	}
	if seen < packets {
		t.Fatalf("SSE stream carried %d deliveries, want %d", seen, packets)
	}

	// /stats on both receivers reflects full delivery.
	for i, srv := range apis[1:] {
		var rep statsReport
		waitDeadline := time.Now().Add(20 * time.Second)
		for {
			rep = getStats(t, srv)
			if rep.Delivered >= packets || time.Now().After(waitDeadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if rep.Delivered != packets {
			t.Errorf("node %d delivered %d, want %d", i+2, rep.Delivered, packets)
		}
		if rep.Stack != "flood" {
			t.Errorf("node %d stack = %q", i+2, rep.Stack)
		}
		if rep.Link.FramesIn == 0 {
			t.Errorf("node %d link counters empty: %+v", i+2, rep.Link)
		}
		if rep.GapMS.N != packets-1 {
			t.Errorf("node %d gap summary N = %d, want %d", i+2, rep.GapMS.N, packets-1)
		}
	}

	// The publisher's own stats count sends, not deliveries.
	pub := getStats(t, apis[0])
	if pub.Node.Sent == 0 {
		t.Errorf("publisher Sent = 0: %+v", pub.Node)
	}
}

// TestMetricsAndPprofEndpoints boots a gossip-stack loopback cluster,
// publishes through it, and scrapes the observability surface: GET
// /metrics must expose the delivery/link/recovery families in
// Prometheus text format and reflect traffic, and the pprof handlers
// must serve under /debug/pprof/.
func TestMetricsAndPprofEndpoints(t *testing.T) {
	tr := netrt.NewChanTransport()
	apis := make([]*httptest.Server, 0, 2)
	for i := 0; i < 2; i++ {
		d, err := newDaemon(daemonConfig{
			ID:        pkt.NodeID(i + 1),
			Stack:     stack.Spec{Routing: "flood", Recovery: "gossip"},
			Seed:      11,
			TimeScale: 100,
		}, tr)
		if err != nil {
			t.Fatalf("newDaemon %d: %v", i+1, err)
		}
		t.Cleanup(func() { d.Close() })
		srv := httptest.NewServer(d.handler())
		t.Cleanup(srv.Close)
		apis = append(apis, srv)
	}

	for i := 0; i < 3; i++ {
		pr, err := http.Post(apis[0].URL+"/publish", "", nil)
		if err != nil {
			t.Fatalf("POST /publish: %v", err)
		}
		pr.Body.Close()
	}

	scrape := func(srv *httptest.Server) string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("GET /metrics content type %q", ct)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET /metrics read: %v", err)
		}
		return string(data)
	}

	// The receiver sees the published packets; poll until its counter
	// moves, then check the families.
	deadline := time.Now().Add(20 * time.Second)
	var body string
	for {
		body = scrape(apis[1])
		if strings.Contains(body, "agnode_delivered_total 3") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE agnode_delivered_total counter",
		"agnode_delivered_total 3",
		`agnode_link_frames_total{direction="in"}`,
		`agnode_node_packets_total{op="delivered"}`,
		`agnode_recovery_packets_total{op="delivered"}`,
		"# TYPE agnode_subscribers gauge",
		"agnode_inbox_capacity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(apis[0].URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s status %d", path, resp.StatusCode)
		}
	}
}

// TestDaemonDuplicateID pins the cluster-level duplicate-identity
// contract: a second daemon claiming a live node's ID must fail to
// start with a clear error.
func TestDaemonDuplicateID(t *testing.T) {
	tr := netrt.NewChanTransport()
	cfg := daemonConfig{ID: 9, Stack: stack.Spec{Routing: "flood"}, TimeScale: 100}
	d, err := newDaemon(cfg, tr)
	if err != nil {
		t.Fatalf("first daemon: %v", err)
	}
	defer d.Close()
	if _, err := newDaemon(cfg, tr); err == nil {
		t.Fatal("duplicate-ID daemon started, want error")
	} else if !strings.Contains(err.Error(), "already joined") {
		t.Errorf("duplicate-ID error %q does not name the cause", err)
	}
}
