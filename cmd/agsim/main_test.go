package main

import "testing"

func TestRunShortSimulation(t *testing.T) {
	err := run([]string{
		"-protocol", "gossip",
		"-nodes", "15",
		"-range", "70",
		"-duration", "60s",
		"-seed", "2",
		"-verbose",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllProtocols(t *testing.T) {
	// Canonical registry names, the composed sixth stack the legacy enum
	// could not express, and a legacy alias spelling.
	for _, p := range []string{"maodv", "flood", "flood+gossip", "odmrp-gossip"} {
		if err := run([]string{"-protocol", p, "-nodes", "12", "-duration", "60s"}); err != nil {
			t.Fatalf("protocol %s: %v", p, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-protocol", "carrier-pigeon"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-nodes", "1", "-duration", "60s"}); err == nil {
		t.Fatal("single-node config accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-scheduler", "quantum"}); err == nil {
		t.Fatal("unknown scheduler kind accepted")
	}
	if err := run([]string{"-metrics-window", "-1s", "-duration", "60s"}); err == nil {
		t.Fatal("negative metrics window accepted")
	}
}

// TestRunShardedTrace drives trace capture under the sharded scheduler
// — per-lane rings merged in barrier-replay order — end to end.
func TestRunShardedTrace(t *testing.T) {
	err := run([]string{
		"-protocol", "gossip",
		"-nodes", "15",
		"-duration", "60s",
		"-scheduler", "sharded",
		"-workers", "2",
		"-trace", "5",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunShardedScheduler drives the -scheduler/-workers flags end to
// end on a short run.
func TestRunShardedScheduler(t *testing.T) {
	err := run([]string{
		"-protocol", "gossip",
		"-nodes", "15",
		"-duration", "60s",
		"-scheduler", "sharded",
		"-workers", "2",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
