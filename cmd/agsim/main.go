// Command agsim runs a single Anonymous Gossip simulation and prints a
// per-member delivery report.
//
// Usage:
//
//	agsim [flags]
//
// Examples:
//
//	agsim -protocol gossip -nodes 40 -range 75 -speed 0.2 -seed 1
//	agsim -protocol flood+gossip -range 55 -duration 600s -verbose
//
// The -protocol flag accepts any stack registered with the protocol
// registry ("maodv", "maodv+gossip", "flood+gossip", ...) plus the
// legacy spellings ("gossip", "odmrp-gossip"); -help lists them.
//
// -scheduler picks the simulation kernel: serial (default) or sharded,
// the parallel conservative-lookahead engine (-workers goroutines,
// 0 = NumCPU). -queue picks the kernel's event queue (quad, cal, ref).
// Every combination produces bit-identical results for the same seed —
// only wall time changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"anongossip"
	"anongossip/internal/metrics"
	"anongossip/internal/pkt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agsim", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "gossip",
			"protocol stack by registry name: "+strings.Join(anongossip.StackNames(), " | ")+
				" (legacy aliases: gossip = maodv+gossip, odmrp-gossip = odmrp+gossip)")
		nodes    = fs.Int("nodes", 40, "total node count")
		members  = fs.Float64("members", 1.0/3.0, "fraction of nodes in the group")
		txRange  = fs.Float64("range", 75, "transmission range (m)")
		speed    = fs.Float64("speed", 0.2, "maximum node speed (m/s)")
		pause    = fs.Duration("pause", 80*time.Second, "maximum waypoint pause")
		duration = fs.Duration("duration", 600*time.Second, "simulated time")
		seed     = fs.Int64("seed", 1, "random seed")
		schedStr = fs.String("scheduler", "serial",
			"simulation kernel: serial | sharded (bit-identical results; sharded runs lookahead windows on -workers goroutines)")
		workers = fs.Int("workers", 0, "worker goroutines for -scheduler sharded (0 = NumCPU)")
		queue   = fs.String("queue", "quad",
			"kernel event queue: "+anongossip.QueueNames()+" (bit-identical results; only wall time changes)")
		interval   = fs.Duration("gossip-interval", time.Second, "gossip round period")
		panon      = fs.Float64("panon", 0.7, "probability of anonymous vs cached gossip")
		verbose    = fs.Bool("verbose", false, "print per-member rows")
		traceN     = fs.Int("trace", 0, "dump the last N gossip/data packet events")
		metricsWin = fs.Duration("metrics-window", 0,
			"sample channel-utilization windows at this cadence and print the series (0 = off; observe-only, results are bit-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := anongossip.DefaultConfig()
	spec, err := anongossip.StackByName(*protocol)
	if err != nil {
		return err
	}
	cfg.Stack = spec
	cfg.Nodes = *nodes
	cfg.MemberFraction = *members
	cfg.TxRange = *txRange
	cfg.MaxSpeed = *speed
	cfg.MaxPause = *pause
	cfg.Duration = *duration
	if cfg.DataEnd > cfg.Duration {
		// Keep the paper's 40 s cool-down when the run is shortened.
		cfg.DataEnd = cfg.Duration - 40*time.Second
		if cfg.DataStart >= cfg.DataEnd {
			cfg.DataStart = cfg.DataEnd / 4
		}
	}
	cfg.Seed = *seed
	if cfg.Scheduler, err = anongossip.ParseSchedulerKind(*schedStr); err != nil {
		return fmt.Errorf("invalid -scheduler: %w", err)
	}
	cfg.Workers = *workers
	if cfg.Scheduler == anongossip.SchedulerSharded && cfg.Workers == 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.EventQueue, err = anongossip.ParseQueueKind(*queue); err != nil {
		return fmt.Errorf("invalid -queue: %w", err)
	}
	cfg.Gossip.Interval = *interval
	cfg.Gossip.PAnon = *panon
	if *traceN > 0 {
		cfg.TraceCapacity = *traceN
		cfg.TraceKinds = []pkt.Kind{pkt.KindData, pkt.KindGossipReq, pkt.KindGossipRep}
	}
	cfg.MetricsWindow = *metricsWin

	start := time.Now()
	res, err := anongossip.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("protocol     %v\n", res.Stack)
	fmt.Printf("environment  %d nodes, %.0f m range, %.1f m/s max, %v\n",
		cfg.Nodes, cfg.TxRange, cfg.MaxSpeed, cfg.Duration)
	fmt.Printf("workload     %d packets from %v\n", res.Sent, res.Source)
	fmt.Printf("delivery     mean %.1f  min %.0f  max %.0f  (ratio %.1f%%)\n",
		res.Received.Mean, res.Received.Min, res.Received.Max, 100*res.DeliveryRatio())
	if spec.Recovery != "" {
		fmt.Printf("goodput      %.1f%%\n", res.MeanGoodput())
	}
	fmt.Printf("overhead     control %d KB, payload %d KB, %d MAC collisions\n",
		res.ControlBytes/1024, res.PayloadBytes/1024, res.MACCollisions)
	engine := cfg.Scheduler.String() + " kernel"
	if cfg.Scheduler == anongossip.SchedulerSharded {
		engine = fmt.Sprintf("sharded kernel, %d workers", cfg.Workers)
	}
	fmt.Printf("simulator    %d events in %v (%.1fx real time, %s)\n",
		res.Events, wall.Round(time.Millisecond), cfg.Duration.Seconds()/wall.Seconds(), engine)
	fmt.Printf("             processed %d, elided %d (kernel %d, radio %d, mac %d)\n",
		res.EventsProcessed, res.ElidedKernel+res.ElidedRadio+res.ElidedMAC,
		res.ElidedKernel, res.ElidedRadio, res.ElidedMAC)

	if *verbose {
		fmt.Printf("\n%8s %10s %10s %10s\n", "member", "received", "recovered", "goodput")
		members := append([]anongossip.MemberResult(nil), res.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i].Node < members[j].Node })
		for _, m := range members {
			fmt.Printf("%8v %10d %10d %9.1f%%\n", m.Node, m.Received, m.Recovered, m.Goodput)
		}
	}
	if res.Metrics != nil {
		fmt.Printf("\nchannel utilization (%v windows):\n", res.Metrics.WindowLen)
		fmt.Printf("%7s %6s | %5s %5s %5s %5s | %7s %7s %7s %6s %6s\n",
			"t(s)", "busy", "mac", "route", "data", "gossip",
			"rounds", "deliv", "retry", "queue", "air")
		for _, win := range res.Metrics.Windows {
			fmt.Printf("%7.0f %5.1f%% | %4.0f%% %4.0f%% %4.0f%% %4.0f%% | %7d %7d %7d %6d %6d\n",
				win.End.Seconds(), 100*win.BusyFraction(),
				100*win.AirtimeShare(metrics.LayerMAC),
				100*win.AirtimeShare(metrics.LayerRouting),
				100*win.AirtimeShare(metrics.LayerData),
				100*win.AirtimeShare(metrics.LayerGossip),
				win.GossipRounds, win.DataDelivered, win.MACRetries,
				win.QueueDepth, win.InFlight)
		}
		var totalAir time.Duration
		for _, a := range res.Channel.AirtimeByLayer {
			totalAir += a
		}
		fmt.Printf("totals: %d transmissions, %v airtime (%.1f%% of the run)\n",
			res.Channel.TotalTx(), totalAir.Round(time.Millisecond),
			100*float64(totalAir)/float64(cfg.Duration))
	}
	if res.Trace != nil {
		fmt.Printf("\ntrace: %s\n", res.Trace.Summary())
		if err := res.Trace.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
