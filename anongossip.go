// Package anongossip reproduces "Anonymous Gossip: Improving Multicast
// Reliability in Mobile Ad-Hoc Networks" (Chandra, Ramasubramanian,
// Birman — ICDCS 2001) as a self-contained Go library.
//
// Anonymous Gossip (AG) is a reliability layer for multicast in mobile
// ad-hoc networks: packets are first multicast over an unreliable
// multicast routing protocol (MAODV here, as in the paper), while a
// concurrent gossip phase recovers lost packets from other group members
// — without any member ever needing to know the group membership.
//
// The package is a facade over the full simulation stack in internal/:
// a deterministic discrete-event kernel, random-waypoint mobility, a
// unit-disc radio with collisions, an 802.11-style MAC, AODV unicast
// routing, MAODV multicast routing, the Anonymous Gossip engine, and a
// flooding baseline. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
//
// # Quick start
//
//	cfg := anongossip.DefaultConfig() // the paper's §5.1 environment
//	cfg.Seed = 42
//	res, err := anongossip.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("delivery %.1f%%, goodput %.1f%%\n",
//		100*res.DeliveryRatio(), res.MeanGoodput())
//
// # Composing stacks
//
// The protocol stack under test is composed from two axes — a multicast
// routing protocol and an optional loss-recovery layer — resolved
// through a registry (Stacks lists what is available):
//
//	cfg.Stack = anongossip.StackSpec{Routing: "flood", Recovery: "gossip"}
//
// or by name, including the legacy spellings:
//
//	cfg.Stack, err = anongossip.StackByName("odmrp+gossip")
//
// The legacy Protocol constants (ProtocolMAODV, ProtocolGossip, ...)
// remain as thin aliases that resolve through the same registry; switch
// cfg.Protocol to ProtocolMAODV for the bare-multicast baseline the
// paper compares against, or ProtocolFlood for the related-work
// flooding baseline.
package anongossip

import (
	"io"
	"time"

	"anongossip/internal/radio"
	"anongossip/internal/scenario"
	"anongossip/internal/sim"
	"anongossip/internal/stack"
)

// Protocol selects the multicast stack under test.
type Protocol = scenario.Protocol

// StackSpec composes a protocol stack from the two registry axes: a
// routing protocol ("maodv", "odmrp", "flood") and an optional recovery
// layer ("gossip"). Assign one to Config.Stack; it takes precedence
// over the legacy Config.Protocol field.
type StackSpec = stack.Spec

// Stacks lists every registered protocol stack (the cross product of
// the routing and recovery axes) in deterministic order.
func Stacks() []StackSpec { return stack.Stacks() }

// StackNames lists the canonical name of every registered stack.
func StackNames() []string { return stack.Names() }

// StackByName resolves a stack name — canonical ("flood+gossip") or a
// legacy alias ("gossip", "odmrp-gossip") — against the registry. The
// error of an unknown name lists every registered stack.
func StackByName(name string) (StackSpec, error) { return stack.ByName(name) }

// Protocols under test (the paper's two curves plus the flooding
// baseline from its related work).
const (
	// ProtocolMAODV runs bare MAODV (the paper's "Maodv" curves).
	ProtocolMAODV = scenario.ProtocolMAODV
	// ProtocolGossip runs MAODV plus Anonymous Gossip (the paper's
	// "Gossip" curves).
	ProtocolGossip = scenario.ProtocolGossip
	// ProtocolFlood runs plain flooding (related work [13]).
	ProtocolFlood = scenario.ProtocolFlood
	// ProtocolODMRP runs the bare mesh-based multicast protocol
	// (paper reference [10]).
	ProtocolODMRP = scenario.ProtocolODMRP
	// ProtocolODMRPGossip runs ODMRP plus Anonymous Gossip — the
	// paper's future-work claim (§5.5, §7).
	ProtocolODMRPGossip = scenario.ProtocolODMRPGossip
)

// Config describes one simulation run; zero value is not usable — start
// from DefaultConfig.
type Config = scenario.Config

// Result is the outcome of one run.
type Result = scenario.Result

// MemberResult is one receiver's outcome within a Result.
type MemberResult = scenario.MemberResult

// Aggregate summarises one protocol at one sweep point across seeds.
type Aggregate = scenario.Aggregate

// ComparisonRow pairs Gossip and MAODV aggregates at one sweep point.
type ComparisonRow = scenario.ComparisonRow

// DefaultConfig returns the paper's §5.1 environment: 200 m × 200 m,
// 40 nodes (a third of them group members), 75 m transmission range,
// max speed 0.2 m/s with pauses uniform in [0, 80 s], 2 Mbps 802.11,
// and a CBR source sending 2201 × 64-byte packets (200 ms period,
// t = 120 s … 560 s) in a 600 s run.
func DefaultConfig() Config { return scenario.DefaultConfig() }

// Run executes one simulation and returns its collected results.
func Run(cfg Config) (*Result, error) { return scenario.Run(cfg) }

// RunSeeds executes cfg once per seed in parallel (the paper repeats
// every experiment with 10 random seeds).
func RunSeeds(cfg Config, seeds []int64, parallel int) ([]*Result, error) {
	return scenario.RunSeeds(cfg, seeds, parallel)
}

// AggregateResults merges per-seed results into a single summary.
func AggregateResults(results []*Result) Aggregate {
	return scenario.AggregateResults(results)
}

// RunComparison sweeps xs, running the Gossip and MAODV protocols at
// each point, mirroring the paper's paired curves. apply customises the
// base config for an x value; progress may be nil.
func RunComparison(base Config, xs []float64, apply func(Config, float64) Config,
	seeds []int64, parallel int, progress io.Writer) ([]ComparisonRow, error) {
	return scenario.RunComparison(base, xs, apply, seeds, parallel, progress)
}

// Seeds returns the canonical seed list {1..n}.
func Seeds(n int) []int64 { return scenario.Seeds(n) }

// IndexKind selects the radio's neighbour lookup strategy (see
// Config.RadioIndex). The grid keeps radio events O(local degree); the
// brute-force scan is the O(N) reference. Both produce bit-identical
// results for the same seed.
type IndexKind = radio.IndexKind

// Neighbour index strategies.
const (
	// IndexGrid (the default) backs the medium with a spatial hash.
	IndexGrid = radio.IndexGrid
	// IndexBrute scans every transceiver, kept for differential testing.
	IndexBrute = radio.IndexBrute
)

// ReceptionModel selects the radio's reception bookkeeping (see
// Config.RxModel). The batched model schedules one finish event per
// transmission over a pooled per-frame receiver table; the reference
// model schedules one event per receiver and is kept for differential
// testing. Both produce bit-identical results for the same seed.
type ReceptionModel = radio.ReceptionModel

// Reception models.
const (
	// ModelBatch (the default) batches each frame's receptions into a
	// single finish event.
	ModelBatch = radio.ModelBatch
	// ModelRef is the original per-receiver reception path.
	ModelRef = radio.ModelRef
)

// QueueKind selects the simulation kernel's event-queue implementation
// (see Config.EventQueue). The pooled 4-ary heap is allocation-free on
// the push/pop path; the calendar/bucket queue turns the clustered
// timestamps of 10k+-node runs into O(1) operations; the
// container/heap reference is kept for differential testing. All kinds
// produce bit-identical results for the same seed.
type QueueKind = sim.QueueKind

// Event-queue implementations.
const (
	// QueueQuad (the default) is the pooled, indexed 4-ary min-heap.
	QueueQuad = sim.QueueQuad
	// QueueCal is the self-resizing calendar/bucket queue.
	QueueCal = sim.QueueCal
	// QueueRef is the original container/heap binary heap.
	QueueRef = sim.QueueRef
)

// QueueNames lists the registered event-queue kinds as ParseQueueKind
// spells them.
func QueueNames() string { return sim.QueueNames() }

// ParseQueueKind resolves a -queue flag value ("quad", "cal", "ref")
// to a QueueKind; the error of an unknown name enumerates the
// registered kinds.
func ParseQueueKind(name string) (QueueKind, error) { return sim.ParseQueueKind(name) }

// SchedulerKind selects the simulation kernel's execution engine (see
// Config.Scheduler). The serial kernel executes events one at a time;
// the sharded kernel partitions nodes into spatial regions and
// executes conservative lookahead windows on worker goroutines (see
// Config.Workers), with a barrier replay keeping the event order — and
// therefore every result bit — identical to serial.
type SchedulerKind = sim.SchedulerKind

// Scheduler kinds.
const (
	// SchedulerSerial (the default) is the single-threaded kernel.
	SchedulerSerial = sim.SchedulerSerial
	// SchedulerSharded is the parallel conservative-lookahead kernel.
	SchedulerSharded = sim.SchedulerSharded
)

// SchedulerNames lists the registered scheduler kinds as
// ParseSchedulerKind spells them.
func SchedulerNames() string { return sim.SchedulerNames() }

// ParseSchedulerKind resolves a -scheduler flag value ("serial",
// "sharded") to a SchedulerKind; the error of an unknown name
// enumerates the registered kinds.
func ParseSchedulerKind(name string) (SchedulerKind, error) {
	return sim.ParseSchedulerKind(name)
}

// LargeScaleXs returns the node counts of the large-scale experiment
// family (100..1000 nodes at constant density; see EXPERIMENTS.md §L).
func LargeScaleXs() []float64 { return scenario.LargeScaleXs() }

// ApplyLargeScale reshapes a config to one large-scale sweep point:
// the terrain grows with the node count so density — and hence mean
// degree — stays at the paper's 40-node baseline at a fixed 75 m range.
func ApplyLargeScale(c Config, nodes float64) Config {
	return scenario.ApplyLargeScale(c, nodes)
}

// LargeScaleConfig returns the ready-to-run large-scale configuration
// at one node count.
func LargeScaleConfig(nodes int) Config { return scenario.LargeScaleConfig(nodes) }

// ShortenedData rescales a run to a shorter duration while keeping the
// paper's warm-up and cool-down proportions; benchmarks and CI use it
// to keep large-scale runs affordable.
func ShortenedData(c Config, duration time.Duration) Config {
	return scenario.ShortenedData(c, duration)
}

// DenseXs returns the target mean degrees of the dense-traffic
// experiment family (20..60 neighbours with multiple concurrent
// senders; see EXPERIMENTS.md §D).
func DenseXs() []float64 { return scenario.DenseXs() }

// ApplyDense reshapes a config to one dense-traffic sweep point: the
// field is packed so the expected mean degree at the paper's 75 m range
// equals degree for the config's node count.
func ApplyDense(c Config, degree float64) Config {
	return scenario.ApplyDense(c, degree)
}

// DenseConfig returns the ready-to-run dense-traffic configuration at
// one node count and target mean degree, with multiple concurrent CBR
// sources.
func DenseConfig(nodes int, degree float64) Config {
	return scenario.DenseConfig(nodes, degree)
}
