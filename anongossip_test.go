package anongossip_test

import (
	"testing"
	"time"

	"anongossip"
)

// quickConfig trims the paper scenario for test speed.
func quickConfig() anongossip.Config {
	cfg := anongossip.DefaultConfig()
	cfg.Nodes = 20
	cfg.TxRange = 70
	cfg.Duration = 90 * time.Second
	cfg.DataStart = 30 * time.Second
	cfg.DataEnd = 80 * time.Second
	return cfg
}

func TestFacadeRun(t *testing.T) {
	cfg := quickConfig()
	cfg.Seed = 5
	res, err := anongossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Received.Mean <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if r := res.DeliveryRatio(); r <= 0 || r > 1 {
		t.Fatalf("delivery ratio = %v", r)
	}
}

func TestFacadeProtocols(t *testing.T) {
	for _, p := range []anongossip.Protocol{
		anongossip.ProtocolGossip, anongossip.ProtocolMAODV, anongossip.ProtocolFlood,
	} {
		cfg := quickConfig()
		cfg.Protocol = p
		if _, err := anongossip.Run(cfg); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

// TestFacadeSharded runs the same config on both exported scheduler
// kinds: the sharded kernel must reproduce the serial result exactly
// through the public API.
func TestFacadeSharded(t *testing.T) {
	cfg := quickConfig()
	cfg.Seed = 7
	serial, err := anongossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler = anongossip.SchedulerSharded
	cfg.Workers = 2
	sharded, err := anongossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Events != serial.Events || sharded.Received.Mean != serial.Received.Mean ||
		sharded.Sent != serial.Sent {
		t.Fatalf("sharded kernel diverged from serial: %d/%v/%d vs %d/%v/%d",
			sharded.Events, sharded.Received.Mean, sharded.Sent,
			serial.Events, serial.Received.Mean, serial.Sent)
	}
}

func TestFacadeSweep(t *testing.T) {
	rows, err := anongossip.RunComparison(quickConfig(), []float64{70},
		func(c anongossip.Config, x float64) anongossip.Config {
			c.TxRange = x
			return c
		}, anongossip.Seeds(1), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].Gossip.Received.Mean < rows[0].Maodv.Received.Mean {
		t.Logf("note: gossip below maodv at this tiny scale (%v vs %v)",
			rows[0].Gossip.Received.Mean, rows[0].Maodv.Received.Mean)
	}
}

func TestSeeds(t *testing.T) {
	s := anongossip.Seeds(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Seeds(3) = %v", s)
	}
}

func TestFacadeStackRegistry(t *testing.T) {
	stacks := anongossip.Stacks()
	if len(stacks) != 6 {
		t.Fatalf("registered stacks = %v, want 6", stacks)
	}
	names := anongossip.StackNames()
	if len(names) != len(stacks) {
		t.Fatalf("StackNames %v disagrees with Stacks %v", names, stacks)
	}

	spec, err := anongossip.StackByName("flood+gossip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Stack = spec
	res, err := anongossip.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stack.String() != "flood+gossip" {
		t.Fatalf("result ran stack %v, want flood+gossip", res.Stack)
	}

	if _, err := anongossip.StackByName("smoke-signals"); err == nil {
		t.Fatal("unknown stack accepted")
	}
}
