// Benchmark harness: one benchmark per paper table/figure plus the
// ablations listed in DESIGN.md §3. Each benchmark executes the full
// experiment sweep once per iteration and prints the same rows the
// paper's figure plots, so
//
//	go test -bench=. -benchmem | tee bench_output.txt
//
// regenerates every result. Benchmarks default to 2 seeds per point to
// keep the suite in the minutes range; set AG_BENCH_FULL=1 for the
// paper's 10-seed sweeps.
package anongossip_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"anongossip"
	"anongossip/internal/gossip"
	"anongossip/internal/radio"
	"anongossip/internal/scenario"
	"anongossip/internal/sim"
)

func benchSeeds() []int64 {
	if os.Getenv("AG_BENCH_FULL") != "" {
		return scenario.Seeds(10)
	}
	return scenario.Seeds(2)
}

// runFigure executes a Gossip-vs-MAODV sweep, prints its rows, and
// reports the mid-sweep means as benchmark metrics.
func runFigure(b *testing.B, name, xName string, xs []float64,
	apply func(scenario.Config, float64) scenario.Config) {
	b.Helper()
	base := scenario.DefaultConfig()
	seeds := benchSeeds()
	for i := 0; i < b.N; i++ {
		rows, err := scenario.RunComparison(base, xs, apply, seeds, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n--- %s (%d seeds, %d pkts/run) ---\n", name, len(seeds), base.ExpectedPackets())
		fmt.Printf("%-10s | %26s | %26s\n", xName, "Gossip mean [min,max]", "Maodv mean [min,max]")
		for _, r := range rows {
			fmt.Printf("%-10.1f | %8.1f [%6.0f,%6.0f] | %8.1f [%6.0f,%6.0f]\n",
				r.X,
				r.Gossip.Received.Mean, r.Gossip.Received.Min, r.Gossip.Received.Max,
				r.Maodv.Received.Mean, r.Maodv.Received.Min, r.Maodv.Received.Max)
		}
		mid := rows[len(rows)/2]
		b.ReportMetric(mid.Gossip.Received.Mean, "gossip_pkts")
		b.ReportMetric(mid.Maodv.Received.Mean, "maodv_pkts")
		b.ReportMetric(mid.Gossip.Received.Max-mid.Gossip.Received.Min, "gossip_spread")
		b.ReportMetric(mid.Maodv.Received.Max-mid.Maodv.Received.Min, "maodv_spread")
	}
}

// BenchmarkFig2RangeSweepSlowSpeed reproduces paper Fig. 2: packet
// delivery vs transmission range at max speed 0.2 m/s.
func BenchmarkFig2RangeSweepSlowSpeed(b *testing.B) {
	runFigure(b, "Fig 2: delivery vs range, speed 0.2 m/s", "range(m)",
		scenario.Fig2Xs(), scenario.ApplyFig2)
}

// BenchmarkFig3RangeSweepFastSpeed reproduces paper Fig. 3: packet
// delivery vs transmission range at max speed 2 m/s.
func BenchmarkFig3RangeSweepFastSpeed(b *testing.B) {
	runFigure(b, "Fig 3: delivery vs range, speed 2 m/s", "range(m)",
		scenario.Fig3Xs(), scenario.ApplyFig3)
}

// BenchmarkFig4SpeedSweepLow reproduces paper Fig. 4: packet delivery vs
// maximum speed 0.1..1.0 m/s at 75 m range.
func BenchmarkFig4SpeedSweepLow(b *testing.B) {
	runFigure(b, "Fig 4: delivery vs speed 0.1-1.0 m/s", "speed(m/s)",
		scenario.Fig4Xs(), scenario.ApplyFig4And5)
}

// BenchmarkFig5SpeedSweepHigh reproduces paper Fig. 5: packet delivery
// vs maximum speed 1..10 m/s at 75 m range.
func BenchmarkFig5SpeedSweepHigh(b *testing.B) {
	runFigure(b, "Fig 5: delivery vs speed 1-10 m/s", "speed(m/s)",
		scenario.Fig5Xs(), scenario.ApplyFig4And5)
}

// BenchmarkFig6NodeSweepConstantDegree reproduces paper Fig. 6: packet
// delivery vs node count with range scaled to hold mean degree constant.
func BenchmarkFig6NodeSweepConstantDegree(b *testing.B) {
	runFigure(b, "Fig 6: delivery vs nodes, constant degree", "nodes",
		scenario.Fig6Xs(), scenario.ApplyFig6)
}

// BenchmarkFig7NodeSweepFixedRange reproduces paper Fig. 7: packet
// delivery vs node count at a fixed 55 m range.
func BenchmarkFig7NodeSweepFixedRange(b *testing.B) {
	runFigure(b, "Fig 7: delivery vs nodes, 55 m range", "nodes",
		scenario.Fig7Xs(), scenario.ApplyFig7)
}

// BenchmarkFig8Goodput reproduces paper Fig. 8: per-member goodput for
// the four (range, speed) cases.
func BenchmarkFig8Goodput(b *testing.B) {
	base := scenario.DefaultConfig()
	seeds := benchSeeds()
	for i := 0; i < b.N; i++ {
		fmt.Printf("\n--- Fig 8: goodput at group members (%d seeds) ---\n", len(seeds))
		fmt.Printf("%-16s | %9s %8s %8s\n", "case", "mean", "min", "max")
		var last scenario.GoodputRow
		for _, gc := range scenario.Fig8Cases() {
			row, err := scenario.RunGoodput(base, gc, seeds, 0)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%4.0fm, %3.1f m/s   | %8.2f%% %7.2f%% %7.2f%%\n",
				gc.TxRange, gc.MaxSpeed, row.Summary.Mean, row.Summary.Min, row.Summary.Max)
			last = row
		}
		b.ReportMetric(last.Summary.Mean, "goodput_%")
	}
}

// --- ablations (DESIGN.md A1-A5) ---

// ablationConfig is a mid-loss operating point where gossip recovery
// does real work: 55 m range, 1 m/s.
func ablationConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.TxRange = 55
	cfg.MaxSpeed = 1
	return cfg
}

func runVariants(b *testing.B, title string, names []string, cfgs []scenario.Config) {
	b.Helper()
	seeds := benchSeeds()
	for i := 0; i < b.N; i++ {
		fmt.Printf("\n--- %s (%d seeds) ---\n", title, len(seeds))
		fmt.Printf("%-28s | %10s %8s %8s | %8s\n", "variant", "mean", "min", "max", "goodput")
		for k, cfg := range cfgs {
			results, err := scenario.RunSeeds(cfg, seeds, 0)
			if err != nil {
				b.Fatal(err)
			}
			agg := scenario.AggregateResults(results)
			fmt.Printf("%-28s | %10.1f %8.0f %8.0f | %7.1f%%\n",
				names[k], agg.Received.Mean, agg.Received.Min, agg.Received.Max, agg.Goodput)
			b.ReportMetric(agg.Received.Mean, fmt.Sprintf("v%d_pkts", k))
		}
	}
}

// BenchmarkAblationLocality compares the nearest-member-weighted walk
// (paper §4.2) against an unweighted walk (A1).
func BenchmarkAblationLocality(b *testing.B) {
	with := ablationConfig()
	without := ablationConfig()
	without.Gossip.LocalityBias = false
	runVariants(b, "A1: locality of gossip",
		[]string{"nearest-member weighting", "uniform next-hop walk"},
		[]scenario.Config{with, without})
}

// BenchmarkAblationMemberCache compares the paper's mixed anonymous +
// cached gossip against pure anonymous gossip (A2).
func BenchmarkAblationMemberCache(b *testing.B) {
	mixed := ablationConfig()
	anonOnly := ablationConfig()
	anonOnly.Gossip.PAnon = 1
	runVariants(b, "A2: cached gossip",
		[]string{"panon=0.7 (cached mix)", "panon=1.0 (walks only)"},
		[]scenario.Config{mixed, anonOnly})
}

// BenchmarkAblationGossipRate sweeps the gossip interval (paper §5.5's
// rate-tuning guidance, A3).
func BenchmarkAblationGossipRate(b *testing.B) {
	intervals := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second}
	names := make([]string, len(intervals))
	cfgs := make([]scenario.Config, len(intervals))
	for i, iv := range intervals {
		cfgs[i] = ablationConfig()
		cfgs[i].Gossip.Interval = iv
		names[i] = fmt.Sprintf("interval %v", iv)
	}
	runVariants(b, "A3: gossip rate", names, cfgs)
}

// BenchmarkAblationHistorySize sweeps the history table capacity (paper
// §5.5 names it a key parameter, A4).
func BenchmarkAblationHistorySize(b *testing.B) {
	sizes := []int{25, 50, 100, 200, 400}
	names := make([]string, len(sizes))
	cfgs := make([]scenario.Config, len(sizes))
	for i, s := range sizes {
		cfgs[i] = ablationConfig()
		cfgs[i].Gossip.HistoryCap = s
		names[i] = fmt.Sprintf("history %d msgs", s)
	}
	runVariants(b, "A4: history table size", names, cfgs)
}

// BenchmarkAblationFloodingBaseline compares MAODV, MAODV+AG and plain
// flooding (related work [13], A5).
func BenchmarkAblationFloodingBaseline(b *testing.B) {
	gossipCfg := ablationConfig()
	maodvCfg := ablationConfig()
	maodvCfg.Protocol = scenario.ProtocolMAODV
	floodCfg := ablationConfig()
	floodCfg.Protocol = scenario.ProtocolFlood
	runVariants(b, "A5: protocol baselines",
		[]string{"MAODV+AG", "MAODV", "Flooding"},
		[]scenario.Config{gossipCfg, maodvCfg, floodCfg})
}

// BenchmarkAblationPushPull compares the paper's pull exchange against
// the push alternative its §4.4 rejects (A6). Pull should show higher
// goodput: only solicited packets flow.
func BenchmarkAblationPushPull(b *testing.B) {
	pull := ablationConfig()
	push := ablationConfig()
	push.Gossip.Mode = gossip.ModePush
	runVariants(b, "A6: push vs pull exchange",
		[]string{"pull (paper)", "push"},
		[]scenario.Config{pull, push})
}

// BenchmarkAblationRTSCTS toggles the MAC's RTS/CTS handshake (A7): the
// paper ran 802.11 without it for 64-byte payloads; this quantifies what
// the handshake would change at the congested 55 m operating point.
func BenchmarkAblationRTSCTS(b *testing.B) {
	off := ablationConfig()
	on := ablationConfig()
	on.MAC.RTSThreshold = 0
	runVariants(b, "A7: RTS/CTS handshake",
		[]string{"no RTS/CTS (paper)", "RTS/CTS for all unicast"},
		[]scenario.Config{off, on})
}

// BenchmarkSingleRun measures the cost of one paper-baseline simulation
// (simulator performance, not a paper figure).
func BenchmarkSingleRun(b *testing.B) {
	cfg := anongossip.DefaultConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := anongossip.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
	}
}

// --- large-scale family (beyond the paper; see EXPERIMENTS.md §L) ---

// benchLargeScale runs one large-scale simulation per iteration with
// the chosen neighbour index, event queue and reception model. The
// grid/brute, quad/ref and batch/ref pairs at the same node count
// execute bit-identical event schedules (asserted by the scenario
// tests), so their ns/op differences isolate the index's, the queue's
// and the reception path's costs: simulator performance, not a
// protocol result.
func benchLargeScale(b *testing.B, nodes int, kind radio.IndexKind, queue sim.QueueKind,
	model radio.ReceptionModel, duration time.Duration) {
	b.Helper()
	cfg := scenario.ShortenedData(scenario.LargeScaleConfig(nodes), duration)
	cfg.RadioIndex = kind
	cfg.EventQueue = queue
	cfg.RxModel = model
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(100*res.DeliveryRatio(), "delivery_%")
		b.ReportMetric(res.MeanDegree, "degree")
	}
}

// BenchmarkLargeScale250Grid vs BenchmarkLargeScale250Brute is the
// headline speedup comparison at the refactor's acceptance point
// (≥250 nodes); the 500- and 1000-node pairs show the gap widening as
// the brute-force O(N) scans fall further behind the grid's O(degree)
// queries.
func BenchmarkLargeScale250Grid(b *testing.B) {
	benchLargeScale(b, 250, radio.IndexGrid, sim.QueueQuad, radio.ModelBatch, 60*time.Second)
}
func BenchmarkLargeScale250Brute(b *testing.B) {
	benchLargeScale(b, 250, radio.IndexBrute, sim.QueueQuad, radio.ModelBatch, 60*time.Second)
}
func BenchmarkLargeScale500Grid(b *testing.B) {
	benchLargeScale(b, 500, radio.IndexGrid, sim.QueueQuad, radio.ModelBatch, 45*time.Second)
}
func BenchmarkLargeScale500Brute(b *testing.B) {
	benchLargeScale(b, 500, radio.IndexBrute, sim.QueueQuad, radio.ModelBatch, 45*time.Second)
}
func BenchmarkLargeScale1000Grid(b *testing.B) {
	benchLargeScale(b, 1000, radio.IndexGrid, sim.QueueQuad, radio.ModelBatch, 30*time.Second)
}
func BenchmarkLargeScale1000Brute(b *testing.B) {
	benchLargeScale(b, 1000, radio.IndexBrute, sim.QueueQuad, radio.ModelBatch, 30*time.Second)
}

// The QueueRef variants rerun the grid benchmarks with the
// container/heap event queue: the gap against the matching Grid
// benchmark above isolates the event-queue refactor's end-to-end win
// on bit-identical workloads.
func BenchmarkLargeScale250GridQueueRef(b *testing.B) {
	benchLargeScale(b, 250, radio.IndexGrid, sim.QueueRef, radio.ModelBatch, 60*time.Second)
}
func BenchmarkLargeScale500GridQueueRef(b *testing.B) {
	benchLargeScale(b, 500, radio.IndexGrid, sim.QueueRef, radio.ModelBatch, 45*time.Second)
}
func BenchmarkLargeScale1000GridQueueRef(b *testing.B) {
	benchLargeScale(b, 1000, radio.IndexGrid, sim.QueueRef, radio.ModelBatch, 30*time.Second)
}

// The 10k-node pair is the PR 7 acceptance point (DESIGN.md §8,
// EXPERIMENTS.md §Q, BENCH_PR7.json): the QueueCal variant reruns the
// same bit-identical workload on the calendar/bucket queue. Each
// iteration simulates ~66M events, so run these with -benchtime=1x;
// they exist for explicit before/after profiling, not for CI timing.
func BenchmarkLargeScale10000Grid(b *testing.B) {
	benchLargeScale(b, 10000, radio.IndexGrid, sim.QueueQuad, radio.ModelBatch, 10*time.Second)
}
func BenchmarkLargeScale10000GridQueueCal(b *testing.B) {
	benchLargeScale(b, 10000, radio.IndexGrid, sim.QueueCal, radio.ModelBatch, 10*time.Second)
}

// The RxRef variants rerun the grid benchmarks with the per-receiver
// reference reception path: the gap against the matching Grid benchmark
// isolates the batched reception refactor's end-to-end win on
// bit-identical workloads.
func BenchmarkLargeScale250GridRxRef(b *testing.B) {
	benchLargeScale(b, 250, radio.IndexGrid, sim.QueueQuad, radio.ModelRef, 60*time.Second)
}
func BenchmarkLargeScale1000GridRxRef(b *testing.B) {
	benchLargeScale(b, 1000, radio.IndexGrid, sim.QueueQuad, radio.ModelRef, 30*time.Second)
}

// --- sharded scheduler family (see DESIGN.md §7) ---

// benchSharded reruns the large-scale grid benchmark on the sharded
// kernel. Every worker count executes the schedule bit-identically to
// the serial kernel (asserted by the scenario scheduler tests), so the
// ratio against the matching Grid benchmark above isolates the parallel
// kernel's overhead (1 worker) and scaling (more workers than one only
// pays off with more cores than one — compare GOMAXPROCS before reading
// the multi-worker rows).
func benchSharded(b *testing.B, nodes, workers int, duration time.Duration) {
	b.Helper()
	cfg := scenario.ShortenedData(scenario.LargeScaleConfig(nodes), duration)
	cfg.Scheduler = sim.SchedulerSharded
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(100*res.DeliveryRatio(), "delivery_%")
	}
}

func BenchmarkLargeScale1000Sharded1(b *testing.B) { benchSharded(b, 1000, 1, 30*time.Second) }
func BenchmarkLargeScale1000Sharded2(b *testing.B) { benchSharded(b, 1000, 2, 30*time.Second) }
func BenchmarkLargeScale1000Sharded4(b *testing.B) { benchSharded(b, 1000, 4, 30*time.Second) }
func BenchmarkLargeScale1000Sharded8(b *testing.B) { benchSharded(b, 1000, 8, 30*time.Second) }

// --- dense-traffic family (beyond the paper; see EXPERIMENTS.md §D) ---

// benchDense runs one dense-traffic simulation per iteration: tens of
// neighbours per node and five concurrent senders put many frames in
// every neighbourhood, the regime where reception bookkeeping
// dominates. Batch/RxRef pairs execute bit-identical schedules
// (TestDenseRxModelBitIdentical), so the ratio isolates the reception
// path.
func benchDense(b *testing.B, nodes int, degree float64, model radio.ReceptionModel, duration time.Duration) {
	b.Helper()
	cfg := scenario.ShortenedData(scenario.DenseConfig(nodes, degree), duration)
	cfg.RxModel = model
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events")
		b.ReportMetric(100*res.DeliveryRatio(), "delivery_%")
		b.ReportMetric(res.MeanDegree, "degree")
	}
}

func BenchmarkDense250Deg40(b *testing.B) {
	benchDense(b, 250, 40, radio.ModelBatch, 30*time.Second)
}
func BenchmarkDense250Deg40RxRef(b *testing.B) {
	benchDense(b, 250, 40, radio.ModelRef, 30*time.Second)
}
func BenchmarkDense500Deg60(b *testing.B) {
	benchDense(b, 500, 60, radio.ModelBatch, 20*time.Second)
}
func BenchmarkDense500Deg60RxRef(b *testing.B) {
	benchDense(b, 500, 60, radio.ModelRef, 20*time.Second)
}

// BenchmarkLargeScaleDelivery prints the delivery table for the family
// (Gossip vs MAODV), the scale analogue of the paper's Fig. 6. The
// default covers 100 and 250 nodes at a shortened duration;
// AG_BENCH_FULL=1 extends to 500 and 1000.
func BenchmarkLargeScaleDelivery(b *testing.B) {
	xs := []float64{100, 250}
	duration := 120 * time.Second
	if os.Getenv("AG_BENCH_FULL") != "" {
		xs = scenario.LargeScaleXs()
		duration = 300 * time.Second
	}
	base := scenario.ShortenedData(scenario.DefaultConfig(), duration)
	seeds := scenario.Seeds(1)
	for i := 0; i < b.N; i++ {
		rows, err := scenario.RunComparison(base, xs, scenario.ApplyLargeScale, seeds, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n--- Large scale: delivery vs nodes, constant density (%v per run) ---\n", duration)
		fmt.Printf("%-10s | %26s | %26s\n", "nodes", "Gossip mean [min,max]", "Maodv mean [min,max]")
		for _, r := range rows {
			fmt.Printf("%-10.0f | %8.1f [%6.0f,%6.0f] | %8.1f [%6.0f,%6.0f]\n",
				r.X,
				r.Gossip.Received.Mean, r.Gossip.Received.Min, r.Gossip.Received.Max,
				r.Maodv.Received.Mean, r.Maodv.Received.Min, r.Maodv.Received.Max)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Gossip.Received.Mean, "gossip_pkts")
		b.ReportMetric(last.Maodv.Received.Mean, "maodv_pkts")
	}
}
