// Tuning: paper §5.5 advises that "the gossip rate should be tuned so
// that the network does not get congested and the goodput is nearly 100
// percent". This example sweeps the gossip interval and reports the
// delivery/goodput trade-off, the experiment a deployer would run before
// choosing parameters.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"anongossip"
)

func main() {
	base := anongossip.DefaultConfig()
	base.TxRange = 55 // lossier regime where gossip works hard
	base.MaxSpeed = 1

	fmt.Println("Gossip-rate tuning: 40 nodes, 55 m range, 1 m/s")
	fmt.Printf("%10s %12s %12s %12s\n", "interval", "delivery", "goodput", "ctl-bytes")

	for _, interval := range []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second,
	} {
		cfg := base
		cfg.Gossip.Interval = interval
		results, err := anongossip.RunSeeds(cfg, anongossip.Seeds(2), 0)
		if err != nil {
			log.Fatal(err)
		}
		agg := anongossip.AggregateResults(results)
		var ctl uint64
		for _, r := range results {
			ctl += r.ControlBytes
		}
		fmt.Printf("%10v %11.1f%% %11.1f%% %10dKB\n",
			interval, 100*agg.DeliveryRatio(), agg.Goodput, ctl/uint64(len(results))/1024)
	}
	fmt.Println("\nFaster gossip recovers more but spends more control bandwidth;")
	fmt.Println("the paper's 1 s interval sits near the knee.")
}
