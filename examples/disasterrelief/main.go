// Disaster relief: the paper's motivating scenario of field operations.
// A large rescue team (half the nodes) moves slowly through a staging
// area and must share situation updates reliably. The example contrasts
// bare MAODV with MAODV+AG on the same seeds, reproducing the paper's
// headline comparison on a realistic workload.
//
//	go run ./examples/disasterrelief
package main

import (
	"fmt"
	"log"
	"time"

	"anongossip"
)

func main() {
	cfg := anongossip.DefaultConfig()
	cfg.Nodes = 50
	cfg.MemberFraction = 0.5 // large coordination group
	cfg.TxRange = 60         // handheld radios
	cfg.MaxSpeed = 0.5       // rescuers on foot
	cfg.MaxPause = 60 * time.Second
	cfg.Duration = 400 * time.Second
	cfg.DataStart = 60 * time.Second
	cfg.DataEnd = 360 * time.Second
	cfg.DataInterval = 250 * time.Millisecond // situation updates

	seeds := anongossip.Seeds(3)

	fmt.Println("Disaster-relief scenario: 50 nodes, 25-member group, 0.5 m/s")
	fmt.Printf("%-22s %10s %10s %10s %10s\n", "protocol", "mean", "min", "max", "ratio")
	for _, p := range []anongossip.Protocol{anongossip.ProtocolMAODV, anongossip.ProtocolGossip} {
		c := cfg
		c.Protocol = p
		results, err := anongossip.RunSeeds(c, seeds, 0)
		if err != nil {
			log.Fatal(err)
		}
		agg := anongossip.AggregateResults(results)
		fmt.Printf("%-22s %10.1f %10.0f %10.0f %9.1f%%\n",
			p, agg.Received.Mean, agg.Received.Min, agg.Received.Max,
			100*agg.DeliveryRatio())
	}
	fmt.Println("\nAG recovers tree losses: the minimum member is pulled up and")
	fmt.Println("the spread between the best and worst rescuer shrinks.")
}
