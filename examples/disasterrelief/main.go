// Disaster relief: the paper's motivating scenario of field operations.
// A large rescue team (half the nodes) moves slowly through a staging
// area and must share situation updates reliably. The example runs
// every stack registered with the protocol registry on the same seeds —
// the paper's headline MAODV-vs-MAODV+AG comparison plus the mesh and
// flooding axes, including flood+gossip, a combination composed purely
// from registry data.
//
//	go run ./examples/disasterrelief
package main

import (
	"fmt"
	"log"
	"time"

	"anongossip"
)

func main() {
	cfg := anongossip.DefaultConfig()
	cfg.Nodes = 50
	cfg.MemberFraction = 0.5 // large coordination group
	cfg.TxRange = 60         // handheld radios
	cfg.MaxSpeed = 0.5       // rescuers on foot
	cfg.MaxPause = 60 * time.Second
	cfg.Duration = 400 * time.Second
	cfg.DataStart = 60 * time.Second
	cfg.DataEnd = 360 * time.Second
	cfg.DataInterval = 250 * time.Millisecond // situation updates

	seeds := anongossip.Seeds(3)

	fmt.Println("Disaster-relief scenario: 50 nodes, 25-member group, 0.5 m/s")
	fmt.Printf("%-22s %10s %10s %10s %10s\n", "stack", "mean", "min", "max", "ratio")
	for _, s := range anongossip.Stacks() {
		c := cfg
		c.Stack = s
		results, err := anongossip.RunSeeds(c, seeds, 0)
		if err != nil {
			log.Fatal(err)
		}
		agg := anongossip.AggregateResults(results)
		fmt.Printf("%-22v %10.1f %10.0f %10.0f %9.1f%%\n",
			s, agg.Received.Mean, agg.Received.Min, agg.Received.Max,
			100*agg.DeliveryRatio())
	}
	fmt.Println("\nGossip recovers routing losses on every substrate: each +gossip")
	fmt.Println("row pulls the minimum member up against its bare-routing baseline.")
}
