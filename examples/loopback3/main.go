// Loopback3: run the protocol stack LIVE — three nodes as goroutines
// on an in-process transport, no simulator, wall-clock timers — and
// stream a short multicast publication end to end.
//
// This is the hermetic twin of a real agnode cluster (see cmd/agnode
// for the UDP version): the same engines, the same runtime boundary,
// only the transport differs.
//
//	go run ./examples/loopback3
package main

import (
	"fmt"
	"log"
	"time"

	"anongossip/internal/pkt"
	"anongossip/internal/runtime/netrt"
	"anongossip/internal/stack"

	_ "anongossip/internal/flood" // register the "flood" routing stack
)

const group pkt.GroupID = 0xE0000001

func main() {
	tr := netrt.NewChanTransport()

	// Three live nodes, each with its own event-loop goroutine.
	// TimeScale 10 runs protocol timers at 10x wall speed — drop it to
	// 1 to watch the cluster behave in real time.
	nodes := make([]*netrt.ProtocolNode, 3)
	for i := range nodes {
		pn, err := netrt.NewProtocolNode(netrt.ProtocolConfig{
			Node:  netrt.NodeConfig{ID: pkt.NodeID(i + 1), TimeScale: 10},
			Stack: stack.Spec{Routing: "flood"},
			Seed:  int64(i),
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		defer pn.Close()
		nodes[i] = pn
	}

	// Subscribe before starting, then join the multicast group.
	for _, pn := range nodes {
		id := pn.ID()
		pn.OnDeliver(func(g pkt.GroupID, d *pkt.Data, recovered bool) {
			fmt.Printf("node %v delivered %v#%d\n", id, d.Origin, d.Seq)
		})
		pn.Start()
	}
	for _, pn := range nodes {
		if err := pn.Join(group); err != nil {
			log.Fatal(err)
		}
	}

	// Node 1 publishes a short stream; flooding carries it to the rest.
	const packets = 5
	for i := 0; i < packets; i++ {
		key, err := nodes[0].Publish(group)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %v published %v\n", nodes[0].ID(), key)
		time.Sleep(50 * time.Millisecond)
	}

	// Wait (briefly) for the last rebroadcasts to land.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, pn := range nodes[1:] {
			n, err := pn.Delivered()
			if err != nil {
				log.Fatal(err)
			}
			if n < packets {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, pn := range nodes {
		n, err := pn.Delivered()
		if err != nil {
			log.Fatal(err)
		}
		ls := pn.Runtime().Stats()
		fmt.Printf("node %v: delivered %d/%d, frames in %d out %d\n",
			pn.ID(), n, packets, ls.FramesIn.Load(), ls.FramesOut.Load())
	}
}
