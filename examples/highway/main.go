// Highway: the paper's "communication between automobiles on highways"
// application. Vehicles move fast (up to 10 m/s here), so the multicast
// tree breaks constantly; the example shows how much of MAODV's loss
// Anonymous Gossip claws back as speed rises — the paper's Fig. 5 story.
//
//	go run ./examples/highway
package main

import (
	"fmt"
	"log"

	"anongossip"
)

func main() {
	base := anongossip.DefaultConfig()
	base.TxRange = 75

	fmt.Println("Highway scenario: 40 vehicles, sweep of maximum speed")
	fmt.Printf("%8s | %22s | %22s\n", "speed", "Gossip mean [min,max]", "Maodv mean [min,max]")

	rows, err := anongossip.RunComparison(base, []float64{2, 6, 10},
		func(c anongossip.Config, speed float64) anongossip.Config {
			c.MaxSpeed = speed
			return c
		}, anongossip.Seeds(2), 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%6.0f m/s | %8.1f [%5.0f,%5.0f] | %8.1f [%5.0f,%5.0f]\n",
			r.X,
			r.Gossip.Received.Mean, r.Gossip.Received.Min, r.Gossip.Received.Max,
			r.Maodv.Received.Mean, r.Maodv.Received.Min, r.Maodv.Received.Max)
	}
	fmt.Println("\nBoth protocols degrade with speed (more link breaks), but the")
	fmt.Println("gossip phase keeps recovering packets while the tree is repaired.")
}
