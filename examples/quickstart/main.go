// Quickstart: run the paper's baseline scenario once with MAODV plus
// Anonymous Gossip and print the delivery summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anongossip"
)

func main() {
	cfg := anongossip.DefaultConfig() // the paper's §5.1 environment
	cfg.Seed = 42
	// The stack under test is composed from the registry's two axes; the
	// paper's headline stack is Anonymous Gossip over MAODV. Any other
	// registered combination works the same way — try
	// {Routing: "flood", Recovery: "gossip"} or anongossip.StackByName.
	cfg.Stack = anongossip.StackSpec{Routing: "maodv", Recovery: "gossip"}

	res, err := anongossip.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Anonymous Gossip over MAODV — %d nodes, %.0f m range, max speed %.1f m/s\n",
		cfg.Nodes, cfg.TxRange, cfg.MaxSpeed)
	fmt.Printf("source sent           %d packets\n", res.Sent)
	fmt.Printf("mean received         %.1f  (min %.0f, max %.0f across %d members)\n",
		res.Received.Mean, res.Received.Min, res.Received.Max, res.Received.N)
	fmt.Printf("delivery ratio        %.1f%%\n", 100*res.DeliveryRatio())
	fmt.Printf("mean goodput          %.1f%%  (non-duplicate share of gossip replies)\n",
		res.MeanGoodput())

	recovered := 0
	for _, m := range res.Members {
		recovered += m.Recovered
	}
	fmt.Printf("packets recovered     %d by gossip across all members\n", recovered)
	fmt.Printf("simulation executed   %d events\n", res.Events)
}
